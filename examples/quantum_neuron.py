"""The artificial quantum neuron on the ancilla-free qutrit substrate
(paper Sec. 5.1; Tacchino et al. 2019).

Run:  python examples/quantum_neuron.py

Trains nothing — the point is the *circuit*: a 2^n-input binary perceptron
whose activation is computed with multi-controlled gates, capped on real
hardware by ancilla requirements.  With the qutrit tree the evaluation is
ancilla-free: n register wires + 1 output wire, full stop.
"""

from __future__ import annotations

import numpy as np

from repro.apps import QuantumNeuron


def main() -> None:
    num_bits = 3
    rng = np.random.default_rng(2019)
    weights = [int(s) for s in rng.choice([-1, 1], size=1 << num_bits)]
    neuron = QuantumNeuron(num_bits, weights)

    print(f"perceptron with m = {1 << num_bits} inputs, weights {weights}")
    circuit = neuron.build_circuit(weights)
    print(
        f"evaluation circuit: {len(set(circuit.all_qudits()))} wires "
        f"(no ancilla), depth {circuit.depth}, "
        f"{circuit.two_qudit_gate_count} two-qudit gates"
    )

    print("\nactivation vs classical (w.i/m)^2 on random inputs:")
    print(f"{'input':34s} {'quantum':>8s} {'classical':>10s}")
    for _ in range(6):
        signs = [int(s) for s in rng.choice([-1, 1], size=1 << num_bits)]
        quantum = neuron.activation_probability(signs)
        classical = neuron.classical_activation(signs)
        print(f"{str(signs):34s} {quantum:8.4f} {classical:10.4f}")

    print(
        "\nself-activation (input == weights): "
        f"{neuron.activation_probability(weights):.4f} (always 1)"
    )


if __name__ == "__main__":
    main()
