"""Scaled-down Figure 11: fidelity of the three benchmark circuits under
the paper's noise models.

Run:  python examples/noise_model_comparison.py [num_controls] [trials]

Defaults to 6 controls and 30 trials per bar (seconds-scale); the full
benchmark (13 controls, 1000+ trials) lives in benchmarks/ behind
REPRO_FULL=1.
"""

from __future__ import annotations

import sys

from repro.analysis.figures import (
    fig11_fidelity_data,
    render_fidelity_bars,
)
from repro.noise import (
    BARE_QUTRIT,
    DRESSED_QUTRIT,
    SC,
    SC_T1_GATES,
    TI_QUBIT,
)


def main() -> None:
    num_controls = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 30

    pairs = [
        ("QUBIT", SC),
        ("QUBIT+ANCILLA", SC),
        ("QUTRIT", SC),
        ("QUBIT", SC_T1_GATES),
        ("QUBIT+ANCILLA", SC_T1_GATES),
        ("QUTRIT", SC_T1_GATES),
        ("QUBIT", TI_QUBIT),
        ("QUTRIT", BARE_QUTRIT),
        ("QUTRIT", DRESSED_QUTRIT),
    ]
    print(
        f"running {len(pairs)} circuit/noise-model pairs at "
        f"{num_controls} controls, {trials} trajectories each..."
    )
    points = fig11_fidelity_data(
        pairs, num_controls=num_controls, trials=trials
    )
    print()
    print(render_fidelity_bars(points))
    print(
        "\n(paper column shows the published Figure 11 values, measured "
        "at 13 controls; orderings — QUTRIT above QUBIT everywhere — are "
        "the reproduction target at reduced width)"
    )


if __name__ == "__main__":
    main()
