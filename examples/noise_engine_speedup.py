"""Time the v1 dense-kron noise kernels against the v2 axis-local ones.

The workload is the acceptance benchmark of the noise-engine rebuild: a
5-qutrit Generalized Toffoli (the paper's log-depth tree at N=4
controls) evolved as an exact density matrix under amplitude damping —
once through the preserved v1 engine that embeds every operator into the
full 243 x 243 space with ``kron``, once through the v2 engine that
contracts only the touched wires' row/column legs.  The same circuit is
then pushed through the trajectory estimator with looped vs batched
shots.

Run from the repository root::

    PYTHONPATH=src python examples/noise_engine_speedup.py

Expect a several-fold win on both comparisons here.  Amplitude damping
is the *cheap* channel (3 Kraus operators); under a full gate-error
preset, where every two-qutrit gate carries an 80-term depolarizing
channel, the gap widens to ~25x — that run is recorded in the committed
``BENCH_noise.json`` (regenerate with ``python -m repro bench``).
"""

import time

import numpy as np

from repro.noise.model import NoiseModel
from repro.sim.dense_reference import DenseDensityMatrixSimulator
from repro.sim.density import DensityMatrixSimulator
from repro.sim.fidelity import estimate_circuit_fidelity
from repro.sim.state import StateVector
from repro.toffoli.registry import construction_circuit

#: Pure amplitude damping (eq. 9): no gate errors, T1 comparable to the
#: circuit duration so the idle channels actually bite.
AMPLITUDE_DAMPING = NoiseModel(
    name="amplitude_damping",
    p1=0.0,
    p2=0.0,
    gate_time_1q=100e-9,
    gate_time_2q=300e-9,
    t1=30e-6,
    description="T1 relaxation only, tuned to be visible at depth ~16",
)


def main() -> None:
    circuit = construction_circuit("qutrit_tree", 4)
    wires = circuit.all_qudits()
    print(
        f"5-qutrit Generalized Toffoli: {circuit.num_operations} ops, "
        f"depth {circuit.depth}, Hilbert dim "
        f"{int(np.prod([w.dimension for w in wires]))}"
    )
    initial = StateVector.zero(wires)

    new_sim = DensityMatrixSimulator(AMPLITUDE_DAMPING)
    new_sim.run(circuit, initial)  # warm the kernel caches
    start = time.perf_counter()
    rho_new = new_sim.run(circuit, initial)
    new_seconds = time.perf_counter() - start

    start = time.perf_counter()
    rho_old = DenseDensityMatrixSimulator(AMPLITUDE_DAMPING).run(
        circuit, initial
    )
    old_seconds = time.perf_counter() - start

    diff = float(np.abs(rho_new.matrix - rho_old.matrix).max())
    print("\ndensity matrix under amplitude damping:")
    print(f"  v2 axis-local kernels : {new_seconds * 1000:8.1f} ms")
    print(f"  v1 dense kron         : {old_seconds * 1000:8.1f} ms")
    print(f"  speedup               : {old_seconds / new_seconds:8.1f} x")
    print(f"  max |rho_v2 - rho_v1| : {diff:.2e}")

    trials = 200
    start = time.perf_counter()
    batched = estimate_circuit_fidelity(
        circuit, AMPLITUDE_DAMPING, trials=trials, seed=7
    )
    batched_seconds = time.perf_counter() - start
    start = time.perf_counter()
    looped = estimate_circuit_fidelity(
        circuit, AMPLITUDE_DAMPING, trials=trials, seed=7, batch_size=1
    )
    looped_seconds = time.perf_counter() - start
    print(f"\n{trials} trajectories under amplitude damping:")
    print(
        f"  batched engine        : {batched_seconds * 1000:8.1f} ms "
        f"(mean fidelity {batched.mean_fidelity:.4f})"
    )
    print(
        f"  looped engine         : {looped_seconds * 1000:8.1f} ms "
        f"(mean fidelity {looped.mean_fidelity:.4f})"
    )
    print(
        f"  speedup               : "
        f"{looped_seconds / batched_seconds:8.1f} x"
    )


if __name__ == "__main__":
    main()
