"""Grover search with the qutrit multi-controlled-Z oracle (paper Sec. 5.2).

Run:  python examples/grover_search.py

Searches M = 16 items for a marked element, showing the amplitude
amplification profile, the depth advantage of the log-depth qutrit oracle
decomposition, and a noisy end-to-end run.
"""

from __future__ import annotations

from repro.apps import GroverSearch
from repro.noise import SC_T1_GATES


def main() -> None:
    num_bits, marked = 4, 11
    search = GroverSearch(num_bits, marked)

    print(f"searching M = {1 << num_bits} items for index {marked}")
    print(f"optimal iterations: {search.optimal_iterations()}")

    print("\namplification profile:")
    for iterations in range(6):
        probability = search.success_probability(iterations)
        bar = "#" * int(round(40 * probability))
        print(f"  {iterations} iterations  P = {probability:5.3f}  {bar}")

    qubit_search = GroverSearch(num_bits, marked, construction="qubit_cascade")
    qutrit_depth = search.build_circuit().depth
    qubit_depth = qubit_search.build_circuit().depth
    print(
        f"\nfull-search depth: qutrit oracle {qutrit_depth} vs "
        f"ancilla-free qubit oracle {qubit_depth} "
        f"({qubit_depth / qutrit_depth:.1f}x deeper)"
    )

    result = search.run(
        backend="trajectory",
        noise_model=SC_T1_GATES,
        trials=20,
        seed=3,
    )
    print(f"\nnoisy end-to-end run: {result}")


if __name__ == "__main__":
    main()
