"""Quickstart: build, verify and noise-simulate a qutrit Generalized Toffoli.

Run:  python examples/quickstart.py

Walks the library's core loop through the one entry point, execute():
1. run the paper's log-depth ancilla-free qutrit construction classically,
2. verify all binary inputs (linear-time permutation propagation),
3. compare its resources with the qubit baselines,
4. compile it through a pass pipeline,
5. estimate its fidelity under a near-term superconducting noise model.
"""

from __future__ import annotations

from itertools import product

from repro import build_toffoli, execute, lowering_pipeline
from repro.noise import SC


def main() -> None:
    n = 7  # seven controls + one target

    # -- 1. one call: build + run --------------------------------------
    # The classical backend propagates basis states in O(width) per gate
    # (paper Sec. 6); constructions are built at permutation granularity.
    result = execute(
        "qutrit_tree",
        num_controls=n,
        backend="classical",
        initial=(1,) * n + (0,),
    )
    print("all-ones input ->", result.values)

    # -- 2. verify every binary input ----------------------------------
    failures = 0
    for values in product([0, 1], repeat=n + 1):
        out = execute(
            "qutrit_tree", num_controls=n, backend="classical",
            initial=values,
        )
        expected = list(values)
        if all(v == 1 for v in values[:n]):
            expected[n] ^= 1
        failures += out.values != tuple(expected)
    print(f"verified all {2 ** (n + 1)} binary inputs: {failures} failures")

    # -- 3. compare resources ------------------------------------------
    print("\nresource comparison (same logical gate):")
    for name in ("qutrit_tree", "qubit_one_dirty", "qubit_ancilla_free"):
        print(" ", build_toffoli(name, n).describe())

    # -- 4. compile through a pass pipeline ----------------------------
    compiled = lowering_pipeline().compile(
        build_toffoli("qutrit_tree", n, decompose=False).circuit
    )
    print("\ncompile pipeline report:")
    print(compiled.report())

    # -- 5. noisy simulation -------------------------------------------
    estimate = execute(
        "qutrit_tree",
        num_controls=n,
        backend="trajectory",
        noise_model=SC,
        trials=40,
        seed=1,
    )
    print(f"\nnoisy simulation under {SC.name}: {estimate}")


if __name__ == "__main__":
    main()
