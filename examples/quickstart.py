"""Quickstart: build, verify and noise-simulate a qutrit Generalized Toffoli.

Run:  python examples/quickstart.py

Walks the library's core loop in under a minute:
1. build the paper's log-depth ancilla-free qutrit construction,
2. verify it classically (linear-time, all binary inputs),
3. compare its resources with the qubit baselines,
4. estimate its fidelity under a near-term superconducting noise model.
"""

from __future__ import annotations

from itertools import product

from repro import ClassicalSimulator, build_toffoli, estimate_circuit_fidelity
from repro.noise import SC
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.spec import GeneralizedToffoli


def main() -> None:
    n = 7  # seven controls + one target

    # -- 1. build ------------------------------------------------------
    result = build_toffoli("qutrit_tree", n)
    print("built:", result.describe())

    # -- 2. verify classically -----------------------------------------
    # At three-qutrit-gate granularity the circuit is a basis permutation,
    # so every classical input costs O(width) to check (paper Sec. 6).
    plain = build_qutrit_tree(GeneralizedToffoli(n), decompose=False)
    sim = ClassicalSimulator()
    wires = plain.controls + [plain.target]
    failures = 0
    for values in product([0, 1], repeat=n + 1):
        out = sim.run_values(plain.circuit, wires, values)
        expected = list(values)
        if all(v == 1 for v in values[:n]):
            expected[n] ^= 1
        failures += out != tuple(expected)
    print(f"verified all {2 ** (n + 1)} binary inputs: {failures} failures")

    # -- 3. compare resources ------------------------------------------
    print("\nresource comparison (same logical gate):")
    for name in ("qutrit_tree", "qubit_one_dirty", "qubit_ancilla_free"):
        print(" ", build_toffoli(name, n).describe())

    # -- 4. noisy simulation -------------------------------------------
    estimate = estimate_circuit_fidelity(
        result.circuit,
        SC,
        trials=40,
        seed=1,
        wires=result.all_wires,
        circuit_name="QUTRIT",
    )
    print(f"\nnoisy simulation under {SC.name}: {estimate}")


if __name__ == "__main__":
    main()
