"""Circuits as values: serialize, fingerprint, cache, and replay.

Run:  python examples/circuit_serialization.py

Shows the Circuit IR v2 workflow:
1. every gate round-trips through its (name, params, dims) GateSpec,
2. whole circuits round-trip through JSON (structural equality),
3. the result cache is keyed on canonical circuit identity, so two
   independently-built copies of the same construction share an entry,
4. a saved circuit file replays on any backend (the CLI equivalent is
   ``python -m repro circuit save/show/load``).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    GATE_REGISTRY,
    Circuit,
    ResultCache,
    build_toffoli,
    execute,
)
from repro.execution import circuit_fingerprint
from repro.gates import RX, shift_gate


def main() -> None:
    # -- 1. gates are reconstructible specs -----------------------------
    for gate in (shift_gate(3, 1), RX(0.25)):
        spec = gate.spec()
        rebuilt = GATE_REGISTRY.build(spec)
        print(f"{gate.name:12s} -> {spec} -> equal: {rebuilt == gate}")

    # -- 2. circuits round-trip through JSON ----------------------------
    circuit = build_toffoli("qutrit_tree", 5).circuit
    text = circuit.to_json()
    rebuilt = Circuit.from_json(text)
    print(
        f"\ncircuit JSON: {len(text)} bytes; round-trip equal: "
        f"{rebuilt == circuit}; fingerprint match: "
        f"{circuit_fingerprint(rebuilt) == circuit_fingerprint(circuit)}"
    )

    # -- 3. cache hits across equivalent builds -------------------------
    cache = ResultCache()
    execute(build_toffoli("qutrit_tree", 5).circuit, cache=cache)
    execute(build_toffoli("qutrit_tree", 5).circuit, cache=cache)
    print(
        f"cache after two equivalent builds: hits={cache.stats.hits} "
        f"misses={cache.stats.misses}"
    )

    # -- 4. save to a file and replay -----------------------------------
    undecomposed = build_toffoli(
        "qutrit_tree", 5, decompose=False
    ).circuit
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tree5.json"
        path.write_text(undecomposed.to_json())
        replayed = Circuit.from_json(path.read_text())
        result = execute(
            replayed, backend="classical", initial=(1, 1, 1, 1, 1, 0)
        )
        print(f"replayed from {path.name}: output values {result.values}")


if __name__ == "__main__":
    main()
