"""The Sec. VII connectivity study: route the qutrit tree onto the zoo.

Run:  python examples/routing_study.py

Shows the routing engine v2 workflow:
1. build the paper's log-depth qutrit Generalized Toffoli,
2. route it onto every topology-zoo family with the greedy v1 baseline
   and the lookahead (SABRE-style) v2 router,
3. compare SWAP counts, depth inflation, and the closed-form noise
   fidelity proxy (the CLI equivalent is ``python -m repro route``),
4. round-trip a topology through its serializable spec.
"""

from __future__ import annotations

from repro import build_toffoli
from repro.arch import (
    GreedyRouter,
    LookaheadRouter,
    RouterConfig,
    TopologySpec,
    routing_metrics,
    sized_topology,
)
from repro.noise import SC

CONTROLS = 8
KINDS = (
    "line", "ring", "star", "tree", "grid_2d", "heavy_hex",
    "random_regular", "all_to_all",
)


def main() -> None:
    tree = build_toffoli("qutrit_tree", CONTROLS).circuit
    wires = tree.all_qudits()
    print(
        f"qutrit tree, N={CONTROLS}: {len(wires)} wires, "
        f"depth {tree.depth}, {tree.two_qudit_gate_count} two-qudit gates"
    )
    print(
        f"\n{'topology':>18s} {'router':>9s} {'swaps':>6s} "
        f"{'depth':>6s} {'overhead':>8s} {'fidelity~':>9s}"
    )
    routers = (
        GreedyRouter(),
        LookaheadRouter(RouterConfig(lookahead=16, placement_trials=4)),
    )
    for kind in KINDS:
        topology = sized_topology(kind, len(wires))
        for router in routers:
            routed = router.route(tree, topology, wires=wires)
            metrics = routing_metrics(tree, routed, SC)
            print(
                f"{routed.topology_name:>18s} {routed.router_name:>9s} "
                f"{routed.swap_count:6d} {routed.depth:6d} "
                f"{metrics.depth_overhead:8.2f} "
                f"{metrics.fidelity_proxy:9.3f}"
            )

    # Topologies are serializable values, like circuits (PR 2).
    spec = sized_topology("heavy_hex", len(wires)).spec
    print(f"\ntopology spec round-trip: {spec.to_json()}")
    assert TopologySpec.from_json(spec.to_json()).build().size == (
        spec.build().size
    )


if __name__ == "__main__":
    main()
