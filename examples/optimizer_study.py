"""Optimizer v1 study: verified rewrites over the Fig. 9/10 circuits.

Run:  python examples/optimizer_study.py

Shows the `repro.optimize` workflow:
1. build each Figure 9/10 construction and run the default rewrite
   stack (cancel-inverses, fuse-phases, pack-commuting) to a fixpoint,
   equivalence-verified against the batched oracles,
2. print the before/after gate-count/depth table (the CLI equivalent
   is ``python -m repro optimize``; the committed full sweep is
   ``BENCH_opt.json``),
3. clean up a *routed* circuit with ``cleanup_routed`` — placements
   and SWAP bookkeeping preserved,
4. run the same circuit through the ``hardware-line-opt`` pipeline,
   where the optimizer brackets the router.
"""

from __future__ import annotations

from repro import execute
from repro.arch import cleanup_routed, resolve_router, sized_topology
from repro.optimize import RewriteEngine
from repro.toffoli import build_toffoli

CONTROLS = 5
CONSTRUCTIONS = (
    "qutrit_tree", "he_tree", "qubit_one_dirty", "qubit_ancilla_free",
)


def main() -> None:
    engine = RewriteEngine(verify="auto")
    print(
        f"{'construction':>20s} {'gates':>12s} {'2-qudit':>12s} "
        f"{'depth':>12s} {'verified':>12s}"
    )
    for name in CONSTRUCTIONS:
        circuit = build_toffoli(name, CONTROLS).circuit
        optimized, report = engine.run(circuit)
        print(
            f"{name:>20s} "
            f"{circuit.num_operations:5d} > {optimized.num_operations:<4d} "
            f"{circuit.two_qudit_gate_count:5d} > "
            f"{optimized.two_qudit_gate_count:<4d} "
            f"{circuit.depth:5d} > {optimized.depth:<4d} "
            f"{report.verified or 'unchanged':>12s}"
        )

    # Post-routing cleanup: optimize around the inserted SWAP chains
    # without disturbing the placement record.
    tree = build_toffoli("he_tree", CONTROLS).circuit
    wires = tree.all_qudits()
    routed = resolve_router("lookahead").route(
        tree, sized_topology("line", len(wires)), wires=wires
    )
    cleaned, report = cleanup_routed(routed)
    print(
        f"\nhe_tree N={CONTROLS} routed on line: "
        f"{routed.circuit.num_operations} > "
        f"{cleaned.circuit.num_operations} gates "
        f"({report.gates_removed} removed, {report.iterations} iterations), "
        f"swaps {routed.swap_count} > {cleaned.swap_count}, "
        f"placements unchanged: "
        f"{cleaned.final_placement == routed.final_placement}"
    )

    # Through the facade: the optimizer brackets the router, and the
    # run's metadata records the reduction.
    result = execute("he_tree", num_controls=CONTROLS, optimize=True)
    print(
        f"execute(optimize=True): removed "
        f"{result.metadata['optimize_gates_removed']} gates in "
        f"{result.metadata['optimize_iterations']} iterations via "
        f"{', '.join(result.metadata['optimize_passes'])}"
    )


if __name__ == "__main__":
    main()
