"""The execution service under a zipfian workload.

Run:  PYTHONPATH=src python examples/serving_demo.py

Shows the serving layer end to end:
1. stand up a :class:`JobQueue` with a persistent result store,
2. push a zipf-skewed request stream (a few popular circuits dominate,
   like real serving traffic) from four submitters,
3. read the throughput / latency / sharing summary — every distinct
   request executes exactly once, every duplicate coalesces or hits a
   cache,
4. "restart" the service (cold in-memory cache, same store directory)
   and replay the workload: zero executions, everything served from
   disk.

The CLI equivalents are ``python -m repro serve`` (the live service)
and ``python -m repro bench`` (the committed ``BENCH_serve.json``).
"""

from __future__ import annotations

import tempfile

from repro.execution import ResultCache
from repro.service import (
    JobQueue,
    ResultStore,
    default_catalog,
    zipf_workload,
)

REQUESTS = 120
WORKERS = 4
SUBMITTERS = ("alice", "bob", "carol", "dave")


def serve_workload(queue: JobQueue, catalog, workload) -> None:
    jobs = []
    for position, index in enumerate(workload):
        entry = dict(catalog[index])
        target = entry.pop("target")
        build = entry.pop("build", {})
        jobs.append(queue.submit(
            target,
            submitter=SUBMITTERS[position % len(SUBMITTERS)],
            **entry, **build,
        ))
    for job in jobs:
        job.result(timeout=300)
    latencies = sorted(job.latency for job in jobs)
    stats = queue.stats_snapshot()
    print(f"  {len(jobs)} requests: "
          f"p50 {latencies[len(jobs) // 2] * 1000:.2f} ms, "
          f"max {latencies[-1] * 1000:.2f} ms")
    print(f"  executed {stats.executed}, coalesced {stats.coalesced}, "
          f"memory hits {stats.memory_hits}, "
          f"store hits {stats.persistent_hits}")
    print(f"  shared rate {stats.shared_rate * 100:.1f}% "
          f"(cache hit rate {stats.cache_hit_rate * 100:.1f}%)")


def main() -> None:
    catalog = default_catalog(smoke=True)
    workload = zipf_workload(len(catalog), REQUESTS, seed=7)
    distinct = len(set(workload))
    print(f"zipfian workload: {REQUESTS} requests over {len(catalog)} "
          f"catalog entries ({distinct} distinct), "
          f"{len(SUBMITTERS)} submitters, {WORKERS} workers")

    with tempfile.TemporaryDirectory() as store_dir:
        print("\nphase 1 — cold store:")
        with JobQueue(workers=WORKERS,
                      store=ResultStore(store_dir)) as queue:
            serve_workload(queue, catalog, workload)
            assert queue.stats.executed == distinct  # exactly once

        print("\nphase 2 — simulated restart (cold cache, warm store):")
        with JobQueue(workers=WORKERS,
                      cache=ResultCache(backing=ResultStore(store_dir)),
                      ) as queue:
            serve_workload(queue, catalog, workload)
            assert queue.stats.executed == 0  # everything from disk

    print("\nevery distinct circuit ran exactly once; the restart "
          "re-executed nothing.")


if __name__ == "__main__":
    main()
