"""The ancilla-free qutrit incrementer and constant adders (paper Sec. 5.3/5.4).

Run:  python examples/incrementer_demo.py

Counts a register through +1 steps, demonstrates constant addition built
from sub-register increments, and compares depth against the quadratic
ancilla-free qubit ripple.
"""

from __future__ import annotations

from repro import execute
from repro.apps import (
    add_constant_ops,
    increment_value,
    qutrit_incrementer_circuit,
)
from repro.apps.incrementer import qubit_ripple_incrementer_ops
from repro.circuits import Circuit
from repro.qudits import qubits, qutrits


def register_value(bits) -> int:
    return sum(b << i for i, b in enumerate(bits))


def register_bits(value: int, width: int) -> list[int]:
    return [(value >> i) & 1 for i in range(width)]


def main() -> None:
    width = 6

    # -- counting ------------------------------------------------------
    circuit, register = qutrit_incrementer_circuit(width, decompose=False)
    print(f"width-{width} qutrit incrementer: depth {circuit.depth} "
          f"(at multi-controlled-gate granularity), no ancilla")
    value = 59
    print("counting from 59:", end=" ")
    for _ in range(8):
        value = increment_value(width, value)
        print(value, end=" ")
    print("  (wraps mod 64)")

    # -- constant addition --------------------------------------------
    reg = qutrits(width, start=100)
    adder = Circuit(add_constant_ops(reg, 37, decompose=False))
    out = execute(
        adder, backend="classical", wires=reg,
        initial=register_bits(10, width),
    )
    print(f"\nconstant adder: 10 + 37 mod 64 = {register_value(out.values)}")

    # -- depth comparison ----------------------------------------------
    print("\ndepth scaling, qutrit log^2 vs ancilla-free qubit ripple:")
    print(f"{'width':>6s} {'qutrit':>8s} {'qubit':>8s}")
    for w in (8, 16, 32):
        qutrit_depth = qutrit_incrementer_circuit(w)[0].depth
        qubit_depth = Circuit(qubit_ripple_incrementer_ops(qubits(w))).depth
        print(f"{w:6d} {qutrit_depth:8d} {qubit_depth:8d}")


if __name__ == "__main__":
    main()
