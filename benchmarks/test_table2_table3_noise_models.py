"""Tables 2 and 3: the noise-model parameter tables.

These are definitional tables; the bench renders them from the presets and
asserts the derived quantities the paper's Section 7 discusses (two-qutrit
reliability penalty, damping probabilities per gate time).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table2, render_table3
from repro.noise.presets import (
    BARE_QUTRIT,
    DRESSED_QUTRIT,
    IBM_CURRENT,
    SC,
    SC_T1_GATES,
    SUPERCONDUCTING_MODELS,
    TI_QUBIT,
    TRAPPED_ION_MODELS,
)


def test_table2_render(benchmark):
    text = benchmark.pedantic(render_table2, rounds=1, iterations=1)
    print()
    print(text)
    for name in ("SC", "SC+T1", "SC+GATES", "SC+T1+GATES"):
        assert name in text


def test_table3_render(benchmark):
    text = benchmark.pedantic(render_table3, rounds=1, iterations=1)
    print()
    print(text)
    for name in ("TI_QUBIT", "BARE_QUTRIT", "DRESSED_QUTRIT"):
        assert name in text


def test_two_qutrit_reliability_penalty():
    # Sec. 7.1.1: two-qutrit gates are (1-80p2)/(1-15p2) times less
    # reliable; print the factor for each SC model.
    print()
    print("Two-qutrit vs two-qubit no-error ratio (Sec. 7.1.1):")
    for model in SUPERCONDUCTING_MODELS:
        ratio = model.reliability_ratio_two_qudit()
        print(f"  {model.name:14s} {ratio:.6f}")
        assert ratio < 1.0


def test_idle_error_magnitudes():
    # lambda_1 for one two-qudit moment: SC at T1=1ms, dt=300ns -> 3e-4.
    lam1, lam2 = SC.idle_lambdas(3, SC.gate_time_2q)
    assert np.isclose(lam1, 1 - np.exp(-3e-7 / 1e-3))
    assert lam2 > lam1
    print()
    print(
        f"SC idle lambdas per two-qudit moment: lambda1={lam1:.2e}, "
        f"lambda2={lam2:.2e}"
    )


def test_current_hardware_motivation():
    # Sec. 7.2: current IBM parameters make a 14-input gate essentially
    # certain to fail; the forward-looking SC model is 10x better in both
    # gate errors and T1.
    assert np.isclose(IBM_CURRENT.p1 / SC.p1, 10)
    assert np.isclose(SC.t1 / IBM_CURRENT.t1, 10)
    assert np.isclose(SC_T1_GATES.p1 * 100, IBM_CURRENT.p1)


def test_trapped_ion_gate_times_dominate():
    # TI two-qudit gates are 200x slower than single-qudit ones, which is
    # why gate errors (not idling) dominate on clock-state ions.
    for model in TRAPPED_ION_MODELS:
        assert np.isclose(model.gate_time_2q / model.gate_time_1q, 200)
    assert TI_QUBIT.t1 is None and DRESSED_QUTRIT.t1 is None
    assert BARE_QUTRIT.idle_dephasing_rate > 0
