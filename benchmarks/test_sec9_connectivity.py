"""Section VII/IX: connectivity's effect on the qutrit tree's cost.

The paper: "Accounting for data movement on a nearest-neighbor-
connectivity 2D architecture would expand the qutrit circuit depth from
log N to sqrt(N)" — while trapped-ion chains (all-to-all) keep the log.
This bench routes the qutrit tree and the qubit baselines onto the
topology zoo with the lookahead router and checks the paper's two
connectivity claims:

* constrained devices inflate depth (all-to-all <= grid <= line), with
  the grid's overhead growing slower than the line's;
* the qutrit-vs-qubit ordering survives *every* topology: on each of
  the zoo members the routed qutrit tree stays far cheaper than the
  routed qubit constructions, and its swap overhead grows slower with N
  — connectivity does not erase the paper's asymptotic win.
"""

from __future__ import annotations

import math

import pytest

from repro.arch.router import LookaheadRouter
from repro.arch.routing import route_circuit
from repro.arch.topology import all_to_all, grid_2d, line, sized_topology
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.registry import construction_circuit
from repro.toffoli.spec import GeneralizedToffoli

SIZES = (8, 15, 24)

#: Zoo kinds of the qutrit-vs-qubit ordering study (>= 4 topologies).
ORDERING_TOPOLOGIES = ("line", "grid_2d", "ring", "tree", "heavy_hex")

#: Control counts for the ordering study (kept small: the qubit
#: circuits carry hundreds of gates before routing even starts).
ORDERING_SIZES = (8, 14)

QUBIT_BASELINES = ("qubit_one_dirty", "he_tree")


def _grid_for(num_wires: int):
    rows = math.isqrt(num_wires)
    cols = math.ceil(num_wires / rows)
    return grid_2d(rows, cols)


@pytest.fixture(scope="module")
def routed():
    table = {}
    for n in SIZES:
        lowered = build_qutrit_tree(GeneralizedToffoli(n))
        wires = n + 1
        table[n] = {
            "all-to-all": route_circuit(lowered.circuit, all_to_all(wires)),
            "grid": route_circuit(lowered.circuit, _grid_for(wires)),
            "line": route_circuit(lowered.circuit, line(wires)),
        }
    return table


@pytest.fixture(scope="module")
def ordering():
    """construction -> N -> topology kind -> lookahead-routed result."""
    router = LookaheadRouter()
    table: dict = {}
    for name in ("qutrit_tree",) + QUBIT_BASELINES:
        table[name] = {}
        for n in ORDERING_SIZES:
            circuit = construction_circuit(name, n)
            wires = circuit.all_qudits()
            table[name][n] = {
                kind: router.route(
                    circuit, sized_topology(kind, len(wires)), wires=wires
                )
                for kind in ORDERING_TOPOLOGIES
            }
    return table


def test_sec9_depth_inflation(benchmark, routed):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Sec. 9: qutrit tree depth under connectivity constraints")
    print(
        f"{'N':>4s} {'all-to-all':>11s} {'2D grid':>9s} {'line':>7s} "
        f"{'grid swaps':>11s} {'line swaps':>11s}"
    )
    for n in SIZES:
        row = routed[n]
        print(
            f"{n:4d} {row['all-to-all'].depth:11d} "
            f"{row['grid'].depth:9d} {row['line'].depth:7d} "
            f"{row['grid'].swap_count:11d} {row['line'].swap_count:11d}"
        )


def test_sec9_all_to_all_needs_no_swaps(routed):
    for n in SIZES:
        assert routed[n]["all-to-all"].swap_count == 0


def test_sec9_constrained_devices_inflate_depth(routed):
    for n in SIZES:
        row = routed[n]
        assert (
            row["all-to-all"].depth
            <= row["grid"].depth
            <= row["line"].depth
        )


def test_sec9_grid_overhead_grows_slower_than_line(routed):
    grid_growth = (
        routed[SIZES[-1]]["grid"].swap_count
        / max(1, routed[SIZES[0]]["grid"].swap_count)
    )
    line_growth = (
        routed[SIZES[-1]]["line"].swap_count
        / max(1, routed[SIZES[0]]["line"].swap_count)
    )
    print(
        f"\nswap growth {SIZES[0]} -> {SIZES[-1]}: "
        f"grid {grid_growth:.1f}x, line {line_growth:.1f}x"
    )
    assert grid_growth <= line_growth


def test_sec9_lookahead_beats_greedy_on_constrained_devices(routed):
    # The BENCH_route.json claim at bench scale: the v2 router strictly
    # reduces SWAP traffic for the N >= 8 tree on line and grid.
    router = LookaheadRouter()
    for n in SIZES:
        lowered = build_qutrit_tree(GeneralizedToffoli(n))
        wires = n + 1
        for topology in (line(wires), _grid_for(wires)):
            smart = router.route(lowered.circuit, topology)
            greedy = routed[n]["line" if "line" in topology.name else "grid"]
            assert smart.swap_count < greedy.swap_count


def test_sec9_qutrit_vs_qubit_ordering_on_every_topology(ordering):
    # The paper's Table 1 ordering (qutrit tree cheapest), checked after
    # routing on every zoo member: connectivity rescales the costs but
    # never flips qutrits below the qubit baselines.
    print()
    print("Sec. 9: routed cost ordering, qutrit tree vs qubit baselines")
    header = f"{'construction':>16s} {'N':>4s}" + "".join(
        f" {kind:>12s}" for kind in ORDERING_TOPOLOGIES
    )
    print(header)
    for name, per_n in ordering.items():
        for n, per_kind in per_n.items():
            cells = "".join(
                f" {per_kind[kind].depth:5d}/{per_kind[kind].swap_count:<6d}"
                for kind in ORDERING_TOPOLOGIES
            )
            print(f"{name:>16s} {n:4d}{cells}")
    for kind in ORDERING_TOPOLOGIES:
        for n in ORDERING_SIZES:
            tree_routed = ordering["qutrit_tree"][n][kind]
            for baseline in QUBIT_BASELINES:
                qubit_routed = ordering[baseline][n][kind]
                assert tree_routed.depth < qubit_routed.depth, (kind, n)
                assert (
                    tree_routed.circuit.two_qudit_gate_count
                    < qubit_routed.circuit.two_qudit_gate_count
                ), (kind, n)


def test_sec9_qutrit_overhead_grows_slower_than_qubit(ordering):
    # "Qutrit tree overhead stays flat vs. qubit blow-up": growing N
    # adds far less SWAP traffic to the tree than to either qubit
    # baseline, on every constrained topology.
    low, high = ORDERING_SIZES
    for kind in ORDERING_TOPOLOGIES:
        tree_delta = (
            ordering["qutrit_tree"][high][kind].swap_count
            - ordering["qutrit_tree"][low][kind].swap_count
        )
        for baseline in QUBIT_BASELINES:
            qubit_delta = (
                ordering[baseline][high][kind].swap_count
                - ordering[baseline][low][kind].swap_count
            )
            print(
                f"{kind}: tree +{tree_delta} swaps, {baseline} "
                f"+{qubit_delta} swaps ({low} -> {high} controls)"
            )
            assert tree_delta < qubit_delta, (kind, baseline)
