"""Section 9: connectivity's effect on the qutrit tree's depth.

The paper: "Accounting for data movement on a nearest-neighbor-
connectivity 2D architecture would expand the qutrit circuit depth from
log N to sqrt(N)" — while trapped-ion chains (all-to-all) keep the log.
This bench routes the same tree onto all-to-all, 2D-grid and line devices
and reports the measured inflation.
"""

from __future__ import annotations

import math

import pytest

from repro.arch.routing import route_circuit
from repro.arch.topology import all_to_all, grid_2d, line
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.spec import GeneralizedToffoli

SIZES = (8, 15, 24)


def _grid_for(num_wires: int):
    rows = math.isqrt(num_wires)
    cols = math.ceil(num_wires / rows)
    return grid_2d(rows, cols)


@pytest.fixture(scope="module")
def routed():
    table = {}
    for n in SIZES:
        lowered = build_qutrit_tree(GeneralizedToffoli(n))
        wires = n + 1
        table[n] = {
            "all-to-all": route_circuit(lowered.circuit, all_to_all(wires)),
            "grid": route_circuit(lowered.circuit, _grid_for(wires)),
            "line": route_circuit(lowered.circuit, line(wires)),
        }
    return table


def test_sec9_depth_inflation(benchmark, routed):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Sec. 9: qutrit tree depth under connectivity constraints")
    print(
        f"{'N':>4s} {'all-to-all':>11s} {'2D grid':>9s} {'line':>7s} "
        f"{'grid swaps':>11s} {'line swaps':>11s}"
    )
    for n in SIZES:
        row = routed[n]
        print(
            f"{n:4d} {row['all-to-all'].depth:11d} "
            f"{row['grid'].depth:9d} {row['line'].depth:7d} "
            f"{row['grid'].swap_count:11d} {row['line'].swap_count:11d}"
        )


def test_sec9_all_to_all_needs_no_swaps(routed):
    for n in SIZES:
        assert routed[n]["all-to-all"].swap_count == 0


def test_sec9_constrained_devices_inflate_depth(routed):
    for n in SIZES:
        row = routed[n]
        assert (
            row["all-to-all"].depth
            <= row["grid"].depth
            <= row["line"].depth
        )


def test_sec9_grid_overhead_grows_slower_than_line(routed):
    grid_growth = (
        routed[SIZES[-1]]["grid"].swap_count
        / max(1, routed[SIZES[0]]["grid"].swap_count)
    )
    line_growth = (
        routed[SIZES[-1]]["line"].swap_count
        / max(1, routed[SIZES[0]]["line"].swap_count)
    )
    print(
        f"\nswap growth {SIZES[0]} -> {SIZES[-1]}: "
        f"grid {grid_growth:.1f}x, line {line_growth:.1f}x"
    )
    assert grid_growth <= line_growth
