"""Benchmark configuration.

Every benchmark prints the paper-vs-measured comparison it regenerates.
Defaults are sized to keep the whole suite minutes-scale on a laptop;
set ``REPRO_FULL=1`` to run the paper's exact configuration (the 14-input
Generalized Toffoli fidelity experiment — expect hours, the paper burned
20,000 CPU-hours on 100+ cloud nodes for its version).
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    """True when the paper's full experiment sizes were requested."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def fig11_width() -> int:
    """Controls for the Figure 11 circuit: 13 in the paper, 8 by default."""
    return 13 if full_scale() else 8


@pytest.fixture(scope="session")
def fig11_trials() -> int:
    """Trajectories per bar: 1000+ in the paper, 40 by default."""
    return 1000 if full_scale() else 40


@pytest.fixture(scope="session")
def sweep_ns() -> list[int]:
    """Control counts for the Figure 9/10 sweeps (paper: up to 200)."""
    if full_scale():
        return [10, 25, 50, 75, 100, 125, 150, 175, 200]
    return [8, 16, 32, 64, 128, 200]
