"""Figure 9: circuit depth vs N for QUBIT, QUBIT+ANCILLA, QUTRIT.

Paper's reported fits: ~633 N, ~76 N, ~38 log2 N.  The QUTRIT and
QUBIT+ANCILLA shapes reproduce directly; the QUBIT baseline is the
documented substituted construction (DESIGN.md), so its curve is reported
against the paper's 633 N reference line.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    PAPER_DEPTH_FITS,
    fig9_depth_data,
    render_series_table,
)
from repro.analysis.scaling import best_fit


@pytest.fixture(scope="module")
def depth_data(sweep_ns):
    return fig9_depth_data(sweep_ns)


def test_fig9_depth_sweep(benchmark, sweep_ns):
    """Regenerates Figure 9's series (the benchmark measures build time)."""
    data = benchmark.pedantic(
        fig9_depth_data, args=(sweep_ns,), rounds=1, iterations=1
    )
    print()
    print("Figure 9 reproduction: Generalized Toffoli circuit depth")
    print(render_series_table(sweep_ns, data, PAPER_DEPTH_FITS, "depth"))


def test_fig9_qutrit_depth_is_logarithmic(depth_data, sweep_ns):
    fit = best_fit(sweep_ns, depth_data["QUTRIT"])
    print(f"\nQUTRIT measured depth {fit} (paper: ~38 log2 N)")
    assert fit.model in ("log2(N)", "log2(N)^2")


def test_fig9_qubit_ancilla_depth_is_linear(depth_data, sweep_ns):
    fit = best_fit(
        sweep_ns, depth_data["QUBIT+ANCILLA"], candidates=["N", "N^2"]
    )
    print(f"\nQUBIT+ANCILLA measured depth {fit} (paper: ~76 N)")
    assert fit.model == "N"
    assert 40 <= fit.coefficient <= 120


def test_fig9_ordering_matches_paper(depth_data, sweep_ns):
    for i, n in enumerate(sweep_ns):
        assert (
            depth_data["QUTRIT"][i]
            < depth_data["QUBIT+ANCILLA"][i]
            < depth_data["QUBIT"][i]
        ), f"depth ordering violated at N={n}"


def test_fig9_qutrit_depth_within_paper_band(depth_data, sweep_ns):
    # The paper's coefficient is 38 with their 13-gate CC decomposition;
    # ours is 7 two-qudit gates per CC gate, so the measured coefficient
    # is smaller.  Same asymptote, coefficient within [5, 40].
    fit = best_fit(sweep_ns, depth_data["QUTRIT"], candidates=["log2(N)"])
    assert 5 <= fit.coefficient <= 40
