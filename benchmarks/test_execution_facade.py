"""Execution facade: sweep sharding and result caching.

The ROADMAP's scaling direction (batching, caching, multi-backend) lands
in ``repro.execute``; these benchmarks pin down that (a) parallel
trajectory sweeps match serial ones in distribution, (b) the result
cache turns repeat sweeps into O(lookup) work, and (c) the compile
pipeline reproduces the constructions' inline lowering.
"""

from __future__ import annotations

import pytest

from repro.execution import (
    ResultCache,
    circuit_fingerprint,
    execute,
    lowering_pipeline,
)
from repro.noise.presets import SC
from repro.toffoli.registry import build_toffoli

SWEEP = {"num_controls": range(3, 8)}


@pytest.fixture(scope="module")
def serial_sweep():
    return execute(
        "qutrit_tree", backend="trajectory", noise_model=SC,
        sweep=SWEEP, trials=20, seed=2019,
    )


def test_parallel_sweep_matches_serial_distribution(serial_sweep):
    parallel = execute(
        "qutrit_tree", backend="trajectory", noise_model=SC,
        sweep=SWEEP, trials=20, seed=2019, parallel=True, workers=4,
    )
    assert len(parallel) == len(serial_sweep)
    for serial_point, parallel_point in zip(serial_sweep, parallel):
        assert parallel_point.params == serial_point.params
        assert parallel_point.trials == serial_point.trials
        # Same estimator, different shard seeds: agreement within the
        # combined statistical uncertainty (5 sigma head room).
        tolerance = 5 * max(
            serial_point.std_error + parallel_point.std_error, 0.02
        )
        assert (
            abs(parallel_point.mean_fidelity - serial_point.mean_fidelity)
            <= tolerance
        )


def test_cached_sweep_is_fast(benchmark, serial_sweep):
    cache = ResultCache()
    execute(
        "qutrit_tree", backend="trajectory", noise_model=SC,
        sweep=SWEEP, trials=20, seed=2019, cache=cache,
    )

    def rerun():
        return execute(
            "qutrit_tree", backend="trajectory", noise_model=SC,
            sweep=SWEEP, trials=20, seed=2019, cache=cache,
        )

    results = benchmark(rerun)
    assert cache.stats.hits >= len(results)
    for cached, fresh in zip(results, serial_sweep):
        assert cached.mean_fidelity == fresh.mean_fidelity


def test_pipeline_matches_inline_decomposition():
    plain = build_toffoli("qutrit_tree", 6, decompose=False).circuit
    compiled = lowering_pipeline().compile(plain)
    inline = build_toffoli("qutrit_tree", 6).circuit
    assert circuit_fingerprint(compiled.circuit) == circuit_fingerprint(
        inline
    )
