"""Figure 11: mean fidelity of each circuit under each noise model.

The paper simulates the 14-input (13 controls + target) Generalized
Toffoli, 1000+ trajectories per bar, 16 bars: {QUBIT, QUBIT+ANCILLA,
QUTRIT} x {SC, SC+T1, SC+GATES, SC+T1+GATES} plus the trapped-ion bars
(QUBIT and QUBIT+ANCILLA under TI_QUBIT, QUTRIT under BARE_QUTRIT and
DRESSED_QUTRIT).

Default configuration is scaled down (width/trials fixtures in
conftest.py); REPRO_FULL=1 restores the paper's size.  The reproduction
targets the *shape*: QUTRIT far above QUBIT everywhere, QUBIT+ANCILLA in
between, trapped-ion qutrits >= 90%, and fidelity improving with each
hardware upgrade.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    fig11_fidelity_data,
    render_fidelity_bars,
)
from repro.noise.presets import (
    BARE_QUTRIT,
    DRESSED_QUTRIT,
    SC,
    SC_GATES,
    SC_T1,
    SC_T1_GATES,
    TI_QUBIT,
)

SC_MODELS = (SC, SC_T1, SC_GATES, SC_T1_GATES)

ALL_PAIRS = (
    [("QUBIT", model) for model in SC_MODELS]
    + [("QUBIT+ANCILLA", model) for model in SC_MODELS]
    + [("QUTRIT", model) for model in SC_MODELS]
    + [
        ("QUBIT", TI_QUBIT),
        ("QUBIT+ANCILLA", TI_QUBIT),
        ("QUTRIT", BARE_QUTRIT),
        ("QUTRIT", DRESSED_QUTRIT),
    ]
)


@pytest.fixture(scope="module")
def fig11_points(fig11_width, fig11_trials):
    return fig11_fidelity_data(
        ALL_PAIRS, num_controls=fig11_width, trials=fig11_trials
    )


def _lookup(points, circuit, model):
    for point in points:
        if (
            point.circuit_label == circuit
            and point.noise_model == model.name
        ):
            return point.estimate.mean_fidelity
    raise KeyError((circuit, model.name))


def test_fig11_all_sixteen_bars(benchmark, fig11_points):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        "Figure 11 reproduction: mean fidelity per circuit / noise model "
        "(paper values measured at 13 controls & 1000+ trials; ours at "
        "the width shown in EXPERIMENTS.md)"
    )
    print(render_fidelity_bars(fig11_points))
    assert len(fig11_points) == 16


def test_fig11_qutrit_beats_qubit_under_every_sc_model(fig11_points):
    for model in SC_MODELS:
        qutrit = _lookup(fig11_points, "QUTRIT", model)
        qubit = _lookup(fig11_points, "QUBIT", model)
        assert qutrit > qubit, f"QUTRIT did not beat QUBIT under {model.name}"


def test_fig11_qutrit_beats_qubit_ancilla(fig11_points):
    wins = sum(
        _lookup(fig11_points, "QUTRIT", model)
        >= _lookup(fig11_points, "QUBIT+ANCILLA", model)
        for model in SC_MODELS
    )
    # Paper: QUTRIT wins all four; statistical noise at reduced trial
    # counts may drop one.
    assert wins >= 3


def test_fig11_hardware_upgrades_help_qutrit(fig11_points):
    base = _lookup(fig11_points, "QUTRIT", SC)
    best = _lookup(fig11_points, "QUTRIT", SC_T1_GATES)
    assert best > base


def test_fig11_trapped_ion_ordering(fig11_points):
    ti_qubit = _lookup(fig11_points, "QUBIT", TI_QUBIT)
    bare = _lookup(fig11_points, "QUTRIT", BARE_QUTRIT)
    dressed = _lookup(fig11_points, "QUTRIT", DRESSED_QUTRIT)
    assert dressed > ti_qubit
    assert bare > ti_qubit
    assert dressed >= bare - 0.02  # paper: 96.1% vs 94.9%


def test_fig11_trapped_ion_qutrits_above_ninety_percent(fig11_points):
    assert _lookup(fig11_points, "QUTRIT", DRESSED_QUTRIT) > 0.9
    assert _lookup(fig11_points, "QUTRIT", BARE_QUTRIT) > 0.9
