"""Section 5.3 supplement: incrementer depth vs the qubit baseline.

The paper claims O(log^2 N) ancilla-free depth against linear-with-big-
constants or quadratic qubit alternatives; this bench regenerates the
scaling comparison.
"""

from __future__ import annotations

import pytest

from repro.analysis.scaling import best_fit
from repro.apps.incrementer import (
    qubit_ripple_incrementer_ops,
    qutrit_incrementer_circuit,
)
from repro.circuits.circuit import Circuit
from repro.qudits import qubits

WIDTHS = (8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def qutrit_depths():
    return [qutrit_incrementer_circuit(w)[0].depth for w in WIDTHS]


@pytest.fixture(scope="module")
def qubit_depths():
    return [
        Circuit(qubit_ripple_incrementer_ops(qubits(w))).depth
        for w in (8, 16, 32)  # quadratic growth: keep the sweep short
    ]


def test_incrementer_depth_sweep(benchmark, qutrit_depths, qubit_depths):
    benchmark.pedantic(
        qutrit_incrementer_circuit, args=(32,), rounds=1, iterations=1
    )
    print()
    print("Incrementer depth (Sec. 5.3): qutrit log^2 vs qubit ripple")
    print(f"{'width':>6s} {'qutrit depth':>13s} {'qubit ripple':>13s}")
    for i, width in enumerate(WIDTHS):
        ripple = str(qubit_depths[i]) if i < len(qubit_depths) else "-"
        print(f"{width:6d} {qutrit_depths[i]:13d} {ripple:>13s}")


def test_qutrit_incrementer_is_polylog(qutrit_depths):
    fit = best_fit(
        list(WIDTHS),
        qutrit_depths,
        candidates=["log2(N)", "log2(N)^2", "N"],
    )
    print(f"\nqutrit incrementer depth fit: {fit}")
    # Depth at width 2^k is exactly quadratic in k = log2 N: its second
    # differences in k are a positive constant.  (A pure coefficient fit
    # is ambiguous over a finite window because of the linear-in-k term.)
    first = [b - a for a, b in zip(qutrit_depths, qutrit_depths[1:])]
    second = [b - a for a, b in zip(first, first[1:])]
    assert len(set(second)) == 1 and second[0] > 0


def test_qubit_ripple_is_superlinear(qubit_depths):
    fit = best_fit(
        [8, 16, 32], qubit_depths, candidates=["N", "N^2", "N*log2(N)"]
    )
    print(f"\nqubit ripple incrementer depth fit: {fit}")
    assert fit.model in ("N^2", "N*log2(N)")


def test_qutrit_wins_at_every_width(qutrit_depths, qubit_depths):
    for i in range(len(qubit_depths)):
        assert qutrit_depths[i] < qubit_depths[i]
