"""Section 6.2: simulator efficiency claims.

* Random-state generation is O(d^N) (one Gaussian column), not a truncated
  d^N x d^N Haar unitary.
* Gates are applied by tensor contraction on the touched axes only; no
  d^N x d^N moment matrices are ever formed.
* The classical simulator verifies permutation circuits in linear time,
  which is what made the paper's exhaustive width-14 verification feasible.
"""

from __future__ import annotations

import time

import numpy as np

from repro.linalg import random_state_vector
from repro.qudits import qutrits
from repro.sim.classical import ClassicalSimulator
from repro.sim.state import StateVector
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.spec import GeneralizedToffoli


def test_random_state_generation_speed(benchmark):
    # 3^14 amplitudes — the paper's 77 MB state — in milliseconds.
    rng = np.random.default_rng(0)
    state = benchmark(lambda: random_state_vector(3**14, rng))
    assert state.shape == (3**14,)
    assert np.isclose(np.linalg.norm(state), 1.0)


def test_gate_application_avoids_dense_matrices(benchmark):
    # Applying a two-qutrit gate to a 12-qutrit state touches 9 x 3^12
    # amplitudes; a dense-moment approach would build 3^12 x 3^12.
    wires = qutrits(12)
    state = StateVector.random(wires, np.random.default_rng(1))
    from repro.gates.controlled import ControlledGate
    from repro.gates.qutrit import X_PLUS_1

    op = ControlledGate(X_PLUS_1, (3,), (1,)).on(wires[0], wires[6])

    def apply():
        state.apply_operation(op)
        return state

    benchmark(apply)
    assert np.isclose(state.norm(), 1.0, atol=1e-6)


def test_classical_verification_scales_linearly(benchmark):
    # One classical input through the width-21 tree: linear work.
    result = build_qutrit_tree(GeneralizedToffoli(20), decompose=False)
    wires = result.controls + [result.target]
    sim = ClassicalSimulator()
    values = tuple([1] * 20 + [0])

    out = benchmark(lambda: sim.run_values(result.circuit, wires, values))
    assert out == tuple([1] * 20 + [1])


def test_classical_vs_statevector_verification_speed():
    # The paper's point: classical verification is dramatically cheaper
    # than state-vector simulation for permutation circuits.
    result = build_qutrit_tree(GeneralizedToffoli(9), decompose=False)
    wires = result.controls + [result.target]
    values = tuple([1] * 9 + [0])

    sim = ClassicalSimulator()
    start = time.perf_counter()
    for _ in range(20):
        sim.run_values(result.circuit, wires, values)
    classical_time = time.perf_counter() - start

    from repro.sim.statevector import StateVectorSimulator

    sv = StateVectorSimulator()
    start = time.perf_counter()
    sv.run_basis(result.circuit, wires, values)
    statevector_time = time.perf_counter() - start

    print()
    print(
        f"verification of one width-10 input: classical "
        f"{classical_time / 20 * 1e3:.2f} ms vs state-vector "
        f"{statevector_time * 1e3:.1f} ms"
    )
    assert classical_time / 20 < statevector_time
