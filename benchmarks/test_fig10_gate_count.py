"""Figure 10: two-qudit gate counts vs N.

Paper's reported fits: ~397 N (QUBIT), ~48 N (QUBIT+ANCILLA), ~6 N
(QUTRIT) — i.e. a ~70x gap between QUTRIT and the ancilla-free qubit
equivalent, and ~8x between the two qubit circuits.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    PAPER_COUNT_FITS,
    fig10_gate_count_data,
    render_series_table,
)
from repro.analysis.scaling import best_fit


@pytest.fixture(scope="module")
def count_data(sweep_ns):
    return fig10_gate_count_data(sweep_ns)


def test_fig10_gate_count_sweep(benchmark, sweep_ns):
    data = benchmark.pedantic(
        fig10_gate_count_data, args=(sweep_ns,), rounds=1, iterations=1
    )
    print()
    print("Figure 10 reproduction: two-qudit gate counts")
    print(
        render_series_table(sweep_ns, data, PAPER_COUNT_FITS, "2q gates")
    )


def test_fig10_qutrit_count_is_linear_small_constant(count_data, sweep_ns):
    fit = best_fit(sweep_ns, count_data["QUTRIT"], candidates=["N"])
    print(f"\nQUTRIT measured 2q count {fit} (paper: ~6 N)")
    # Paper: 6N with the Di-Wei 6-gate CC decomposition; ours uses a
    # 7-gate decomposition, so expect ~7N.
    assert 3 <= fit.coefficient <= 9


def test_fig10_qubit_ancilla_count_near_48n(count_data, sweep_ns):
    fit = best_fit(
        sweep_ns, count_data["QUBIT+ANCILLA"], candidates=["N"]
    )
    print(f"\nQUBIT+ANCILLA measured 2q count {fit} (paper: ~48 N)")
    assert 30 <= fit.coefficient <= 60


def test_fig10_gap_between_qutrit_and_qubit(count_data, sweep_ns):
    # Paper: ~70x at any N.  With the substituted QUBIT construction the
    # gap grows with N; it must be large everywhere in the sweep.
    for i, n in enumerate(sweep_ns):
        ratio = count_data["QUBIT"][i] / count_data["QUTRIT"][i]
        assert ratio > 10, f"QUBIT/QUTRIT ratio only {ratio:.1f} at N={n}"
    mid = len(sweep_ns) // 2
    ratio_mid = count_data["QUBIT"][mid] / count_data["QUTRIT"][mid]
    print(
        f"\nQUBIT / QUTRIT two-qudit gate ratio at N={sweep_ns[mid]}: "
        f"{ratio_mid:.0f}x (paper: ~70x at all N; ours grows with N "
        f"due to the substituted quadratic QUBIT construction)"
    )


def test_fig10_ancilla_gain_close_to_8x(count_data, sweep_ns):
    # Paper: 397/48 ~ 8.3x gain from one borrowed ancilla.  Measured at
    # the largest N in the sweep (the substitution inflates this with N).
    i = len(sweep_ns) - 1
    ratio = count_data["QUBIT"][i] / count_data["QUBIT+ANCILLA"][i]
    print(f"\nQUBIT / QUBIT+ANCILLA ratio at N={sweep_ns[i]}: {ratio:.1f}x")
    assert ratio > 3
