"""Section 5.1: the artificial quantum neuron.

Checks the quadratic perceptron activation against the classical value and
reports the ancilla-free circuit's size (the paper's argument: the qutrit
tree removes the ancilla that capped hosted neurons at N = 4 data qubits).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.neuron import QuantumNeuron

WEIGHTS_3 = [1, -1, 1, 1, -1, 1, -1, -1]


@pytest.fixture(scope="module")
def neuron():
    return QuantumNeuron(3, WEIGHTS_3)


def test_neuron_activation(benchmark, neuron):
    probability = benchmark.pedantic(
        neuron.activation_probability, args=(WEIGHTS_3,), rounds=1,
        iterations=1,
    )
    print()
    print(
        f"neuron (m=8) self-activation: {probability:.4f} (expected 1.0)"
    )
    assert np.isclose(probability, 1.0, atol=1e-7)


def test_neuron_matches_classical_dot_product(neuron):
    rng = np.random.default_rng(5)
    print()
    print("neuron activation vs classical (w.i/m)^2:")
    for _ in range(5):
        signs = [int(s) for s in rng.choice([-1, 1], size=8)]
        quantum = neuron.activation_probability(signs)
        classical = neuron.classical_activation(signs)
        print(f"  input {signs}: quantum={quantum:.4f} classical={classical:.4f}")
        assert np.isclose(quantum, classical, atol=1e-7)


def test_neuron_is_ancilla_free_on_qutrits(neuron):
    circuit = neuron.build_circuit(WEIGHTS_3)
    wires = set(circuit.all_qudits())
    assert wires <= set(neuron.register + [neuron.output])
    print()
    print(
        f"neuron circuit: {len(wires)} wires (register + output, "
        f"no ancilla), depth {circuit.depth}, "
        f"{circuit.two_qudit_gate_count} two-qudit gates"
    )


def test_neuron_qubit_construction_needs_no_more_data_wires():
    qubit_neuron = QuantumNeuron(3, WEIGHTS_3, construction="qubit_cascade")
    quantum = qubit_neuron.activation_probability(WEIGHTS_3)
    assert np.isclose(quantum, 1.0, atol=1e-6)
