"""Table 1: asymptotic comparison of all six decompositions.

The paper's table lists depth class, ancilla count and qudit types per
construction; this bench regenerates those from measured circuits and
asserts each construction lands in its published complexity class.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import sweep_constructions
from repro.analysis.scaling import best_fit
from repro.analysis.tables import render_table1

SWEEP_NS = (8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def sweeps():
    return sweep_constructions(control_counts=SWEEP_NS)


def test_table1_render(benchmark):
    text = benchmark.pedantic(
        render_table1, args=(SWEEP_NS,), rounds=1, iterations=1
    )
    print()
    print(text)


def test_table1_qutrit_tree_log_depth_zero_ancilla(sweeps):
    metrics = sweeps["qutrit_tree"]
    fit = best_fit(SWEEP_NS, [m.depth for m in metrics])
    assert fit.model in ("log2(N)", "log2(N)^2")
    assert all(m.ancilla == 0 for m in metrics)


def test_table1_he_tree_log_depth_linear_ancilla(sweeps):
    metrics = sweeps["he_tree"]
    fit = best_fit(SWEEP_NS, [m.depth for m in metrics])
    assert fit.model in ("log2(N)", "log2(N)^2")
    assert [m.clean_ancilla for m in metrics] == [n - 1 for n in SWEEP_NS]


def test_table1_wang_chain_linear_no_ancilla(sweeps):
    metrics = sweeps["wang_chain"]
    fit = best_fit(SWEEP_NS, [m.depth for m in metrics])
    assert fit.model == "N"
    assert all(m.ancilla == 0 for m in metrics)


def test_table1_lanyon_linear_qudit_target(sweeps):
    metrics = sweeps["lanyon_target"]
    fit = best_fit(SWEEP_NS, [m.depth for m in metrics])
    assert fit.model == "N"
    assert all(m.ancilla == 0 for m in metrics)


def test_table1_one_dirty_linear_one_ancilla(sweeps):
    metrics = sweeps["qubit_one_dirty"]
    fit = best_fit(
        SWEEP_NS, [m.depth for m in metrics], candidates=["N", "N^2"]
    )
    assert fit.model == "N"
    assert all(m.borrowed_ancilla == 1 for m in metrics)


def test_table1_ancilla_free_qubit_superlinear_zero_ancilla(sweeps):
    # The substituted QUBIT construction is quadratic (paper's Gidney is
    # linear with huge constants; Barenco's zero-ancilla row is N^2).
    metrics = sweeps["qubit_ancilla_free"]
    fit = best_fit(
        SWEEP_NS,
        [m.depth for m in metrics],
        candidates=["N", "N*log2(N)", "N^2"],
    )
    assert fit.model in ("N*log2(N)", "N^2")
    assert all(m.ancilla == 0 for m in metrics)


def test_table1_depth_hierarchy_at_n128(sweeps):
    depth = {
        name: metrics[-1].depth for name, metrics in sweeps.items()
    }
    assert depth["qutrit_tree"] < depth["he_tree"]
    assert depth["he_tree"] < depth["wang_chain"]
    assert depth["wang_chain"] < depth["qubit_one_dirty"]
    assert depth["qubit_one_dirty"] < depth["qubit_ancilla_free"]
