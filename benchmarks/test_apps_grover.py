"""Section 5.2: Grover search built on the qutrit multi-controlled Z.

Regenerates the success-probability profile and the depth advantage of the
qutrit oracle decomposition over the ancilla-free qubit one.
"""

from __future__ import annotations

import pytest

from repro.apps.grover import GroverSearch


@pytest.fixture(scope="module")
def searches():
    return {
        "qutrit": GroverSearch(4, marked=11),
        "qubit": GroverSearch(4, marked=11, construction="qubit_cascade"),
    }


def test_grover_success_probability(benchmark, searches):
    probability = benchmark.pedantic(
        searches["qutrit"].success_probability, rounds=1, iterations=1
    )
    print()
    print(
        f"Grover (M=16, qutrit oracle): success probability "
        f"{probability:.3f} after "
        f"{searches['qutrit'].optimal_iterations()} iterations"
    )
    assert probability > 0.9


def test_grover_iteration_profile(searches):
    print()
    print("Grover success vs iterations (M=16, marked=11):")
    for k in range(5):
        p = searches["qutrit"].success_probability(k)
        print(f"  {k} iterations: {p:.3f}")
    assert searches["qutrit"].success_probability(3) > 0.9


def test_grover_oracle_depth_advantage(searches):
    qutrit_depth = searches["qutrit"].build_circuit(1).depth
    qubit_depth = searches["qubit"].build_circuit(1).depth
    print()
    print(
        f"one Grover iteration depth: qutrit={qutrit_depth}, "
        f"ancilla-free qubit={qubit_depth}"
    )
    assert qutrit_depth < qubit_depth


def test_grover_constructions_agree(searches):
    p_qutrit = searches["qutrit"].success_probability()
    p_qubit = searches["qubit"].success_probability()
    assert abs(p_qutrit - p_qubit) < 1e-6
