"""Ablation benches for the design choices DESIGN.md calls out.

1. Error-source attribution (Sec. 9's discussion): rerun the Figure 11
   point with gate errors only and with idle errors only.  On
   superconducting models the paper attributes the qutrit circuit's edge
   largely to *idle* error reduction (shallower circuits idle less);
   the ablation makes that split measurable.
2. Decomposition granularity: the three-qutrit tree gates cost 7 two-qudit
   gates here vs the paper's cited 6+7 Di-Wei decomposition — compare
   tree metrics at both granularities to bound what the choice costs.
3. Dirty-ancilla strategy: ladder vs four-way split for the same C^kX,
   quantifying why `mcx_auto` prefers ladders whenever wires allow.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.noise.presets import SC
from repro.qudits import qubits
from repro.sim.fidelity import estimate_circuit_fidelity
from repro.toffoli.dirty_ancilla import mcx_dirty_ladder, mcx_one_dirty
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.registry import build_toffoli
from repro.toffoli.spec import GeneralizedToffoli

GATES_ONLY = replace(SC, name="SC/gates-only", t1=None)
IDLE_ONLY = replace(SC, name="SC/idle-only", p1=0.0, p2=0.0)


@pytest.fixture(scope="module")
def tree_result():
    return build_toffoli("qutrit_tree", 8)


def test_error_source_attribution(benchmark, tree_result):
    trials = 30

    def run(model):
        return estimate_circuit_fidelity(
            tree_result.circuit, model, trials=trials, seed=77,
            wires=tree_result.all_wires, circuit_name="QUTRIT",
        )

    full = benchmark.pedantic(run, args=(SC,), rounds=1, iterations=1)
    gates_only = run(GATES_ONLY)
    idle_only = run(IDLE_ONLY)
    print()
    print("error-source ablation (QUTRIT, 8 controls, SC parameters):")
    for estimate in (full, gates_only, idle_only):
        print(f"  {estimate}")
    # Each single-source run must beat the full-noise run.  At 30
    # trials the estimates carry ~0.07 standard errors, so the margin
    # is statistical: two combined standard errors, not a fixed 0.05
    # (which sat inside sampling noise and failed on unlucky seeds).
    def margin(single):
        return 2.0 * math.sqrt(
            full.std_error**2 + single.std_error**2
        )

    assert gates_only.mean_fidelity >= (
        full.mean_fidelity - margin(gates_only)
    )
    assert idle_only.mean_fidelity >= (
        full.mean_fidelity - margin(idle_only)
    )


def test_decomposition_granularity_cost():
    n = 32
    lowered = build_qutrit_tree(GeneralizedToffoli(n))
    logical = build_qutrit_tree(GeneralizedToffoli(n), decompose=False)
    ratio = (
        lowered.circuit.two_qudit_gate_count
        / logical.circuit.num_operations
    )
    print()
    print(
        f"tree at N={n}: {logical.circuit.num_operations} three-qutrit "
        f"gates -> {lowered.circuit.two_qudit_gate_count} two-qudit gates "
        f"({ratio:.2f} per gate; Di-Wei's cited decomposition costs 6)"
    )
    # Our cube-root decomposition spends 7 two-qudit gates per CC gate
    # (the root apply costs 1), so the ratio sits just under 7.
    assert 6 <= ratio <= 7.2


def test_dirty_ancilla_strategy(benchmark):
    k = 12
    wires = qubits(2 * k)
    controls, target = wires[:k], wires[k]

    def build_ladder():
        return mcx_dirty_ladder(
            controls, target, wires[k + 1 :], decompose=True
        )

    ladder_ops = benchmark.pedantic(build_ladder, rounds=1, iterations=1)
    split_ops = mcx_one_dirty(controls, target, wires[k + 1], decompose=True)
    ladder_2q = sum(1 for op in ladder_ops if op.num_qudits == 2)
    split_2q = sum(1 for op in split_ops if op.num_qudits == 2)
    print()
    print(
        f"C^{k}X with dirty wires: ladder {ladder_2q} two-qubit gates "
        f"(needs {k - 2} borrowed) vs four-way split {split_2q} "
        f"(needs 1 borrowed)"
    )
    assert ladder_2q < split_2q
