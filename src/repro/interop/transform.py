"""Gate- and circuit-level dimension transforms, and the compile passes.

Lifting is structure-preserving: a :class:`ControlledGate` lifts to a
:class:`ControlledGate` over lifted sub-gates (so the qutrit cascade
decomposition still recognises it downstream — that is where temporary
ternary wins), and everything else wraps in an
:class:`~repro.gates.embedded.EmbeddedGate` that retains its sub-gate.
Lowering is the inverse: unwrap embeddings, recurse through controls,
and for anything opaque extract the qubit-subspace block of the unitary
— raising a typed :class:`~repro.exceptions.InteropError` when the
block is not unitary, i.e. when the gate leaks population out of the
subspace and the |2> occupation is *not* transient at that gate.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import InteropError, NotClassicalError
from ..execution.passes import CompilePass, transform_operations
from ..gates.base import (
    Gate,
    PermutationGate,
    index_to_values,
    values_to_index,
)
from ..gates.controlled import ControlledGate
from ..gates.embedded import EmbeddedGate
from ..gates.matrix import MatrixGate
from ..qudits import QUBIT_D, Qudit

__all__ = [
    "lift_gate",
    "lower_gate",
    "lift_circuit",
    "lower_circuit",
    "LiftToQutrits",
    "LowerToQubits",
]


def lift_gate(gate: Gate, new_dims: "tuple[int, ...]") -> Gate:
    """Embed ``gate`` into (elementwise no smaller) ``new_dims``.

    Controlled gates lift *through* their structure: controls keep their
    activation values on the enlarged wires (an added level never
    matches, so it behaves as the block-diagonal embedding requires) and
    the sub-gate lifts recursively.  This keeps the lifted gate visible
    to the multi-control decomposition rules — the temporary-ternary
    cascade fires on a lifted Toffoli exactly as on a native one.
    """
    new_dims = tuple(int(d) for d in new_dims)
    if new_dims == gate.dims:
        return gate
    if len(new_dims) != gate.num_qudits or any(
        n < o for n, o in zip(new_dims, gate.dims)
    ):
        raise InteropError(
            f"cannot lift {gate.name} from dims {gate.dims} to {new_dims}"
        )
    if isinstance(gate, ControlledGate):
        n = gate.num_controls
        sub = gate.sub_gate
        lifted_sub = (
            sub if sub.dims == new_dims[n:] else lift_gate(sub, new_dims[n:])
        )
        return ControlledGate(lifted_sub, new_dims[:n], gate.control_values)
    if isinstance(gate, EmbeddedGate):
        return EmbeddedGate(gate.sub_gate, new_dims)
    return EmbeddedGate(gate, new_dims)


def _project_gate(
    gate: Gate, new_dims: tuple[int, ...], atol: float
) -> Gate:
    """Extract the ``new_dims`` sub-block of an opaque gate's action."""
    new_total = 1
    for d in new_dims:
        new_total *= d
    embed = [
        values_to_index(index_to_values(k, new_dims), gate.dims)
        for k in range(new_total)
    ]
    try:
        table = gate.permutation()
    except NotClassicalError:
        table = None
    if table is not None:
        position = {index: k for k, index in enumerate(embed)}
        mapping = []
        for k, index in enumerate(embed):
            image = table[index]
            if image not in position:
                raise InteropError(
                    f"gate {gate.name} maps subspace state "
                    f"{index_to_values(index, gate.dims)} to "
                    f"{index_to_values(image, gate.dims)} — the elevated "
                    "population is not transient at this gate"
                )
            mapping.append(position[image])
        return PermutationGate(
            mapping, new_dims, f"{gate.name}|{new_dims}"
        )
    unitary = gate.unitary()
    block = unitary[np.ix_(embed, embed)]
    if not np.allclose(
        block.conj().T @ block, np.eye(new_total), atol=max(atol, 1e-7)
    ):
        raise InteropError(
            f"gate {gate.name} couples the qubit subspace to the added "
            "levels — the elevated population is not transient at this "
            "gate, so it cannot be lowered gate-by-gate"
        )
    return MatrixGate(block, new_dims, name=f"{gate.name}|{new_dims}")


def lower_gate(
    gate: Gate, new_dims: "tuple[int, ...]", atol: float = 1e-9
) -> Gate | None:
    """Restrict ``gate`` to (elementwise no larger) ``new_dims``.

    Returns ``None`` when the restricted action is structurally the
    identity — a control activating on a removed level can never fire in
    the subspace, so the operation is dropped by the lowering pass.
    Raises :class:`InteropError` when the gate's action leaks out of the
    subspace (checked exactly for classical gates, to ``atol`` against
    block unitarity otherwise).
    """
    new_dims = tuple(int(d) for d in new_dims)
    if new_dims == gate.dims:
        return gate
    if len(new_dims) != gate.num_qudits or any(
        n > o for n, o in zip(new_dims, gate.dims)
    ):
        raise InteropError(
            f"cannot lower {gate.name} from dims {gate.dims} to {new_dims}"
        )
    if isinstance(gate, EmbeddedGate):
        sub = gate.sub_gate
        if sub.dims == new_dims:
            return sub
        if all(s <= n for s, n in zip(sub.dims, new_dims)):
            return EmbeddedGate(sub, new_dims)
        return _project_gate(gate, new_dims, atol)
    if isinstance(gate, ControlledGate):
        n = gate.num_controls
        values = gate.control_values
        if any(v >= d for v, d in zip(values, new_dims[:n])):
            return None
        sub = lower_gate(gate.sub_gate, new_dims[n:], atol)
        if sub is None:
            return None
        return ControlledGate(sub, new_dims[:n], values)
    return _project_gate(gate, new_dims, atol)


class LiftToQutrits(CompilePass):
    """Re-host every qubit wire on a d >= 3 wire, lifting the gate catalog.

    Supersedes the wire-only ``PromoteQubitsToQutrits``: any gate —
    registered, structural, controlled, or hand-built — is translated
    through the embedding layer, and the pass *verifies* its own output
    (no qubit-dimensioned wire may survive where promotion was
    requested), raising :class:`InteropError` instead of ever emitting a
    dim-mismatched circuit.
    """

    def __init__(self, dim: int = 3) -> None:
        if dim < 3:
            raise ValueError("lift target dimension must be >= 3")
        self._dim = dim

    @property
    def dim(self) -> int:
        """Target wire dimension."""
        return self._dim

    def transform(self, circuit: Circuit) -> Circuit:
        occupied = set(circuit.all_qudits())
        mapping: dict[Qudit, Qudit] = {}
        for wire in circuit.all_qudits():
            if wire.dimension != QUBIT_D:
                continue
            lifted = Qudit(wire.index, self._dim)
            if lifted in occupied:
                raise InteropError(
                    f"cannot lift {wire}: wire {lifted} already exists"
                )
            mapping[wire] = lifted
        lifted_gates = 0

        def lift_op(op: GateOperation) -> list[GateOperation]:
            nonlocal lifted_gates
            if not any(w in mapping for w in op.qudits):
                return [op]
            new_wires = tuple(mapping.get(w, w) for w in op.qudits)
            new_dims = tuple(w.dimension for w in new_wires)
            lifted_gates += 1
            return [lift_gate(op.gate, new_dims).on(*new_wires)]

        lifted_circuit = transform_operations(circuit, lift_op)
        leftover = set(lifted_circuit.all_qudits()) & set(mapping)
        if leftover:
            raise InteropError(
                f"lift left qubit-dimensioned wires {sorted(leftover)} in "
                "the output circuit"
            )
        self.last_metadata = {
            "lifted_wires": len(mapping),
            "lifted_gates": lifted_gates,
            "target_dimension": self._dim,
        }
        return lifted_circuit


class LowerToQubits(CompilePass):
    """Project a lifted circuit back onto qubit wires.

    Every wire of dimension > 2 becomes a qubit with the same index, and
    every gate is restricted to the qubit subspace: embeddings unwrap to
    their sub-gates, controls recurse (controls activating on removed
    levels drop — they can never fire), and opaque gates lower through
    their subspace block.  A gate whose action couples the subspace to
    the added levels raises :class:`InteropError` — the pass's proof
    obligation that the |2> population is transient at every gate.

    ``verify=True`` additionally checks the lowered circuit against the
    input with the subspace equivalence oracle
    (:func:`repro.interop.subspace_equivalent`).
    """

    def __init__(self, atol: float = 1e-9, verify: bool = False) -> None:
        self._atol = float(atol)
        self._verify = bool(verify)

    def transform(self, circuit: Circuit) -> Circuit:
        occupied = set(circuit.all_qudits())
        mapping: dict[Qudit, Qudit] = {}
        for wire in circuit.all_qudits():
            if wire.dimension <= QUBIT_D:
                continue
            lowered = Qudit(wire.index, QUBIT_D)
            if lowered in occupied:
                raise InteropError(
                    f"cannot lower {wire}: wire {lowered} already exists"
                )
            mapping[wire] = lowered
        counts = {"unwrapped": 0, "projected": 0, "dropped": 0}

        def lower_op(op: GateOperation) -> list[GateOperation]:
            if not any(w in mapping for w in op.qudits):
                return [op]
            new_wires = tuple(mapping.get(w, w) for w in op.qudits)
            new_dims = tuple(w.dimension for w in new_wires)
            gate = lower_gate(op.gate, new_dims, atol=self._atol)
            if gate is None:
                counts["dropped"] += 1
                return []
            if isinstance(op.gate, (EmbeddedGate, ControlledGate)):
                counts["unwrapped"] += 1
            else:
                counts["projected"] += 1
            return [gate.on(*new_wires)]

        lowered_circuit = transform_operations(circuit, lower_op)
        metadata = {
            "lowered_wires": len(mapping),
            **counts,
        }
        if self._verify:
            from .verify import assert_subspace_equivalent

            metadata["verified"] = assert_subspace_equivalent(
                lowered_circuit, circuit, context="LowerToQubits"
            )
        self.last_metadata = metadata
        return lowered_circuit


def lift_circuit(circuit: Circuit, dim: int = 3) -> Circuit:
    """Functional form of :class:`LiftToQutrits`."""
    return LiftToQutrits(dim).transform(circuit)


def lower_circuit(
    circuit: Circuit, atol: float = 1e-9, verify: bool = False
) -> Circuit:
    """Functional form of :class:`LowerToQubits`."""
    return LowerToQubits(atol=atol, verify=verify).transform(circuit)
