"""Parametric qubit-circuit factories for the interop benchmark.

These are the paper's Sec. V benchmark families, expressed as plain
qubit circuits — the *input* of the dimension-transform front end, not
qutrit constructions.  Each factory is deterministic in its parameters
(the random family takes an explicit seed), so benchmark rows are
reproducible byte-for-byte.

* :func:`qft_circuit` — quantum Fourier transform: Hadamards, a
  triangle of controlled phases, and the final wire-reversal swaps.
* :func:`ripple_carry_adder` — the Cuccaro in-place majority/unmajority
  adder on ``2n + 2`` wires (Toffoli + CNOT only, so it stays inside
  the classical oracle's reach at any width).
* :func:`random_clifford_t` — seeded random circuit over
  {H, S, T, CNOT}.
* :func:`grover_circuit` — Grover iterations marking ``|1...1>`` with a
  multi-controlled-Z oracle (up to two controls, the widest primitive
  the decomposition layer accepts).
"""

from __future__ import annotations

import math

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import InteropError
from ..gates.controlled import ControlledGate
from ..gates.qubit import CNOT, H, P, S, SWAP, T, TOFFOLI, X, Z
from ..qudits import QUBIT_D, Qudit

__all__ = [
    "qft_circuit",
    "ripple_carry_adder",
    "random_clifford_t",
    "grover_circuit",
    "WORKLOADS",
    "build_workload",
]


def _qubits(n: int) -> list[Qudit]:
    return [Qudit(i, QUBIT_D) for i in range(n)]


def qft_circuit(n: int) -> Circuit:
    """Quantum Fourier transform on ``n`` qubits, swaps included."""
    if n < 1:
        raise ValueError("QFT needs at least one qubit")
    wires = _qubits(n)
    ops: list[GateOperation] = []
    for i in range(n):
        ops.append(H.on(wires[i]))
        for j in range(i + 1, n):
            theta = math.pi / (2 ** (j - i))
            cp = ControlledGate(P(theta), (QUBIT_D,))
            ops.append(cp.on(wires[j], wires[i]))
    for k in range(n // 2):
        ops.append(SWAP.on(wires[k], wires[n - 1 - k]))
    return Circuit(ops)


def ripple_carry_adder(n: int) -> Circuit:
    """Cuccaro ripple-carry adder: ``b <- a + b (mod 2^n)`` plus carry.

    Wire layout (``2n + 2`` wires): carry-in, then alternating
    ``b[k], a[k]`` pairs, then the carry-out.  Toffoli + CNOT only.
    """
    if n < 1:
        raise ValueError("adder needs at least one bit per register")
    wires = _qubits(2 * n + 2)
    carry_in = wires[0]
    b = [wires[1 + 2 * k] for k in range(n)]
    a = [wires[2 + 2 * k] for k in range(n)]
    carry_out = wires[2 * n + 1]

    def maj(x: Qudit, y: Qudit, z: Qudit) -> list[GateOperation]:
        return [CNOT.on(z, y), CNOT.on(z, x), TOFFOLI.on(x, y, z)]

    def uma(x: Qudit, y: Qudit, z: Qudit) -> list[GateOperation]:
        return [TOFFOLI.on(x, y, z), CNOT.on(z, x), CNOT.on(x, y)]

    ops: list[GateOperation] = []
    chain = [carry_in] + a
    for k in range(n):
        ops.extend(maj(chain[k], b[k], chain[k + 1]))
    ops.append(CNOT.on(chain[n], carry_out))
    for k in reversed(range(n)):
        ops.extend(uma(chain[k], b[k], chain[k + 1]))
    return Circuit(ops)


def random_clifford_t(
    n: int, depth: int = 20, seed: int = 0
) -> Circuit:
    """Seeded random circuit over {H, S, T, CNOT} on ``n`` qubits."""
    if n < 2:
        raise ValueError("random Clifford+T needs at least two qubits")
    rng = np.random.default_rng(seed)
    wires = _qubits(n)
    singles = (H, S, T)
    ops: list[GateOperation] = []
    for _ in range(depth):
        if rng.random() < 0.5:
            gate = singles[int(rng.integers(len(singles)))]
            ops.append(gate.on(wires[int(rng.integers(n))]))
        else:
            i, j = rng.choice(n, size=2, replace=False)
            ops.append(CNOT.on(wires[int(i)], wires[int(j)]))
    return Circuit(ops)


def grover_circuit(n: int, iterations: int = 1) -> Circuit:
    """Grover search for ``|1...1>`` on ``n`` qubits (``2 <= n <= 3``).

    The oracle and diffuser use an ``(n-1)``-controlled Z; the
    decomposition layer lowers at most two controls, hence the width
    cap — wider searches belong to the PR 3/PR 5 ancilla constructions,
    not this front end.
    """
    if not 2 <= n <= 3:
        raise InteropError(
            "grover workload supports 2 or 3 qubits (the oracle is an "
            f"(n-1)-controlled Z), got n={n}"
        )
    wires = _qubits(n)
    mcz = ControlledGate(Z, (QUBIT_D,) * (n - 1))
    ops: list[GateOperation] = [H.on(w) for w in wires]
    for _ in range(max(1, int(iterations))):
        ops.append(mcz.on(*wires))
        ops.extend(H.on(w) for w in wires)
        ops.extend(X.on(w) for w in wires)
        ops.append(mcz.on(*wires))
        ops.extend(X.on(w) for w in wires)
        ops.extend(H.on(w) for w in wires)
    return Circuit(ops)


#: Name -> factory registry used by the benchmark and the CLI.
WORKLOADS = {
    "qft": qft_circuit,
    "adder": ripple_carry_adder,
    "clifford_t": random_clifford_t,
    "grover": grover_circuit,
}


def build_workload(name: str, **params) -> Circuit:
    """Build a registered workload by name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise InteropError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return factory(**params)
