"""Compilation of qubit circuits to the CNOT + single-qubit native set.

This defines the *naive lift* baseline of the interop benchmark
(Sec. V of the paper): compile a circuit for a qubit machine first —
CNOT plus arbitrary single-qubit gates, the standard superconducting
contract — then re-host the result wire-by-wire on the qutrit device.
Temporary ternary instead lifts *before* decomposing, so multi-control
structure survives to the qutrit cascade; the gap between the two paths
is the paper's claim, and this module makes the baseline honest:

* Toffoli lowers through the textbook 6-CNOT network;
* generic two-controlled U goes through Barenco's 5-gate form, whose
  controlled square roots expand recursively;
* controlled-U lowers via the ZYZ/ABC construction
  ``CU = P(alpha)_c . A_t . CNOT . B_t . CNOT . C_t`` with
  ``A = RZ(beta) RY(gamma/2)``, ``B = RY(-gamma/2) RZ(-(delta+beta)/2)``,
  ``C = RZ((delta-beta)/2)``;
* controlled-phase keeps its cheaper 2-CNOT + 3-phase special case
  (QFT is made of these, so the baseline should not overpay there);
* SWAP becomes 3 CNOTs.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import InteropError
from ..execution.passes import CompilePass, transform_operations
from ..gates.base import Gate
from ..gates.controlled import ControlledGate
from ..gates.decompositions import (
    toffoli_to_cnots,
    two_controlled_qubit_u,
)
from ..gates.matrix import MatrixGate
from ..gates.qubit import CNOT, P, SWAP, X
from ..qudits import QUBIT_D, Qudit

__all__ = [
    "zyz_angles",
    "controlled_u_to_qubit_basis",
    "to_qubit_basis",
    "DecomposeToQubitBasis",
]

_ATOL = 1e-10

_X_CANONICAL = X.canonical_spec()
_SWAP_CANONICAL = SWAP.canonical_spec()


def zyz_angles(unitary: np.ndarray) -> tuple[float, float, float, float]:
    """Angles ``(alpha, beta, gamma, delta)`` with
    ``U = e^{i alpha} RZ(beta) RY(gamma) RZ(delta)``."""
    u = np.asarray(unitary, dtype=complex)
    if u.shape != (2, 2):
        raise InteropError(
            f"ZYZ factorisation needs a 2x2 unitary, got shape {u.shape}"
        )
    det = u[0, 0] * u[1, 1] - u[0, 1] * u[1, 0]
    alpha = 0.5 * cmath.phase(det)
    v = u * cmath.exp(-1j * alpha)
    gamma = 2.0 * math.atan2(abs(v[1, 0]), abs(v[0, 0]))
    if abs(v[0, 0]) < _ATOL:
        beta = 2.0 * cmath.phase(v[1, 0])
        delta = 0.0
    elif abs(v[1, 0]) < _ATOL:
        beta = -2.0 * cmath.phase(v[0, 0])
        delta = 0.0
    else:
        plus = -2.0 * cmath.phase(v[0, 0])
        minus = 2.0 * cmath.phase(v[1, 0])
        beta = (plus + minus) / 2.0
        delta = (plus - minus) / 2.0
    return alpha, beta, gamma, delta


def _rz(theta: float) -> np.ndarray:
    return np.diag(
        [cmath.exp(-0.5j * theta), cmath.exp(0.5j * theta)]
    )


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _one_qubit(matrix: np.ndarray, name: str) -> "MatrixGate | None":
    """A named single-qubit gate, or None when it is the identity."""
    if np.allclose(matrix, np.eye(2), atol=_ATOL):
        return None
    return MatrixGate(matrix, (QUBIT_D,), name=name)


def _angle_is_trivial(theta: float) -> bool:
    return abs(cmath.exp(1j * theta) - 1.0) < _ATOL


def _controlled_phase(
    control: Qudit, target: Qudit, theta: float
) -> list[GateOperation]:
    """CP(theta) as 2 CNOTs and 3 phase gates."""
    if _angle_is_trivial(theta):
        return []
    half = theta / 2.0
    return [
        P(half).on(control),
        P(half).on(target),
        CNOT.on(control, target),
        P(-half).on(target),
        CNOT.on(control, target),
    ]


def controlled_u_to_qubit_basis(
    control: Qudit, target: Qudit, sub_gate: Gate
) -> list[GateOperation]:
    """Controlled-U on qubits as CNOTs and single-qubit gates.

    Diagonal U takes the controlled-phase special case (a control-side
    phase plus CP); anything else goes through the ZYZ/ABC form.
    Identity factors are dropped, so e.g. controlled-Z costs the same
    5 operations as a generic controlled-phase.
    """
    phases = sub_gate.diagonal_phases()
    if phases is not None:
        a = cmath.phase(phases[0])
        b = cmath.phase(phases[1])
        ops: list[GateOperation] = []
        if not _angle_is_trivial(a):
            ops.append(P(a).on(control))
        ops.extend(_controlled_phase(control, target, b - a))
        return ops
    alpha, beta, gamma, delta = zyz_angles(sub_gate.unitary())
    label = sub_gate.name
    a_gate = _one_qubit(_rz(beta) @ _ry(gamma / 2.0), f"A[{label}]")
    b_gate = _one_qubit(
        _ry(-gamma / 2.0) @ _rz(-(delta + beta) / 2.0), f"B[{label}]"
    )
    c_gate = _one_qubit(_rz((delta - beta) / 2.0), f"C[{label}]")
    ops = []
    if c_gate is not None:
        ops.append(c_gate.on(target))
    ops.append(CNOT.on(control, target))
    if b_gate is not None:
        ops.append(b_gate.on(target))
    ops.append(CNOT.on(control, target))
    if a_gate is not None:
        ops.append(a_gate.on(target))
    if not _angle_is_trivial(alpha):
        ops.append(P(alpha).on(control))
    return ops


def _x_conjugated(
    wires: list[Qudit], inner: list[GateOperation]
) -> list[GateOperation]:
    flips = [X.on(w) for w in wires]
    return flips + inner + list(reversed(flips))


def to_qubit_basis(op: GateOperation) -> list[GateOperation]:
    """Rewrite one operation into CNOTs and single-qubit gates.

    Raises :class:`InteropError` for operations with no rule — wires of
    dimension above two, gates on three or more wires that are not
    two-controlled, or opaque multi-qubit unitaries (no KAK synthesis
    here; the workload generators never emit one).
    """
    gate = op.gate
    if any(w.dimension != QUBIT_D for w in op.qudits):
        raise InteropError(
            f"qubit-basis compilation saw non-qubit wires in {op}"
        )
    if gate.num_qudits == 1:
        return [op]
    if isinstance(gate, ControlledGate):
        sub = gate.sub_gate
        values = gate.control_values
        controls = list(op.qudits[: gate.num_controls])
        flipped = [w for w, v in zip(controls, values) if v == 0]
        if gate.num_controls == 1:
            control, target = op.qudits
            if sub.canonical_spec() == _X_CANONICAL:
                inner = [CNOT.on(control, target)]
            else:
                inner = controlled_u_to_qubit_basis(control, target, sub)
            return _x_conjugated(flipped, inner) if flipped else inner
        if gate.num_controls == 2 and sub.num_qudits == 1:
            c0, c1, target = op.qudits
            if sub.canonical_spec() == _X_CANONICAL:
                inner = toffoli_to_cnots(c0, c1, target)
                return (
                    _x_conjugated(flipped, inner) if flipped else inner
                )
            barenco = two_controlled_qubit_u(
                c0, c1, target, sub, values
            )
            expanded: list[GateOperation] = []
            for piece in barenco:
                expanded.extend(to_qubit_basis(piece))
            return expanded
        raise InteropError(
            f"no qubit-basis rule for {gate.name} with "
            f"{gate.num_controls} controls"
        )
    if gate.canonical_spec() == _SWAP_CANONICAL:
        a, b = op.qudits
        return [CNOT.on(a, b), CNOT.on(b, a), CNOT.on(a, b)]
    raise InteropError(
        f"no qubit-basis rule for {gate.name} on "
        f"{gate.num_qudits} wires"
    )


class DecomposeToQubitBasis(CompilePass):
    """Compile a qubit circuit to CNOT + arbitrary single-qubit gates.

    The qubit-machine lowering stage: after it, every operation is
    either a single-qubit gate or a CNOT, which is what a qubit device
    — or a qutrit device running a naively lifted circuit — executes.
    """

    def transform(self, circuit: Circuit) -> Circuit:
        bad = [
            w for w in circuit.all_qudits() if w.dimension != QUBIT_D
        ]
        if bad:
            raise InteropError(
                "qubit-basis compilation needs an all-qubit circuit; "
                f"found wires {bad}"
            )
        before = sum(1 for _ in circuit.all_operations())
        lowered = transform_operations(circuit, to_qubit_basis)
        self.last_metadata = {
            "input_operations": before,
            "output_operations": sum(
                1 for _ in lowered.all_operations()
            ),
        }
        return lowered
