"""Subspace equivalence oracles for lifted circuits.

A lifted circuit is correct iff it acts on the embedded qubit subspace
exactly as the original acts on its qubit wires — *and* never strands
population on the added levels.  The two oracles mirror the PR 4 / PR 7
verification layer, generalised across unequal wire dimensions:

* **classical** — both circuits lower to permutation tables; every
  subspace input must advance to the same (subspace) output on both
  sides, checked with one batched table-gather run per circuit.  An
  output touching an added level is a transience violation and fails.
* **statevector** — the whole subspace basis advances through both
  circuits as stacked tensors; the lifted amplitudes restricted to the
  subspace block must equal the original amplitudes elementwise.  Since
  the original's columns carry unit norm, agreement on the block
  implies the leakage outside it is zero — transience is checked for
  free.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..exceptions import InteropError
from ..qudits import Qudit
from ..sim.classical_batch import BatchedClassicalSimulator
from ..sim.fidelity import resolve_batch_size
from ..sim.kernels import apply_block, gate_kernel

#: Dense-oracle ceiling on the *lifted* joint dimension (3^8): a stacked
#: subspace batch beyond this stops being cheap, and callers should rely
#: on the classical oracle or skip.
INTEROP_DENSE_CAP = 6561

__all__ = [
    "INTEROP_DENSE_CAP",
    "subspace_equivalence_method",
    "subspace_equivalent",
    "assert_subspace_equivalent",
]


def _paired_wires(
    original: Circuit, lifted: Circuit
) -> tuple[list[Qudit], list[Qudit]]:
    """Match original and lifted wires index-by-index.

    Raises :class:`InteropError` when the circuits disagree on wire
    indices, an index is ambiguous (two dimensions share it), or a
    lifted wire is smaller than its original.
    """
    def by_index(circuit: Circuit, label: str) -> dict[int, Qudit]:
        table: dict[int, Qudit] = {}
        for wire in circuit.all_qudits():
            if wire.index in table:
                raise InteropError(
                    f"{label} circuit uses index {wire.index} at two "
                    "dimensions; subspace comparison is ambiguous"
                )
            table[wire.index] = wire
        return table

    orig = by_index(original, "original")
    lift = by_index(lifted, "lifted")
    if set(orig) != set(lift):
        raise InteropError(
            f"wire indices differ: original {sorted(orig)} vs lifted "
            f"{sorted(lift)}"
        )
    for index in orig:
        if lift[index].dimension < orig[index].dimension:
            raise InteropError(
                f"lifted wire {lift[index]} is smaller than original "
                f"{orig[index]}"
            )
    order = sorted(orig)
    return [orig[i] for i in order], [lift[i] for i in order]


def subspace_equivalence_method(
    original: Circuit, lifted: Circuit
) -> "str | None":
    """The cheapest sound oracle: ``"classical"``, ``"statevector"``,
    or None when neither applies (non-classical and too wide)."""
    simulator = BatchedClassicalSimulator()
    if simulator.is_classical_circuit(
        original
    ) and simulator.is_classical_circuit(lifted):
        return "classical"
    _, lift_wires = _paired_wires(original, lifted)
    joint = 1
    for wire in lift_wires:
        joint *= wire.dimension
    if joint <= INTEROP_DENSE_CAP:
        return "statevector"
    return None


def _advance(
    circuit: Circuit, wires: Sequence[Qudit], batch: np.ndarray
) -> np.ndarray:
    axis = {w: 1 + k for k, w in enumerate(wires)}
    for op in circuit.all_operations():
        kernel = gate_kernel(op)
        batch = apply_block(
            batch, kernel.block, [axis[w] for w in op.qudits]
        )
    return batch


def _basis_batch(
    dims: tuple[int, ...], rows: np.ndarray
) -> np.ndarray:
    batch = np.zeros((len(rows),) + dims, dtype=complex)
    member = (np.arange(len(rows)),) + tuple(
        rows[:, k] for k in range(rows.shape[1])
    )
    batch[member] = 1.0
    return batch


def subspace_equivalent(
    original: Circuit,
    lifted: Circuit,
    atol: float = 1e-8,
    method: "str | None" = None,
) -> bool:
    """True iff ``lifted`` acts on the embedded subspace as ``original``.

    Wires pair by index; the subspace is the set of joint basis states
    whose per-wire values are valid on the original wires.  Population
    left on an added level (non-transient |2> occupation) fails the
    check.  Raises :class:`InteropError` when no oracle applies — probe
    with :func:`subspace_equivalence_method` first.
    """
    orig_wires, lift_wires = _paired_wires(original, lifted)
    if method is None:
        method = subspace_equivalence_method(original, lifted)
    inputs = BatchedClassicalSimulator.input_space(orig_wires)
    if method == "classical":
        simulator = BatchedClassicalSimulator()
        out_lift = simulator.run_array(lifted, lift_wires, inputs)
        limits = np.array([w.dimension for w in orig_wires])
        if np.any(out_lift >= limits[np.newaxis, :]):
            return False
        out_orig = simulator.run_array(original, orig_wires, inputs)
        return bool(np.array_equal(out_lift, out_orig))
    if method == "statevector":
        orig_dims = tuple(w.dimension for w in orig_wires)
        lift_dims = tuple(w.dimension for w in lift_wires)
        joint = 1
        for d in lift_dims:
            joint *= d
        if joint > INTEROP_DENSE_CAP:
            raise InteropError(
                f"lifted joint dimension {joint} exceeds the dense "
                f"oracle cap {INTEROP_DENSE_CAP}"
            )
        block = (slice(None),) + tuple(slice(0, d) for d in orig_dims)
        chunk = resolve_batch_size(None, lift_wires, len(inputs))
        for start in range(0, len(inputs), chunk):
            rows = inputs[start : start + chunk]
            out_lift = _advance(
                lifted, lift_wires, _basis_batch(lift_dims, rows)
            )
            out_orig = _advance(
                original, orig_wires, _basis_batch(orig_dims, rows)
            )
            if not np.allclose(out_lift[block], out_orig, atol=atol):
                return False
        return True
    raise InteropError(
        "no subspace equivalence oracle applies: circuits are not "
        f"classical and the lifted joint dimension exceeds "
        f"{INTEROP_DENSE_CAP}"
    )


def assert_subspace_equivalent(
    original: Circuit,
    lifted: Circuit,
    atol: float = 1e-8,
    context: str = "lift",
) -> str:
    """Raise :class:`InteropError` unless the pair agrees; returns the
    oracle used, for reporting."""
    method = subspace_equivalence_method(original, lifted)
    if method is None:
        raise InteropError(
            f"cannot verify {context}: no subspace oracle applies "
            "(non-classical circuit wider than the dense cap)"
        )
    if not subspace_equivalent(original, lifted, atol, method=method):
        raise InteropError(
            f"{context} changed the circuit's action on the qubit "
            f"subspace ({method} oracle mismatch)"
        )
    return method
