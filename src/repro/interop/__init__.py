"""Qubit <-> qutrit dimension-transform front end.

The paper's headline claim is that *any* qubit circuit can be re-hosted
on qutrit hardware and win via temporary ternary compilation.  This
package is the entry ramp: it lifts arbitrary qubit circuits onto
qutrit (or any d >= 3) wires gate-by-gate, lowers them back with a
proof obligation that the |2> population was transient, and benchmarks
naive lifting against temporary-ternary compilation on the paper's
workloads (in the style of CirqTrit's ``dimension_transform``).

Layer map:

* gate layer — :class:`~repro.gates.embedded.EmbeddedGate` (re-exported
  here): block-diagonal embedding that retains its sub-gate;
* transform layer — :func:`lift_gate` / :func:`lower_gate` and the
  circuit-level :func:`lift_circuit` / :func:`lower_circuit`, plus the
  compile passes :class:`LiftToQutrits` and :class:`LowerToQubits`;
* verification — :func:`subspace_equivalent`: a lifted circuit must act
  on the embedded qubit subspace exactly as its original, checked with
  the batched classical / statevector oracles;
* qubit-basis compilation — :class:`DecomposeToQubitBasis`, the
  CNOT + single-qubit lowering that defines the *naive lift* baseline;
* workloads + bench — :mod:`repro.interop.workloads` and
  :func:`run_interop_bench` (see :mod:`repro.analysis.bench`).
"""

from ..gates.embedded import EmbeddedGate
from .transform import (
    LiftToQutrits,
    LowerToQubits,
    lift_circuit,
    lift_gate,
    lower_circuit,
    lower_gate,
)
from .verify import (
    INTEROP_DENSE_CAP,
    assert_subspace_equivalent,
    subspace_equivalence_method,
    subspace_equivalent,
)
from .qubitbasis import (
    DecomposeToQubitBasis,
    controlled_u_to_qubit_basis,
    to_qubit_basis,
    zyz_angles,
)
from .workloads import (
    WORKLOADS,
    build_workload,
    grover_circuit,
    qft_circuit,
    random_clifford_t,
    ripple_carry_adder,
)
from .bench import (
    INTEROP_SCHEMA,
    check_interop_regression,
    interop_record_key,
    render_interop_table,
    run_interop_bench,
)

__all__ = [
    "EmbeddedGate",
    "lift_gate",
    "lower_gate",
    "lift_circuit",
    "lower_circuit",
    "LiftToQutrits",
    "LowerToQubits",
    "subspace_equivalent",
    "subspace_equivalence_method",
    "assert_subspace_equivalent",
    "INTEROP_DENSE_CAP",
    "DecomposeToQubitBasis",
    "to_qubit_basis",
    "controlled_u_to_qubit_basis",
    "zyz_angles",
    "WORKLOADS",
    "build_workload",
    "qft_circuit",
    "ripple_carry_adder",
    "random_clifford_t",
    "grover_circuit",
    "run_interop_bench",
    "check_interop_regression",
    "render_interop_table",
    "interop_record_key",
    "INTEROP_SCHEMA",
]
