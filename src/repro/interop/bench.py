"""Naive-lift vs temporary-ternary benchmark (the paper's Sec. V claim).

Two compilation paths from the same qubit workload to a qutrit device:

* **naive** — compile for a qubit machine first
  (:class:`~repro.interop.qubitbasis.DecomposeToQubitBasis`: CNOT +
  single-qubit gates), then lift the result wire-by-wire.  Every
  Toffoli has already paid its 6-CNOT toll before the device's third
  level is even visible.
* **ternary** — lift first (structure-preserving, so multi-controlled
  gates survive as :class:`~repro.gates.controlled.ControlledGate`),
  then lower through the qutrit cascade
  (:class:`~repro.execution.passes.DecomposeToWidth2`), which spends
  the |2> level as workspace.

Both paths are equivalence-checked against the original qubit circuit
with the subspace oracle before routing, then routed onto the topology
zoo; records carry logical gate count / two-qudit count / depth and
routed swap count / depth.  All structural metrics are deterministic,
which is what the CI regression gate compares.
"""

from __future__ import annotations

import platform
import time

import numpy as np

from ..circuits.circuit import Circuit
from ..execution.passes import DecomposeToWidth2, RouteToTopology
from .qubitbasis import DecomposeToQubitBasis
from .transform import lift_circuit
from .verify import assert_subspace_equivalent
from .workloads import build_workload

INTEROP_SCHEMA = "repro-bench-interop/v1"

#: (workload, size) cases of the full sweep; smoke keeps a prefix so
#: smoke records always join against the committed full report.
INTEROP_CASES: tuple[tuple[str, int], ...] = (
    ("qft", 4),
    ("adder", 2),
    ("qft", 6),
    ("adder", 3),
)
INTEROP_SMOKE_CASES: tuple[tuple[str, int], ...] = (
    ("qft", 4),
    ("adder", 2),
)

INTEROP_TOPOLOGIES: tuple[str, ...] = ("line", "grid_2d")
INTEROP_SMOKE_TOPOLOGIES: tuple[str, ...] = ("line",)

STRATEGIES: tuple[str, ...] = ("naive", "ternary")

__all__ = [
    "INTEROP_SCHEMA",
    "INTEROP_CASES",
    "INTEROP_TOPOLOGIES",
    "STRATEGIES",
    "compile_strategy",
    "interop_record_key",
    "run_interop_bench",
    "render_interop_table",
    "check_interop_regression",
]


def compile_strategy(circuit: Circuit, strategy: str) -> Circuit:
    """Compile a qubit circuit for the qutrit device under one strategy."""
    if strategy == "naive":
        return lift_circuit(DecomposeToQubitBasis().transform(circuit))
    if strategy == "ternary":
        return DecomposeToWidth2().transform(lift_circuit(circuit))
    raise ValueError(
        f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
    )


def _logical_metrics(circuit: Circuit) -> dict:
    two_qudit = sum(
        1 for op in circuit.all_operations() if op.gate.num_qudits >= 2
    )
    return {
        "gate_count": circuit.num_operations,
        "two_qudit_count": two_qudit,
        "depth": circuit.depth,
    }


def interop_record_key(record: dict) -> tuple:
    """The join key of one record (deterministic identity)."""
    return (
        record["workload"],
        record["size"],
        record["strategy"],
        record["topology_kind"],
    )


def run_interop_bench(smoke: bool = False) -> dict:
    """Run the interop sweep and return the JSON-ready report.

    Each (workload, strategy) pair compiles once — with the compiled
    circuit verified against the qubit original through the subspace
    oracle — then routes once per topology.
    """
    cases = INTEROP_SMOKE_CASES if smoke else INTEROP_CASES
    topologies = (
        INTEROP_SMOKE_TOPOLOGIES if smoke else INTEROP_TOPOLOGIES
    )
    records = []
    for workload, size in cases:
        original = build_workload(workload, n=size)
        for strategy in STRATEGIES:
            start = time.perf_counter()
            compiled = compile_strategy(original, strategy)
            compile_seconds = time.perf_counter() - start
            oracle = assert_subspace_equivalent(
                original,
                compiled,
                context=f"{strategy} lift of {workload}(n={size})",
            )
            logical = _logical_metrics(compiled)
            for kind in topologies:
                router = RouteToTopology(kind, router="lookahead")
                start = time.perf_counter()
                router.transform(compiled)
                route_seconds = time.perf_counter() - start
                meta = router.last_metadata
                records.append(
                    {
                        "workload": workload,
                        "size": size,
                        "strategy": strategy,
                        "topology_kind": kind,
                        "wires": len(compiled.all_qudits()),
                        **logical,
                        "swap_count": meta["swap_count"],
                        "routed_depth": meta["routed_depth"],
                        "verified": oracle,
                        "seconds": compile_seconds + route_seconds,
                    }
                )
    return {
        "schema": INTEROP_SCHEMA,
        "generated_by": "python -m repro bench --suite interop"
        + (" (smoke)" if smoke else ""),
        "smoke": smoke,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "records": records,
        "headline": _interop_headline(records),
    }


def _interop_headline(records: list[dict]) -> dict:
    """Per-cell naive-vs-ternary comparison — the acceptance claim is
    every ``ternary_beats_naive`` flag on gate count and depth."""
    by_key = {interop_record_key(r): r for r in records}
    cells = []
    for record in records:
        if record["strategy"] != "ternary":
            continue
        naive = by_key.get(
            (
                record["workload"],
                record["size"],
                "naive",
                record["topology_kind"],
            )
        )
        if naive is None:
            continue
        cells.append(
            {
                "workload": record["workload"],
                "size": record["size"],
                "topology_kind": record["topology_kind"],
                "naive_gates": naive["gate_count"],
                "ternary_gates": record["gate_count"],
                "naive_depth": naive["depth"],
                "ternary_depth": record["depth"],
                "naive_swaps": naive["swap_count"],
                "ternary_swaps": record["swap_count"],
                "ternary_beats_naive": (
                    record["gate_count"] < naive["gate_count"]
                    and record["depth"] < naive["depth"]
                ),
            }
        )
    return {"naive_vs_ternary": cells}


def render_interop_table(report: dict) -> str:
    """Human-readable summary of :func:`run_interop_bench` output."""
    lines = [
        f"interop bench ({'smoke' if report['smoke'] else 'full'})",
        "",
        f"{'workload':>8s} {'n':>2s} {'strategy':>8s} {'topology':>9s} "
        f"{'gates':>6s} {'2q':>5s} {'depth':>6s} {'swaps':>6s} "
        f"{'rdepth':>6s} {'oracle':>12s}",
    ]
    for r in report["records"]:
        lines.append(
            f"{r['workload']:>8s} {r['size']:2d} {r['strategy']:>8s} "
            f"{r['topology_kind']:>9s} {r['gate_count']:6d} "
            f"{r['two_qudit_count']:5d} {r['depth']:6d} "
            f"{r['swap_count']:6d} {r['routed_depth']:6d} "
            f"{r['verified']:>12s}"
        )
    lines.append("")
    lines.append("temporary ternary vs naive lift:")
    for cell in report["headline"]["naive_vs_ternary"]:
        verdict = "WIN" if cell["ternary_beats_naive"] else "tie/loss"
        lines.append(
            f"  {cell['workload']}(n={cell['size']}) on "
            f"{cell['topology_kind']}: gates "
            f"{cell['naive_gates']}->{cell['ternary_gates']}, depth "
            f"{cell['naive_depth']}->{cell['ternary_depth']}, swaps "
            f"{cell['naive_swaps']}->{cell['ternary_swaps']}  [{verdict}]"
        )
    return "\n".join(lines)


def check_interop_regression(
    committed: dict, fresh: dict, factor: float = 3.0
) -> list[str]:
    """Compare a fresh interop report against the committed baseline.

    Joins records on :func:`interop_record_key`; flags any structural
    metric that degraded by more than ``factor``, any row whose
    verification oracle disappeared, and any committed ternary win that
    no longer holds.  Returns failure messages (empty = pass).
    """
    baseline = {
        interop_record_key(r): r for r in committed["records"]
    }
    failures = []
    for record in fresh["records"]:
        base = baseline.get(interop_record_key(record))
        if base is None:
            continue
        label = (
            f"{record['workload']}(n={record['size']}) "
            f"{record['strategy']}/{record['topology_kind']}"
        )
        if not record.get("verified"):
            failures.append(f"{label}: row is no longer verified")
        for metric in (
            "gate_count", "two_qudit_count", "depth",
            "swap_count", "routed_depth",
        ):
            allowed = factor * max(base[metric], 1)
            if record[metric] > allowed:
                failures.append(
                    f"{label}: {metric} {record[metric]} exceeds "
                    f"{factor:g}x committed {base[metric]}"
                )
    committed_wins = {
        (c["workload"], c["size"], c["topology_kind"])
        for c in committed["headline"]["naive_vs_ternary"]
        if c["ternary_beats_naive"]
    }
    for cell in fresh["headline"]["naive_vs_ternary"]:
        key = (cell["workload"], cell["size"], cell["topology_kind"])
        if key in committed_wins and not cell["ternary_beats_naive"]:
            failures.append(
                f"{cell['workload']}(n={cell['size']}) on "
                f"{cell['topology_kind']}: temporary ternary no longer "
                "beats the naive lift"
            )
    return failures
