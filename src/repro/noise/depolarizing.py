"""Symmetric depolarizing gate errors for arbitrary qudit dimensions.

Appendix A.1.1 of the paper: the error basis is the set of generalized Pauli
operators X^j Z^k (j, k not both zero), where X is the cyclic shift and Z
the clock matrix.  For a d-level qudit there are d^2 - 1 single-qudit error
channels (3 for qubits, 8 for qutrits); two-qudit error operators are the
pairwise tensor products (15 for two qubits, 80 for two qutrits — eqs. 4
and 6).  Every error term carries the same probability p, so two-qutrit
gates are (1 - 80 p2) / (1 - 15 p2) times less reliable than two-qubit
gates — the paper's headline cost of operating qutrits.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .kraus import UnitaryMixtureChannel


@lru_cache(maxsize=None)
def _shift_matrix(dim: int) -> np.ndarray:
    matrix = np.zeros((dim, dim), dtype=complex)
    for value in range(dim):
        matrix[(value + 1) % dim, value] = 1.0
    return matrix


@lru_cache(maxsize=None)
def _clock_matrix(dim: int) -> np.ndarray:
    omega = np.exp(2j * np.pi / dim)
    return np.diag([omega**k for k in range(dim)])


@lru_cache(maxsize=None)
def _pauli_tuple(dim: int) -> tuple[np.ndarray, ...]:
    """All d^2 - 1 non-identity generalized Paulis X^j Z^k of dimension d."""
    shift = _shift_matrix(dim)
    clock = _clock_matrix(dim)
    paulis = []
    for j in range(dim):
        for k in range(dim):
            if j == 0 and k == 0:
                continue
            paulis.append(
                np.linalg.matrix_power(shift, j)
                @ np.linalg.matrix_power(clock, k)
            )
    return tuple(paulis)


def generalized_paulis(dim: int) -> list[np.ndarray]:
    """The d^2 - 1 non-identity generalized Paulis (copies)."""
    return [p.copy() for p in _pauli_tuple(dim)]


@lru_cache(maxsize=None)
def single_qudit_depolarizing(
    dim: int, p_channel: float
) -> UnitaryMixtureChannel:
    """Eq. 3 / eq. 5: each of the d^2 - 1 error terms fires with ``p_channel``."""
    terms = [(p_channel, op) for op in _pauli_tuple(dim)]
    return UnitaryMixtureChannel(
        f"depolarizing(d={dim}, p={p_channel:g})",
        (dim,),
        terms,
        symmetric_pauli=p_channel,
    )


@lru_cache(maxsize=None)
def two_qudit_depolarizing(
    dim_a: int, dim_b: int, p_channel: float
) -> UnitaryMixtureChannel:
    """Eq. 4 / eq. 6: the (da db)^2 - 1 pairwise Pauli products, each with
    probability ``p_channel``.

    Mixed dimensions are supported because the library's circuits can put a
    qutrit control next to a qubit target.
    """
    singles_a = (np.eye(dim_a, dtype=complex),) + _pauli_tuple(dim_a)
    singles_b = (np.eye(dim_b, dtype=complex),) + _pauli_tuple(dim_b)
    terms = []
    for i, op_a in enumerate(singles_a):
        for j, op_b in enumerate(singles_b):
            if i == 0 and j == 0:
                continue
            terms.append((p_channel, np.kron(op_a, op_b)))
    # The pairwise products form the complete joint generalized-Pauli
    # set (minus identity), so the channel is symmetric over it and the
    # twirl fast path applies with d = dim_a * dim_b.
    return UnitaryMixtureChannel(
        f"depolarizing2(d={dim_a}x{dim_b}, p={p_channel:g})",
        (dim_a, dim_b),
        terms,
        symmetric_pauli=p_channel,
    )


def gate_error_channel(
    dims: tuple[int, ...], p1_channel: float, p2_channel: float
) -> UnitaryMixtureChannel:
    """Dispatch on gate arity: 1-qudit -> p1 channel, 2-qudit -> p2 channel."""
    if len(dims) == 1:
        return single_qudit_depolarizing(dims[0], p1_channel)
    if len(dims) == 2:
        return two_qudit_depolarizing(dims[0], dims[1], p2_channel)
    raise ValueError(
        f"gate errors are defined for 1- and 2-qudit gates, got {len(dims)}"
    )
