"""Noise channels and the paper's near-term device noise models."""

from .kraus import KrausChannel, UnitaryMixtureChannel
from .depolarizing import (
    generalized_paulis,
    single_qudit_depolarizing,
    two_qudit_depolarizing,
)
from .damping import amplitude_damping_channel, damping_lambdas, dephasing_channel
from .model import NoiseModel
from .presets import (
    ALL_MODELS,
    BARE_QUTRIT,
    DRESSED_QUTRIT,
    IBM_CURRENT,
    SC,
    SC_GATES,
    SC_T1,
    SC_T1_GATES,
    SUPERCONDUCTING_MODELS,
    TI_QUBIT,
    TRAPPED_ION_MODELS,
)

__all__ = [
    "KrausChannel",
    "UnitaryMixtureChannel",
    "generalized_paulis",
    "single_qudit_depolarizing",
    "two_qudit_depolarizing",
    "amplitude_damping_channel",
    "damping_lambdas",
    "dephasing_channel",
    "NoiseModel",
    "IBM_CURRENT",
    "SC",
    "SC_T1",
    "SC_GATES",
    "SC_T1_GATES",
    "TI_QUBIT",
    "BARE_QUTRIT",
    "DRESSED_QUTRIT",
    "SUPERCONDUCTING_MODELS",
    "TRAPPED_ION_MODELS",
    "ALL_MODELS",
]
