"""Noise channels and the paper's near-term device noise models.

Channels come in two families (:mod:`repro.noise.kraus`): unitary
mixtures with state-independent branch probabilities (depolarizing gate
errors, idle dephasing) and general Kraus channels with
state-dependent branches (amplitude damping).  Each family serves three
consumers: per-shot sampling for the looped trajectory engine,
vectorized branch draws for the batched engine, and the full Kraus
decomposition for the exact density engine (lowered once into cached
contraction kernels by :mod:`repro.sim.kernels`).  Channel factories
are ``lru_cache``-d, so a given parameter set builds its operators —
and its kernels — exactly once per process.
"""

from .kraus import KrausChannel, UnitaryMixtureChannel
from .depolarizing import (
    generalized_paulis,
    single_qudit_depolarizing,
    two_qudit_depolarizing,
)
from .damping import amplitude_damping_channel, damping_lambdas, dephasing_channel
from .model import NoiseModel
from .presets import (
    ALL_MODELS,
    BARE_QUTRIT,
    DRESSED_QUTRIT,
    IBM_CURRENT,
    SC,
    SC_GATES,
    SC_T1,
    SC_T1_GATES,
    SUPERCONDUCTING_MODELS,
    TI_QUBIT,
    TRAPPED_ION_MODELS,
)

__all__ = [
    "KrausChannel",
    "UnitaryMixtureChannel",
    "generalized_paulis",
    "single_qudit_depolarizing",
    "two_qudit_depolarizing",
    "amplitude_damping_channel",
    "damping_lambdas",
    "dephasing_channel",
    "NoiseModel",
    "IBM_CURRENT",
    "SC",
    "SC_T1",
    "SC_GATES",
    "SC_T1_GATES",
    "TI_QUBIT",
    "BARE_QUTRIT",
    "DRESSED_QUTRIT",
    "SUPERCONDUCTING_MODELS",
    "TRAPPED_ION_MODELS",
    "ALL_MODELS",
]
