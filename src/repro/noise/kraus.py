"""Kraus-operator channels and the trajectory-sampling interface.

The paper's simulator adopts the quantum-trajectory methodology (Sec. 6.2):
instead of evolving a d^N x d^N density matrix, a single state vector is
propagated and one error term is drawn at random per application.  Two
channel families cover everything the noise models need:

* :class:`UnitaryMixtureChannel` — "with probability p_i apply unitary E_i"
  (depolarizing gate errors, idle dephasing).  Probabilities are
  state-independent, so sampling never inspects the state.
* :class:`KrausChannel` — general operators {K_i}; the probability of branch
  i on state |psi> is ||K_i |psi>||^2 (amplitude damping, whose effect
  depends on the qudit's excitation — Sec. 6.1 item 2).

Both families expose two application surfaces:

* the original per-trajectory sampling (``apply_sampled``), used by the
  looped :class:`~repro.sim.trajectory.TrajectorySimulator`;
* vectorized accessors (``sample_indices``, ``gram_diagonal_matrix``,
  ``operator``/``operator_diagonal``) that let the batched trajectory
  engine draw one branch per stacked trajectory in a single numpy call.

The exact density-matrix engine does not sample at all: it consumes the
full Kraus decomposition through
:func:`repro.sim.kernels.channel_kernel`, which lowers mixtures to
explicit Kraus form via :attr:`UnitaryMixtureChannel.terms`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..exceptions import NoiseModelError
from ..qudits import Qudit

if TYPE_CHECKING:  # pragma: no cover - the channels only annotate states;
    # a runtime import would close the cycle sim.state -> sim.kernels ->
    # noise.kraus -> sim.state now that StateVector uses the kernel cache.
    from ..sim.state import StateVector


class UnitaryMixtureChannel:
    """A probabilistic mixture of unitary errors plus an identity branch."""

    def __init__(
        self,
        name: str,
        dims: Sequence[int],
        terms: Sequence[tuple[float, np.ndarray]],
        symmetric_pauli: float | None = None,
    ) -> None:
        self._name = name
        self._dims = tuple(dims)
        self._symmetric_pauli = symmetric_pauli
        total_dim = 1
        for d in self._dims:
            total_dim *= d
        probs = []
        ops = []
        for prob, op in terms:
            op = np.asarray(op, dtype=complex)
            if prob < 0:
                raise NoiseModelError(f"negative error probability {prob}")
            if op.shape != (total_dim, total_dim):
                raise NoiseModelError(
                    f"error operator shape {op.shape} does not match dims "
                    f"{self._dims}"
                )
            probs.append(float(prob))
            ops.append(op)
        self._probs = np.asarray(probs)
        total = float(self._probs.sum())
        if total > 1 + 1e-9:
            raise NoiseModelError(
                f"error probabilities sum to {total} > 1 in channel {name}"
            )
        self._ops = ops
        self._identity_prob = max(0.0, 1.0 - total)
        self._cumulative = np.cumsum(self._probs) if probs else np.array([])
        self._diagonals = [
            np.diagonal(op).copy()
            if np.allclose(op, np.diag(np.diagonal(op)), atol=1e-12)
            else None
            for op in ops
        ]

    @property
    def name(self) -> str:
        """Channel label (diagnostics)."""
        return self._name

    @property
    def dims(self) -> tuple[int, ...]:
        """Wire dimensions the channel acts on."""
        return self._dims

    @property
    def error_probability(self) -> float:
        """Total probability that any non-identity branch fires."""
        return 1.0 - self._identity_prob

    @property
    def num_error_terms(self) -> int:
        """Number of non-identity branches (the paper's 'error channels')."""
        return len(self._ops)

    @property
    def symmetric_pauli_probability(self) -> float | None:
        """Per-term probability when the channel is a full symmetric
        Pauli (depolarizing) mixture, else ``None``.

        Declared at construction by the depolarizing factories.  A
        symmetric mixture over the complete generalized-Pauli set admits
        the twirl identity ``sum_P P rho P^dag = d * I (x) Tr_A rho``,
        which the density engine uses to apply the whole channel as one
        partial trace instead of ``d^2 - 1`` operator conjugations.
        """
        return self._symmetric_pauli

    @property
    def terms(self) -> list[tuple[float, np.ndarray]]:
        """``(probability, operator)`` pairs of the non-identity branches.

        The public face of the channel's Kraus decomposition: the kernel
        cache lowers these (with the implicit identity branch) to explicit
        Kraus operators for the density engine.
        """
        return [
            (float(p), op.copy())
            for p, op in zip(self._probs, self._ops)
        ]

    def operator(self, index: int) -> np.ndarray:
        """The ``index``-th non-identity branch operator (live view)."""
        return self._ops[index]

    def operator_diagonal(self, index: int) -> np.ndarray | None:
        """Branch ``index``'s diagonal when the operator is diagonal.

        ``None`` for non-diagonal branches; the batched engine uses this
        to replace a tensordot with a broadcast multiply.
        """
        return self._diagonals[index]

    def sample_index(self, rng: np.random.Generator) -> int | None:
        """Draw a branch index; ``None`` means the identity (no error)."""
        u = rng.random()
        if u < self._identity_prob:
            return None
        u -= self._identity_prob
        index = int(np.searchsorted(self._cumulative, u, side="right"))
        return min(index, len(self._ops) - 1)

    def sample_indices(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """Vectorized :meth:`sample_index`: one draw per batch member.

        Returns an ``intp`` array of length ``count`` where ``-1`` marks
        the identity branch (no error) and any other value indexes into
        the non-identity branches.  Branch probabilities are
        state-independent, so one uniform draw per member suffices.
        """
        u = rng.random(count)
        indices = np.full(count, -1, dtype=np.intp)
        fired = u >= self._identity_prob
        if fired.any() and len(self._ops):
            shifted = u[fired] - self._identity_prob
            drawn = np.searchsorted(self._cumulative, shifted, side="right")
            indices[fired] = np.minimum(drawn, len(self._ops) - 1)
        return indices

    def sample(self, rng: np.random.Generator) -> np.ndarray | None:
        """Draw one branch; ``None`` means the identity (no error)."""
        index = self.sample_index(rng)
        return None if index is None else self._ops[index]

    def apply_sampled(
        self,
        state: StateVector,
        wires: Sequence[Qudit],
        rng: np.random.Generator,
    ) -> bool:
        """Sample a branch and apply it; returns True iff an error fired."""
        index = self.sample_index(rng)
        if index is None:
            return False
        diagonal = self._diagonals[index]
        if diagonal is not None and len(wires) == 1:
            state.apply_diagonal(diagonal, wires[0])
        else:
            state.apply_matrix(self._ops[index], wires)
        return True


class KrausChannel:
    """A general channel {K_i} sampled with state-dependent probabilities.

    Construction validates the completeness relation sum_i K_i^dag K_i = I.
    When every K_i^dag K_i is diagonal (true for amplitude damping), branch
    probabilities come from the wire's level populations, which costs one
    O(d^N) population pass instead of one per operator.
    """

    def __init__(
        self, name: str, dims: Sequence[int], operators: Sequence[np.ndarray]
    ) -> None:
        self._name = name
        self._dims = tuple(dims)
        total_dim = 1
        for d in self._dims:
            total_dim *= d
        ops = [np.asarray(op, dtype=complex) for op in operators]
        if not ops:
            raise NoiseModelError("channel needs at least one Kraus operator")
        for op in ops:
            if op.shape != (total_dim, total_dim):
                raise NoiseModelError(
                    f"Kraus operator shape {op.shape} does not match dims "
                    f"{self._dims}"
                )
        completeness = sum(op.conj().T @ op for op in ops)
        if not np.allclose(completeness, np.eye(total_dim), atol=1e-8):
            raise NoiseModelError(
                f"channel {name} violates sum K^dag K = I"
            )
        self._ops = ops
        self._gram_diagonals = []
        self._all_diagonal = True
        for op in ops:
            gram = op.conj().T @ op
            if np.allclose(gram, np.diag(np.diagonal(gram)), atol=1e-12):
                self._gram_diagonals.append(np.real(np.diagonal(gram)))
            else:
                self._all_diagonal = False
                self._gram_diagonals.append(None)
        self._op_diagonals = [
            np.diagonal(op).copy()
            if np.allclose(op, np.diag(np.diagonal(op)), atol=1e-12)
            else None
            for op in ops
        ]
        # (num_ops, total_dim) stack of the diagonal Gram matrices, used
        # by the batched engine to turn per-member populations into
        # branch probabilities with one matmul.
        self._gram_matrix = (
            np.stack([np.asarray(d) for d in self._gram_diagonals])
            if self._all_diagonal
            else None
        )

    @property
    def name(self) -> str:
        """Channel label (diagnostics)."""
        return self._name

    @property
    def dims(self) -> tuple[int, ...]:
        """Wire dimensions the channel acts on."""
        return self._dims

    @property
    def operators(self) -> list[np.ndarray]:
        """The Kraus operators (copies)."""
        return [op.copy() for op in self._ops]

    @property
    def num_operators(self) -> int:
        """Number of Kraus operators (branch 0 is the no-jump branch)."""
        return len(self._ops)

    @property
    def gram_diagonal_matrix(self) -> np.ndarray | None:
        """``(num_ops, dim)`` stack of diagonal ``K_i^dag K_i`` entries.

        ``None`` when some Gram matrix is non-diagonal; otherwise branch
        probabilities for a whole batch follow from
        ``populations @ gram_diagonal_matrix.T``.
        """
        return self._gram_matrix

    def operator(self, index: int) -> np.ndarray:
        """The ``index``-th Kraus operator (live view)."""
        return self._ops[index]

    def operator_diagonal(self, index: int) -> np.ndarray | None:
        """Operator ``index``'s diagonal when it is diagonal, else None."""
        return self._op_diagonals[index]

    def branch_probabilities(
        self,
        state: StateVector,
        wires: Sequence[Qudit],
        populations: np.ndarray | None = None,
    ) -> np.ndarray:
        """p_i = ||K_i |psi>||^2 for the current state.

        ``populations`` short-circuits the marginal computation when the
        caller already holds the wire's level populations (the trajectory
        simulator shares one probability-tensor pass across all wires of a
        moment).
        """
        if self._all_diagonal and len(wires) == 1:
            if populations is None:
                populations = state.level_populations(wires[0])
            probs = np.array(
                [float(diag @ populations) for diag in self._gram_diagonals]
            )
        else:
            probs = []
            for op in self._ops:
                trial = state.copy()
                trial.apply_matrix(op, wires)
                probs.append(trial.norm() ** 2)
            probs = np.asarray(probs)
        # Guard against tiny negative round-off before normalising.
        probs = np.clip(probs, 0.0, None)
        total = probs.sum()
        if total <= 0:
            raise NoiseModelError(
                f"channel {self._name} produced zero total probability"
            )
        return probs / total

    def apply_sampled(
        self,
        state: StateVector,
        wires: Sequence[Qudit],
        rng: np.random.Generator,
        populations: np.ndarray | None = None,
    ) -> int:
        """Sample a branch, apply it, renormalise; returns the branch index.

        Branch 0 is conventionally the no-jump operator, so a return value
        greater than zero means a jump (error) occurred.
        """
        probs = self.branch_probabilities(state, wires, populations)
        u = rng.random()
        index = int(np.searchsorted(np.cumsum(probs), u, side="right"))
        index = min(index, len(self._ops) - 1)
        diagonal = self._op_diagonals[index]
        if diagonal is not None and len(wires) == 1:
            state.apply_diagonal(diagonal, wires[0])
        else:
            state.apply_matrix(self._ops[index], wires)
        state.renormalize()
        return index
