"""The generic parametrized noise model of Section 7.1.

A :class:`NoiseModel` bundles:

* per-error-channel depolarizing probabilities ``p1`` (single-qudit gates)
  and ``p2`` (two-qudit gates) — note these are *per channel*: a qubit gate
  has 3/15 channels while a qutrit gate has 8/80, which is exactly how the
  paper charges the extra cost of operating qutrits;
* gate durations for single- and two-qudit gates, which set moment lengths;
* an optional T1 for amplitude-damping idle errors (eq. 9);
* an optional coherent-dephasing idle rate (trapped-ion bare qutrits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..circuits.moment import Moment
from ..circuits.schedule import moment_duration
from .damping import (
    amplitude_damping_channel,
    damping_lambdas,
    dephasing_channel,
)
from .depolarizing import gate_error_channel
from .kraus import KrausChannel, UnitaryMixtureChannel


@dataclass(frozen=True)
class NoiseModel:
    """A device noise model in the paper's generic parametrization."""

    name: str
    #: Per-channel single-qudit depolarizing probability.
    p1: float
    #: Per-channel two-qudit depolarizing probability.
    p2: float
    #: Single-qudit gate time in seconds.
    gate_time_1q: float
    #: Two-qudit gate time in seconds.
    gate_time_2q: float
    #: Amplitude-damping lifetime in seconds; None disables damping
    #: (clock-state trapped-ion models).
    t1: float | None = None
    #: Coherent phase-kick rate per second of idling (BARE_QUTRIT).
    idle_dephasing_rate: float = 0.0
    #: Free-text provenance note.
    description: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    # Derived quantities used in tables and tests
    # ------------------------------------------------------------------

    def total_gate_error(self, dims: tuple[int, ...]) -> float:
        """Total error probability of one gate on wires of ``dims``.

        For a qubit gate this is the paper's ``3 p1`` / ``15 p2``; for a
        qutrit gate ``8 p1`` / ``80 p2``.
        """
        channel = self.gate_error(dims)
        return channel.error_probability

    def reliability_ratio_two_qudit(self) -> float:
        """(1 - 80 p2) / (1 - 15 p2): how much less reliable a two-qutrit
        gate is than a two-qubit gate under this model (Sec. 7.1.1)."""
        return (1 - 80 * self.p2) / (1 - 15 * self.p2)

    def idle_lambdas(self, dim: int, duration: float) -> tuple[float, ...]:
        """Damping probabilities lambda_m for one idle window."""
        if self.t1 is None:
            return tuple(0.0 for _ in range(dim - 1))
        return damping_lambdas(duration, self.t1, dim)

    # ------------------------------------------------------------------
    # Channel factories (cached in the underlying modules)
    # ------------------------------------------------------------------

    def gate_error(self, dims: tuple[int, ...]) -> UnitaryMixtureChannel:
        """Depolarizing channel applied after a gate on ``dims``."""
        return gate_error_channel(dims, self.p1, self.p2)

    def idle_channels(
        self, dim: int, duration: float
    ) -> list[KrausChannel | UnitaryMixtureChannel]:
        """Idle-error channels for one wire over one moment.

        The channel *objects* are cached per ``(model, dim, duration)``
        — the simulators call this for every wire of every moment, and
        a circuit only ever has a handful of distinct moment durations —
        but the returned list itself is fresh per call, so callers may
        do as they like with it.
        """
        return list(_cached_idle_channels(self, dim, duration))

    def moment_duration(self, moment: Moment) -> float:
        """Wall-clock duration of a moment under this model's gate times."""
        return moment_duration(moment, self.gate_time_1q, self.gate_time_2q)

    def circuit_duration(self, moments) -> float:
        """Total wall-clock duration of a circuit's moments."""
        return sum(self.moment_duration(m) for m in moments)


@lru_cache(maxsize=None)
def _cached_idle_channels(
    model: NoiseModel, dim: int, duration: float
) -> tuple[KrausChannel | UnitaryMixtureChannel, ...]:
    """Build (once) the idle channels for one wire dimension and window.

    Keyed on the frozen model itself, so distinct models never share an
    entry; the channel factories below are themselves ``lru_cache``-d, so
    the heavy lifting (operator construction, completeness checks) only
    ever happens once per parameter set process-wide.
    """
    channels: list[KrausChannel | UnitaryMixtureChannel] = []
    if model.t1 is not None:
        lambdas = damping_lambdas(duration, model.t1, dim)
        channels.append(amplitude_damping_channel(dim, lambdas))
    if model.idle_dephasing_rate > 0:
        probability = min(
            1.0 / dim, model.idle_dephasing_rate * duration
        )
        channels.append(dephasing_channel(dim, probability))
    return tuple(channels)
