"""The paper's named noise models (Tables 2 and 3).

Superconducting (Sec. 7.2, Table 2) — the table reports *total* gate error
probabilities ``3 p1`` and ``15 p2`` for qubit gates, so the per-channel
values stored here are those totals divided by 3 and 15.  The same
per-channel probability is then charged to every error channel regardless
of dimension, which is what makes qutrit gates (8 / 80 channels)
intrinsically noisier than qubit gates (3 / 15 channels).

* current IBM hardware: 3p1 ~ 1e-3, 15p2 ~ 1e-2, T1 ~ 0.1 ms
* SC           : 10x better gates and T1 than current IBM (the baseline)
* SC+T1        : SC with a further 10x longer T1
* SC+GATES     : SC with a further 10x lower gate errors
* SC+T1+GATES  : both improvements

Gate times are 100 ns (single-qudit) and 300 ns (two-qudit) for all
superconducting models.

Trapped ion 171Yb+ (Sec. 7.3, Table 3) — the table reports total
single-/two-qudit gate error probabilities from scattering calculations.
TI_QUBIT and DRESSED_QUTRIT live on magnetically insensitive clock states,
so their idle errors are negligible (T1 disabled); BARE_QUTRIT picks up
small coherent phase idle errors, modelled as random clock kicks.  Gate
times are 1 us and 200 us for all three.
"""

from __future__ import annotations

from .model import NoiseModel

_SC_TIME_1Q = 100e-9
_SC_TIME_2Q = 300e-9
_TI_TIME_1Q = 1e-6
_TI_TIME_2Q = 200e-6

#: Publicly accessible IBM devices circa the paper (Sec. 7.2), simulated
#: only to motivate the forward-looking models: a 14-input circuit is
#: essentially certain to fail at these rates.
IBM_CURRENT = NoiseModel(
    name="IBM_CURRENT",
    p1=1e-3 / 3,
    p2=1e-2 / 15,
    gate_time_1q=_SC_TIME_1Q,
    gate_time_2q=_SC_TIME_2Q,
    t1=100e-6,
    description="current cloud-accessible superconducting hardware",
)

#: Baseline forward-looking superconducting model: 10x better than current.
SC = NoiseModel(
    name="SC",
    p1=1e-4 / 3,
    p2=1e-3 / 15,
    gate_time_1q=_SC_TIME_1Q,
    gate_time_2q=_SC_TIME_2Q,
    t1=1e-3,
    description="superconducting baseline: 10x better gates and T1 than IBM",
)

#: SC with 10x longer T1 (Schoelkopf's-law extrapolation).
SC_T1 = NoiseModel(
    name="SC+T1",
    p1=1e-4 / 3,
    p2=1e-3 / 15,
    gate_time_1q=_SC_TIME_1Q,
    gate_time_2q=_SC_TIME_2Q,
    t1=10e-3,
    description="SC with a further 10x longer T1",
)

#: SC with 10x lower gate errors.
SC_GATES = NoiseModel(
    name="SC+GATES",
    p1=1e-5 / 3,
    p2=1e-4 / 15,
    gate_time_1q=_SC_TIME_1Q,
    gate_time_2q=_SC_TIME_2Q,
    t1=1e-3,
    description="SC with a further 10x lower gate errors",
)

#: SC with both improvements.
SC_T1_GATES = NoiseModel(
    name="SC+T1+GATES",
    p1=1e-5 / 3,
    p2=1e-4 / 15,
    gate_time_1q=_SC_TIME_1Q,
    gate_time_2q=_SC_TIME_2Q,
    t1=10e-3,
    description="SC with 10x lower gate errors and 10x longer T1",
)

#: Trapped-ion qubit on clock states (Table 3 row 1).
TI_QUBIT = NoiseModel(
    name="TI_QUBIT",
    p1=6.4e-4 / 3,
    p2=1.3e-4 / 15,
    gate_time_1q=_TI_TIME_1Q,
    gate_time_2q=_TI_TIME_2Q,
    t1=None,
    description="171Yb+ qubit, clock states, scattering-limited gates",
)

#: Trapped-ion qutrit without clock-state protection (Table 3 row 2).
BARE_QUTRIT = NoiseModel(
    name="BARE_QUTRIT",
    p1=2.2e-4 / 8,
    p2=4.3e-4 / 80,
    gate_time_1q=_TI_TIME_1Q,
    gate_time_2q=_TI_TIME_2Q,
    t1=None,
    idle_dephasing_rate=0.04,
    description="171Yb+ bare qutrit; small coherent phase idle errors",
)

#: Trapped-ion qutrit on dressed clock states (Table 3 row 3).
DRESSED_QUTRIT = NoiseModel(
    name="DRESSED_QUTRIT",
    p1=1.5e-4 / 8,
    p2=3.1e-4 / 80,
    gate_time_1q=_TI_TIME_1Q,
    gate_time_2q=_TI_TIME_2Q,
    t1=None,
    description="171Yb+ dressed qutrit, clock states, leakage-resilient",
)

#: Table 2's four forward-looking superconducting models, in paper order.
SUPERCONDUCTING_MODELS = (SC, SC_T1, SC_GATES, SC_T1_GATES)

#: Table 3's three trapped-ion models, in paper order.
TRAPPED_ION_MODELS = (TI_QUBIT, BARE_QUTRIT, DRESSED_QUTRIT)

#: Every named model, keyed by name.
ALL_MODELS = {
    model.name: model
    for model in (IBM_CURRENT, *SUPERCONDUCTING_MODELS, *TRAPPED_ION_MODELS)
}
