"""Idle errors: amplitude damping (T1 relaxation) and coherent dephasing.

Appendix A.1.2 of the paper: a qudit idling for time dt relaxes from level m
directly to |0> with probability lambda_m = 1 - exp(-m dt / T1) (eq. 9 — the
|2> state decays twice as fast as |1>).  The Kraus operators are eq. 7
(qubits) and eq. 8 (qutrits), generalised here to any dimension.

Trapped-ion clock-state qutrits have negligible damping; the BARE_QUTRIT
model instead sees small *coherent phase* idle errors (Appendix A.3), which
:func:`dephasing_channel` models as random clock-gate kicks.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..exceptions import NoiseModelError
from .kraus import KrausChannel, UnitaryMixtureChannel


def damping_lambdas(duration: float, t1: float, dim: int) -> tuple[float, ...]:
    """Eq. 9: lambda_m = 1 - exp(-m * duration / T1) for m = 1..dim-1."""
    if t1 <= 0:
        raise NoiseModelError(f"T1 must be positive, got {t1}")
    if duration < 0:
        raise NoiseModelError(f"duration must be non-negative, got {duration}")
    return tuple(
        1.0 - float(np.exp(-m * duration / t1)) for m in range(1, dim)
    )


@lru_cache(maxsize=None)
def amplitude_damping_channel(
    dim: int, lambdas: tuple[float, ...]
) -> KrausChannel:
    """Eqs. 7-8 generalised: K_0 keeps amplitudes (attenuating excited
    levels), K_m maps level m to |0> with amplitude sqrt(lambda_m)."""
    if len(lambdas) != dim - 1:
        raise NoiseModelError(
            f"need {dim - 1} lambda values for dimension {dim}, "
            f"got {len(lambdas)}"
        )
    for lam in lambdas:
        if not 0 <= lam <= 1:
            raise NoiseModelError(f"lambda {lam} outside [0, 1]")
    keep = np.zeros((dim, dim), dtype=complex)
    keep[0, 0] = 1.0
    for m, lam in enumerate(lambdas, start=1):
        keep[m, m] = np.sqrt(1.0 - lam)
    operators = [keep]
    for m, lam in enumerate(lambdas, start=1):
        jump = np.zeros((dim, dim), dtype=complex)
        jump[0, m] = np.sqrt(lam)
        operators.append(jump)
    return KrausChannel(
        f"amplitude_damping(d={dim}, lambdas={lambdas})", (dim,), operators
    )


@lru_cache(maxsize=None)
def dephasing_channel(
    dim: int, probability: float
) -> UnitaryMixtureChannel:
    """Random clock-gate (Z^k) kicks, each with the given probability.

    A lightweight stand-in for the BARE_QUTRIT model's small coherent phase
    idle errors: with probability ``probability`` per non-identity clock
    power, the qudit picks up a relative phase between its levels.
    """
    if probability < 0:
        raise NoiseModelError(f"negative dephasing probability {probability}")
    omega = np.exp(2j * np.pi / dim)
    terms = []
    for power in range(1, dim):
        clock = np.diag([omega ** (power * level) for level in range(dim)])
        terms.append((probability, clock))
    return UnitaryMixtureChannel(
        f"dephasing(d={dim}, p={probability:g})", (dim,), terms
    )
