"""Text diagrams for circuits.

Renders a wire-per-row diagram in the style of the paper's figures:
controls show their activation value (``@1``, ``@2``, ``@0``) and targets
show the gate name, so the Figure 4/5 circuits are recognisable at a
glance in docstrings, examples and debugging sessions.
"""

from __future__ import annotations

from ..gates.controlled import ControlledGate
from ..qudits import Qudit
from .circuit import Circuit

_MAX_CELL = 12


def _cell_labels(op) -> dict[Qudit, str]:
    gate = op.gate
    labels: dict[Qudit, str] = {}
    if isinstance(gate, ControlledGate):
        n_ctrl = gate.num_controls
        for wire, value in zip(op.qudits[:n_ctrl], gate.control_values):
            labels[wire] = f"@{value}"
        sub_name = gate.sub_gate.name[:_MAX_CELL]
        for wire in op.qudits[n_ctrl:]:
            labels[wire] = sub_name
    else:
        name = gate.name[:_MAX_CELL]
        for wire in op.qudits:
            labels[wire] = name
    return labels


def to_text_diagram(circuit: Circuit, max_moments: int | None = None) -> str:
    """A column-per-moment text diagram of ``circuit``.

    ``max_moments`` truncates wide circuits (an ellipsis column is added).
    """
    wires = circuit.all_qudits()
    if not wires:
        return "(empty circuit)"
    moments = list(circuit.moments)
    truncated = False
    if max_moments is not None and len(moments) > max_moments:
        moments = moments[:max_moments]
        truncated = True

    columns: list[dict[Qudit, str]] = []
    for moment in moments:
        column: dict[Qudit, str] = {}
        for op in moment:
            column.update(_cell_labels(op))
        columns.append(column)

    widths = [
        max(3, *(len(col.get(w, "")) for w in wires)) for col in columns
    ]
    name_width = max(len(str(w)) for w in wires)
    lines = []
    for wire in wires:
        cells = []
        for col, width in zip(columns, widths):
            label = col.get(wire, "-" * width)
            cells.append(label.center(width, "-"))
        row = f"{str(wire).rjust(name_width)}: " + "-".join(cells)
        if truncated:
            row += "-..."
        lines.append(row)
    return "\n".join(lines)
