"""Circuit construction: operations, moments, ASAP-scheduled circuits."""

from .operation import GateOperation
from .moment import Moment
from .circuit import Circuit
from .diagram import to_text_diagram
from .schedule import moment_duration, schedule_durations

__all__ = [
    "GateOperation",
    "Moment",
    "Circuit",
    "to_text_diagram",
    "moment_duration",
    "schedule_durations",
]
