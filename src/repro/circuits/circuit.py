"""ASAP-scheduled circuits.

``Circuit.append`` schedules each operation into the earliest moment whose
wires are all free — the same earliest-possible strategy the paper uses via
Cirq's scheduler (Sec. 6.1).  Depth therefore equals the length of the
critical path through the gate DAG, which is the paper's time-cost metric
(Sec. 2).
"""

from __future__ import annotations

import json
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import SchedulingError, SerializationError, SimulationError
from ..gates.base import index_to_values
from ..gates.spec import GateRegistry
from ..qudits import Qudit, total_dimension
from .moment import Moment
from .operation import GateOperation

#: Format tag written by :meth:`Circuit.to_dict`.
SERIALIZATION_VERSION = 2

OpTree = GateOperation | Iterable["OpTree"]


def _flatten(tree: OpTree) -> Iterator[GateOperation]:
    if isinstance(tree, GateOperation):
        yield tree
        return
    for item in tree:
        yield from _flatten(item)


class Circuit:
    """A sequence of moments over mixed-dimension wires."""

    def __init__(self, operations: OpTree = ()) -> None:
        self._moments: list[Moment] = []
        # Index of the last moment using each wire, for O(1) ASAP appends.
        self._last_use: dict[Qudit, int] = {}
        # Earliest moment new appends may occupy (raised by barrier()).
        self._barrier_floor = 0
        # Every floor ever set, so composition can replay barriers.
        self._barrier_history: list[int] = []
        # Gate-count tallies, maintained on append so the count
        # properties are O(1) instead of re-walking all_operations().
        self._num_operations = 0
        self._num_multi_qudit = 0
        self.append(operations)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def append(self, operations: OpTree) -> "Circuit":
        """Append operations with earliest-possible scheduling.

        Returns ``self`` so building can be chained.
        """
        for op in _flatten(operations):
            earliest = -1
            for wire in op.qudits:
                earliest = max(earliest, self._last_use.get(wire, -1))
            index = max(earliest + 1, self._barrier_floor)
            while index >= len(self._moments):
                self._moments.append(Moment())
            self._moments[index] = self._moments[index].with_operation(op)
            for wire in op.qudits:
                self._last_use[wire] = index
            self._count_operation(op)
        return self

    def append_moment(self, operations: OpTree) -> "Circuit":
        """Append operations as one new moment (a scheduling barrier)."""
        ops = list(_flatten(operations))
        moment = Moment(ops)
        self._moments.append(moment)
        index = len(self._moments) - 1
        for wire in moment.qudits:
            self._last_use[wire] = index
        for op in ops:
            self._count_operation(op)
        return self

    def _count_operation(self, op: GateOperation) -> None:
        self._num_operations += 1
        if op.is_multi_qudit:
            self._num_multi_qudit += 1

    def barrier(self) -> "Circuit":
        """Prevent later appends from sliding into existing moments."""
        self._barrier_floor = len(self._moments)
        if (
            self._barrier_floor > 0
            and self._barrier_floor not in self._barrier_history
        ):
            self._barrier_history.append(self._barrier_floor)
        return self

    @property
    def barrier_floors(self) -> tuple[int, ...]:
        """Moment indices at which :meth:`barrier` fixed a floor."""
        return tuple(self._barrier_history)

    def _replay_onto(
        self,
        target: "Circuit",
        transform: "Callable[[GateOperation], OpTree] | None" = None,
    ) -> None:
        """ASAP-append this circuit's operations onto ``target``, re-issuing
        barrier floors so no operation slides past a barrier it respected
        here.  ``transform`` optionally maps each operation to replacement
        operations (the compile passes' hook)."""
        floors = iter(self._barrier_history)
        next_floor = next(floors, None)
        for index, moment in enumerate(self._moments):
            while next_floor is not None and next_floor <= index:
                target.barrier()
                next_floor = next(floors, None)
            if transform is None:
                target.append(moment.operations)
            else:
                for op in moment:
                    target.append(transform(op))
        while next_floor is not None:
            target.barrier()
            next_floor = next(floors, None)
        if self._barrier_floor >= len(self._moments):
            target.barrier()

    def transformed(
        self, transform: "Callable[[GateOperation], OpTree]"
    ) -> "Circuit":
        """Map ``transform`` over every operation, rescheduling ASAP with
        this circuit's barrier floors replayed in place."""
        result = Circuit()
        self._replay_onto(result, transform)
        return result

    def __add__(self, other: "Circuit") -> "Circuit":
        if not isinstance(other, Circuit):
            return NotImplemented
        joined = Circuit()
        self._replay_onto(joined)
        other._replay_onto(joined)
        return joined

    def rescheduled(self, preserve_barriers: bool = True) -> "Circuit":
        """Re-run ASAP scheduling over the circuit's operations.

        With ``preserve_barriers`` (default) barrier floors are replayed, so
        operations merge into earlier moments only up to the nearest barrier;
        without it the circuit is packed as tightly as the gate DAG allows.
        """
        packed = Circuit()
        if preserve_barriers:
            self._replay_onto(packed)
        else:
            packed.append(self.all_operations())
        return packed

    def _segment_bounds(self) -> list[int]:
        """Moment indices bounding the barrier segments: ``[0, f1, .., end]``."""
        end = len(self._moments)
        interior = [f for f in self._barrier_history if 0 < f < end]
        return [0, *interior, end]

    def barrier_segments(self) -> list[tuple[Moment, ...]]:
        """The circuit's moments partitioned at barrier floors.

        Rewrites (the optimizer's passes, most prominently) must never
        move an operation across a barrier, so they operate segment by
        segment: each returned span may be reordered or rewritten
        internally, and :meth:`with_replaced_moments` reassembles the
        circuit with every floor replayed in place.  A circuit with no
        interior barriers is a single segment (possibly empty).
        """
        bounds = self._segment_bounds()
        return [
            tuple(self._moments[lo:hi]) for lo, hi in zip(bounds, bounds[1:])
        ]

    def with_replaced_moments(
        self,
        segments: "Sequence[OpTree | Moment | Sequence[Moment]]",
        preserve_floors: bool = True,
    ) -> "Circuit":
        """Rebuild the circuit from per-segment replacement content.

        ``segments`` provides one entry per :meth:`barrier_segments`
        span, in order.  An entry of :class:`Moment` objects is restored
        verbatim (one moment each, no rescheduling); any other op-tree is
        ASAP-appended, letting replacements pack tighter than the span
        they replace.  With ``preserve_floors`` (the default) a barrier
        is re-issued between consecutive segments — exactly the floors
        :meth:`_replay_onto` replays for ``route_circuit`` and
        ``Circuit.__add__`` — so no rewrite can silently drop a barrier;
        without it the segments merge as the gate DAG allows.
        """
        replacements = [
            [entry]
            if isinstance(entry, (Moment, GateOperation))
            else list(entry)
            for entry in segments
        ]
        expected = len(self._segment_bounds()) - 1
        if len(replacements) != expected:
            raise ValueError(
                f"need {expected} replacement segments (one per barrier "
                f"segment), got {len(replacements)}"
            )
        result = Circuit()
        for position, content in enumerate(replacements):
            if position and preserve_floors:
                result.barrier()
            if any(isinstance(item, Moment) for item in content):
                if not all(isinstance(item, Moment) for item in content):
                    raise ValueError(
                        "a replacement segment must be all moments or "
                        "all operations, not a mix"
                    )
                for moment in content:
                    result.append_moment(moment.operations)
            else:
                result.append(content)
        if preserve_floors and self._barrier_floor >= len(self._moments):
            result.barrier()
        return result

    def inverse(self) -> "Circuit":
        """The inverse circuit (reversed moments of inverted gates)."""
        inv = Circuit()
        for moment in reversed(self._moments):
            inv.append_moment(moment.inverse().operations)
        return inv

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def moments(self) -> tuple[Moment, ...]:
        """The scheduled moments in time order."""
        return tuple(self._moments)

    def all_operations(self) -> Iterator[GateOperation]:
        """Operations in schedule order (moment by moment)."""
        for moment in self._moments:
            yield from moment

    def all_qudits(self) -> list[Qudit]:
        """Wires used anywhere in the circuit, sorted by index."""
        return sorted(self._last_use)

    @property
    def depth(self) -> int:
        """Number of moments = critical-path length (the paper's depth)."""
        return len(self._moments)

    @property
    def num_operations(self) -> int:
        """Total gate count (tallied on append; O(1))."""
        return self._num_operations

    @property
    def two_qudit_gate_count(self) -> int:
        """Number of operations spanning 2+ wires (Figure 10's metric).

        Maintained incrementally on append, so sweeping resource counts
        over large-N constructions never re-walks the moment list.
        """
        return self._num_multi_qudit

    @property
    def single_qudit_gate_count(self) -> int:
        """Number of 1-wire operations (tallied on append; O(1))."""
        return self._num_operations - self._num_multi_qudit

    def max_gate_width(self) -> int:
        """Widest operation in the circuit (2 once fully decomposed)."""
        return max(
            (op.num_qudits for op in self.all_operations()), default=0
        )

    def __len__(self) -> int:
        return len(self._moments)

    def __iter__(self) -> Iterator[Moment]:
        return iter(self._moments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Circuit depth={self.depth} ops={self.num_operations} "
            f"wires={len(self._last_use)}>"
        )

    # ------------------------------------------------------------------
    # Structural identity and serialization
    # ------------------------------------------------------------------
    #
    # Circuits are values: two circuits are equal iff their scheduled
    # moments are structurally equal (same gates on the same wires at the
    # same time steps).  Barrier floors are construction state — they
    # constrain *future* appends, not the operations already scheduled —
    # so they are serialized for faithful round-trips but excluded from
    # equality and hashing.

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self._moments == other._moments

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Note: circuits are mutable builders; hash only settled circuits
        # (e.g. cache keys computed after construction finishes).
        return hash(tuple(self._moments))

    def to_dict(self) -> dict:
        """Plain-data form of the circuit (moments, barriers, version)."""
        return {
            "version": SERIALIZATION_VERSION,
            "moments": [moment.to_dict() for moment in self._moments],
            "barriers": list(self._barrier_history),
            "barrier_floor": self._barrier_floor,
        }

    @classmethod
    def from_dict(
        cls, data: Mapping, registry: GateRegistry | None = None
    ) -> "Circuit":
        """Rebuild a circuit from :meth:`to_dict` data.

        Moments are restored verbatim (no rescheduling), so
        ``Circuit.from_dict(c.to_dict()) == c`` for every circuit; the
        barrier state is restored too, so continued building behaves
        like it would on the original.
        """
        version = data.get("version")
        if version != SERIALIZATION_VERSION:
            raise SerializationError(
                f"unsupported circuit format version {version!r} "
                f"(this library reads version {SERIALIZATION_VERSION})"
            )
        circuit = cls()
        try:
            for moment_data in data["moments"]:
                circuit.append_moment(
                    Moment.from_dict(moment_data, registry).operations
                )
        except (KeyError, ValueError, TypeError) as error:
            raise SerializationError(
                f"malformed circuit data: {error}"
            ) from error
        circuit._barrier_history = [
            int(floor) for floor in data.get("barriers", [])
        ]
        circuit._barrier_floor = int(data.get("barrier_floor", 0))
        return circuit

    def to_json(self, *, indent: int | None = None) -> str:
        """JSON text of :meth:`to_dict` (sorted keys; compact by default)."""
        return json.dumps(
            self.to_dict(),
            sort_keys=True,
            indent=indent,
            separators=(",", ":") if indent is None else None,
        )

    @classmethod
    def from_json(
        cls, text: str, registry: GateRegistry | None = None
    ) -> "Circuit":
        """Rebuild a circuit from :meth:`to_json` text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(
                f"invalid circuit JSON: {error}"
            ) from error
        if not isinstance(data, dict):
            raise SerializationError(
                f"circuit JSON must be an object, got "
                f"{type(data).__name__}"
            )
        return cls.from_dict(data, registry)

    # ------------------------------------------------------------------
    # Dense semantics (small circuits only; tests and verification)
    # ------------------------------------------------------------------

    def unitary(self, wire_order: Sequence[Qudit] | None = None) -> np.ndarray:
        """Dense unitary of the whole circuit.

        Exponential in width — use only for verification of small circuits.
        The simulator modules apply circuits to state vectors instead
        (Sec. 6.2: never build the d^N x d^N operator).
        """
        wires = list(wire_order) if wire_order else self.all_qudits()
        missing = set(self.all_qudits()) - set(wires)
        if missing:
            raise SimulationError(f"wire_order missing wires {missing}")
        total = total_dimension(wires)
        if total > 1 << 14:
            raise SimulationError(
                f"refusing to build a {total}x{total} dense unitary"
            )
        from ..sim.state import StateVector

        columns = []
        dims = [w.dimension for w in wires]
        for index in range(total):
            state = StateVector.computational_basis(
                wires, index_to_values(index, dims)
            )
            for op in self.all_operations():
                state.apply_operation(op)
            columns.append(state.vector)
        return np.stack(columns, axis=1)

    def classical_map(
        self, assignment: Mapping[Qudit, int]
    ) -> dict[Qudit, int]:
        """Push a basis-state assignment through the circuit.

        Linear in circuit size and width — the paper's fast verification
        path.  All gates must be classical permutations.
        """
        values = dict(assignment)
        for op in self.all_operations():
            for wire in op.qudits:
                if wire not in values:
                    raise SchedulingError(
                        f"no input value provided for wire {wire}"
                    )
            values.update(op.classical_action(values))
        return values
