"""A moment: operations executing simultaneously on disjoint wires.

Moments are the unit of time in the paper's noise methodology (Fig. 8):
gate errors attach to each operation in the moment, then idle errors attach
to *every* wire, scaled by the moment's duration.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..exceptions import SchedulingError
from ..gates.spec import GateRegistry
from ..qudits import Qudit
from .operation import GateOperation


class Moment:
    """An immutable set of wire-disjoint simultaneous operations."""

    __slots__ = ("_operations", "_qudits")

    def __init__(self, operations: Iterable[GateOperation] = ()) -> None:
        ops = tuple(operations)
        used: set[Qudit] = set()
        for op in ops:
            overlap = used.intersection(op.qudits)
            if overlap:
                raise SchedulingError(
                    f"moment operations overlap on wires {sorted(overlap)}"
                )
            used.update(op.qudits)
        self._operations = ops
        self._qudits = frozenset(used)

    @property
    def operations(self) -> tuple[GateOperation, ...]:
        """Operations in this moment."""
        return self._operations

    @property
    def qudits(self) -> frozenset[Qudit]:
        """Wires touched by this moment."""
        return self._qudits

    @property
    def has_multi_qudit_gate(self) -> bool:
        """True iff any operation spans 2+ wires (sets the moment duration)."""
        return any(op.is_multi_qudit for op in self._operations)

    def operates_on(self, wires: Iterable[Qudit]) -> bool:
        """True iff this moment touches any of ``wires``."""
        return not self._qudits.isdisjoint(wires)

    def with_operation(self, op: GateOperation) -> "Moment":
        """A new moment with ``op`` added (wires must be free)."""
        return Moment(self._operations + (op,))

    def inverse(self) -> "Moment":
        """Moment of the inverses of all operations."""
        return Moment(op.inverse() for op in self._operations)

    # -- serialization and structural identity ---------------------------

    def to_dict(self) -> dict:
        """Plain-data form: the operations in insertion order."""
        return {"operations": [op.to_dict() for op in self._operations]}

    @classmethod
    def from_dict(
        cls, data: Mapping, registry: GateRegistry | None = None
    ) -> "Moment":
        """Rebuild a moment from :meth:`to_dict` data."""
        return cls(
            GateOperation.from_dict(op, registry)
            for op in data["operations"]
        )

    def __eq__(self, other: object) -> bool:
        # Operations within a moment are simultaneous; order is
        # presentation only, so compare as sets.
        if not isinstance(other, Moment):
            return NotImplemented
        return frozenset(self._operations) == frozenset(other._operations)

    def __hash__(self) -> int:
        return hash(frozenset(self._operations))

    def __iter__(self) -> Iterator[GateOperation]:
        return iter(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Moment[" + ", ".join(repr(op) for op in self._operations) + "]"
