"""Moment timing.

Idle errors depend on wall-clock duration (Sec. 6.1): a moment containing a
two-qudit gate lasts the (longer) two-qudit gate time; a moment of only
single-qudit gates lasts the single-qudit gate time.
"""

from __future__ import annotations

from typing import Sequence

from .moment import Moment


def moment_duration(
    moment: Moment, single_qudit_time: float, multi_qudit_time: float
) -> float:
    """Duration of one moment given the two gate times (seconds)."""
    if moment.has_multi_qudit_gate:
        return multi_qudit_time
    return single_qudit_time


def schedule_durations(
    moments: Sequence[Moment],
    single_qudit_time: float,
    multi_qudit_time: float,
) -> list[float]:
    """Per-moment durations for a whole circuit."""
    return [
        moment_duration(m, single_qudit_time, multi_qudit_time)
        for m in moments
    ]


def total_duration(
    moments: Sequence[Moment],
    single_qudit_time: float,
    multi_qudit_time: float,
) -> float:
    """Total wall-clock time of a circuit under the given gate times."""
    return sum(
        schedule_durations(moments, single_qudit_time, multi_qudit_time)
    )
