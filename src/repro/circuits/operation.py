"""A gate bound to concrete wires."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..exceptions import DimensionMismatchError
from ..gates.base import Gate
from ..gates.spec import GATE_REGISTRY, GateRegistry, GateSpec
from ..qudits import Qudit, check_distinct


class GateOperation:
    """``gate`` applied to an ordered tuple of distinct wires."""

    __slots__ = ("_gate", "_qudits")

    def __init__(self, gate: Gate, wires: Sequence[Qudit]) -> None:
        wires = tuple(wires)
        check_distinct(wires)
        gate.validate_wires(wires)
        self._gate = gate
        self._qudits = wires

    @property
    def gate(self) -> Gate:
        """The unbound gate."""
        return self._gate

    @property
    def qudits(self) -> tuple[Qudit, ...]:
        """The wires the gate acts on, in gate order."""
        return self._qudits

    @property
    def num_qudits(self) -> int:
        """Number of wires spanned."""
        return len(self._qudits)

    @property
    def is_multi_qudit(self) -> bool:
        """True for entangling (2+ wire) operations."""
        return len(self._qudits) >= 2

    def inverse(self) -> "GateOperation":
        """The inverse operation on the same wires."""
        return GateOperation(self._gate.inverse(), self._qudits)

    def unitary(self) -> np.ndarray:
        """The gate's matrix (not expanded to any ambient space)."""
        return self._gate.unitary()

    def classical_action(
        self, assignment: Mapping[Qudit, int]
    ) -> dict[Qudit, int]:
        """Apply the gate's permutation action to a wire-value assignment.

        Returns a dict holding only the wires this operation touches; wires
        absent from ``assignment`` raise ``KeyError``.
        """
        before = tuple(assignment[w] for w in self._qudits)
        after = self._gate.classical_action(before)
        return dict(zip(self._qudits, after))

    def with_wires(self, mapping: Mapping[Qudit, Qudit]) -> "GateOperation":
        """Re-bind the same gate onto substituted wires."""
        new_wires = tuple(mapping.get(w, w) for w in self._qudits)
        for old, new in zip(self._qudits, new_wires):
            if old.dimension != new.dimension:
                raise DimensionMismatchError(
                    f"cannot remap {old} (d={old.dimension}) to {new} "
                    f"(d={new.dimension})"
                )
        return GateOperation(self._gate, new_wires)

    # -- serialization and structural identity ---------------------------

    def to_dict(self) -> dict:
        """Plain-data form: the gate's spec plus ``[index, dim]`` wires."""
        return {
            "gate": self._gate.spec().to_dict(),
            "wires": [[w.index, w.dimension] for w in self._qudits],
        }

    @classmethod
    def from_dict(
        cls, data: Mapping, registry: GateRegistry | None = None
    ) -> "GateOperation":
        """Rebuild an operation from :meth:`to_dict` data."""
        registry = registry if registry is not None else GATE_REGISTRY
        gate = registry.build(GateSpec.from_dict(data["gate"]))
        wires = tuple(Qudit(index, dim) for index, dim in data["wires"])
        return cls(gate, wires)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        wires = ", ".join(str(w) for w in self._qudits)
        return f"{self._gate.name}({wires})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GateOperation):
            return NotImplemented
        return self._qudits == other._qudits and self._gate == other._gate

    def __hash__(self) -> int:
        return hash((self._qudits, self._gate))
