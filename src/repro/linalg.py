"""Small linear-algebra toolkit used across the library.

Everything here operates on plain numpy arrays.  The simulator never builds
d^N x d^N operators for whole circuits (Sec. 6.2 of the paper); these helpers
are for *per-gate* matrices, verification, and test support.
"""

from __future__ import annotations

import numpy as np

ATOL = 1e-9


def is_unitary(matrix: np.ndarray, atol: float = ATOL) -> bool:
    """True iff ``matrix`` is square and unitary within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    eye = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, eye, atol=atol))


def is_permutation_matrix(matrix: np.ndarray, atol: float = ATOL) -> bool:
    """True iff ``matrix`` is a 0/1 permutation matrix within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    rounded = np.where(np.abs(matrix - 1) < atol, 1.0, 0.0)
    if not np.allclose(matrix, rounded, atol=atol):
        return False
    return bool(
        np.all(rounded.sum(axis=0) == 1) and np.all(rounded.sum(axis=1) == 1)
    )


def permutation_of(matrix: np.ndarray, atol: float = ATOL) -> list[int]:
    """Return ``perm`` with ``matrix @ e_j = e_perm[j]`` for a permutation
    matrix, i.e. the basis-state map ``j -> perm[j]``.

    Raises ``ValueError`` if the matrix is not a permutation matrix.
    """
    matrix = np.asarray(matrix)
    if not is_permutation_matrix(matrix, atol=atol):
        raise ValueError("matrix is not a permutation matrix")
    return [int(np.argmax(np.abs(matrix[:, j]))) for j in range(matrix.shape[1])]


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-7
) -> bool:
    """True iff ``a == exp(i phi) * b`` for some real ``phi``.

    Handy for comparing decompositions that are only required to agree up to
    an unobservable global phase.
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    # Align phases on the largest-magnitude entry of b.
    flat_b = b.reshape(-1)
    k = int(np.argmax(np.abs(flat_b)))
    if np.abs(flat_b[k]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a.reshape(-1)[k] / flat_b[k]
    if not np.isclose(np.abs(phase), 1.0, atol=1e-6):
        return False
    return bool(np.allclose(a, phase * b, atol=atol))


def matrix_root(matrix: np.ndarray, power: float) -> np.ndarray:
    """A (principal) fractional power ``matrix ** power`` of a unitary.

    Uses the eigendecomposition; for unitary input the result is unitary.
    Eigenvalue phases are taken in (-pi, pi], which matches the usual
    principal-root convention (e.g. sqrt(X) is the standard V gate).
    """
    matrix = np.asarray(matrix, dtype=complex)
    values, vectors = np.linalg.eig(matrix)
    # Clamp |eigenvalue| to 1 to keep unitarity under roundoff.
    phases = np.angle(values)
    rooted = np.exp(1j * phases * power)
    return (vectors * rooted) @ np.linalg.inv(vectors)


def random_state_vector(
    dim: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Haar-random pure state of dimension ``dim`` in O(dim) time and space.

    The paper highlights (Sec. 6.2) generating random states directly as a
    single column instead of truncating a Haar-random d^N x d^N unitary:
    a vector of i.i.d. complex Gaussians, normalised, is exactly the first
    column of a Haar-random unitary in distribution.
    """
    rng = rng or np.random.default_rng()
    raw = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return raw / np.linalg.norm(raw)


def random_unitary(dim: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Haar-random unitary via QR of a complex Ginibre matrix (test helper)."""
    rng = rng or np.random.default_rng()
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(raw)
    # Fix the phase ambiguity of QR to get the Haar measure.
    d = np.diagonal(r)
    return q * (d / np.abs(d))


def kron_all(*matrices: np.ndarray) -> np.ndarray:
    """Kronecker product of all arguments, left to right."""
    out = np.array([[1.0 + 0j]])
    for m in matrices:
        out = np.kron(out, np.asarray(m, dtype=complex))
    return out


def fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Squared overlap |<a|b>|^2 between two pure state vectors.

    This is the paper's reliability metric (Algorithm 1's return value).
    """
    a = np.asarray(state_a).reshape(-1)
    b = np.asarray(state_b).reshape(-1)
    if a.shape != b.shape:
        raise ValueError(
            f"states live in different spaces: {a.shape} vs {b.shape}"
        )
    return float(np.abs(np.vdot(a, b)) ** 2)
