"""Common result records returned by every backend.

The four simulators each used to return a different shape (a wire-value
dict, a :class:`~repro.sim.state.StateVector`, a
:class:`~repro.sim.fidelity.FidelityEstimate`, a
:class:`~repro.sim.density.DensityMatrix`).  The execution layer funnels
them all into :class:`RunResult` — one record carrying whichever payloads
the backend produced — so sweeps, caching and parallel merging can treat
every backend uniformly.  Noisy trajectory runs return the
:class:`FidelityResult` refinement, which adds the paper's mean-fidelity
statistics and supports exact shard merging.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Mapping, Sequence

from ..qudits import Qudit
from ..sim.density import DensityMatrix
from ..sim.fidelity import FidelityEstimate
from ..sim.measurement import MeasurementResult
from ..sim.parallel import merge_estimates
from ..sim.state import StateVector


def _frozen(mapping: Mapping | None) -> Mapping:
    return MappingProxyType(dict(mapping or {}))


@dataclass(frozen=True)
class RunResult:
    """Outcome of one backend run of one circuit.

    Exactly which payload fields are filled depends on the backend kind:
    ``values`` for classical runs, ``state`` (plus ``measurements`` when
    shots were requested) for state-vector runs, ``density`` for exact
    noisy evolution.  ``params`` records the sweep point that produced the
    run (empty outside sweeps) and ``seed`` the derived seed actually used,
    so results stay reproducible after merging.
    """

    backend: str
    wires: tuple[Qudit, ...]
    params: Mapping = field(default_factory=dict)
    seed: int | None = None
    values: tuple[int, ...] | None = None
    state: StateVector | None = None
    density: DensityMatrix | None = None
    measurements: MeasurementResult | None = None
    metadata: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "wires", tuple(self.wires))
        object.__setattr__(self, "params", _frozen(self.params))
        object.__setattr__(self, "metadata", _frozen(self.metadata))

    # Mapping proxies cannot be pickled, but results must cross process
    # boundaries for parallel sweeps — swap them for dicts in transit.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["params"] = dict(self.params)
        state["metadata"] = dict(self.metadata)
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "params", _frozen(state["params"]))
        object.__setattr__(self, "metadata", _frozen(state["metadata"]))

    def with_params(self, params: Mapping) -> "RunResult":
        """The same result tagged with a sweep point."""
        return replace(self, params=_frozen(params))

    def probability_of(self, outcome: Sequence[int]) -> float:
        """Probability of a basis outcome, from whichever payload exists.

        Prefers the exact state/density payload; falls back to empirical
        shot frequencies; a classical run returns 1.0 or 0.0.
        """
        outcome = tuple(outcome)
        if self.state is not None:
            return self.state.probability_of(outcome)
        if self.density is not None:
            basis = StateVector.computational_basis(
                list(self.wires), outcome
            )
            return self.density.fidelity_with_pure(basis)
        if self.values is not None:
            return 1.0 if self.values == outcome else 0.0
        if self.measurements is not None:
            return self.measurements.probability_of(outcome)
        raise ValueError("result carries no payload to query")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        payloads = [
            name
            for name in ("values", "state", "density", "measurements")
            if getattr(self, name) is not None
        ]
        suffix = f" params={dict(self.params)}" if self.params else ""
        return (
            f"RunResult[{self.backend}] over {len(self.wires)} wires "
            f"({', '.join(payloads) or 'empty'}){suffix}"
        )


@dataclass(frozen=True)
class FidelityResult(RunResult):
    """A :class:`RunResult` carrying trajectory fidelity statistics."""

    estimate: FidelityEstimate | None = None

    @property
    def mean_fidelity(self) -> float:
        """Mean trajectory fidelity (the Figure 11 observable)."""
        return self._require().mean_fidelity

    @property
    def std_error(self) -> float:
        """Standard error of the mean fidelity."""
        return self._require().std_error

    @property
    def two_sigma(self) -> float:
        """The paper's quoted uncertainty: two standard errors."""
        return self._require().two_sigma

    @property
    def trials(self) -> int:
        """Number of trajectories aggregated."""
        return self._require().trials

    def _require(self) -> FidelityEstimate:
        if self.estimate is None:
            raise ValueError("fidelity result carries no estimate")
        return self.estimate

    @staticmethod
    def merge(results: Sequence["FidelityResult"]) -> "FidelityResult":
        """Exactly pool shard results (weighted means, pooled variance).

        The merged estimate is equivalent in distribution to one serial
        run with the combined trial count, which is what makes process-
        pool sharding transparent to callers.
        """
        if not results:
            raise ValueError("nothing to merge")
        merged = merge_estimates([r._require() for r in results])
        first = results[0]
        return FidelityResult(
            backend=first.backend,
            wires=first.wires,
            params=first.params,
            seed=first.seed,
            metadata={**first.metadata, "merged_shards": len(results)},
            estimate=merged,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.estimate is None:
            return super().__str__()
        suffix = f" params={dict(self.params)}" if self.params else ""
        return f"FidelityResult[{self.backend}] {self.estimate}{suffix}"
