"""Composable circuit-transform passes.

Each pass maps a :class:`~repro.circuits.circuit.Circuit` to a new
circuit, optionally reporting metadata (e.g. SWAP counts from routing).
Passes replace the ad-hoc ``decompose=...`` flags and per-app lowering
calls scattered through the constructions: a
:class:`~repro.execution.pipeline.CompilePipeline` chains them in order,
mirroring Cirq-style transformer stacks (cf. the CirqTrit
``qubit_to_qutrit`` transformer this module's promotion pass follows).

All structural passes preserve barrier semantics: operations are replayed
through ASAP scheduling with the source circuit's barrier floors
re-issued, so a ``barrier()`` placed upstream keeps separating phases
downstream.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..arch.metrics import routing_metrics
from ..arch.router import GreedyRouter, LookaheadRouter, RouterConfig, resolve_router
from ..arch.routing import RoutedCircuit
from ..arch.topology import (
    CouplingGraph,
    TopologySpec,
    all_to_all,
    line,
    sized_topology,
)
from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import DecompositionError
from ..gates.base import Gate, PermutationGate, index_to_values, values_to_index
from ..gates.decompositions import decompose_operation
from ..gates.matrix import MatrixGate
from ..gates.qutrit import embedded_qubit_gate
from ..qudits import Qudit


class CompilePass(ABC):
    """One circuit-to-circuit transformation step."""

    @property
    def name(self) -> str:
        """Pass label used in pipeline reports."""
        return type(self).__name__

    @abstractmethod
    def transform(self, circuit: Circuit) -> Circuit:
        """Return the transformed circuit.

        Passes with interesting bookkeeping additionally fill
        :attr:`last_metadata` during the call.
        """

    #: Metadata from the most recent :meth:`transform` call.
    last_metadata: Mapping = {}

    def __call__(self, circuit: Circuit) -> Circuit:
        return self.transform(circuit)


def transform_operations(
    circuit: Circuit,
    fn: Callable[[GateOperation], Iterable[GateOperation]],
) -> Circuit:
    """Map ``fn`` over every operation, rescheduling ASAP.

    Barrier floors of the source circuit are replayed in place, so the
    result respects the same phase separations.  Thin alias for
    :meth:`Circuit.transformed`, kept as the pass-facing name.
    """
    return circuit.transformed(fn)


class DecomposeToWidth2(CompilePass):
    """Lower every 3+-wire gate to 1- and 2-qudit gates.

    Uses the library's decomposition rules (Barenco CC-U for qubit
    controls, the root-of-U cascade on a qudit host otherwise) — the same
    lowering the constructions used to trigger through ``decompose=True``
    flags.
    """

    def transform(self, circuit: Circuit) -> Circuit:
        before = circuit.num_operations
        lowered = transform_operations(circuit, decompose_operation)
        self.last_metadata = {
            "ops_before": before,
            "ops_after": lowered.num_operations,
        }
        return lowered


def promote_gate(gate: Gate, new_dims: Sequence[int]) -> Gate:
    """Embed ``gate`` into wires of (elementwise larger) ``new_dims``.

    The gate acts identically on its original levels and as the identity
    on every basis state touching an added level — the CirqTrit
    ``SingleQubitGateToQutritGate`` / ``TwoQubitGateToQutritGate``
    behaviour, generalised to any dimensions and arities.  Permutation
    gates stay permutation gates so classical simulation keeps working.
    """
    new_dims = tuple(new_dims)
    old_dims = gate.dims
    if len(new_dims) != len(old_dims) or any(
        n < o for n, o in zip(new_dims, old_dims)
    ):
        raise DecompositionError(
            f"cannot promote {gate.name} from dims {old_dims} to {new_dims}"
        )
    if new_dims == old_dims:
        return gate
    if len(old_dims) == 1 and old_dims[0] == 2:
        return embedded_qubit_gate(gate, new_dims[0])
    new_total = 1
    for d in new_dims:
        new_total *= d

    def in_subspace(values: tuple[int, ...]) -> bool:
        return all(v < d for v, d in zip(values, old_dims))

    if gate.is_classical:
        mapping = list(range(new_total))
        for index in range(new_total):
            values = index_to_values(index, new_dims)
            if in_subspace(values):
                image = gate.classical_action(values)
                mapping[index] = values_to_index(image, new_dims)
        return PermutationGate(
            mapping, new_dims, f"{gate.name}@{new_dims}"
        )

    matrix = np.eye(new_total, dtype=complex)
    unitary = gate.unitary()
    old_total = unitary.shape[0]
    embed = [
        values_to_index(index_to_values(k, old_dims), new_dims)
        for k in range(old_total)
    ]
    for row in range(old_total):
        for col in range(old_total):
            matrix[embed[row], embed[col]] = unitary[row, col]
    return MatrixGate(matrix, new_dims, name=f"{gate.name}@{new_dims}")


class PromoteQubitsToQutrits(CompilePass):
    """Deprecated: use :class:`repro.interop.LiftToQutrits`.

    This pass promoted *wires* and embedded each gate through anonymous
    matrix/permutation wrappers; the interop layer's lift keeps the
    sub-gate (so circuits lower back) and verifies its own output — no
    qubit-dimensioned gate can slip through silently any more.  The
    shim delegates to the lift and keeps the old error contract:
    failures surface as :class:`DecompositionError`, metadata keeps the
    ``promoted_wires`` key.
    """

    def __init__(self, dim: int = 3) -> None:
        warnings.warn(
            "PromoteQubitsToQutrits is deprecated; use "
            "repro.interop.LiftToQutrits",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..interop.transform import LiftToQutrits

        self._delegate = LiftToQutrits(dim)

    def transform(self, circuit: Circuit) -> Circuit:
        from ..exceptions import InteropError

        try:
            promoted_circuit = self._delegate.transform(circuit)
        except InteropError as error:
            raise DecompositionError(str(error)) from error
        metadata = dict(self._delegate.last_metadata)
        self.last_metadata = {
            "promoted_wires": metadata.pop("lifted_wires"),
            **metadata,
        }
        return promoted_circuit


class RouteToTopology(CompilePass):
    """Insert SWAPs so two-qudit gates only touch coupled sites.

    ``topology`` may be a fixed :class:`CouplingGraph`, a serializable
    :class:`~repro.arch.topology.TopologySpec`, a zoo kind name
    (``"line"``, ``"grid_2d"``, ``"heavy_hex"``, ... — sized to the
    circuit at transform time via
    :func:`~repro.arch.topology.sized_topology`), or a callable
    ``size -> CouplingGraph``.  ``router`` selects the engine: the
    lookahead (SABRE-style) router by default, ``"greedy"`` for the v1
    one-hop baseline, or a :class:`~repro.arch.router.RouterConfig` /
    router instance for tuned runs.  The lookahead engine decomposes
    gates wider than two wires itself; the greedy baseline requires
    :class:`DecomposeToWidth2` first.

    Besides the transformed circuit, the pass records routing-aware
    metrics (:func:`repro.arch.metrics.routing_metrics`) in
    ``last_metadata`` and keeps the full :class:`RoutedCircuit` —
    placements included — as ``last_routed``.
    """

    def __init__(
        self,
        topology: (
            CouplingGraph
            | TopologySpec
            | str
            | Callable[[int], CouplingGraph]
        ) = line,
        placement: dict[Qudit, int] | None = None,
        router: (
            str | RouterConfig | LookaheadRouter | GreedyRouter | None
        ) = None,
    ) -> None:
        self._topology = topology
        self._placement = placement
        self._router = resolve_router(router)
        #: Full routing record of the most recent transform.
        self.last_routed: RoutedCircuit | None = None

    @property
    def name(self) -> str:
        return f"RouteToTopology[{self._router.name}]"

    def _resolve_topology(self, num_wires: int) -> CouplingGraph:
        if isinstance(self._topology, CouplingGraph):
            return self._topology
        if isinstance(self._topology, TopologySpec):
            return self._topology.build()
        if isinstance(self._topology, str):
            return sized_topology(self._topology, num_wires)
        return self._topology(num_wires)

    def transform(self, circuit: Circuit) -> Circuit:
        wires = circuit.all_qudits()
        topology = self._resolve_topology(len(wires))
        routed = self._router.route(
            circuit, topology, placement=self._placement, wires=wires
        )
        self.last_routed = routed
        metrics = routing_metrics(circuit, routed)
        self.last_metadata = {
            "topology": routed.topology_name,
            "router": routed.router_name,
            "swap_count": routed.swap_count,
            "routed_depth": routed.depth,
            "depth_overhead": metrics.depth_overhead,
            "swap_overhead": metrics.swap_overhead,
            "initial_placement": dict(routed.initial_placement),
            "final_placement": dict(routed.final_placement),
        }
        return routed.circuit


class OptimizePass(CompilePass):
    """Run the rewrite engine (:mod:`repro.optimize`) as a pipeline stage.

    Wraps a :class:`~repro.optimize.RewriteEngine` — cancellation,
    diagonal fusion and commutation packing to fixpoint under the cost
    model — as a :class:`CompilePass`, so pipelines get pre- and
    post-routing optimization slots.  ``label`` distinguishes the slots
    in pipeline reports (``Optimize[pre-route]`` vs
    ``Optimize[post-route]``); ``last_report`` keeps the engine's full
    :class:`~repro.optimize.OptimizationReport` for the most recent
    transform.
    """

    def __init__(
        self,
        passes: Sequence | None = None,
        cost_model=None,
        verify: "bool | str" = False,
        label: str = "optimize",
        engine=None,
    ) -> None:
        from ..optimize import RewriteEngine

        if engine is None:
            engine = RewriteEngine(
                passes=passes, cost_model=cost_model, verify=verify
            )
        self._engine = engine
        self._label = label
        #: Engine report of the most recent transform (None before any).
        self.last_report = None

    @property
    def name(self) -> str:
        return f"Optimize[{self._label}]"

    @property
    def engine(self):
        """The wrapped rewrite engine."""
        return self._engine

    def transform(self, circuit: Circuit) -> Circuit:
        optimized, report = self._engine.run(circuit)
        self.last_report = report
        self.last_metadata = {
            "passes": [p.name for p in self._engine.passes],
            "iterations": report.iterations,
            "gates_before": report.cost_before.total_gates,
            "gates_after": report.cost_after.total_gates,
            "two_qudit_before": report.cost_before.two_qudit_gates,
            "two_qudit_after": report.cost_after.two_qudit_gates,
            "depth_before": report.cost_before.depth,
            "depth_after": report.cost_after.depth,
            "verified": report.verified,
        }
        return optimized


class ASAPReschedule(CompilePass):
    """Re-pack operations as early as the gate DAG allows.

    Drops barrier floors — the explicit "tighten everything" step used
    before depth measurements.
    """

    def transform(self, circuit: Circuit) -> Circuit:
        packed = circuit.rescheduled(preserve_barriers=False)
        self.last_metadata = {
            "depth_before": circuit.depth,
            "depth_after": packed.depth,
        }
        return packed


class MergeMoments(CompilePass):
    """Barrier-preserving merge: pack moments up to each barrier floor.

    The safe default finishing pass — the compression of
    :class:`ASAPReschedule` without letting phases bleed across
    ``barrier()`` calls.
    """

    def transform(self, circuit: Circuit) -> Circuit:
        packed = circuit.rescheduled(preserve_barriers=True)
        self.last_metadata = {
            "depth_before": circuit.depth,
            "depth_after": packed.depth,
        }
        return packed


__all__ = [
    "CompilePass",
    "transform_operations",
    "DecomposeToWidth2",
    "OptimizePass",
    "PromoteQubitsToQutrits",
    "promote_gate",
    "RouteToTopology",
    "ASAPReschedule",
    "MergeMoments",
    "all_to_all",
    "line",
]
