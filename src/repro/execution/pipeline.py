"""Ordered pass pipelines and the compiled-circuit record.

A :class:`CompilePipeline` runs a sequence of
:class:`~repro.execution.passes.CompilePass` steps and returns a
:class:`CompiledCircuit` carrying the final circuit plus per-pass
metadata (gate counts, SWAP overhead, depth deltas), so benchmarks can
report exactly what each stage cost — the paper's depth/gate-count
accounting (Figures 9 and 10) falls out of these reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from ..arch.topology import CouplingGraph
from ..circuits.circuit import Circuit
from ..qudits import Qudit
from .passes import (
    ASAPReschedule,
    CompilePass,
    DecomposeToWidth2,
    MergeMoments,
    OptimizePass,
    RouteToTopology,
)


@dataclass(frozen=True)
class CompiledCircuit:
    """Output of a pipeline run: the circuit plus a stage-by-stage trace."""

    circuit: Circuit
    pass_names: tuple[str, ...]
    pass_metadata: tuple[dict, ...]
    input_depth: int
    input_operations: int

    @property
    def depth(self) -> int:
        """Depth of the compiled circuit."""
        return self.circuit.depth

    @property
    def num_operations(self) -> int:
        """Gate count of the compiled circuit."""
        return self.circuit.num_operations

    def report(self) -> str:
        """Human-readable per-pass summary."""
        lines = [
            f"input: depth={self.input_depth} "
            f"ops={self.input_operations}"
        ]
        for name, meta in zip(self.pass_names, self.pass_metadata):
            detail = ", ".join(f"{k}={v}" for k, v in meta.items())
            lines.append(f"{name}: {detail}" if detail else name)
        lines.append(
            f"output: depth={self.depth} ops={self.num_operations}"
        )
        return "\n".join(lines)


class CompilePipeline:
    """An immutable ordered chain of compile passes."""

    def __init__(
        self, passes: Sequence[CompilePass] = (), name: str = "pipeline"
    ) -> None:
        self._passes = tuple(passes)
        self._name = name

    @property
    def name(self) -> str:
        """Pipeline label used in reports and cache keys."""
        return self._name

    @property
    def passes(self) -> tuple[CompilePass, ...]:
        """The passes, in execution order."""
        return self._passes

    @property
    def pass_names(self) -> tuple[str, ...]:
        """Names of the passes, in execution order."""
        return tuple(p.name for p in self._passes)

    def __iter__(self) -> Iterator[CompilePass]:
        return iter(self._passes)

    def __len__(self) -> int:
        return len(self._passes)

    def then(self, *passes: CompilePass) -> "CompilePipeline":
        """A new pipeline with ``passes`` appended."""
        return CompilePipeline(self._passes + passes, name=self._name)

    def compile(self, circuit: Circuit) -> CompiledCircuit:
        """Run every pass in order and collect the stage trace."""
        trace: list[dict] = []
        current = circuit
        for compile_pass in self._passes:
            compile_pass.last_metadata = {}
            current = compile_pass.transform(current)
            trace.append(dict(compile_pass.last_metadata))
        return CompiledCircuit(
            circuit=current,
            pass_names=self.pass_names,
            pass_metadata=tuple(trace),
            input_depth=circuit.depth,
            input_operations=circuit.num_operations,
        )

    def __call__(self, circuit: Circuit) -> CompiledCircuit:
        return self.compile(circuit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = " -> ".join(self.pass_names) or "identity"
        return f"<CompilePipeline {self._name}: {inner}>"


def lowering_pipeline() -> CompilePipeline:
    """Decompose to hardware width, then barrier-preserving repack.

    The default lowering the constructions' ``decompose=True`` flag used
    to perform inline.
    """
    return CompilePipeline(
        [DecomposeToWidth2(), MergeMoments()], name="lowering"
    )


def qutrit_promotion_pipeline(dim: int = 3) -> CompilePipeline:
    """Lift qubit wires to qutrits, then repack.

    Runs the interop layer's :class:`~repro.interop.LiftToQutrits`
    (structure-preserving, self-verifying) — the pass that supersedes
    the deprecated ``PromoteQubitsToQutrits``.
    """
    from ..interop.transform import LiftToQutrits

    return CompilePipeline(
        [LiftToQutrits(dim), MergeMoments()],
        name="qutrit-promotion",
    )


def optimize_pipeline(
    passes: "Sequence | None" = None,
    cost_model=None,
    verify: "bool | str" = False,
) -> CompilePipeline:
    """Rewrite-engine optimization as a standalone pipeline."""
    return CompilePipeline(
        [OptimizePass(passes=passes, cost_model=cost_model, verify=verify)],
        name="optimize",
    )


def hardware_pipeline(
    topology: "CouplingGraph | str | Callable[[int], CouplingGraph]",
    placement: dict[Qudit, int] | None = None,
    router: str | None = None,
    optimize: bool = False,
) -> CompilePipeline:
    """Full lowering for a constrained device: decompose, route, repack.

    ``topology`` accepts everything :class:`RouteToTopology` does (zoo
    kind names size themselves to the circuit); ``router`` picks the
    engine (default: the lookahead router).  With ``optimize`` the
    rewrite engine runs in both slots — after decomposition (shrink the
    circuit the router sees) and after routing (clean up around the
    inserted SWAPs) — which is what the ``hardware-*-opt`` named
    pipelines expose.
    """
    passes: list[CompilePass] = [DecomposeToWidth2()]
    if optimize:
        passes.append(OptimizePass(label="pre-route"))
    passes.append(RouteToTopology(topology, placement, router=router))
    if optimize:
        passes.append(OptimizePass(label="post-route"))
    passes.append(ASAPReschedule())
    return CompilePipeline(
        passes, name="hardware-opt" if optimize else "hardware"
    )
