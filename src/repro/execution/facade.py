"""``execute()`` — the single entry point of the library.

One call covers the paper's whole experimental loop: build (or accept) a
circuit, push it through a :class:`CompilePipeline`, and run it on any
registered :class:`Backend` — optionally over a parameter sweep, sharded
across worker processes, with results memoised in an in-memory cache.

The target may be:

* a :class:`~repro.circuits.circuit.Circuit`,
* a :class:`~repro.toffoli.spec.ConstructionResult`,
* a registry name from :data:`repro.toffoli.CONSTRUCTIONS` (built with
  the keyword arguments / sweep parameters, e.g. ``num_controls=5``),
* any callable returning one of the above.

Sweeps are mappings of parameter name to an iterable of values; the
cartesian product is executed, and each returned result is tagged with
its sweep point in ``result.params``.  Parameter names matching run
options (``shots``, ``trials``, ``seed``, ``initial``) feed the backend;
everything else feeds the circuit builder.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

from ..circuits.circuit import Circuit
from ..noise.model import NoiseModel
from ..qudits import Qudit
from ..resilience.deadlines import (
    Deadline,
    JobTimeoutError,
    resolve_deadline,
)
from ..resilience.faults import maybe_inject
from ..sim.state import StateVector
from ..toffoli.registry import build_toffoli
from ..toffoli.spec import ConstructionResult
from .backends import Backend, resolve_backend
from .cache import DEFAULT_CACHE, ResultCache, circuit_fingerprint
from .pipeline import (
    CompilePipeline,
    hardware_pipeline,
    lowering_pipeline,
    optimize_pipeline,
    qutrit_promotion_pipeline,
)
from .pipeline_spec import PIPELINE_SPECS, PipelineSpec
from .results import FidelityResult, RunResult

ExecuteTarget = (
    Circuit
    | ConstructionResult
    | str
    | Callable[..., "Circuit | ConstructionResult"]
)

#: Sweep parameter names routed to the backend run, not the builder.
RUN_PARAMS = frozenset({"shots", "trials", "seed", "initial"})

#: Named pipelines accepted as ``pipeline="..."``.  The ``hardware-*``
#: entries route through the lookahead engine onto a zoo topology sized
#: to the circuit at compile time; the ``-opt`` variants additionally
#: run the rewrite engine before and after routing.
NAMED_PIPELINES: dict[str, Callable[[], CompilePipeline]] = {
    "lowering": lowering_pipeline,
    "qutrit-promotion": qutrit_promotion_pipeline,
    "optimize": optimize_pipeline,
    "hardware-line": lambda: hardware_pipeline("line"),
    "hardware-grid": lambda: hardware_pipeline("grid_2d"),
    "hardware-heavy-hex": lambda: hardware_pipeline("heavy_hex"),
    "hardware-line-opt": lambda: hardware_pipeline("line", optimize=True),
    "hardware-grid-opt": lambda: hardware_pipeline(
        "grid_2d", optimize=True
    ),
    "hardware-heavy-hex-opt": lambda: hardware_pipeline(
        "heavy_hex", optimize=True
    ),
}

#: Same seed-derivation constant as :mod:`repro.sim.parallel`, so facade
#: shards reproduce the existing parallel estimator exactly.
_SEED_STRIDE = 1_000_003


def resolve_pipeline(
    spec: "CompilePipeline | PipelineSpec | str | None",
) -> CompilePipeline | None:
    """Accept a pipeline, a :class:`PipelineSpec`, a name, or None.

    Plain string names are the legacy form, kept as a deprecation shim:
    they warn and resolve through the original factories (so observable
    behaviour — including the reported pipeline name — is unchanged).
    New call sites should pass ``PipelineSpec.from_name(name)`` or a
    hand-built spec.
    """
    if spec is None or isinstance(spec, CompilePipeline):
        return spec
    if isinstance(spec, PipelineSpec):
        return spec.build()
    if isinstance(spec, str):
        if spec in NAMED_PIPELINES or spec in PIPELINE_SPECS:
            warnings.warn(
                f"passing pipeline name strings is deprecated; use "
                f"PipelineSpec.from_name({spec!r})",
                DeprecationWarning,
                stacklevel=2,
            )
            if spec in NAMED_PIPELINES:
                return NAMED_PIPELINES[spec]()
            return PIPELINE_SPECS[spec].build()
        raise KeyError(
            f"unknown pipeline {spec!r}; choose from "
            f"{sorted(set(NAMED_PIPELINES) | set(PIPELINE_SPECS))} or "
            "pass a CompilePipeline / PipelineSpec"
        )
    raise TypeError(
        f"cannot resolve a pipeline from {type(spec).__name__}"
    )


def _builder_takes_decompose(name: str) -> bool:
    """True if the named construction's builder has a decompose flag.

    Builders without one (Wang chain, Lanyon target) already emit
    permutation-level gates.
    """
    from inspect import signature

    from ..toffoli.registry import CONSTRUCTIONS

    if name not in CONSTRUCTIONS:
        return False  # let build_toffoli raise its descriptive KeyError
    return "decompose" in signature(CONSTRUCTIONS[name].builder).parameters


def _build_target(
    target: ExecuteTarget,
    builder_params: Mapping,
    prefer_undecomposed: bool = False,
) -> tuple[Circuit, list[Qudit] | None]:
    """Materialise the target circuit and its preferred wire order.

    ``prefer_undecomposed`` is set for classical-only backends: named
    constructions are built at permutation-gate granularity (the paper's
    linear-time verification path) when the builder supports it and the
    caller did not choose explicitly.
    """
    if isinstance(target, str):
        params = dict(builder_params)
        if (
            prefer_undecomposed
            and "decompose" not in params
            and _builder_takes_decompose(target)
        ):
            params["decompose"] = False
        built: object = build_toffoli(target, **params)
    elif callable(target) and not isinstance(
        target, (Circuit, ConstructionResult)
    ):
        built = target(**dict(builder_params))
    else:
        if builder_params:
            raise TypeError(
                "builder parameters "
                f"{sorted(builder_params)} were given but the target is "
                "already a concrete circuit"
            )
        built = target
    if isinstance(built, ConstructionResult):
        return built.circuit, built.all_wires
    if isinstance(built, Circuit):
        return built, None
    raise TypeError(
        f"cannot execute object of type {type(built).__name__}"
    )


def materialize_target(
    target: ExecuteTarget,
    builder_params: Mapping | None = None,
    *,
    prefer_undecomposed: bool = False,
) -> tuple[Circuit, list[Qudit] | None]:
    """Public form of the facade's target resolution.

    Builds the concrete circuit (and its preferred wire order, when the
    target is a named construction) exactly the way :func:`execute`
    would — the serving layer uses this at submit time so a job's
    coalescing key can be derived from the circuit's canonical
    fingerprint before any worker picks it up.
    """
    return _build_target(
        target, dict(builder_params or {}),
        prefer_undecomposed=prefer_undecomposed,
    )


def result_cache_key(
    *,
    fingerprint: str,
    backend: Backend,
    noise_model: NoiseModel | None,
    wires: tuple[Qudit, ...] | None = None,
    initial: "StateVector | tuple[int, ...] | None" = None,
    shots: int | None = None,
    trials: int | None = None,
    seed: int | None = None,
    batch_size: int | None = None,
) -> tuple | None:
    """The facade's result-cache key for one fully resolved run.

    Returns None when the run must not be cached: unseeded stochastic
    runs are not reproducible, and ``StateVector`` initials have no
    stable serialized identity.  The serving layer shares this function
    so facade users and service jobs hit the same cache lines.
    """
    capabilities = backend.capabilities
    stochastic = bool(capabilities.supports_trials or shots)
    if stochastic and seed is None:
        return None
    if isinstance(initial, StateVector):
        return None
    # Backend instances may carry their own noise model (e.g. a
    # TrajectoryBackend constructed directly); key on the model actually
    # used, not just the execute() argument.
    model = getattr(backend, "noise_model", None) or noise_model
    noise = model.name if model is not None else None
    return (
        fingerprint,
        backend.name,
        noise,
        wires,
        initial,
        shots,
        trials,
        seed,
        # Chunking changes the trajectory RNG stream, so same-seed runs
        # with different batch sizes are distinct results there; other
        # backends never see the knob, so it must not split their keys.
        batch_size if capabilities.supports_trials else None,
    )


@dataclass(frozen=True)
class _Task:
    """One unit of work, in-process or for the process pool.

    In-process runs execute ``circuit`` directly.  Before a task is
    handed to a worker process, :func:`_serialized` swaps the object
    for its canonical JSON form (``circuit_data``): workers rebuild the
    circuit through the gate registry, so what crosses the process
    boundary is the same wire format ``circuit save/load`` writes to
    disk — not a pickled object graph — and it stays stable across
    refactors of the gate classes.
    """

    circuit: Circuit | None
    backend: str | Backend
    noise_model: NoiseModel | None
    wires: tuple[Qudit, ...] | None
    initial: StateVector | tuple[int, ...] | None
    shots: int | None
    trials: int | None
    seed: int | None
    params: tuple[tuple[str, object], ...]
    #: (point index, shard index) for deterministic reassembly.
    point: int
    shard: int
    #: Canonical circuit digest; filled only when caching is on.
    fingerprint: str | None = None
    #: Serialized form, filled by :func:`_serialized` for pool dispatch.
    circuit_data: str | None = None
    #: Trajectory chunk size (None = auto); only trajectory-capable
    #: backends receive it.
    batch_size: int | None = None


def _serialized(task: _Task) -> _Task:
    """The task with its circuit lowered to the serialized wire form."""
    if task.circuit is None:
        return task
    return replace(
        task, circuit=None, circuit_data=task.circuit.to_json()
    )


def _run_task(task: _Task) -> RunResult:
    backend = resolve_backend(task.backend, task.noise_model)
    circuit = (
        task.circuit
        if task.circuit is not None
        else Circuit.from_json(task.circuit_data)
    )
    run_kwargs = dict(
        wires=list(task.wires) if task.wires is not None else None,
        initial=task.initial,
        shots=task.shots,
        trials=task.trials,
        seed=task.seed,
    )
    # The batch knob only exists on trajectory-capable backends; keep
    # the Backend protocol narrow for everyone else.
    if task.batch_size is not None and backend.capabilities.supports_trials:
        run_kwargs["batch_size"] = task.batch_size
    result = backend.run(circuit, **run_kwargs)
    return result.with_params(dict(task.params))


def _cache_key(task: _Task, backend: Backend) -> tuple | None:
    """A hashable cache key, or None when the run must not be cached."""
    if task.fingerprint is None:
        return None
    return result_cache_key(
        fingerprint=task.fingerprint,
        backend=backend,
        noise_model=task.noise_model,
        wires=task.wires,
        initial=task.initial,
        shots=task.shots,
        trials=task.trials,
        seed=task.seed,
        batch_size=task.batch_size,
    )


def execute(
    target: ExecuteTarget,
    *,
    backend: str | Backend = "statevector",
    pipeline: CompilePipeline | PipelineSpec | str | None = None,
    optimize: "bool | str | Sequence | object | None" = None,
    noise_model: NoiseModel | None = None,
    wires: Sequence[Qudit] | None = None,
    initial: StateVector | Sequence[int] | None = None,
    shots: int | None = None,
    trials: int | None = None,
    seed: int | None = None,
    batch_size: int | None = None,
    sweep: Mapping[str, Iterable] | None = None,
    parallel: bool = False,
    workers: int = 4,
    cache: bool | ResultCache = False,
    timeout: "float | Deadline | None" = None,
    **build_kwargs,
) -> RunResult | list[RunResult]:
    """Compile and run a circuit (or a sweep of circuits) on a backend.

    Returns one :class:`RunResult` without ``sweep``, else a list with
    one result per sweep point (cartesian order).  With ``parallel=True``
    sweep points run across a process pool; on the trajectory backend
    each point's trials are additionally sharded and exactly merged, so
    parallel results match serial runs in distribution for a fixed
    ``seed``.  ``batch_size`` tunes the trajectory backend's
    stacked-trajectory chunking (``None`` auto-sizes; ``1`` forces the
    looped reference engine); other backends ignore it.
    ``cache=True`` memoises deterministic results in the
    process-wide :data:`~repro.execution.cache.DEFAULT_CACHE` (pass a
    :class:`ResultCache` to use your own); entries are keyed on the
    circuit's canonical identity
    (:func:`~repro.execution.cache.circuit_fingerprint`), so two
    structurally equal circuits share a cache line no matter how they
    were built.  Worker processes receive circuits as serialized specs
    (:meth:`Circuit.to_json`) and rebuild them through the gate
    registry.

    ``optimize`` runs the :mod:`repro.optimize` rewrite engine on each
    compiled circuit before execution: ``True`` uses the default pass
    set, a string or sequence names passes (see
    :func:`~repro.optimize.resolve_engine`), and a
    :class:`~repro.optimize.RewriteEngine` passes through.  The cache
    fingerprint is taken from the *optimized* circuit, so an optimized
    run shares cache lines with any structurally equal optimized
    circuit, never with its unoptimized form.

    ``timeout`` is a cooperative budget in seconds (or a
    :class:`~repro.resilience.Deadline`): it is checked between sweep
    tasks and while waiting on process shards, and raises the typed
    :class:`~repro.resilience.JobTimeoutError` when it expires.
    Nothing is killed mid-flight — a single task that overruns still
    completes, and a run that finishes just past its deadline still
    returns (completion wins the race).
    """
    from ..optimize import resolve_engine

    deadline = resolve_deadline(timeout)
    pipeline = resolve_pipeline(pipeline)
    engine = resolve_engine(optimize)
    backend_spec = backend
    probe = resolve_backend(backend_spec, noise_model)
    # Note: an empty ResultCache is falsy (len 0), so test identity/type
    # rather than truthiness.
    cache_store: ResultCache | None
    if isinstance(cache, ResultCache):
        cache_store = cache
    else:
        cache_store = DEFAULT_CACHE if cache else None

    # -- expand sweep points -------------------------------------------
    if sweep:
        names = list(sweep)
        points = [
            dict(zip(names, values))
            for values in product(*(list(sweep[n]) for n in names))
        ]
    else:
        points = [{}]

    # -- build + compile every point up front --------------------------
    tasks: list[_Task] = []
    compile_notes: list[dict] = []
    for index, point in enumerate(points):
        run_overrides = {k: v for k, v in point.items() if k in RUN_PARAMS}
        builder_params = dict(build_kwargs)
        builder_params.update(
            {k: v for k, v in point.items() if k not in RUN_PARAMS}
        )
        circuit, preferred_wires = _build_target(
            target,
            builder_params,
            prefer_undecomposed=probe.capabilities.classical_circuits_only,
        )

        note: dict = {}
        if pipeline is not None:
            compiled = pipeline.compile(circuit)
            circuit = compiled.circuit
            note = {
                "pipeline": pipeline.name,
                "passes": compiled.pass_names,
                "compiled_depth": compiled.depth,
                "compiled_operations": compiled.num_operations,
            }
            # Routing re-hosts logical wires on physical sites, so any
            # wire order inferred from the construction is stale.
            if set(circuit.all_qudits()) != set(
                preferred_wires or circuit.all_qudits()
            ):
                preferred_wires = None
        if engine is not None:
            circuit, opt_report = engine.run(circuit)
            note.update(
                optimize_passes=tuple(p.name for p in engine.passes),
                optimize_gates_removed=opt_report.gates_removed,
                optimize_depth_removed=opt_report.depth_removed,
                optimize_iterations=opt_report.iterations,
            )
            if opt_report.verified is not None:
                note["optimize_verified"] = opt_report.verified
        compile_notes.append(note)

        point_wires = wires if wires is not None else preferred_wires
        point_seed = (
            seed
            if seed is None or not sweep
            else seed * _SEED_STRIDE + index
        )
        point_seed = run_overrides.get("seed", point_seed)
        point_initial = run_overrides.get("initial", initial)
        if not isinstance(point_initial, (StateVector, type(None))):
            point_initial = tuple(point_initial)
        tasks.append(
            _Task(
                circuit=circuit,
                fingerprint=(
                    circuit_fingerprint(circuit)
                    if cache_store is not None
                    else None
                ),
                backend=backend_spec,
                noise_model=noise_model,
                wires=tuple(point_wires) if point_wires is not None else None,
                initial=point_initial,
                shots=run_overrides.get("shots", shots),
                trials=run_overrides.get("trials", trials),
                seed=point_seed,
                batch_size=batch_size,
                params=tuple(sorted(point.items())),
                point=index,
                shard=0,
            )
        )

    # -- run ------------------------------------------------------------
    results = _run_tasks(
        tasks, probe, parallel=parallel, workers=workers,
        cache=cache_store, deadline=deadline,
    )
    for index, note in enumerate(compile_notes):
        if note:
            results[index] = replace(
                results[index],
                metadata={**results[index].metadata, **note},
            )
    if not sweep:
        return results[0]
    return results


def _shard_tasks(task: _Task, workers: int) -> list[_Task]:
    """Split one trajectory task into per-worker shards (seeded)."""
    from .backends import TrajectoryBackend

    trials = (
        task.trials
        if task.trials is not None
        else TrajectoryBackend.default_trials
    )
    if task.seed is None or workers <= 1 or trials < 2 * workers:
        return [task]
    base, extra = divmod(trials, workers)
    return [
        replace(
            task,
            trials=base + (1 if index < extra else 0),
            seed=task.seed * _SEED_STRIDE + index,
            shard=index,
        )
        for index in range(workers)
    ]


def _run_tasks(
    tasks: list[_Task],
    probe: Backend,
    *,
    parallel: bool,
    workers: int,
    cache: ResultCache | None,
    deadline: Deadline | None = None,
) -> list[RunResult]:
    shards_trials = probe.capabilities.supports_trials
    results: dict[int, RunResult] = {}
    pending: list[_Task] = []
    keys: dict[int, tuple] = {}

    for task in tasks:
        key = _cache_key(task, probe) if cache is not None else None
        if key is not None:
            keys[task.point] = key
            hit = cache.get(key)
            if hit is not None:
                results[task.point] = hit.with_params(dict(task.params))
                continue
        pending.append(task)

    if pending:
        if parallel and shards_trials:
            # Serialize once per task; shards share the JSON string.
            expanded = [
                shard
                for task in map(_serialized, pending)
                for shard in _shard_tasks(task, workers)
            ]
        else:
            expanded = pending
        if parallel and (len(expanded) > 1):
            raw = _run_pool(expanded, workers, deadline)
        else:
            raw = []
            for task in expanded:
                # Cooperative deadline: checked *between* tasks, so a
                # task that overruns still completes.
                if deadline is not None:
                    deadline.check("execute")
                maybe_inject("facade.task")
                raw.append(_run_task(task))

        by_point: dict[int, list[RunResult]] = {}
        for task, result in zip(expanded, raw):
            by_point.setdefault(task.point, []).append(result)
        for task in pending:
            group = by_point[task.point]
            if len(group) == 1:
                merged = group[0]
            else:
                merged = FidelityResult.merge(group)  # trajectory shards
                merged = replace(merged, seed=task.seed)
            results[task.point] = merged
            key = keys.get(task.point)
            if key is not None and cache is not None:
                cache.put(key, merged)

    return [results[index] for index in range(len(tasks))]


def _run_pool(
    expanded: list[_Task],
    workers: int,
    deadline: Deadline | None,
) -> list[RunResult]:
    """Run tasks across a process pool, honouring the deadline while
    waiting on shards.

    The ``facade.task`` chaos site fires in the parent per dispatched
    task (worker processes have no ambient injector).  On expiry,
    not-yet-started shards are cancelled, running ones are left to
    finish in the background (cooperative semantics: nothing is killed
    mid-flight), and the typed :class:`JobTimeoutError` is raised.
    """
    serialized = [_serialized(task) for task in expanded]
    for _ in serialized:
        maybe_inject("facade.task")
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = [pool.submit(_run_task, task) for task in serialized]
        raw: list[RunResult] = []
        for future in futures:
            budget = (
                deadline.remaining() if deadline is not None else None
            )
            if budget is not None and budget <= 0.0:
                raise JobTimeoutError(
                    "deadline expired while waiting on process shards"
                )
            try:
                raw.append(future.result(timeout=budget))
            except FuturesTimeoutError:
                raise JobTimeoutError(
                    "deadline expired while waiting on process shards"
                ) from None
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return raw
