"""Keyed in-memory result cache for the execute() facade.

Benchmark sweeps hit the same (circuit, backend, parameters) points
repeatedly — Figures 9-11 all rebuild the same constructions — so
:func:`repro.execute` can memoise results in-process.  Keys are derived
from a structural circuit fingerprint plus every run parameter that
affects the outcome; unseeded stochastic runs are never cached (their
results are not reproducible, so a cache hit would change semantics).

The LRU can be *layered* over a persistent second level: pass any object
implementing :class:`CacheBacking` (in practice a
:class:`repro.service.store.ResultStore`) as ``backing`` and misses fall
through to it, promoting hits back into memory.  ``put`` writes through,
so results survive the process — the substrate of the serving layer's
restart story.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Hashable, Protocol, runtime_checkable

from ..circuits.circuit import Circuit
from ..qudits import Qudit
from .results import RunResult


def circuit_fingerprint(circuit: Circuit) -> str:
    """A content-addressed digest of a circuit's canonical form.

    Hashes the moment structure with each operation's *canonical gate
    spec* (see :meth:`~repro.gates.base.Gate.canonical_spec`) and wire
    bindings.  The canonical spec carries the gate's full defining data
    — permutation mapping, diagonal phases, or unitary matrix — so two
    gates that merely share a display name can no longer collide, and
    two circuits fingerprint equal exactly when they are structurally
    equal (``Circuit.__eq__``).  Operations within a moment are sorted,
    matching the order-insensitive moment equality.
    """
    digest = hashlib.sha256()
    for moment in circuit:
        cells = sorted(
            json.dumps(
                {
                    "gate": op.gate.canonical_spec().to_dict(),
                    "wires": [[w.index, w.dimension] for w in op.qudits],
                },
                sort_keys=True,
                separators=(",", ":"),
            )
            for op in moment.operations
        )
        digest.update(b"|")
        for cell in cells:
            digest.update(cell.encode())
            digest.update(b";")
    return digest.hexdigest()


def cache_key_encoding(key: Hashable) -> str:
    """A canonical JSON encoding of a cache key (stable across runs).

    Cache keys are nested tuples of primitives and :class:`Qudit` wires;
    a persistent second level needs a process-independent name for each
    key, so this flattens the tuple into deterministic JSON.  Unknown
    objects fall back to ``repr`` — good enough to keep distinct keys
    distinct for every type the facade actually puts in a key.
    """

    def encode(obj):
        if isinstance(obj, Qudit):
            return ["qudit", obj.index, obj.dimension]
        if isinstance(obj, (tuple, list)):
            return [encode(item) for item in obj]
        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        return ["repr", repr(obj)]

    return json.dumps(encode(key), sort_keys=True, separators=(",", ":"))


def cache_key_digest(key: Hashable) -> str:
    """A content-addressed hex digest of a cache key."""
    return hashlib.sha256(cache_key_encoding(key).encode()).hexdigest()


@runtime_checkable
class CacheBacking(Protocol):
    """A second cache level consulted on LRU misses (e.g. an on-disk
    :class:`~repro.service.store.ResultStore`)."""

    def get(self, key: Hashable) -> RunResult | None:
        """The stored result for ``key``, or None."""
        ...

    def put(self, key: Hashable, result: RunResult) -> bool:
        """Persist ``result``; False if it could not be stored."""
        ...


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Misses served by the persistent backing layer (still hits from
    #: the caller's point of view — the run was not re-executed).
    backing_hits: int = 0
    #: Backing calls that raised: absorbed as misses / dropped writes,
    #: because a broken second level must never break the first.
    backing_errors: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses + self.backing_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either level (0.0 unused)."""
        served = self.hits + self.backing_hits
        return served / self.lookups if self.lookups else 0.0


class ResultCache:
    """A bounded, thread-safe LRU cache of :class:`RunResult` records.

    Every operation — lookup, recency refresh, insert, eviction, stats
    bookkeeping — happens under one internal lock, so a cache instance
    (including the process-wide :data:`DEFAULT_CACHE`) may be shared
    freely between the service worker pool, facade calls on other
    threads, and the owning thread.

    ``backing`` layers a persistent second level underneath the LRU:
    memory misses fall through to ``backing.get`` (hits are promoted
    into memory and counted as ``stats.backing_hits``) and ``put``
    writes through to ``backing.put``.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        backing: CacheBacking | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self._max_entries = max_entries
        self._entries: OrderedDict[Hashable, RunResult] = OrderedDict()
        self._lock = Lock()
        self.backing = backing
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> RunResult | None:
        """The cached result for ``key``, refreshing its recency."""
        result, _ = self.get_with_source(key)
        return result

    def get_with_source(
        self, key: Hashable
    ) -> tuple[RunResult | None, str | None]:
        """Like :meth:`get`, also naming the level that served the hit.

        Returns ``(result, "memory")``, ``(result, "backing")`` or
        ``(None, None)`` — the serving layer uses the source to
        attribute hits between the LRU and the persistent store.
        """
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return result, "memory"
            if self.backing is not None:
                try:
                    result = self.backing.get(key)
                except Exception:
                    # A flaky backing degrades to a miss, never an error.
                    self.stats.backing_errors += 1
                    result = None
                if result is not None:
                    self.stats.backing_hits += 1
                    self._insert(key, result)
                    return result, "backing"
            self.stats.misses += 1
            return None, None

    def put(self, key: Hashable, result: RunResult) -> None:
        """Store ``result``, evicting the least recently used overflow."""
        with self._lock:
            self._insert(key, result)
            if self.backing is not None:
                try:
                    self.backing.put(key, result)
                except Exception:
                    # Write-through is best effort: losing persistence
                    # must not lose the in-memory entry or the result.
                    self.stats.backing_errors += 1

    def _insert(self, key: Hashable, result: RunResult) -> None:
        """Memory-level insert + eviction; caller holds the lock."""
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every in-memory entry (counters and backing are kept)."""
        with self._lock:
            self._entries.clear()


#: Process-wide cache used by ``execute(..., cache=True)``.
DEFAULT_CACHE = ResultCache()
