"""Keyed in-memory result cache for the execute() facade.

Benchmark sweeps hit the same (circuit, backend, parameters) points
repeatedly — Figures 9-11 all rebuild the same constructions — so
:func:`repro.execute` can memoise results in-process.  Keys are derived
from a structural circuit fingerprint plus every run parameter that
affects the outcome; unseeded stochastic runs are never cached (their
results are not reproducible, so a cache hit would change semantics).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Hashable

from ..circuits.circuit import Circuit
from .results import RunResult


def circuit_fingerprint(circuit: Circuit) -> str:
    """A content-addressed digest of a circuit's canonical form.

    Hashes the moment structure with each operation's *canonical gate
    spec* (see :meth:`~repro.gates.base.Gate.canonical_spec`) and wire
    bindings.  The canonical spec carries the gate's full defining data
    — permutation mapping, diagonal phases, or unitary matrix — so two
    gates that merely share a display name can no longer collide, and
    two circuits fingerprint equal exactly when they are structurally
    equal (``Circuit.__eq__``).  Operations within a moment are sorted,
    matching the order-insensitive moment equality.
    """
    digest = hashlib.sha256()
    for moment in circuit:
        cells = sorted(
            json.dumps(
                {
                    "gate": op.gate.canonical_spec().to_dict(),
                    "wires": [[w.index, w.dimension] for w in op.qudits],
                },
                sort_keys=True,
                separators=(",", ":"),
            )
            for op in moment.operations
        )
        digest.update(b"|")
        for cell in cells:
            digest.update(cell.encode())
            digest.update(b";")
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """A bounded, thread-safe LRU cache of :class:`RunResult` records."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self._max_entries = max_entries
        self._entries: OrderedDict[Hashable, RunResult] = OrderedDict()
        self._lock = Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> RunResult | None:
        """The cached result for ``key``, refreshing its recency."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return result

    def put(self, key: Hashable, result: RunResult) -> None:
        """Store ``result``, evicting the least recently used overflow."""
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()


#: Process-wide cache used by ``execute(..., cache=True)``.
DEFAULT_CACHE = ResultCache()
