"""Declarative pipeline configuration: :class:`PipelineSpec`.

The named-pipeline strings (``"hardware-grid-opt"``) were opaque: nine
magic keys, each hiding a hand-assembled pass chain, with no way to
tweak a stage short of building :class:`CompilePipeline` objects by
hand.  A :class:`PipelineSpec` is the declarative replacement — an
ordered list of named stages, each a ``(kind, params)`` pair drawn from
a closed stage vocabulary:

=============  =====================================================
kind           builds
=============  =====================================================
``lift``       :class:`repro.interop.LiftToQutrits` (``dim``)
``decompose``  ``basis="width2"`` -> :class:`DecomposeToWidth2`;
               ``basis="qubit"`` ->
               :class:`repro.interop.DecomposeToQubitBasis`
``optimize``   :class:`OptimizePass` (``label``, ``verify``)
``route``      :class:`RouteToTopology` (``topology``, ``router``)
``lower``      :class:`repro.interop.LowerToQubits`
               (``atol``, ``verify``)
``schedule``   ``mode="merge"`` -> :class:`MergeMoments`;
               ``mode="asap"`` -> :class:`ASAPReschedule`
=============  =====================================================

Specs are frozen values: hashable, JSON round-trippable
(:meth:`PipelineSpec.to_json` / :meth:`~PipelineSpec.from_json`), and
buildable into a :class:`CompilePipeline` any number of times.  Every
legacy named pipeline exists as a spec via
:meth:`PipelineSpec.from_name`, plus the two interop compilation paths
(``"naive-lift"``, ``"temporary-ternary"``).  ``execute()`` accepts a
spec directly through :func:`repro.execution.facade.resolve_pipeline`;
plain strings still work there as a deprecation shim.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..exceptions import SerializationError
from .passes import (
    ASAPReschedule,
    CompilePass,
    DecomposeToWidth2,
    MergeMoments,
    OptimizePass,
    RouteToTopology,
)
from .pipeline import CompilePipeline

__all__ = [
    "STAGE_KINDS",
    "PipelineStage",
    "PipelineSpec",
    "PIPELINE_SPECS",
]


def _build_lift(dim: int = 3) -> CompilePass:
    from ..interop.transform import LiftToQutrits

    return LiftToQutrits(int(dim))


def _build_decompose(basis: str = "width2") -> CompilePass:
    if basis == "width2":
        return DecomposeToWidth2()
    if basis == "qubit":
        from ..interop.qubitbasis import DecomposeToQubitBasis

        return DecomposeToQubitBasis()
    raise ValueError(
        f"decompose stage basis must be 'width2' or 'qubit', "
        f"got {basis!r}"
    )


def _build_optimize(
    label: str = "optimize", verify: "bool | str" = False
) -> CompilePass:
    return OptimizePass(label=label, verify=verify)


def _build_route(
    topology: str = "line", router: "str | None" = None
) -> CompilePass:
    return RouteToTopology(topology, router=router)


def _build_lower(
    atol: float = 1e-9, verify: bool = False
) -> CompilePass:
    from ..interop.transform import LowerToQubits

    return LowerToQubits(atol=float(atol), verify=bool(verify))


def _build_schedule(mode: str = "merge") -> CompilePass:
    if mode == "merge":
        return MergeMoments()
    if mode == "asap":
        return ASAPReschedule()
    raise ValueError(
        f"schedule stage mode must be 'merge' or 'asap', got {mode!r}"
    )


_STAGE_BUILDERS = {
    "lift": _build_lift,
    "decompose": _build_decompose,
    "optimize": _build_optimize,
    "route": _build_route,
    "lower": _build_lower,
    "schedule": _build_schedule,
}

#: The closed stage vocabulary, in canonical documentation order.
STAGE_KINDS: tuple[str, ...] = (
    "lift", "decompose", "optimize", "route", "lower", "schedule"
)


@dataclass(frozen=True)
class PipelineStage:
    """One named stage: a ``kind`` from :data:`STAGE_KINDS` plus its
    JSON-clean keyword parameters."""

    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _STAGE_BUILDERS:
            raise ValueError(
                f"unknown stage kind {self.kind!r}; choose from "
                f"{list(STAGE_KINDS)}"
            )
        object.__setattr__(
            self, "params", dict(sorted(dict(self.params).items()))
        )

    def __hash__(self) -> int:
        return hash((self.kind, tuple(self.params.items())))

    def build(self) -> CompilePass:
        """Construct the compile pass this stage describes."""
        try:
            return _STAGE_BUILDERS[self.kind](**self.params)
        except TypeError as error:
            raise ValueError(
                f"bad parameters for stage {self.kind!r}: {error}"
            ) from error

    def describe(self) -> str:
        """One-line ``kind  key=value ...`` rendering."""
        rendered = " ".join(
            f"{key}={value}" for key, value in self.params.items()
        )
        return f"{self.kind:<10s} {rendered}".rstrip()

    def to_dict(self) -> dict:
        """Plain-data form (kind + params)."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "PipelineStage":
        """Rebuild a stage from :meth:`to_dict` data."""
        try:
            kind = data["kind"]
            params = dict(data.get("params", {}))
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"malformed pipeline stage: {error}"
            ) from error
        try:
            return cls(kind, params)
        except ValueError as error:
            raise SerializationError(str(error)) from error


@dataclass(frozen=True)
class PipelineSpec:
    """A named, ordered, serializable pipeline description."""

    name: str
    stages: tuple[PipelineStage, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "stages",
            tuple(
                s
                if isinstance(s, PipelineStage)
                else PipelineStage(**s)
                for s in self.stages
            ),
        )

    def build(self) -> CompilePipeline:
        """Materialise the spec into a runnable pipeline."""
        return CompilePipeline(
            [stage.build() for stage in self.stages], name=self.name
        )

    def with_stage(
        self, kind: str, **params: object
    ) -> "PipelineSpec":
        """A new spec with one more stage appended."""
        return PipelineSpec(
            self.name, self.stages + (PipelineStage(kind, params),)
        )

    def describe(self) -> str:
        """Multi-line human-readable stage listing."""
        lines = [
            f"PipelineSpec {self.name!r} "
            f"({len(self.stages)} stage"
            f"{'' if len(self.stages) == 1 else 's'})"
        ]
        for index, stage in enumerate(self.stages, start=1):
            lines.append(f"  {index}. {stage.describe()}")
        return "\n".join(lines)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form (name + stage list)."""
        return {
            "name": self.name,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PipelineSpec":
        """Rebuild a spec from :meth:`to_dict` data."""
        if not isinstance(data, Mapping) or "name" not in data:
            raise SerializationError(
                "pipeline spec data must be a mapping with a 'name'"
            )
        stages_data = data.get("stages", [])
        if not isinstance(stages_data, Sequence) or isinstance(
            stages_data, (str, bytes)
        ):
            raise SerializationError(
                "pipeline spec 'stages' must be a list"
            )
        return cls(
            str(data["name"]),
            tuple(
                PipelineStage.from_dict(item) for item in stages_data
            ),
        )

    def to_json(self, indent: "int | None" = None) -> str:
        """JSON text of :meth:`to_dict` (sorted keys)."""
        return json.dumps(
            self.to_dict(),
            sort_keys=True,
            indent=indent,
            separators=None if indent else (",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        """Rebuild a spec from :meth:`to_json` text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(
                f"invalid pipeline spec JSON: {error}"
            ) from error
        return cls.from_dict(data)

    # -- the named registry ----------------------------------------------

    @classmethod
    def from_name(cls, name: str) -> "PipelineSpec":
        """The registered spec for a pipeline name.

        Covers every legacy named pipeline (``"lowering"``,
        ``"qutrit-promotion"``, ``"optimize"``, the six
        ``"hardware-*"`` variants) plus the interop compilation paths
        ``"naive-lift"`` and ``"temporary-ternary"``.
        """
        try:
            return PIPELINE_SPECS[name]
        except KeyError:
            raise KeyError(
                f"unknown pipeline {name!r}; choose from "
                f"{sorted(PIPELINE_SPECS)}"
            ) from None


def _hardware_spec(
    name: str, topology: str, optimize: bool
) -> PipelineSpec:
    stages = [PipelineStage("decompose", {"basis": "width2"})]
    if optimize:
        stages.append(
            PipelineStage("optimize", {"label": "pre-route"})
        )
    stages.append(PipelineStage("route", {"topology": topology}))
    if optimize:
        stages.append(
            PipelineStage("optimize", {"label": "post-route"})
        )
    stages.append(PipelineStage("schedule", {"mode": "asap"}))
    return PipelineSpec(name, tuple(stages))


#: Every named pipeline as a spec — the single registry behind
#: :meth:`PipelineSpec.from_name` and the CLI's ``--pipeline`` choices.
PIPELINE_SPECS: dict[str, PipelineSpec] = {
    "lowering": PipelineSpec(
        "lowering",
        (
            PipelineStage("decompose", {"basis": "width2"}),
            PipelineStage("schedule", {"mode": "merge"}),
        ),
    ),
    "qutrit-promotion": PipelineSpec(
        "qutrit-promotion",
        (
            PipelineStage("lift", {"dim": 3}),
            PipelineStage("schedule", {"mode": "merge"}),
        ),
    ),
    "optimize": PipelineSpec(
        "optimize", (PipelineStage("optimize", {}),)
    ),
    "naive-lift": PipelineSpec(
        "naive-lift",
        (
            PipelineStage("decompose", {"basis": "qubit"}),
            PipelineStage("lift", {"dim": 3}),
        ),
    ),
    "temporary-ternary": PipelineSpec(
        "temporary-ternary",
        (
            PipelineStage("lift", {"dim": 3}),
            PipelineStage("decompose", {"basis": "width2"}),
        ),
    ),
}
for _kind, _topology in (
    ("line", "line"),
    ("grid", "grid_2d"),
    ("heavy-hex", "heavy_hex"),
):
    PIPELINE_SPECS[f"hardware-{_kind}"] = _hardware_spec(
        f"hardware-{_kind}", _topology, optimize=False
    )
    PIPELINE_SPECS[f"hardware-{_kind}-opt"] = _hardware_spec(
        f"hardware-{_kind}-opt", _topology, optimize=True
    )
