"""The unified ``Backend`` protocol and adapters over the four simulators.

Every execution target — classical permutation propagation, noise-free
state vectors, exact density-matrix evolution, sampled noisy trajectories
— implements the same surface:

* ``name`` — registry identifier,
* ``capabilities`` — a static record of what the backend can do,
* ``run(circuit, *, wires, initial, shots, trials, seed)`` — one circuit
  execution returning a :class:`~repro.execution.results.RunResult`
  (the trajectory backend additionally accepts ``batch_size``, its
  stacked-trajectory chunking knob).

The adapters wrap the existing engines in :mod:`repro.sim` (which remain
the canonical implementations); this module only translates arguments and
results.  Backends are constructed through :func:`resolve_backend`, which
is what lets :func:`repro.execute` accept plain string names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from ..circuits.circuit import Circuit
from ..exceptions import SimulationError
from ..noise.model import NoiseModel
from ..qudits import Qudit
from ..sim.classical_batch import BatchedClassicalSimulator
from ..sim.density import DensityMatrixSimulator
from ..sim.fidelity import estimate_circuit_fidelity
from ..sim.measurement import sample_counts
from ..sim.state import StateVector
from ..sim.statevector import StateVectorSimulator
from ..sim.trajectory import TrajectorySimulator
from .results import FidelityResult, RunResult


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend supports, for upfront argument validation."""

    #: Payload family: "classical", "statevector", "density", "trajectory".
    kind: str
    #: True if the backend models device noise (needs a NoiseModel).
    noisy: bool = False
    #: True if ``shots`` sampling is meaningful.
    supports_shots: bool = False
    #: True if ``trials`` (trajectory count) is meaningful.
    supports_trials: bool = False
    #: True if only permutation (classical) circuits can run.
    classical_circuits_only: bool = False
    #: True if results are deterministic for a fixed seed.
    seedable: bool = True


@runtime_checkable
class Backend(Protocol):
    """Anything that can execute a circuit into a :class:`RunResult`."""

    @property
    def name(self) -> str:
        """Registry name of the backend."""
        ...

    @property
    def capabilities(self) -> BackendCapabilities:
        """Static description of supported features."""
        ...

    def run(
        self,
        circuit: Circuit,
        *,
        wires: Sequence[Qudit] | None = None,
        initial: StateVector | Sequence[int] | None = None,
        shots: int | None = None,
        trials: int | None = None,
        seed: int | None = None,
    ) -> RunResult:
        """Execute ``circuit`` and return the common result record."""
        ...


def _resolve_wires(
    circuit: Circuit, wires: Sequence[Qudit] | None
) -> list[Qudit]:
    wires = list(wires) if wires is not None else circuit.all_qudits()
    missing = [w for w in circuit.all_qudits() if w not in wires]
    if missing:
        raise SimulationError(
            f"wire list does not cover circuit wires {missing}"
        )
    return wires


def _initial_state(
    wires: Sequence[Qudit],
    initial: StateVector | Sequence[int] | None,
) -> StateVector:
    if initial is None:
        return StateVector.zero(list(wires))
    if isinstance(initial, StateVector):
        return initial.copy()
    return StateVector.computational_basis(list(wires), list(initial))


class ClassicalBackend:
    """Linear-cost basis-state propagation (permutation circuits only).

    Runs through the batched permutation engine: the circuit lowers once
    into cached permutation tables and the input advances by table
    gathers (no per-gate Python), so repeated runs of one circuit — or
    sweeps through the execute() facade — share all lowering work.
    """

    name = "classical"
    capabilities = BackendCapabilities(
        kind="classical", classical_circuits_only=True
    )

    def __init__(self) -> None:
        self._simulator = BatchedClassicalSimulator()

    def run(
        self,
        circuit: Circuit,
        *,
        wires: Sequence[Qudit] | None = None,
        initial: StateVector | Sequence[int] | None = None,
        shots: int | None = None,
        trials: int | None = None,
        seed: int | None = None,
    ) -> RunResult:
        if isinstance(initial, StateVector):
            raise SimulationError(
                "the classical backend takes basis values, not a state "
                "vector; use the statevector backend for superpositions"
            )
        wires = _resolve_wires(circuit, wires)
        values = (
            tuple(initial) if initial is not None else (0,) * len(wires)
        )
        if len(values) != len(wires):
            raise SimulationError(
                f"{len(wires)} wires but {len(values)} input values"
            )
        output = self._simulator.run_values(circuit, wires, values)
        return RunResult(
            backend=self.name,
            wires=tuple(wires),
            seed=seed,
            values=output,
            metadata={"input_values": values},
        )


class StateVectorBackend:
    """Noise-free dense state-vector evolution, with optional sampling.

    ``shots`` sampling draws outcome *counts* directly from the final
    state's probabilities (:func:`repro.sim.measurement.sample_counts`):
    one circuit execution serves any shot budget without materialising a
    per-shot sample array, and the counts are deterministic for a fixed
    ``seed``.
    """

    name = "statevector"
    capabilities = BackendCapabilities(
        kind="statevector", supports_shots=True
    )

    def __init__(self) -> None:
        self._simulator = StateVectorSimulator()

    def run(
        self,
        circuit: Circuit,
        *,
        wires: Sequence[Qudit] | None = None,
        initial: StateVector | Sequence[int] | None = None,
        shots: int | None = None,
        trials: int | None = None,
        seed: int | None = None,
    ) -> RunResult:
        wires = _resolve_wires(circuit, wires)
        state = self._simulator.run(
            circuit, _initial_state(wires, initial), wires=wires
        )
        measurements = None
        if shots:
            rng = np.random.default_rng(seed)
            measurements = sample_counts(state, shots, rng)
        return RunResult(
            backend=self.name,
            wires=tuple(state.wires),
            seed=seed,
            state=state,
            measurements=measurements,
        )


class DensityMatrixBackend:
    """Exact noisy evolution — the reference trajectories converge to."""

    name = "density"

    def __init__(self, noise_model: NoiseModel) -> None:
        self._model = noise_model
        self._simulator = DensityMatrixSimulator(noise_model)

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(kind="density", noisy=True)

    @property
    def noise_model(self) -> NoiseModel:
        """The device model driving gate-error and idle channels."""
        return self._model

    def run(
        self,
        circuit: Circuit,
        *,
        wires: Sequence[Qudit] | None = None,
        initial: StateVector | Sequence[int] | None = None,
        shots: int | None = None,
        trials: int | None = None,
        seed: int | None = None,
    ) -> RunResult:
        wires = _resolve_wires(circuit, wires)
        start = _initial_state(wires, initial)
        rho = self._simulator.run(circuit, start)
        ideal = TrajectorySimulator.ideal_final_state(circuit, start)
        return RunResult(
            backend=self.name,
            wires=tuple(rho.wires),
            seed=seed,
            density=rho,
            metadata={
                "noise_model": self._model.name,
                "fidelity_vs_ideal": rho.fidelity_with_pure(ideal),
                "purity": rho.purity(),
            },
        )


class TrajectoryBackend:
    """Sampled noisy trajectories — Algorithm 1, the Figure 11 harness.

    Trials run through the batched stacked-tensor engine by default
    (``batch_size=None`` auto-sizes per chunk); construct with
    ``batch_size=1`` — or pass it per run — to force the looped
    reference engine.
    """

    name = "trajectory"
    #: Trajectories per run when the caller does not say.
    default_trials = 100

    def __init__(
        self, noise_model: NoiseModel, batch_size: int | None = None
    ) -> None:
        self._model = noise_model
        self._batch_size = batch_size

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            kind="trajectory", noisy=True, supports_trials=True
        )

    @property
    def noise_model(self) -> NoiseModel:
        """The device model driving gate-error and idle channels."""
        return self._model

    def run(
        self,
        circuit: Circuit,
        *,
        wires: Sequence[Qudit] | None = None,
        initial: StateVector | Sequence[int] | None = None,
        shots: int | None = None,
        trials: int | None = None,
        seed: int | None = None,
        batch_size: int | None = None,
    ) -> FidelityResult:
        if initial is not None:
            raise SimulationError(
                "the trajectory backend draws its own random binary-"
                "subspace inputs per Algorithm 1; 'initial' is not "
                "supported"
            )
        wires = _resolve_wires(circuit, wires)
        trials = trials if trials is not None else self.default_trials
        estimate = estimate_circuit_fidelity(
            circuit,
            self._model,
            trials=trials,
            seed=seed,
            wires=wires,
            circuit_name="circuit",
            batch_size=(
                batch_size if batch_size is not None else self._batch_size
            ),
        )
        return FidelityResult(
            backend=self.name,
            wires=tuple(wires),
            seed=seed,
            metadata={"noise_model": self._model.name},
            estimate=estimate,
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: name -> factory(noise_model) -> Backend.  Noise-free factories ignore
#: the model argument so callers can resolve uniformly.
BACKEND_FACTORIES: dict[
    str, Callable[[NoiseModel | None], Backend]
] = {}


def register_backend(
    name: str, factory: Callable[[NoiseModel | None], Backend]
) -> None:
    """Add (or replace) a named backend factory in the registry."""
    BACKEND_FACTORIES[name] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(BACKEND_FACTORIES)


def resolve_backend(
    spec: str | Backend, noise_model: NoiseModel | None = None
) -> Backend:
    """Turn a backend name (or pass through an instance) into a backend.

    Noisy backends require ``noise_model``; naming one without a model is
    an error rather than a silent default, since the choice of model is
    the experiment (Sec. 7).
    """
    if not isinstance(spec, str):
        return spec
    if spec not in BACKEND_FACTORIES:
        raise KeyError(
            f"unknown backend {spec!r}; choose from {available_backends()}"
        )
    return BACKEND_FACTORIES[spec](noise_model)


def _noise_free(
    cls: Callable[[], Backend],
) -> Callable[[NoiseModel | None], Backend]:
    def factory(noise_model: NoiseModel | None = None) -> Backend:
        return cls()

    return factory


def _noisy(
    cls: Callable[[NoiseModel], Backend], name: str
) -> Callable[[NoiseModel | None], Backend]:
    def factory(noise_model: NoiseModel | None = None) -> Backend:
        if noise_model is None:
            raise ValueError(
                f"backend {name!r} needs a noise model; pass "
                "noise_model=... (e.g. repro.noise.SC)"
            )
        return cls(noise_model)

    return factory


register_backend("classical", _noise_free(ClassicalBackend))
register_backend("statevector", _noise_free(StateVectorBackend))
register_backend("density", _noisy(DensityMatrixBackend, "density"))
register_backend("trajectory", _noisy(TrajectoryBackend, "trajectory"))
