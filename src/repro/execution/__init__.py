"""Unified execution layer: backends, compile pipelines, and execute().

This subsystem is the public API of the library.  The engines in
:mod:`repro.sim` stay importable for direct use, but new code should go
through :func:`execute`::

    from repro import execute

    result = execute("qutrit_tree", num_controls=5, backend="classical",
                     initial=(1, 1, 1, 1, 1, 0))
    print(result.values)
"""

from .backends import (
    Backend,
    BackendCapabilities,
    ClassicalBackend,
    DensityMatrixBackend,
    StateVectorBackend,
    TrajectoryBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from .cache import (
    DEFAULT_CACHE,
    CacheBacking,
    CacheStats,
    ResultCache,
    cache_key_digest,
    cache_key_encoding,
    circuit_fingerprint,
)
from .facade import (
    NAMED_PIPELINES,
    execute,
    materialize_target,
    resolve_pipeline,
    result_cache_key,
)
from .passes import (
    ASAPReschedule,
    CompilePass,
    DecomposeToWidth2,
    MergeMoments,
    PromoteQubitsToQutrits,
    RouteToTopology,
    promote_gate,
    transform_operations,
)
from .pipeline import (
    CompiledCircuit,
    CompilePipeline,
    hardware_pipeline,
    lowering_pipeline,
    qutrit_promotion_pipeline,
)
from .pipeline_spec import (
    PIPELINE_SPECS,
    STAGE_KINDS,
    PipelineSpec,
    PipelineStage,
)
from .results import FidelityResult, RunResult

__all__ = [
    "Backend",
    "BackendCapabilities",
    "ClassicalBackend",
    "StateVectorBackend",
    "DensityMatrixBackend",
    "TrajectoryBackend",
    "register_backend",
    "resolve_backend",
    "available_backends",
    "RunResult",
    "FidelityResult",
    "CompilePass",
    "DecomposeToWidth2",
    "PromoteQubitsToQutrits",
    "RouteToTopology",
    "ASAPReschedule",
    "MergeMoments",
    "promote_gate",
    "transform_operations",
    "CompilePipeline",
    "CompiledCircuit",
    "PipelineSpec",
    "PipelineStage",
    "PIPELINE_SPECS",
    "STAGE_KINDS",
    "lowering_pipeline",
    "qutrit_promotion_pipeline",
    "hardware_pipeline",
    "execute",
    "materialize_target",
    "resolve_pipeline",
    "result_cache_key",
    "NAMED_PIPELINES",
    "CacheBacking",
    "ResultCache",
    "CacheStats",
    "DEFAULT_CACHE",
    "cache_key_digest",
    "cache_key_encoding",
    "circuit_fingerprint",
]
