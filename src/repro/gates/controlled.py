"""Controlled gates with arbitrary control values on arbitrary dimensions.

The paper's constructions condition on |1> (ordinary controls), on |2>
(reading out the temporarily elevated qutrit state), and on |0> (the
incrementer's finalize gates).  ``ControlledGate`` models all of these: each
control wire has a dimension and an activation value; the sub-gate fires iff
every control wire holds exactly its activation value.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DimensionMismatchError, NotClassicalError
from .base import Gate, index_to_values, values_to_index
from .spec import GATE_REGISTRY, GateSpec


class ControlledGate(Gate):
    """``sub_gate`` applied iff every control wire matches its value.

    Wire order is controls first (in the given order), then the sub-gate's
    wires.

    Parameters
    ----------
    sub_gate:
        The gate applied when all controls are active.
    control_dims:
        Dimension of each control wire.
    control_values:
        Activation value for each control wire; defaults to all 1
        (the conventional control).
    """

    def __init__(
        self,
        sub_gate: Gate,
        control_dims: Sequence[int],
        control_values: Sequence[int] | None = None,
    ) -> None:
        control_dims = tuple(control_dims)
        if control_values is None:
            control_values = (1,) * len(control_dims)
        control_values = tuple(control_values)
        if len(control_values) != len(control_dims):
            raise DimensionMismatchError(
                "control_values and control_dims must have equal length"
            )
        for value, dim in zip(control_values, control_dims):
            if not 0 <= value < dim:
                raise ValueError(
                    f"control value {value} out of range for dimension {dim}"
                )
        if not control_dims:
            raise ValueError("need at least one control wire")
        self._sub_gate = sub_gate
        self._control_dims = control_dims
        self._control_values = control_values

    # -- data access -----------------------------------------------------

    @property
    def sub_gate(self) -> Gate:
        """The gate applied when all controls are active."""
        return self._sub_gate

    @property
    def control_dims(self) -> tuple[int, ...]:
        """Dimensions of the control wires."""
        return self._control_dims

    @property
    def control_values(self) -> tuple[int, ...]:
        """Activation values of the control wires."""
        return self._control_values

    @property
    def num_controls(self) -> int:
        """Number of control wires."""
        return len(self._control_dims)

    # -- Gate interface ---------------------------------------------------

    @property
    def dims(self) -> tuple[int, ...]:
        return self._control_dims + self._sub_gate.dims

    @property
    def name(self) -> str:
        values = ",".join(str(v) for v in self._control_values)
        return f"C[{values}]{self._sub_gate.name}"

    def unitary(self) -> np.ndarray:
        sub_dim = self._sub_gate.total_dim
        sub_u = self._sub_gate.unitary()
        ctrl_dim = 1
        for d in self._control_dims:
            ctrl_dim *= d
        total = ctrl_dim * sub_dim
        matrix = np.eye(total, dtype=complex)
        active = values_to_index(self._control_values, self._control_dims)
        lo = active * sub_dim
        hi = lo + sub_dim
        matrix[lo:hi, lo:hi] = sub_u
        return matrix

    def _structural_inverse(self) -> "ControlledGate":
        return ControlledGate(
            self._sub_gate.inverse(), self._control_dims, self._control_values
        )

    def diagonal_phases(self) -> "np.ndarray | None":
        sub_phases = self._sub_gate.diagonal_phases()
        if sub_phases is None:
            return None
        phases = np.ones(self.total_dim, dtype=complex)
        active = values_to_index(self._control_values, self._control_dims)
        sub_dim = self._sub_gate.total_dim
        phases[active * sub_dim : (active + 1) * sub_dim] = sub_phases
        return phases

    def _structural_spec(self) -> GateSpec:
        return GateSpec(
            "__controlled__",
            (self._sub_gate.spec(), self._control_values),
            self.dims,
        )

    def _canonical_spec(self) -> GateSpec:
        # Lower the sub-gate too, so e.g. CNOT equals a hand-built
        # ControlledGate over an equivalent X regardless of which
        # registered factory produced either sub-gate.
        return GateSpec(
            "__controlled__",
            (self._sub_gate.canonical_spec(), self._control_values),
            self.dims,
        )

    # -- classical fast path ----------------------------------------------
    #
    # Controlled permutation gates dominate the paper's circuits; resolving
    # them classically without building the (possibly large) joint unitary
    # keeps verification linear in circuit width.

    @property
    def is_classical(self) -> bool:
        return self._sub_gate.is_classical

    def classical_action(self, values: Sequence[int]) -> tuple[int, ...]:
        values = tuple(values)
        if len(values) != self.num_qudits:
            raise ValueError(
                f"expected {self.num_qudits} wire values, got {len(values)}"
            )
        n_ctrl = self.num_controls
        ctrl, rest = values[:n_ctrl], values[n_ctrl:]
        for v, dim in zip(ctrl, self._control_dims):
            if not 0 <= v < dim:
                raise ValueError(f"control value {v} out of range (d={dim})")
        if ctrl != self._control_values:
            # Still validate the sub-gate is classical so errors don't pass
            # silently on inactive branches.
            if not self._sub_gate.is_classical:
                raise NotClassicalError(
                    f"sub-gate {self._sub_gate.name} is not classical"
                )
            return values
        return ctrl + self._sub_gate.classical_action(rest)

    def _permutation(self) -> list[int]:
        if not self._sub_gate.is_classical:
            raise NotClassicalError(
                f"sub-gate {self._sub_gate.name} is not classical"
            )
        dims = self.dims
        total = self.total_dim
        perm = []
        for index in range(total):
            values = index_to_values(index, dims)
            perm.append(values_to_index(self.classical_action(values), dims))
        return perm


def _build_controlled_spec(spec: GateSpec) -> ControlledGate:
    sub_spec, control_values = spec.params
    sub_gate = GATE_REGISTRY.build(sub_spec)
    n_controls = len(spec.dims) - len(sub_gate.dims)
    return ControlledGate(
        sub_gate, spec.dims[:n_controls], tuple(control_values)
    )


GATE_REGISTRY.register("__controlled__", _build_controlled_spec)


def controlled(
    sub_gate: Gate,
    control_values: Sequence[int] | None = None,
    control_dims: Sequence[int] | None = None,
) -> ControlledGate:
    """Convenience builder for a controlled gate.

    If ``control_dims`` is omitted, every control defaults to a qutrit when
    its activation value is 2 and to the smallest dimension containing the
    value otherwise — callers in this library always pass dims explicitly
    except in tests.
    """
    if control_values is None and control_dims is None:
        control_values = (1,)
    if control_dims is None:
        assert control_values is not None
        control_dims = tuple(max(2, v + 1) for v in control_values)
    return ControlledGate(sub_gate, control_dims, control_values)
