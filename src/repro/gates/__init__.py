"""Gate library: qubit, qutrit and general qudit gates.

The binary gates mirror the standard universal set; the ternary gates follow
Section 2 of the paper (X01, X02, X12, X+1, X-1, ternary Z / Hadamard), and
:class:`ControlledGate` supports controls that activate on any basis value of
any dimension, which the paper's circuit constructions rely on (|1>-, |2>-
and |0>-activated controls).
"""

from .spec import GATE_REGISTRY, GateRegistry, GateSpec
from .base import Gate, PermutationGate, PhasedGate
from .matrix import MatrixGate
from .qubit import (
    CNOT,
    CZ,
    H,
    IDENTITY2,
    P,
    RX,
    RY,
    RZ,
    S,
    S_DAG,
    SQRT_X,
    SQRT_X_DAG,
    SWAP,
    T,
    T_DAG,
    TOFFOLI,
    X,
    Y,
    Z,
    controlled_power_of_x,
)
from .qutrit import (
    IDENTITY3,
    QUTRIT_H,
    X01,
    X02,
    X12,
    X_MINUS_1,
    X_PLUS_1,
    Z3,
    clock_gate,
    embedded_qubit_gate,
    identity_gate,
    level_swap,
    shift_gate,
)
from .controlled import ControlledGate, controlled
from .embedded import EmbeddedGate
from .inverse import INVERSE_RULES, inverse_spec, semantic_inverse
from .decompositions import (
    decompose_controlled_controlled_u,
    decompose_operation,
    root_power_gate,
    toffoli_to_cnots,
    two_controlled_qubit_u,
)

__all__ = [
    "GateSpec",
    "GateRegistry",
    "GATE_REGISTRY",
    "Gate",
    "MatrixGate",
    "PermutationGate",
    "PhasedGate",
    "ControlledGate",
    "controlled",
    "EmbeddedGate",
    "INVERSE_RULES",
    "inverse_spec",
    "semantic_inverse",
    # qubit gates
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "S_DAG",
    "T",
    "T_DAG",
    "P",
    "RX",
    "RY",
    "RZ",
    "SQRT_X",
    "SQRT_X_DAG",
    "CNOT",
    "CZ",
    "SWAP",
    "TOFFOLI",
    "IDENTITY2",
    "controlled_power_of_x",
    # qutrit / qudit gates
    "X01",
    "X02",
    "X12",
    "X_PLUS_1",
    "X_MINUS_1",
    "Z3",
    "QUTRIT_H",
    "IDENTITY3",
    "clock_gate",
    "shift_gate",
    "level_swap",
    "embedded_qubit_gate",
    "identity_gate",
    # decompositions
    "decompose_controlled_controlled_u",
    "decompose_operation",
    "root_power_gate",
    "toffoli_to_cnots",
    "two_controlled_qubit_u",
]
