"""Ternary (d=3) and general d-level gates.

Section 2 of the paper defines the five nontrivial classical single-qutrit
permutations: the three transpositions X01, X02, X12 (each swaps two basis
elements, self-inverse) and the two cyclic shifts X+1 / X-1 (addition mod 3).
This module provides those, the ternary clock/phase gates, the qutrit
Hadamard (3-point Fourier transform), and generic d-dimensional versions
used by the Lanyon/Ralph-style high-d-target construction.
"""

from __future__ import annotations

import numpy as np

from .base import Gate, PermutationGate, PhasedGate
from .matrix import MatrixGate
from .spec import GATE_REGISTRY, GateSpec


def identity_gate(dim: int) -> PermutationGate:
    """Identity on a single d-level wire."""
    gate = PermutationGate(list(range(dim)), (dim,), f"I{dim}")
    gate._set_spec(GateSpec("identity", (), (dim,)))
    return gate


def level_swap(dim: int, level_a: int, level_b: int) -> PermutationGate:
    """Swap two levels of a d-level wire, leaving the rest unchanged.

    ``level_swap(3, 0, 1)`` is the paper's X01, etc.
    """
    if level_a == level_b:
        raise ValueError("levels to swap must differ")
    if not (0 <= level_a < dim and 0 <= level_b < dim):
        raise ValueError(f"levels {level_a},{level_b} out of range for d={dim}")
    mapping = list(range(dim))
    mapping[level_a], mapping[level_b] = mapping[level_b], mapping[level_a]
    gate = PermutationGate(mapping, (dim,), f"X{level_a}{level_b}(d{dim})")
    gate._set_spec(GateSpec("level_swap", (level_a, level_b), (dim,)))
    return gate


def shift_gate(dim: int, amount: int = 1) -> PermutationGate:
    """The cyclic +amount (mod dim) gate; ``shift_gate(3, 1)`` is X+1.

    Note on convention: the gate maps ``|v> -> |v + amount mod d>``.
    """
    amount %= dim
    mapping = [0] * dim
    for value in range(dim):
        mapping[value] = (value + amount) % dim
    sign = "+" if amount <= dim // 2 else "-"
    shown = amount if sign == "+" else dim - amount
    gate = PermutationGate(mapping, (dim,), f"X{sign}{shown}(d{dim})")
    gate._set_spec(GateSpec("shift", (amount,), (dim,)))
    return gate


def clock_gate(dim: int, power: int = 1) -> PhasedGate:
    """The generalized Pauli Z: diag(1, w, w^2, ...) with w = e^{2 pi i/d}."""
    omega = np.exp(2j * np.pi / dim)
    phases = [omega ** (power * k) for k in range(dim)]
    gate = PhasedGate(
        phases, (dim,), f"Z{dim}^{power}" if power != 1 else f"Z{dim}"
    )
    gate._set_spec(GateSpec("clock", (int(power),), (dim,)))
    return gate


def fourier_gate(dim: int) -> MatrixGate:
    """The d-point discrete Fourier transform (qutrit Hadamard for d=3)."""
    omega = np.exp(2j * np.pi / dim)
    matrix = np.array(
        [[omega ** (j * k) for k in range(dim)] for j in range(dim)]
    ) / np.sqrt(dim)
    gate = MatrixGate(matrix, (dim,), name=f"F{dim}")
    gate._set_spec(GateSpec("fourier", (), (dim,)))
    return gate


def phase_gate(dim: int, level: int, phi: float) -> PhasedGate:
    """Apply phase e^{i phi} to a single level of a d-level wire."""
    phi = float(phi)
    phases = [1.0 + 0j] * dim
    phases[level] = np.exp(1j * phi)
    gate = PhasedGate(phases, (dim,), f"P{dim}[{level}]({phi:.4g})")
    gate._set_spec(GateSpec("phase", (int(level), phi), (dim,)))
    return gate


def embedded_qubit_gate(
    qubit_gate: Gate, dim: int = 3, levels: tuple[int, int] = (0, 1)
) -> Gate:
    """Embed a single-qubit gate into two levels of a d-level wire.

    The remaining levels are untouched.  This is how "all single qubit gates
    may be extended to operate on qutrits" (Sec. 2): e.g. the qubit X
    embedded in levels (0, 1) of a qutrit is exactly X01.
    """
    if qubit_gate.dims != (2,):
        raise ValueError("embedded_qubit_gate needs a single-qubit gate")
    a, b = levels
    small = qubit_gate.unitary()
    matrix = np.eye(dim, dtype=complex)
    matrix[a, a] = small[0, 0]
    matrix[a, b] = small[0, 1]
    matrix[b, a] = small[1, 0]
    matrix[b, b] = small[1, 1]
    gate = MatrixGate(
        matrix, (dim,), name=f"{qubit_gate.name}[{a}{b}](d{dim})"
    )
    gate._set_spec(
        GateSpec("embedded", (qubit_gate.spec(), int(a), int(b)), (dim,))
    )
    return gate


# ---------------------------------------------------------------------------
# The paper's named qutrit gates (Figure 3).
# ---------------------------------------------------------------------------

#: Swap |0> and |1>, fix |2>.
X01 = level_swap(3, 0, 1)

#: Swap |0> and |2>, fix |1>.
X02 = level_swap(3, 0, 2)

#: Swap |1> and |2>, fix |0>.
X12 = level_swap(3, 1, 2)

#: +1 mod 3 on a qutrit.
X_PLUS_1 = shift_gate(3, 1)

#: -1 mod 3 on a qutrit.
X_MINUS_1 = shift_gate(3, 2)

#: Ternary clock gate Z3 = diag(1, w, w^2).
Z3 = clock_gate(3)

#: Ternary Hadamard (3-point Fourier transform).
QUTRIT_H = fourier_gate(3)

#: Identity on one qutrit.
IDENTITY3 = identity_gate(3)


# ---------------------------------------------------------------------------
# Registry wiring: specs carry (params, dims); dims hold the wire dimension.
# ---------------------------------------------------------------------------

GATE_REGISTRY.register(
    "identity", lambda spec: identity_gate(spec.dims[0])
)
GATE_REGISTRY.register(
    "level_swap", lambda spec: level_swap(spec.dims[0], *spec.params)
)
GATE_REGISTRY.register(
    "shift", lambda spec: shift_gate(spec.dims[0], *spec.params)
)
GATE_REGISTRY.register(
    "clock", lambda spec: clock_gate(spec.dims[0], *spec.params)
)
GATE_REGISTRY.register(
    "fourier", lambda spec: fourier_gate(spec.dims[0])
)
GATE_REGISTRY.register(
    "phase",
    lambda spec: phase_gate(spec.dims[0], spec.params[0], spec.params[1]),
)
GATE_REGISTRY.register(
    "embedded",
    lambda spec: embedded_qubit_gate(
        GATE_REGISTRY.build(spec.params[0]),
        spec.dims[0],
        (spec.params[1], spec.params[2]),
    ),
)
