"""Gate abstractions.

A :class:`Gate` is defined by the tuple of qudit dimensions it acts on and a
unitary matrix over the joint space (row/column index = mixed-radix value of
the wires, first wire most significant — the same convention numpy's
``reshape`` gives when the state is stored as a tensor).

Gates that permute computational basis states additionally expose a
*classical action*, which is what makes the paper's linear-time circuit
verification possible (Sec. 6): a classical input can be pushed through a
permutation circuit in O(width) per gate without ever forming a state
vector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..exceptions import DimensionMismatchError, NotClassicalError
from ..linalg import is_permutation_matrix, is_unitary, permutation_of
from .spec import GATE_REGISTRY, GateSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..circuits.operation import GateOperation
    from ..qudits import Qudit


def values_to_index(values: Sequence[int], dims: Sequence[int]) -> int:
    """Mixed-radix encode ``values`` (first wire most significant)."""
    index = 0
    for value, dim in zip(values, dims, strict=True):
        if not 0 <= value < dim:
            raise ValueError(f"value {value} out of range for dimension {dim}")
        index = index * dim + value
    return index


def index_to_values(index: int, dims: Sequence[int]) -> tuple[int, ...]:
    """Mixed-radix decode ``index`` into per-wire values."""
    values = []
    for dim in reversed(dims):
        values.append(index % dim)
        index //= dim
    return tuple(reversed(values))


class Gate(ABC):
    """A unitary on a fixed tuple of qudit dimensions."""

    @property
    @abstractmethod
    def dims(self) -> tuple[int, ...]:
        """Dimensions of the wires this gate acts on, in order."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short human-readable name used in diagrams and reprs."""

    @abstractmethod
    def unitary(self) -> np.ndarray:
        """The gate's unitary matrix over the joint wire space."""

    # ------------------------------------------------------------------
    # Derived behaviour
    # ------------------------------------------------------------------

    @property
    def num_qudits(self) -> int:
        """Number of wires the gate spans."""
        return len(self.dims)

    @property
    def total_dim(self) -> int:
        """Dimension of the joint space the unitary acts on."""
        product = 1
        for d in self.dims:
            product *= d
        return product

    def inverse(self) -> "Gate":
        """The inverse gate.

        A gate carrying a registered semantic spec inverts through the
        registry inverse-rule table (:mod:`repro.gates.inverse`), so
        e.g. ``shift(+1)`` inverts to ``shift(+2)`` and ``T`` to
        ``T_DAG`` — named, serializable gates rather than anonymous
        dagger matrices.  Everything else falls back to the structural
        inverse of its gate class.
        """
        from .inverse import semantic_inverse

        inverted = semantic_inverse(self)
        if inverted is not None:
            return inverted
        return self._structural_inverse()

    def _structural_inverse(self) -> "Gate":
        """Class-level inverse fallback: wrap the conjugate transpose."""
        from .matrix import MatrixGate

        return MatrixGate(
            self.unitary().conj().T, self.dims, name=f"{self.name}^-1"
        )

    # -- structural identity and serialization --------------------------
    #
    # Every gate reports a serializable (name, params, dims) spec; the
    # registry rebuilds the gate from it (``GATE_REGISTRY.build``).  The
    # *canonical* spec additionally lowers semantic names to the gate's
    # structural class form, giving circuits a content-addressed identity
    # (same construction => same hash/fingerprint, different matrices =>
    # different fingerprints even under one display name).

    #: Semantic spec attached by registered factories (None = structural).
    _spec_override: GateSpec | None = None
    _canonical_cache: GateSpec | None = None

    def spec(self) -> GateSpec:
        """The serializable spec of this gate.

        Round-trip contract: ``GATE_REGISTRY.build(gate.spec()) == gate``.
        """
        if self._spec_override is not None:
            return self._spec_override
        return self._structural_spec()

    def canonical_spec(self) -> GateSpec:
        """The structural (class-level) spec used for equality and hashing.

        Semantic registry names are lowered to the underlying gate-class
        form and display names are dropped, so a registered constant and
        a hand-built equivalent (same class, same data) compare equal —
        identity is content-addressed.  Display names still serialize
        (via :meth:`spec`); they just don't define identity, which is
        what makes e.g. ``X.inverse() == X`` hold for the self-inverse
        permutation gates.
        """
        if self._canonical_cache is None:
            object.__setattr__(
                self, "_canonical_cache", self._canonical_spec()
            )
        return self._canonical_cache  # type: ignore[return-value]

    def _structural_spec(self) -> GateSpec:
        """Fallback structural spec: the full matrix plus display name.

        Subclasses with more compact structure (permutations, diagonals,
        controls) override this; anything else serializes as its unitary,
        so no gate is unserializable.
        """
        matrix = self.unitary()
        rows = tuple(tuple(complex(x) for x in row) for row in matrix)
        return GateSpec("__matrix__", (self.name, rows), self.dims)

    def _canonical_spec(self) -> GateSpec:
        matrix = self.unitary()
        rows = tuple(tuple(complex(x) for x in row) for row in matrix)
        return GateSpec("__matrix__", (rows,), self.dims)

    def _set_spec(self, spec: GateSpec) -> "Gate":
        """Attach a semantic spec (factory-internal; returns ``self``)."""
        object.__setattr__(self, "_spec_override", spec)
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Gate):
            return NotImplemented
        return self.canonical_spec() == other.canonical_spec()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self.canonical_spec())

    # -- classical (permutation) behaviour ------------------------------

    _perm_cache: list[int] | None = None

    def _permutation(self) -> list[int]:
        if self._perm_cache is None:
            matrix = self.unitary()
            if not is_permutation_matrix(matrix):
                raise NotClassicalError(
                    f"gate {self.name} is not a basis permutation"
                )
            # object.__setattr__ keeps this compatible with frozen dataclasses
            object.__setattr__(self, "_perm_cache", permutation_of(matrix))
        return self._perm_cache  # type: ignore[return-value]

    @property
    def is_classical(self) -> bool:
        """True iff the gate maps computational basis states to basis states."""
        try:
            self._permutation()
        except NotClassicalError:
            return False
        return True

    def permutation(self) -> list[int]:
        """The gate's full basis permutation ``i -> perm[i]``.

        Indices are mixed-radix encodings of the wire values (first wire
        most significant).  This is the *whole-domain* classical action —
        :func:`repro.sim.kernels.permutation_kernel` lowers it once per
        canonical spec into the batched engines' lookup tables, and it is
        what decides circuit classicality (a gate that happens to act
        classically on some inputs but not all is not classical).

        Raises :class:`NotClassicalError` for non-permutation gates.
        """
        return list(self._permutation())

    def classical_action(self, values: Sequence[int]) -> tuple[int, ...]:
        """Image of the basis state ``values`` under the gate.

        Raises :class:`NotClassicalError` for non-permutation gates.
        """
        perm = self._permutation()
        index = values_to_index(values, self.dims)
        return index_to_values(perm[index], self.dims)

    # -- diagonal behaviour ---------------------------------------------
    #
    # Diagonal gates commute with each other and merge into a single
    # phase gate, which is what the optimizer's fusion pass exploits
    # (phase-gadget style, after arXiv:2204.13681).  Like classicality,
    # diagonality is decided once per gate instance and cached.

    #: False = not yet computed; None = not diagonal; ndarray = phases.
    _diag_cache: "np.ndarray | None | bool" = False

    def diagonal_phases(self) -> "np.ndarray | None":
        """The gate's diagonal as a phase vector, or None if not diagonal.

        A gate is *diagonal* when its unitary is a diagonal matrix in
        the computational basis — it rephases every basis state without
        mixing them.  The returned vector lists the phase applied to
        each mixed-radix basis state (a fresh copy; safe to mutate).
        """
        if self._diag_cache is False:
            unitary = self.unitary()
            diag = np.diagonal(unitary).copy()
            result = (
                diag
                if np.allclose(unitary, np.diag(diag), atol=1e-9)
                else None
            )
            object.__setattr__(self, "_diag_cache", result)
        cached = self._diag_cache
        if cached is None:
            return None
        return np.array(cached, copy=True)

    @property
    def is_diagonal(self) -> bool:
        """True iff the gate's unitary is diagonal (pure rephasing)."""
        return self.diagonal_phases() is not None

    # -- construction helpers -------------------------------------------

    def on(self, *wires: "Qudit") -> "GateOperation":
        """Bind the gate to concrete wires, returning an operation."""
        from ..circuits.operation import GateOperation

        return GateOperation(self, tuple(wires))

    def validate_wires(self, wires: Sequence["Qudit"]) -> None:
        """Check arity and per-wire dimensions; raise on mismatch."""
        if len(wires) != self.num_qudits:
            raise DimensionMismatchError(
                f"gate {self.name} spans {self.num_qudits} wires, "
                f"got {len(wires)}"
            )
        for wire, dim in zip(wires, self.dims):
            if wire.dimension != dim:
                raise DimensionMismatchError(
                    f"gate {self.name} expects dimension {dim} on wire "
                    f"{wire}, which has dimension {wire.dimension}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} dims={self.dims}>"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class PermutationGate(Gate):
    """A classical reversible gate given directly by a basis permutation.

    ``mapping[i] = j`` means basis state ``i`` maps to basis state ``j``
    (indices are mixed-radix encodings of the wire values).
    """

    def __init__(
        self, mapping: Sequence[int], dims: Sequence[int], name: str
    ) -> None:
        dims = tuple(dims)
        total = 1
        for d in dims:
            total *= d
        if sorted(mapping) != list(range(total)):
            raise ValueError(
                f"mapping {mapping!r} is not a permutation of 0..{total - 1}"
            )
        self._mapping = list(mapping)
        self._dims = dims
        self._name = name

    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def name(self) -> str:
        return self._name

    def unitary(self) -> np.ndarray:
        total = self.total_dim
        matrix = np.zeros((total, total), dtype=complex)
        for src, dst in enumerate(self._mapping):
            matrix[dst, src] = 1.0
        return matrix

    def _permutation(self) -> list[int]:
        return self._mapping

    def _structural_spec(self) -> GateSpec:
        return GateSpec(
            "__perm__",
            (self._name, tuple(int(v) for v in self._mapping)),
            self._dims,
        )

    def _canonical_spec(self) -> GateSpec:
        return GateSpec(
            "__perm__",
            (tuple(int(v) for v in self._mapping),),
            self._dims,
        )

    def _structural_inverse(self) -> "PermutationGate":
        inverse_map = [0] * len(self._mapping)
        for src, dst in enumerate(self._mapping):
            inverse_map[dst] = src
        return PermutationGate(inverse_map, self._dims, f"{self.name}^-1")


class PhasedGate(Gate):
    """A diagonal gate ``diag(phases)`` (all basis states kept, rephased)."""

    def __init__(
        self, phases: Sequence[complex], dims: Sequence[int], name: str
    ) -> None:
        self._phases = np.asarray(phases, dtype=complex)
        self._dims = tuple(dims)
        if not np.allclose(np.abs(self._phases), 1.0, atol=1e-9):
            raise ValueError("diagonal entries must have unit magnitude")
        total = 1
        for d in self._dims:
            total *= d
        if self._phases.shape != (total,):
            raise DimensionMismatchError(
                f"need {total} phases for dims {self._dims}, "
                f"got {self._phases.shape}"
            )
        self._name = name

    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def name(self) -> str:
        return self._name

    def unitary(self) -> np.ndarray:
        return np.diag(self._phases)

    def _structural_spec(self) -> GateSpec:
        return GateSpec(
            "__phased__",
            (self._name, tuple(complex(p) for p in self._phases)),
            self._dims,
        )

    def _canonical_spec(self) -> GateSpec:
        return GateSpec(
            "__phased__",
            (tuple(complex(p) for p in self._phases),),
            self._dims,
        )

    def _structural_inverse(self) -> "PhasedGate":
        return PhasedGate(self._phases.conj(), self._dims, f"{self.name}^-1")

    def diagonal_phases(self) -> np.ndarray:
        return self._phases.copy()


# -- structural constructors -------------------------------------------------


def _build_perm(spec: GateSpec) -> PermutationGate:
    name, mapping = spec.params
    return PermutationGate(list(mapping), spec.dims, name)


def _build_phased(spec: GateSpec) -> PhasedGate:
    name, phases = spec.params
    return PhasedGate(list(phases), spec.dims, name)


GATE_REGISTRY.register("__perm__", _build_perm)
GATE_REGISTRY.register("__phased__", _build_phased)


def validated_unitary(matrix: np.ndarray, dims: Sequence[int]) -> np.ndarray:
    """Coerce and validate a unitary of the right size for ``dims``."""
    matrix = np.asarray(matrix, dtype=complex)
    total = 1
    for d in dims:
        total *= d
    if matrix.shape != (total, total):
        raise DimensionMismatchError(
            f"matrix shape {matrix.shape} does not match dims {tuple(dims)} "
            f"(expected {(total, total)})"
        )
    if not is_unitary(matrix, atol=1e-7):
        raise ValueError("matrix is not unitary")
    return matrix
