"""Block-diagonal embedding of gates into larger wire dimensions.

The paper's dimension-transform front end rests on one observation
(Sec. 2, following the CirqTrit ``to_qutrit_wrappers`` idiom): any qubit
gate extends to a qutrit wire by acting identically on levels {0, 1} and
fixing |2>.  :class:`EmbeddedGate` is that embedding as a first-class
gate, generalised to any arities and target dimensions: the wrapped
gate's unitary occupies the sub-block of basis states whose per-wire
values lie below the original dimensions, and every state touching an
added level is fixed.

Unlike the anonymous matrix/permutation wrappers the promotion pass used
to emit, the wrapper *retains* the sub-gate, which is what makes lowering
(:class:`repro.interop.LowerToQubits`) an unwrap instead of a matrix
reverse-engineering problem.  Structural identity is the ``__embedded__``
spec (the sub-gate's spec nested inside), so lifted circuits serialize,
fingerprint, cache and optimize like native gates; classicality and
diagonality are delegated to the sub-gate, so lifted classical gates
lower to permutation tables (:func:`repro.sim.kernels
.embed_permutation_table`) without ever forming a dense matrix and keep
the batched engines' fast paths.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DimensionMismatchError
from .base import Gate, index_to_values, values_to_index
from .spec import GATE_REGISTRY, GateSpec


class EmbeddedGate(Gate):
    """``sub_gate`` on enlarged wires: original action on the original
    levels, identity on every basis state touching an added level."""

    def __init__(
        self,
        sub_gate: Gate,
        dims: Sequence[int],
        name: str | None = None,
    ) -> None:
        dims = tuple(int(d) for d in dims)
        old = sub_gate.dims
        if len(dims) != len(old):
            raise DimensionMismatchError(
                f"embedding of {sub_gate.name} needs {len(old)} dims, "
                f"got {len(dims)}"
            )
        if any(n < o for n, o in zip(dims, old)):
            raise DimensionMismatchError(
                f"cannot embed {sub_gate.name} with dims {old} into "
                f"smaller dims {dims}"
            )
        if dims == old:
            raise ValueError(
                f"embedding {sub_gate.name} into its own dims {old} is a "
                "no-op; use the gate directly"
            )
        self._sub_gate = sub_gate
        self._dims = dims
        self._name = name if name is not None else f"{sub_gate.name}@{dims}"

    # -- data access -----------------------------------------------------

    @property
    def sub_gate(self) -> Gate:
        """The wrapped gate (acting on the original, smaller dims)."""
        return self._sub_gate

    # -- Gate interface --------------------------------------------------

    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def name(self) -> str:
        return self._name

    _embed_cache: np.ndarray | None = None

    def _embed_indices(self) -> np.ndarray:
        """Joint indices of the embedded subspace, in sub-gate order."""
        if self._embed_cache is None:
            old = self._sub_gate.dims
            indices = np.array(
                [
                    values_to_index(index_to_values(k, old), self._dims)
                    for k in range(self._sub_gate.total_dim)
                ],
                dtype=np.int64,
            )
            indices.setflags(write=False)
            object.__setattr__(self, "_embed_cache", indices)
        return self._embed_cache

    def unitary(self) -> np.ndarray:
        matrix = np.eye(self.total_dim, dtype=complex)
        embed = self._embed_indices()
        matrix[np.ix_(embed, embed)] = self._sub_gate.unitary()
        return matrix

    def _permutation(self) -> list[int]:
        if self._perm_cache is None:
            from ..sim.kernels import embed_permutation_table

            table = embed_permutation_table(
                self._sub_gate.permutation(),
                self._sub_gate.dims,
                self._dims,
            )
            object.__setattr__(
                self, "_perm_cache", [int(v) for v in table]
            )
        return self._perm_cache  # type: ignore[return-value]

    def diagonal_phases(self) -> "np.ndarray | None":
        sub_phases = self._sub_gate.diagonal_phases()
        if sub_phases is None:
            return None
        phases = np.ones(self.total_dim, dtype=complex)
        phases[self._embed_indices()] = sub_phases
        return phases

    def _structural_spec(self) -> GateSpec:
        return GateSpec(
            "__embedded__",
            (self._name, self._sub_gate.spec()),
            self._dims,
        )

    def _canonical_spec(self) -> GateSpec:
        return GateSpec(
            "__embedded__",
            (self._sub_gate.canonical_spec(),),
            self._dims,
        )

    def _structural_inverse(self) -> "EmbeddedGate":
        return EmbeddedGate(self._sub_gate.inverse(), self._dims)


def _build_embedded(spec: GateSpec) -> EmbeddedGate:
    name, sub_spec = spec.params
    return EmbeddedGate(
        GATE_REGISTRY.build(sub_spec), spec.dims, name=name
    )


GATE_REGISTRY.register("__embedded__", _build_embedded)
