"""A gate defined directly by its unitary matrix."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Gate, validated_unitary
from .spec import GATE_REGISTRY, GateSpec


class MatrixGate(Gate):
    """Wraps an explicit unitary matrix over the given wire dimensions.

    Used for derived gates (roots of unitaries, inverses, random test
    unitaries).  The matrix is validated for shape and unitarity once at
    construction.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        dims: Sequence[int],
        name: str = "U",
    ) -> None:
        self._dims = tuple(dims)
        self._matrix = validated_unitary(matrix, self._dims)
        self._name = name

    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def name(self) -> str:
        return self._name

    def unitary(self) -> np.ndarray:
        return self._matrix.copy()

    def _structural_inverse(self) -> "MatrixGate":
        return MatrixGate(
            self._matrix.conj().T, self._dims, name=f"{self._name}^-1"
        )

    def _structural_spec(self) -> GateSpec:
        rows = tuple(
            tuple(complex(x) for x in row) for row in self._matrix
        )
        return GateSpec("__matrix__", (self._name, rows), self._dims)

    def _canonical_spec(self) -> GateSpec:
        rows = tuple(
            tuple(complex(x) for x in row) for row in self._matrix
        )
        return GateSpec("__matrix__", (rows,), self._dims)


def _build_matrix(spec: GateSpec) -> MatrixGate:
    name, rows = spec.params
    return MatrixGate(np.array(rows, dtype=complex), spec.dims, name=name)


GATE_REGISTRY.register("__matrix__", _build_matrix)
