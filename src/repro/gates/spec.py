"""Canonical gate specs and the package-wide gate registry.

A :class:`GateSpec` is the serializable identity of a gate: a registry
``name``, a tuple of ``params`` and the tuple of wire ``dims`` it acts
on.  Every gate the package constructs can report its spec via
:meth:`~repro.gates.base.Gate.spec` and be rebuilt from it via
:meth:`GateRegistry.build`, which makes circuits plain values: they can
be hashed, compared structurally, written to JSON and shipped across
process boundaries (see :mod:`repro.circuits.circuit` and
:mod:`repro.execution.cache`).

Two kinds of spec exist:

* **semantic** specs name a registered constructor with its parameters,
  e.g. ``GateSpec("shift", (1,), (3,))`` for the paper's X+1 gate — the
  `(name, params, dims)` shape qudit toolchains such as Yeh & van de
  Wetering's qutrit Clifford+T compiler use;
* **structural** specs describe a gate class directly (``__perm__``,
  ``__phased__``, ``__matrix__``, ``__controlled__``) and act as the
  universal fallback, so even a hand-built
  :class:`~repro.gates.matrix.MatrixGate` serializes (as its full
  matrix) and fingerprints (as a digest of that matrix) without any
  registration.

Spec params are restricted to JSON-representable values: ``None``,
``bool``, ``int``, ``float``, ``str``, ``complex`` (encoded as a
re/im pair), nested tuples of those, and nested :class:`GateSpec`
objects (for controlled / embedded / derived gates).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from importlib import import_module
from typing import Callable, Iterator, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .base import Gate

#: JSON marker for complex parameter values.
_COMPLEX_KEY = "__complex__"
#: JSON marker for nested gate specs inside parameter lists.
_SPEC_KEY = "__gate__"


def _freeze_param(value):
    """Coerce a parameter to its canonical hashable form."""
    if isinstance(value, GateSpec):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_param(item) for item in value)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        # +0.0 collapses -0.0 to 0.0: the two compare equal (so specs
        # would too) but json.dumps renders them differently, which
        # would let structurally equal gates fingerprint apart.
        return float(value) + 0.0
    if isinstance(value, complex):
        return complex(value.real + 0.0, value.imag + 0.0)
    if isinstance(value, str):
        return value
    # Numpy scalars and other number-likes: prefer the exact kinds
    # (re-frozen so the signed-zero normalization above applies).
    for kind in (int, float, complex):
        if hasattr(value, "__" + kind.__name__ + "__"):
            return _freeze_param(kind(value))
    raise TypeError(
        f"gate spec params must be JSON-representable, got "
        f"{type(value).__name__}: {value!r}"
    )


def _encode_param(value):
    """Lower a frozen parameter to plain JSON data."""
    if isinstance(value, GateSpec):
        return {_SPEC_KEY: value.to_dict()}
    if isinstance(value, tuple):
        return [_encode_param(item) for item in value]
    if isinstance(value, complex):
        return {_COMPLEX_KEY: [value.real, value.imag]}
    return value


def _decode_param(data):
    """Rebuild a frozen parameter from plain JSON data."""
    if isinstance(data, dict):
        if _SPEC_KEY in data:
            return GateSpec.from_dict(data[_SPEC_KEY])
        if _COMPLEX_KEY in data:
            real, imag = data[_COMPLEX_KEY]
            return complex(real, imag)
        raise ValueError(f"unrecognized parameter encoding: {data!r}")
    if isinstance(data, list):
        return tuple(_decode_param(item) for item in data)
    return data


@dataclass(frozen=True)
class GateSpec:
    """The `(name, params, dims)` identity of a gate.

    Instances are immutable, hashable values; two specs are equal iff
    their canonicalized fields are equal, which is exactly the
    round-trip guarantee: ``GateSpec.from_dict(spec.to_dict()) == spec``.
    """

    name: str
    params: tuple = field(default=())
    dims: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_param(tuple(self.params)))
        object.__setattr__(
            self, "dims", tuple(int(d) for d in self.dims)
        )

    def to_dict(self) -> dict:
        """Plain-data form of the spec (JSON-compatible)."""
        return {
            "name": self.name,
            "params": [_encode_param(p) for p in self.params],
            "dims": list(self.dims),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "GateSpec":
        """Rebuild a spec from :meth:`to_dict` data."""
        return cls(
            name=data["name"],
            params=tuple(_decode_param(p) for p in data.get("params", [])),
            dims=tuple(data.get("dims", [])),
        )

    def to_json(self) -> str:
        """Canonical JSON text of the spec (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "GateSpec":
        """Rebuild a spec from :meth:`to_json` text."""
        return cls.from_dict(json.loads(text))


#: A registry constructor: builds a gate from a (validated) spec.
GateConstructor = Callable[[GateSpec], "Gate"]


class GateRegistry:
    """Name -> constructor table that rebuilds gates from specs.

    Every gate module registers its constructors at import time; the
    default instance :data:`GATE_REGISTRY` lazily imports
    :mod:`repro.gates` on first use so deserialization works no matter
    which submodule the caller imported first.
    """

    def __init__(self, autoload: bool = False) -> None:
        self._constructors: dict[str, GateConstructor] = {}
        self._autoload = autoload
        self._loaded = not autoload

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            # Importing the gates package runs every module's
            # registration block exactly once.
            self._loaded = True
            import_module(__package__)

    def register(
        self, name: str, constructor: GateConstructor | None = None
    ):
        """Register ``constructor`` under ``name``.

        Usable directly or as a decorator.  Re-registering a name raises
        — specs must stay unambiguous for the lifetime of the process.
        """
        if constructor is None:
            return lambda fn: self.register(name, fn)
        if name in self._constructors:
            raise ValueError(f"gate spec name {name!r} already registered")
        self._constructors[name] = constructor
        return constructor

    def build(self, spec: GateSpec) -> "Gate":
        """Construct the gate described by ``spec``."""
        self._ensure_loaded()
        try:
            constructor = self._constructors[spec.name]
        except KeyError:
            raise KeyError(
                f"no gate constructor registered for spec name "
                f"{spec.name!r}; known names: {sorted(self._constructors)}"
            ) from None
        return constructor(spec)

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return name in self._constructors

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._constructors)

    def names(self) -> Iterator[str]:
        """Registered spec names, sorted."""
        self._ensure_loaded()
        return iter(sorted(self._constructors))


#: The package-wide registry every gate module registers into.
GATE_REGISTRY = GateRegistry(autoload=True)
