"""Registry-level semantic inverse rules for the gate catalog.

The optimizer's adjacent-inverse cancellation (:mod:`repro.optimize`)
asks, for each gate, "what is your inverse's *canonical spec*?" — and two
operations cancel exactly when one's canonical spec equals the other's
inverse canonical spec.  For that question to have sharp answers the
inverse of a semantic gate should itself be semantic: ``shift(+1)`` on a
qutrit inverts to ``shift(+2)``, ``RX(theta)`` to ``RX(-theta)``,
``T`` to ``T_DAG`` — not to an anonymous dagger matrix whose floating
point entries only *approximately* match the named gate.

This module holds the spec-name -> inverse-spec rule table.
:meth:`repro.gates.base.Gate.inverse` consults it first and only then
falls back to the structural inverse (permutation reversal, conjugated
phases, matrix dagger), so every gate in ``GATE_REGISTRY`` inverts —
semantically where a rule exists, structurally otherwise.

Rules return a :class:`GateSpec`; the inverse gate is rebuilt through the
registry, so it carries the semantic spec and round-trips like any other
registered gate.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from .spec import GATE_REGISTRY, GateSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .base import Gate

#: A rule maps a semantic spec to the spec of its inverse (None = no rule
#: for these particular params; fall back to the structural inverse).
InverseRule = Callable[[GateSpec], "GateSpec | None"]


def _self_inverse(spec: GateSpec) -> GateSpec:
    return spec


def _negate_param(spec: GateSpec) -> GateSpec:
    """Single-parameter rotations/phases invert by negating the angle."""
    (value,) = spec.params
    return GateSpec(spec.name, (-value,), spec.dims)


def _shift_inverse(spec: GateSpec) -> GateSpec:
    (amount,) = spec.params
    dim = spec.dims[0]
    return GateSpec("shift", ((dim - amount) % dim,), spec.dims)


def _phase_inverse(spec: GateSpec) -> GateSpec:
    level, phi = spec.params
    return GateSpec("phase", (level, -phi), spec.dims)


def _flip_dag(name: str) -> str:
    return name[:-4] if name.endswith("_DAG") else name + "_DAG"


def _dag_pair(spec: GateSpec) -> GateSpec:
    return GateSpec(_flip_dag(spec.name), (), spec.dims)


def _embedded_inverse(spec: GateSpec) -> "GateSpec | None":
    sub_spec, level_a, level_b = spec.params
    sub_inverse = inverse_spec(sub_spec)
    if sub_inverse is None:
        return None
    return GateSpec("embedded", (sub_inverse, level_a, level_b), spec.dims)


def _root_pow_inverse(spec: GateSpec) -> GateSpec:
    base_spec, k, d, name = spec.params
    flipped = name[:-3] if name.endswith("^-1") else f"{name}^-1"
    return GateSpec("U_root_pow", (base_spec, -k, d, flipped), spec.dims)


#: spec name -> rule.  Covers every registered semantic name whose inverse
#: is expressible as a registered semantic spec; the rest (``fourier`` and
#: the structural ``__matrix__`` family) invert structurally.
INVERSE_RULES: dict[str, InverseRule] = {
    # -- qudit factories ------------------------------------------------
    "identity": _self_inverse,
    "level_swap": _self_inverse,
    "shift": _shift_inverse,
    "clock": _negate_param,
    "phase": _phase_inverse,
    "embedded": _embedded_inverse,
    # -- qubit factories ------------------------------------------------
    "P": _negate_param,
    "RX": _negate_param,
    "RY": _negate_param,
    "RZ": _negate_param,
    "X_pow": _negate_param,
    "CX_pow": _negate_param,
    # -- derived gates --------------------------------------------------
    "U_root_pow": _root_pow_inverse,
    # -- registered constants -------------------------------------------
    "S": _dag_pair,
    "S_DAG": _dag_pair,
    "T": _dag_pair,
    "T_DAG": _dag_pair,
    "SQRT_X": _dag_pair,
    "SQRT_X_DAG": _dag_pair,
}

for _name in ("I2", "X", "Y", "Z", "H", "CNOT", "CZ", "TOFFOLI", "SWAP"):
    INVERSE_RULES[_name] = _self_inverse


def inverse_spec(spec: GateSpec) -> "GateSpec | None":
    """The semantic inverse spec of ``spec``, or None if no rule applies."""
    rule = INVERSE_RULES.get(spec.name)
    if rule is None:
        return None
    return rule(spec)


def semantic_inverse(gate: "Gate") -> "Gate | None":
    """Invert ``gate`` through the registry rule table, if possible.

    Returns None when the gate carries no semantic spec or no rule covers
    its spec name — callers fall back to the structural inverse.
    """
    spec = gate._spec_override
    if spec is None:
        return None
    inv = inverse_spec(spec)
    if inv is None:
        return None
    return GATE_REGISTRY.build(inv)
