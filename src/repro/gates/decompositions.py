"""Decompositions of small multi-qudit gates into 1- and 2-qudit gates.

Hardware executes one- and two-qudit gates only (Sec. 4 of the paper), so
every three-qudit gate in the high-level constructions is lowered through
this module:

* :func:`toffoli_to_cnots` — the textbook 6-CNOT + 9-single-qubit Toffoli.
* :func:`two_controlled_qubit_u` — Barenco's 5-two-qubit-gate CC-U.
* :func:`decompose_controlled_controlled_u` — a two-controlled U on qudit
  wires with arbitrary activation values, via a root-of-U cascade on a
  d-level host control: 2d + 1 two-qudit gates (7 for a qutrit host).
  The paper cites Di & Wei's 6 two-qutrit + 7 single-qutrit decomposition
  for the same job; ours costs one extra two-qudit gate, which the
  benchmark write-ups account for.

The cascade (verified in tests for all activation values): conditional
``host += 1 (mod d)`` shifts interleaved between ``host == b``-controlled
applications of U^((d-1)/d), U^(-1/d), ..., followed by a final
``c0 == a``-controlled U^(1/d), leave the target with U-exponent 1 exactly
when both controls are active and 0 on every other basis state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..exceptions import DecompositionError
from ..linalg import matrix_root
from .base import Gate
from .controlled import ControlledGate
from .matrix import MatrixGate
from .qubit import CNOT, H, T, T_DAG, X
from .qutrit import shift_gate
from .spec import GATE_REGISTRY, GateSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..circuits.operation import GateOperation
    from ..qudits import Qudit


def root_power_gate(base: Gate, k: int, d: int, name: str) -> MatrixGate:
    """``base ** (k/d)`` via the principal d-th root (negative k = dagger).

    The matrix is ``matrix_root(U, 1/d) ** |k|``, conjugate-transposed
    for negative ``k`` — the exact arithmetic the decompositions below
    perform, captured as a registered spec (``U_root_pow``) so derived
    gates rebuild bit-identically from serialized circuits.
    """
    root = matrix_root(base.unitary(), 1.0 / d)
    matrix = np.linalg.matrix_power(root, abs(k))
    if k < 0:
        matrix = matrix.conj().T
    gate = MatrixGate(matrix, base.dims, name=name)
    gate._set_spec(
        GateSpec(
            "U_root_pow", (base.spec(), int(k), int(d), name), base.dims
        )
    )
    return gate


GATE_REGISTRY.register(
    "U_root_pow",
    lambda spec: root_power_gate(
        GATE_REGISTRY.build(spec.params[0]), *spec.params[1:]
    ),
)


def toffoli_to_cnots(
    control_a: "Qudit", control_b: "Qudit", target: "Qudit"
) -> list["GateOperation"]:
    """Standard Toffoli decomposition: 6 CNOTs and 9 single-qubit gates."""
    a, b, t = control_a, control_b, target
    return [
        H.on(t),
        CNOT.on(b, t),
        T_DAG.on(t),
        CNOT.on(a, t),
        T.on(t),
        CNOT.on(b, t),
        T_DAG.on(t),
        CNOT.on(a, t),
        T.on(b),
        T.on(t),
        H.on(t),
        CNOT.on(a, b),
        T.on(a),
        T_DAG.on(b),
        CNOT.on(a, b),
    ]


def two_controlled_qubit_u(
    control_a: "Qudit",
    control_b: "Qudit",
    target: "Qudit",
    sub_gate: Gate,
    values: tuple[int, int] = (1, 1),
) -> list["GateOperation"]:
    """Barenco 5-gate CC-U for qubit controls.

    ``CV(c1,t) . CX(c0,c1) . CV^-1(c1,t) . CX(c0,c1) . CV(c0,t)`` with
    V = sqrt(U).  Controls that activate on 0 are X-conjugated.
    """
    v_gate = root_power_gate(sub_gate, 1, 2, f"sqrt({sub_gate.name})")
    v_dag = root_power_gate(sub_gate, -1, 2, f"sqrt({sub_gate.name})^-1")
    cv1 = ControlledGate(v_gate, (2,))
    cv1_dag = ControlledGate(v_dag, (2,))
    ops: list["GateOperation"] = []
    flipped = [
        wire
        for wire, value in zip((control_a, control_b), values)
        if value == 0
    ]
    for wire in flipped:
        ops.append(X.on(wire))
    ops.extend(
        [
            cv1.on(control_b, target),
            CNOT.on(control_a, control_b),
            cv1_dag.on(control_b, target),
            CNOT.on(control_a, control_b),
            cv1.on(control_a, target),
        ]
    )
    for wire in flipped:
        ops.append(X.on(wire))
    return ops


def decompose_controlled_controlled_u(
    control_a: "Qudit",
    control_b: "Qudit",
    target: "Qudit",
    sub_gate: Gate,
    values: tuple[int, int] = (1, 1),
) -> list["GateOperation"]:
    """Lower a two-controlled U (arbitrary activation values) to 2-qudit gates.

    Dispatches to the qubit-only Barenco form when both controls are qubits;
    otherwise uses the cube-root cascade, which needs (at least) one qutrit
    control to host the conditional +1 shifts.
    """
    if control_a.dimension == 2 and control_b.dimension == 2:
        if max(values) > 1:
            raise DecompositionError(
                "qubit controls cannot activate on values above 1"
            )
        return two_controlled_qubit_u(
            control_a, control_b, target, sub_gate, values
        )
    # The shift host needs d >= 3 levels: d conditional +1 shifts walk it
    # around the full cycle and restore it.
    a_val, b_val = values
    if control_b.dimension < 3:
        control_a, control_b = control_b, control_a
        a_val, b_val = b_val, a_val

    da, db = control_a.dimension, control_b.dimension
    u_top = root_power_gate(
        sub_gate, db - 1, db, f"{sub_gate.name}^({db - 1}/{db})"
    )
    u_root = root_power_gate(
        sub_gate, 1, db, f"{sub_gate.name}^(1/{db})"
    )
    u_root_dag = root_power_gate(
        sub_gate, -1, db, f"{sub_gate.name}^(-1/{db})"
    )

    shift = ControlledGate(shift_gate(db, 1), (da,), (a_val,))

    def on_b(gate: Gate) -> ControlledGate:
        return ControlledGate(gate, (db,), (b_val,))

    def on_a(gate: Gate) -> ControlledGate:
        return ControlledGate(gate, (da,), (a_val,))

    # Exponent bookkeeping (generalising the d=3 case): with conditional
    # shifts interleaved, the target accrues U^((d-1)/d) when the host
    # started at b and U^(-1/d) at each of the other d-1 starting values;
    # the trailing a-controlled U^(1/d) lifts every active row by 1/d,
    # netting exponent 1 exactly on (a, b) and 0 elsewhere.
    ops = [on_b(u_top).on(control_b, target)]
    for _ in range(db - 1):
        ops.append(shift.on(control_a, control_b))
        ops.append(on_b(u_root_dag).on(control_b, target))
    ops.append(shift.on(control_a, control_b))
    ops.append(on_a(u_root).on(control_a, target))
    return ops


def decompose_operation(op: "GateOperation") -> list["GateOperation"]:
    """Lower an operation to 1- and 2-qudit operations.

    * 1- and 2-qudit operations pass through unchanged.
    * Two-controlled gates go through
      :func:`decompose_controlled_controlled_u`.
    * Anything wider raises :class:`DecompositionError` — the library's
      constructions never produce wider primitives.
    """
    if op.gate.num_qudits <= 2:
        return [op]
    gate = op.gate
    if isinstance(gate, ControlledGate) and gate.num_controls == 2:
        c0, c1, *targets = op.qudits
        if len(targets) != 1:
            raise DecompositionError(
                "only single-target two-controlled gates are supported, got "
                f"{gate.name}"
            )
        return decompose_controlled_controlled_u(
            c0, c1, targets[0], gate.sub_gate, gate.control_values
        )
    raise DecompositionError(
        f"no decomposition rule for {gate.name} on {len(op.qudits)} wires"
    )


def decompose_all(
    operations: Sequence["GateOperation"],
) -> list["GateOperation"]:
    """Map :func:`decompose_operation` over a sequence of operations."""
    lowered: list["GateOperation"] = []
    for op in operations:
        lowered.extend(decompose_operation(op))
    return lowered
