"""Standard binary (d=2) gates.

These are the building blocks of the qubit-only baseline constructions
(Gidney-style dirty-ancilla circuits, Barenco cascades, He's ancilla tree).
"""

from __future__ import annotations

import numpy as np

from .base import Gate, PermutationGate, PhasedGate
from .matrix import MatrixGate
from .spec import GATE_REGISTRY, GateSpec


def _qubit_matrix_gate(matrix: np.ndarray, name: str) -> MatrixGate:
    return MatrixGate(np.asarray(matrix, dtype=complex), (2,), name=name)


#: Identity on one qubit.
IDENTITY2 = PermutationGate([0, 1], (2,), "I2")

#: Pauli X (NOT).
X = PermutationGate([1, 0], (2,), "X")

#: Pauli Y.
Y = _qubit_matrix_gate([[0, -1j], [1j, 0]], "Y")

#: Pauli Z.
Z = PhasedGate([1, -1], (2,), "Z")

#: Hadamard.
H = _qubit_matrix_gate(np.array([[1, 1], [1, -1]]) / np.sqrt(2), "H")

#: Phase gate S = diag(1, i).
S = PhasedGate([1, 1j], (2,), "S")

#: Inverse phase gate.
S_DAG = PhasedGate([1, -1j], (2,), "S^-1")

#: T gate = diag(1, e^{i pi/4}).
T = PhasedGate([1, np.exp(1j * np.pi / 4)], (2,), "T")

#: Inverse T gate.
T_DAG = PhasedGate([1, np.exp(-1j * np.pi / 4)], (2,), "T^-1")

#: Square root of X (the V gate of Barenco-style decompositions).
SQRT_X = _qubit_matrix_gate(
    np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]) / 2, "V=sqrt(X)"
)

#: Inverse square root of X.
SQRT_X_DAG = _qubit_matrix_gate(
    np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]]) / 2, "V^-1"
)


def P(phi: float) -> PhasedGate:
    """Single-qubit phase gate diag(1, e^{i phi})."""
    phi = float(phi)
    gate = PhasedGate([1, np.exp(1j * phi)], (2,), f"P({phi:.4g})")
    gate._set_spec(GateSpec("P", (phi,), (2,)))
    return gate


def RX(theta: float) -> MatrixGate:
    """Rotation about X by ``theta``."""
    theta = float(theta)
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    gate = _qubit_matrix_gate(
        [[c, -1j * s], [-1j * s, c]], f"RX({theta:.4g})"
    )
    gate._set_spec(GateSpec("RX", (theta,), (2,)))
    return gate


def RY(theta: float) -> MatrixGate:
    """Rotation about Y by ``theta``."""
    theta = float(theta)
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    gate = _qubit_matrix_gate([[c, -s], [s, c]], f"RY({theta:.4g})")
    gate._set_spec(GateSpec("RY", (theta,), (2,)))
    return gate


def RZ(theta: float) -> MatrixGate:
    """Rotation about Z by ``theta``."""
    theta = float(theta)
    gate = _qubit_matrix_gate(
        np.diag([np.exp(-1j * theta / 2), np.exp(1j * theta / 2)]),
        f"RZ({theta:.4g})",
    )
    gate._set_spec(GateSpec("RZ", (theta,), (2,)))
    return gate


def power_of_x(exponent: float) -> Gate:
    """X**exponent with the principal branch: diag(1, e^{i pi exponent})
    conjugated by Hadamard.  ``exponent=1`` returns the plain X gate.

    These fractional-X gates are the "very small angle" rotations that
    appear in the ancilla-free qubit cascades (Sec. 3.2 of the paper).
    """
    if exponent == 1:
        return X
    exponent = float(exponent)
    h = H.unitary()
    phase = np.diag([1.0, np.exp(1j * np.pi * exponent)])
    gate = MatrixGate(h @ phase @ h, (2,), name=f"X^{exponent:.6g}")
    gate._set_spec(GateSpec("X_pow", (exponent,), (2,)))
    return gate


def controlled_power_of_x(exponent: float) -> Gate:
    """Singly-controlled X**exponent as a primitive two-qubit gate."""
    from .controlled import ControlledGate

    gate = ControlledGate(power_of_x(exponent), control_dims=(2,))
    gate._set_spec(GateSpec("CX_pow", (float(exponent),), (2, 2)))
    return gate


# ---------------------------------------------------------------------------
# Two- and three-qubit staples (built lazily to avoid import cycles).
# ---------------------------------------------------------------------------


def _build_controlled(sub: Gate, num_controls: int) -> Gate:
    from .controlled import ControlledGate

    return ControlledGate(sub, control_dims=(2,) * num_controls)


#: Controlled NOT.
CNOT = _build_controlled(X, 1)

#: Controlled Z.
CZ = _build_controlled(Z, 1)

#: Toffoli (CCX) as a single logical gate; decompose with
#: :func:`repro.gates.decompositions.toffoli_to_cnots` for hardware counts.
TOFFOLI = _build_controlled(X, 2)

#: SWAP on two qubits.
SWAP = PermutationGate([0, 2, 1, 3], (2, 2), "SWAP")


# ---------------------------------------------------------------------------
# Registry wiring: named constants round-trip by name, parameterized
# factories by (name, params); see repro.gates.spec.
# ---------------------------------------------------------------------------


def _register_constant(name: str, gate: Gate) -> None:
    gate._set_spec(GateSpec(name, (), gate.dims))
    GATE_REGISTRY.register(name, lambda spec, gate=gate: gate)


for _name, _gate in (
    ("I2", IDENTITY2),
    ("X", X),
    ("Y", Y),
    ("Z", Z),
    ("H", H),
    ("S", S),
    ("S_DAG", S_DAG),
    ("T", T),
    ("T_DAG", T_DAG),
    ("SQRT_X", SQRT_X),
    ("SQRT_X_DAG", SQRT_X_DAG),
    ("CNOT", CNOT),
    ("CZ", CZ),
    ("TOFFOLI", TOFFOLI),
    ("SWAP", SWAP),
):
    _register_constant(_name, _gate)

GATE_REGISTRY.register("P", lambda spec: P(*spec.params))
GATE_REGISTRY.register("RX", lambda spec: RX(*spec.params))
GATE_REGISTRY.register("RY", lambda spec: RY(*spec.params))
GATE_REGISTRY.register("RZ", lambda spec: RZ(*spec.params))
GATE_REGISTRY.register("X_pow", lambda spec: power_of_x(*spec.params))
GATE_REGISTRY.register(
    "CX_pow", lambda spec: controlled_power_of_x(*spec.params)
)
