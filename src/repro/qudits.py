"""Qudit identifiers.

The paper operates on *mixed-radix* wires: the qubit baselines use two-level
wires, the qutrit construction uses three-level wires, and the Lanyon/Ralph
baseline operates its target as a d = N-level qudit.  A :class:`Qudit` is a
lightweight, hashable identifier carrying a name/index and a dimension.

Wires are identity objects: two qudits are the same wire iff their
``(index, dimension)`` pair is equal.  Circuits key moments on these objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .exceptions import DimensionMismatchError

#: Dimension of a qubit wire.
QUBIT_D = 2
#: Dimension of a qutrit wire.
QUTRIT_D = 3


@dataclass(frozen=True, order=True)
class Qudit:
    """A named wire with a fixed number of levels.

    Parameters
    ----------
    index:
        Position of the wire; used for ordering and display.
    dimension:
        Number of levels (2 = qubit, 3 = qutrit, ...).
    """

    index: int
    dimension: int = QUTRIT_D

    def __post_init__(self) -> None:
        if self.dimension < 2:
            raise DimensionMismatchError(
                f"qudit dimension must be >= 2, got {self.dimension}"
            )
        if self.index < 0:
            raise ValueError(f"qudit index must be >= 0, got {self.index}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = {2: "q", 3: "t"}.get(self.dimension, f"d{self.dimension}_")
        return f"{kind}{self.index}"

    @property
    def levels(self) -> range:
        """The valid basis values ``0 .. dimension-1`` of this wire."""
        return range(self.dimension)


def qubits(count: int, start: int = 0) -> list[Qudit]:
    """Return ``count`` two-level wires with consecutive indices."""
    return [Qudit(start + i, QUBIT_D) for i in range(count)]


def qutrits(count: int, start: int = 0) -> list[Qudit]:
    """Return ``count`` three-level wires with consecutive indices."""
    return [Qudit(start + i, QUTRIT_D) for i in range(count)]


def qudit_line(dimensions: Sequence[int], start: int = 0) -> list[Qudit]:
    """Return wires with the given per-wire dimensions, consecutive indices."""
    return [Qudit(start + i, d) for i, d in enumerate(dimensions)]


def check_distinct(wires: Iterable[Qudit]) -> None:
    """Raise :class:`ValueError` if any wire appears twice."""
    seen: set[Qudit] = set()
    for wire in wires:
        if wire in seen:
            raise ValueError(f"duplicate qudit {wire!r} in operation")
        seen.add(wire)


def total_dimension(wires: Sequence[Qudit]) -> int:
    """Product of wire dimensions: the size of the joint state space."""
    product = 1
    for wire in wires:
        product *= wire.dimension
    return product
