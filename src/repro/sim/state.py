"""Mixed-dimension state vectors.

The state of ``n`` wires with dimensions ``(d_0, ..., d_{n-1})`` is stored as
a complex tensor of that shape.  Gates are applied by tensor contraction on
the touched axes only (the einsum approach the paper adopts from Cirq,
Sec. 6.2) — the d^N x d^N matrix of a gate or moment is never materialised.

Tensor leg convention (shared across the simulation engines):

* state tensor axis ``k`` is wire ``k`` of the wire list, so amplitude
  ``tensor[v_0, ..., v_{n-1}]`` is the basis state ``|v_0 ... v_{n-1}>``
  with the *first* wire most significant when flattened (C order);
* an operator on ``k`` wires is reshaped to ``dims + dims`` — output
  legs first, input legs last — and ``tensordot`` ties its input legs
  to the touched state axes (see :mod:`repro.sim.kernels`);
* the batched trajectory engine prepends one batch axis (shape
  ``(B, d_0, ..., d_{n-1})``); the density engine appends a mirrored
  set of column legs (shape ``dims + dims``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..exceptions import DimensionMismatchError, SimulationError
from ..linalg import random_state_vector
from ..qudits import Qudit
from ..circuits.operation import GateOperation
from .kernels import (
    apply_block,
    gate_kernel,
    permutation_kernel,
    segment_permutation_gather,
)


class StateVector:
    """A pure state over an ordered list of wires.

    Amplitudes are stored at ``complex128`` by default; pass
    ``dtype=np.complex64`` (or hand in a ``complex64`` tensor) for the
    bulk-sweep half-precision mode.  A ``complex64`` state stays
    ``complex64`` through every operation — kernels are cast once per
    precision in the process-wide cache — with amplitude error bounded
    by roughly ``gates * sqrt(dim) * 1e-7`` (see docs/SIMULATORS.md for
    the documented parity bounds the test suite enforces).
    """

    def __init__(
        self,
        wires: Sequence[Qudit],
        tensor: np.ndarray,
        dtype: "np.dtype | type | None" = None,
    ) -> None:
        wires = list(wires)
        shape = tuple(w.dimension for w in wires)
        tensor = np.asarray(tensor)
        if dtype is None:
            # Preserve an explicit complex64 tensor; promote everything
            # else (float, int, complex128) to the exact default.
            dtype = (
                np.complex64
                if tensor.dtype == np.complex64
                else np.complex128
            )
        tensor = np.asarray(tensor, dtype=np.dtype(dtype))
        if tensor.dtype not in (np.complex64, np.complex128):
            raise ValueError(
                f"state dtype must be complex64 or complex128, "
                f"got {tensor.dtype}"
            )
        if tensor.shape != shape:
            if tensor.size == int(np.prod(shape)):
                tensor = tensor.reshape(shape)
            else:
                raise DimensionMismatchError(
                    f"tensor of shape {tensor.shape} does not fit wires "
                    f"with dimensions {shape}"
                )
        self._wires = wires
        self._axis = {wire: k for k, wire in enumerate(wires)}
        self._tensor = tensor

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def computational_basis(
        cls,
        wires: Sequence[Qudit],
        values: Sequence[int],
        dtype: "np.dtype | type" = np.complex128,
    ) -> "StateVector":
        """|values> on the given wires."""
        wires = list(wires)
        if len(values) != len(wires):
            raise DimensionMismatchError(
                f"{len(wires)} wires but {len(values)} values"
            )
        shape = tuple(w.dimension for w in wires)
        tensor = np.zeros(shape, dtype=np.dtype(dtype))
        for value, wire in zip(values, wires):
            if not 0 <= value < wire.dimension:
                raise ValueError(f"value {value} invalid for wire {wire}")
        tensor[tuple(values)] = 1.0
        return cls(wires, tensor)

    @classmethod
    def zero(
        cls,
        wires: Sequence[Qudit],
        dtype: "np.dtype | type" = np.complex128,
    ) -> "StateVector":
        """|00...0>."""
        return cls.computational_basis(wires, [0] * len(wires), dtype)

    @classmethod
    def random(
        cls,
        wires: Sequence[Qudit],
        rng: np.random.Generator | None = None,
        levels_per_wire: Mapping[Qudit, int] | None = None,
    ) -> "StateVector":
        """Haar-random state, optionally restricted to lower levels.

        ``levels_per_wire`` caps the populated levels of selected wires.
        The paper's experiments initialise *qubit* inputs even on qutrit
        hardware (inputs/outputs stay binary; |2> is transient), so the
        Figure 11 harness passes ``levels_per_wire={wire: 2}`` for qutrits.

        Cost is O(prod levels) — a single Gaussian column, not a truncated
        Haar unitary (Sec. 6.2).
        """
        rng = rng or np.random.default_rng()
        wires = list(wires)
        caps = []
        for wire in wires:
            cap = wire.dimension
            if levels_per_wire is not None:
                cap = min(cap, levels_per_wire.get(wire, cap))
            caps.append(cap)
        sub_dim = int(np.prod(caps))
        column = random_state_vector(sub_dim, rng).reshape(caps)
        tensor = np.zeros(tuple(w.dimension for w in wires), dtype=complex)
        tensor[tuple(slice(0, c) for c in caps)] = column
        return cls(wires, tensor)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def wires(self) -> list[Qudit]:
        """Wire order of the tensor axes."""
        return list(self._wires)

    @property
    def tensor(self) -> np.ndarray:
        """The underlying tensor (a live view; copy before mutating)."""
        return self._tensor

    @property
    def vector(self) -> np.ndarray:
        """Flat state vector (first wire most significant)."""
        return self._tensor.reshape(-1)

    @property
    def dtype(self) -> np.dtype:
        """Amplitude dtype (``complex128``, or ``complex64`` in bulk mode)."""
        return self._tensor.dtype

    def norm(self) -> float:
        """Euclidean norm of the state."""
        return float(np.linalg.norm(self._tensor))

    def copy(self) -> "StateVector":
        """Deep copy (dtype preserved)."""
        return StateVector(self._wires, self._tensor.copy())

    def astype(self, dtype: "np.dtype | type") -> "StateVector":
        """The same state at another amplitude precision (always a copy)."""
        return StateVector(
            self._wires, self._tensor.astype(np.dtype(dtype), copy=True)
        )

    def probability_of(self, values: Sequence[int]) -> float:
        """Probability of measuring the basis state ``values``."""
        return float(np.abs(self._tensor[tuple(values)]) ** 2)

    def level_populations(self, wire: Qudit) -> np.ndarray:
        """Marginal probability of each level of ``wire``.

        Used by the idle-error channel, whose damping probability depends on
        the current excitation of each qudit (Sec. 6.1, item 2).
        """
        return self.populations_from(self.probability_tensor(), wire)

    def probability_tensor(self) -> np.ndarray:
        """|amplitude|^2 tensor — compute once, reuse for many marginals."""
        return np.abs(self._tensor) ** 2

    def populations_from(
        self, probability_tensor: np.ndarray, wire: Qudit
    ) -> np.ndarray:
        """Marginal of ``wire`` from a precomputed probability tensor."""
        axis = self._axis[wire]
        other_axes = tuple(
            k for k in range(probability_tensor.ndim) if k != axis
        )
        return probability_tensor.sum(axis=other_axes)

    def overlap(self, other: "StateVector") -> complex:
        """<self|other> (wire orders must match)."""
        if self._wires != other._wires:
            raise SimulationError("states have different wire orders")
        return complex(np.vdot(self._tensor, other._tensor))

    def fidelity(self, other: "StateVector") -> float:
        """|<self|other>|^2 — the paper's reliability metric."""
        return float(np.abs(self.overlap(other)) ** 2)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def apply_operation(self, op: GateOperation) -> None:
        """Apply a gate operation in place, structure permitting.

        Permutation gates — the bulk of the Toffoli catalog — are
        dispatched to the fancy-indexing fast path: the cached lookup
        table (:func:`repro.sim.kernels.permutation_kernel`, the PR 4
        cache) is lifted once to full-register gather indices
        (:func:`repro.sim.kernels.permutation_gather`) and amplitudes
        move in one flat gather over the mixed-radix joint index —
        no dense contraction, no axis shuffling.  Everything else
        falls back to :meth:`apply_operation_dense`.  Both the verdict
        and the index maps are cached process-wide on the gate's
        canonical spec, so dispatch costs one dict lookup per
        application.
        """
        kernel = permutation_kernel(op)
        if kernel.is_permutation:
            self.apply_permutation_ops([op])
            return
        self.apply_operation_dense(op)

    def apply_permutation_ops(self, ops: Sequence[GateOperation]) -> None:
        """Apply a run of permutation operations as one flat gather.

        The whole segment composes to a single basis permutation of the
        register (:func:`repro.sim.kernels.segment_permutation_gather`),
        so however deep the stretch, the amplitudes move in exactly one
        fancy-indexing pass — this is what makes permutation-heavy
        circuits (the undecomposed Toffoli constructions) asymptotically
        cheaper than the dense contraction per gate.  The simulator's
        run loop batches consecutive permutation gates into these calls;
        every op must be a basis permutation
        (:class:`~repro.exceptions.NotClassicalError` otherwise).
        """
        if not ops:
            return
        steps = [
            (op, [self._axis[w] for w in op.qudits]) for op in ops
        ]
        gather = segment_permutation_gather(steps, self._tensor.shape)
        shape = self._tensor.shape
        # ravel() copies only if a prior dense op left a view; the
        # gather output is always contiguous, so permutation runs
        # stay copy-free between dense ops.
        self._tensor = self._tensor.ravel()[gather].reshape(shape)

    def apply_operation_dense(self, op: GateOperation) -> None:
        """Apply a gate operation via dense tensor contraction.

        The pre-v2 hot path, preserved verbatim as the parity oracle for
        the permutation fast path (``BENCH_state.json`` and the property
        suite pin the two against each other).  The operator comes from
        the process-wide kernel cache
        (:func:`repro.sim.kernels.gate_kernel`), so a gate that repeats
        across moments, basis inputs, or runs pays its ``unitary()``
        and reshape cost once per canonical spec, not per application.
        """
        kernel = gate_kernel(op, self._tensor.dtype)
        axes = [self._axis[w] for w in op.qudits]
        self._tensor = apply_block(self._tensor, kernel.block, axes)

    def apply_matrix(
        self, matrix: np.ndarray, wires: Sequence[Qudit]
    ) -> None:
        """Apply an arbitrary (not necessarily unitary) matrix to ``wires``.

        Non-unitary matrices arise as Kraus operators during trajectory
        simulation; callers renormalise afterwards.  The state's dtype
        is preserved (the matrix is cast to it).
        """
        axes = [self._axis[w] for w in wires]
        dims = tuple(w.dimension for w in wires)
        block = np.asarray(matrix, dtype=self._tensor.dtype).reshape(
            dims + dims
        )
        self._tensor = apply_block(self._tensor, block, axes)

    def apply_diagonal(self, diagonal: np.ndarray, wire: Qudit) -> None:
        """Multiply one wire's levels by ``diagonal`` (cheap broadcast).

        Fast path for diagonal single-wire operators — the amplitude-
        damping no-jump branch and dephasing kicks, which fire on every
        wire every moment during noisy simulation.
        """
        axis = self._axis[wire]
        shape = [1] * self._tensor.ndim
        shape[axis] = len(diagonal)
        diagonal = np.asarray(diagonal, dtype=self._tensor.dtype)
        self._tensor = self._tensor * diagonal.reshape(shape)

    def renormalize(self) -> float:
        """Scale the state back to unit norm; returns the prior norm."""
        norm = self.norm()
        if norm == 0.0:
            raise SimulationError("cannot renormalise the zero state")
        self._tensor = self._tensor / norm
        return norm
