"""Noise-free state-vector simulation.

The v2 hot path exploits structure: permutation gates (the bulk of the
Toffoli catalog) move amplitudes by fancy indexing through cached
full-register gather maps (:func:`repro.sim.kernels.permutation_gather`),
and the run loop composes *consecutive* permutation gates into one
cached segment gather (:func:`repro.sim.kernels
.segment_permutation_gather`) — a permutation-only circuit costs a
single pass over the amplitudes per run, however deep it is.  Only
genuinely non-classical gates pay a dense contraction through the
gate-kernel cache.  Either way a gate that occurs many times in a
circuit — or across the thousands of basis inputs exhaustive
verification runs — lowers exactly once per canonical spec.

Two knobs tune bulk sweeps:

* ``dtype=np.complex64`` halves the memory traffic of wide sweeps; the
  permutation fast path is rounding-free in both precisions and the
  dense fallback uses per-precision cached kernels (parity bounds in
  docs/SIMULATORS.md, enforced by the property suite);
* ``permutation_fast_path=False`` forces every gate through the dense
  contraction — the pre-v2 engine, preserved as the parity oracle for
  tests and ``BENCH_state.json``.

Terminal sampling ships here too: :meth:`StateVectorSimulator
.sample_counts` runs the circuit once and draws any number of shots
directly from the final-state probabilities (no per-shot trajectory
work) — see :func:`repro.sim.measurement.sample_counts`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..qudits import Qudit
from .kernels import permutation_kernel
from .measurement import MeasurementResult, sample_counts
from .state import StateVector


class StateVectorSimulator:
    """Applies a circuit to a state vector, moment by moment."""

    def __init__(
        self,
        dtype: "np.dtype | type | None" = None,
        permutation_fast_path: bool = True,
    ) -> None:
        self._dtype = None if dtype is None else np.dtype(dtype)
        self._fast_path = bool(permutation_fast_path)

    @property
    def dtype(self) -> "np.dtype | None":
        """Forced amplitude dtype, or None to follow the initial state."""
        return self._dtype

    @property
    def permutation_fast_path(self) -> bool:
        """True when permutation gates dispatch to the table-gather path."""
        return self._fast_path

    def run(
        self,
        circuit: Circuit,
        initial_state: StateVector | None = None,
        wires: Sequence[Qudit] | None = None,
    ) -> StateVector:
        """Final state after the whole circuit.

        If ``initial_state`` is omitted, starts from |0...0> over
        ``wires`` (default: the circuit's wires) at the simulator's
        dtype (default ``complex128``).  A given ``initial_state`` is
        never mutated; its dtype is preserved unless the simulator was
        constructed with an explicit ``dtype``.
        """
        if initial_state is None:
            wires = list(wires) if wires else circuit.all_qudits()
            state = StateVector.zero(
                wires, self._dtype if self._dtype is not None else complex
            )
        else:
            if (
                self._dtype is not None
                and initial_state.dtype != self._dtype
            ):
                state = initial_state.astype(self._dtype)
            else:
                state = initial_state.copy()
            covered = set(state.wires)
            missing = [w for w in circuit.all_qudits() if w not in covered]
            if missing:
                raise ValueError(
                    f"initial state does not cover circuit wires {missing}"
                )
        if not self._fast_path:
            for moment in circuit:
                for op in moment:
                    state.apply_operation_dense(op)
            return state
        # Batch consecutive permutation gates into segments: each
        # segment composes to one cached gather, so a permutation-only
        # circuit costs a single pass over the amplitudes per run.
        segment: list = []
        for moment in circuit:
            for op in moment:
                if permutation_kernel(op).is_permutation:
                    segment.append(op)
                    continue
                state.apply_permutation_ops(segment)
                segment.clear()
                state.apply_operation_dense(op)
        state.apply_permutation_ops(segment)
        return state

    def run_basis(
        self,
        circuit: Circuit,
        wires: Sequence[Qudit],
        values: Sequence[int],
    ) -> StateVector:
        """Run from the computational basis state |values>."""
        return self.run(
            circuit, StateVector.computational_basis(list(wires), values)
        )

    def sample_counts(
        self,
        circuit: Circuit,
        shots: int,
        *,
        initial_state: StateVector | None = None,
        wires: Sequence[Qudit] | None = None,
        measure_wires: Sequence[Qudit] | None = None,
        seed: "int | np.random.Generator | None" = None,
        batch_size: int | None = None,
    ) -> MeasurementResult:
        """Run once, then draw ``shots`` outcome counts from the final state.

        One circuit execution serves any number of shots: counts are
        drawn directly from the final-state probabilities in vectorized
        chunks (:func:`repro.sim.measurement.sample_counts`) — no
        per-shot state evolution, no ``(shots, wires)`` sample array.
        ``measure_wires`` restricts (and orders) the reported register;
        ``seed`` takes an int or a ``numpy`` Generator and makes the
        counts deterministic, independent of ``batch_size`` chunking.
        """
        state = self.run(circuit, initial_state, wires=wires)
        return sample_counts(
            state,
            shots,
            rng=seed,
            wires=measure_wires,
            batch_size=batch_size,
        )
