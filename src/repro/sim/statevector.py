"""Noise-free state-vector simulation.

Every operation is applied through the process-wide gate-kernel cache
(:mod:`repro.sim.kernels`): a gate that occurs many times in a circuit —
or across the thousands of basis inputs exhaustive verification runs —
lowers its unitary into contraction form exactly once per canonical spec.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..qudits import Qudit
from .state import StateVector


class StateVectorSimulator:
    """Applies a circuit to a state vector, moment by moment."""

    def run(
        self,
        circuit: Circuit,
        initial_state: StateVector | None = None,
        wires: Sequence[Qudit] | None = None,
    ) -> StateVector:
        """Final state after the whole circuit.

        If ``initial_state`` is omitted, starts from |0...0> over
        ``wires`` (default: the circuit's wires).
        """
        if initial_state is None:
            wires = list(wires) if wires else circuit.all_qudits()
            state = StateVector.zero(wires)
        else:
            state = initial_state.copy()
            covered = set(state.wires)
            missing = [w for w in circuit.all_qudits() if w not in covered]
            if missing:
                raise ValueError(
                    f"initial state does not cover circuit wires {missing}"
                )
        for moment in circuit:
            for op in moment:
                state.apply_operation(op)
        return state

    def run_basis(
        self,
        circuit: Circuit,
        wires: Sequence[Qudit],
        values: Sequence[int],
    ) -> StateVector:
        """Run from the computational basis state |values>."""
        return self.run(
            circuit, StateVector.computational_basis(list(wires), values)
        )
