"""Precomputed contraction kernels for the axis-local simulation engines.

The noise engine applies the same few operators thousands of times: every
gate of a construction repeats across moments and trajectories, and every
noise channel is drawn from a small cached family (depolarizing per
dimension pair, amplitude damping per ``(dim, duration)``, dephasing).
This module turns each of those operators into a *kernel* — the matrix
pre-reshaped into tensor-leg form, with its conjugate — exactly once, and
hands the cached kernel to every subsequent application.

Tensor leg convention (shared with :class:`~repro.sim.state.StateVector`
and :class:`~repro.sim.density.DensityTensor`):

* an operator on wires of dimensions ``(d_0, ..., d_{k-1})`` is stored as
  a tensor of shape ``(d_0, ..., d_{k-1}, d_0, ..., d_{k-1})`` — the
  first ``k`` legs are *output* (row) legs, the last ``k`` are *input*
  (column) legs;
* ``np.tensordot(block, state, axes=(input_legs, touched_axes))``
  contracts the input legs against the touched axes of a state tensor
  and leaves the output legs at the front, which callers move back into
  place with ``np.moveaxis``.

Cache keys:

* gate kernels are keyed on the gate's **canonical spec**
  (:meth:`~repro.gates.base.Gate.spec` lowered to structural form — the
  PR 2 content-addressed identity), so two structurally equal gates share
  one kernel no matter how they were built;
* channel kernels are keyed on the channel *instance*.  The channel
  factories in :mod:`repro.noise` are ``lru_cache``-d singletons, so this
  is equivalent to keying on the channel's parameters; hand-built
  channels get their own entry (weakly referenced, so they can still be
  collected).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..circuits.operation import GateOperation
from ..gates.spec import GateSpec
from ..noise.kraus import KrausChannel, UnitaryMixtureChannel


@dataclass(frozen=True)
class GateKernel:
    """One gate's unitary in contraction-ready tensor form."""

    #: Wire dimensions, in gate order.
    dims: tuple[int, ...]
    #: The unitary reshaped to ``dims + dims`` (output legs first).
    block: np.ndarray
    #: ``block.conj()`` — contracted against density column legs.
    conj_block: np.ndarray


@dataclass(frozen=True)
class ChannelKernel:
    """One channel's Kraus operators in contraction-ready tensor form.

    Unitary-mixture channels are lowered to explicit Kraus form here:
    ``sqrt(1 - p_total) * I`` plus ``sqrt(p_i) * E_i`` for every branch
    with non-zero probability.  The density engine then treats both
    channel families uniformly as ``rho -> sum_i K_i rho K_i^dag``.
    """

    #: Wire dimensions, in channel order.
    dims: tuple[int, ...]
    #: Kraus operators reshaped to ``dims + dims`` (output legs first).
    blocks: tuple[np.ndarray, ...]
    #: Conjugated blocks, for the column-leg side of the contraction.
    conj_blocks: tuple[np.ndarray, ...]


#: canonical GateSpec -> GateKernel.  Process-wide; specs are immutable
#: values, so entries never go stale.
_GATE_KERNELS: dict[GateSpec, GateKernel] = {}

#: channel instance -> ChannelKernel.  Weak keys: cached factory channels
#: live for the process anyway, ad-hoc channels can be collected.
_CHANNEL_KERNELS: "weakref.WeakKeyDictionary[object, ChannelKernel]" = (
    weakref.WeakKeyDictionary()
)


def _as_block(matrix: np.ndarray, dims: tuple[int, ...]) -> np.ndarray:
    block = np.ascontiguousarray(matrix, dtype=complex)
    return block.reshape(dims + dims)


def gate_kernel(op: GateOperation) -> GateKernel:
    """The cached kernel for ``op``'s gate (built on first use).

    Building the kernel also pays the gate's ``unitary()`` cost (which,
    for decomposed/controlled gates, multiplies out the construction), so
    repeated applications of a structurally identical gate never
    recompute the matrix.
    """
    spec = op.gate.canonical_spec()
    kernel = _GATE_KERNELS.get(spec)
    if kernel is None:
        dims = tuple(op.gate.dims)
        block = _as_block(op.unitary(), dims)
        kernel = GateKernel(dims, block, block.conj())
        _GATE_KERNELS[spec] = kernel
    return kernel


def kraus_operators(
    channel: KrausChannel | UnitaryMixtureChannel,
) -> list[np.ndarray]:
    """The channel's explicit Kraus operators (mixtures are lowered).

    For a unitary mixture the lowering is ``sqrt(1 - p_total) * I``
    plus ``sqrt(p_i) * E_i`` for every branch with non-zero
    probability.  This is the single definition of that lowering — the
    dense reference engine reuses it, so the two density paths can only
    diverge in their *contraction*, which is what the parity tests pin.
    """
    if isinstance(channel, KrausChannel):
        return channel.operators
    dim = 1
    for d in channel.dims:
        dim *= d
    identity_weight = 1.0 - channel.error_probability
    operators = [
        np.sqrt(identity_weight) * np.eye(dim, dtype=complex)
    ]
    for prob, op in channel.terms:
        if prob > 0:
            operators.append(np.sqrt(prob) * op)
    return operators


def channel_kernel(
    channel: KrausChannel | UnitaryMixtureChannel,
) -> ChannelKernel:
    """The cached Kraus-block kernel for ``channel`` (built on first use)."""
    kernel = _CHANNEL_KERNELS.get(channel)
    if kernel is None:
        dims = channel.dims
        blocks = tuple(
            _as_block(op, dims) for op in kraus_operators(channel)
        )
        kernel = ChannelKernel(
            dims, blocks, tuple(b.conj() for b in blocks)
        )
        _CHANNEL_KERNELS[channel] = kernel
    return kernel


def clear_kernel_caches() -> None:
    """Drop all cached kernels (tests and memory-sensitive callers)."""
    _GATE_KERNELS.clear()
    _CHANNEL_KERNELS.clear()


def kernel_cache_stats() -> dict[str, int]:
    """Entry counts of the process-wide kernel caches (diagnostics)."""
    return {
        "gate_kernels": len(_GATE_KERNELS),
        "channel_kernels": len(_CHANNEL_KERNELS),
    }
