"""Precomputed contraction kernels for the axis-local simulation engines.

The noise engine applies the same few operators thousands of times: every
gate of a construction repeats across moments and trajectories, and every
noise channel is drawn from a small cached family (depolarizing per
dimension pair, amplitude damping per ``(dim, duration)``, dephasing).
This module turns each of those operators into a *kernel* — the matrix
pre-reshaped into tensor-leg form, with its conjugate — exactly once, and
hands the cached kernel to every subsequent application.

Tensor leg convention (shared with :class:`~repro.sim.state.StateVector`
and :class:`~repro.sim.density.DensityTensor`):

* an operator on wires of dimensions ``(d_0, ..., d_{k-1})`` is stored as
  a tensor of shape ``(d_0, ..., d_{k-1}, d_0, ..., d_{k-1})`` — the
  first ``k`` legs are *output* (row) legs, the last ``k`` are *input*
  (column) legs;
* ``np.tensordot(block, state, axes=(input_legs, touched_axes))``
  contracts the input legs against the touched axes of a state tensor
  and leaves the output legs at the front, which callers move back into
  place with ``np.moveaxis``.

The classical engines have their own kernel family: a *permutation
kernel* is the gate's whole-domain basis permutation lowered to a flat
``int64`` lookup table over the mixed-radix index of its wires (plus the
encode weights), or an explicit "not a permutation" marker when the gate
is not classical.  Lowering inspects the full action — never a probe at
one input — so kernel-level classicality is exact, and the batched
classical engine advances thousands of basis states per gate with one
table gather.

Cache keys:

* gate kernels and permutation kernels are keyed on the gate's
  **canonical spec** (:meth:`~repro.gates.base.Gate.spec` lowered to
  structural form — the PR 2 content-addressed identity), so two
  structurally equal gates share one kernel no matter how they were
  built;
* channel kernels are keyed on the channel *instance*.  The channel
  factories in :mod:`repro.noise` are ``lru_cache``-d singletons, so this
  is equivalent to keying on the channel's parameters; hand-built
  channels get their own entry (weakly referenced, so they can still be
  collected).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..circuits.operation import GateOperation
from ..exceptions import NotClassicalError
from ..gates.spec import GateSpec
from ..noise.kraus import KrausChannel, UnitaryMixtureChannel


@dataclass(frozen=True)
class GateKernel:
    """One gate's unitary in contraction-ready tensor form."""

    #: Wire dimensions, in gate order.
    dims: tuple[int, ...]
    #: The unitary reshaped to ``dims + dims`` (output legs first).
    block: np.ndarray
    #: ``block.conj()`` — contracted against density column legs.
    conj_block: np.ndarray


@dataclass(frozen=True)
class ChannelKernel:
    """One channel's Kraus operators in contraction-ready tensor form.

    Unitary-mixture channels are lowered to explicit Kraus form here:
    ``sqrt(1 - p_total) * I`` plus ``sqrt(p_i) * E_i`` for every branch
    with non-zero probability.  The density engine then treats both
    channel families uniformly as ``rho -> sum_i K_i rho K_i^dag``.
    """

    #: Wire dimensions, in channel order.
    dims: tuple[int, ...]
    #: Kraus operators reshaped to ``dims + dims`` (output legs first).
    blocks: tuple[np.ndarray, ...]
    #: Conjugated blocks, for the column-leg side of the contraction.
    conj_blocks: tuple[np.ndarray, ...]


@dataclass(frozen=True)
class PermutationKernel:
    """One classical gate's basis permutation in table-gather form.

    ``table[i] = j`` means joint basis state ``i`` maps to ``j``, where
    ``i`` is the mixed-radix encoding of the gate's wire values (first
    wire most significant).  ``weights`` are the per-wire encode factors:
    ``index = values @ weights`` and ``values[k] = index // weights[k]
    % dims[k]`` — precomputed so the batched classical engine encodes and
    decodes whole ``(B, k)`` blocks with vectorized arithmetic.

    ``inverse`` is the inverse permutation (``inverse[table[i]] = i``).
    The state-vector fast path moves amplitudes by *gathering*:
    ``psi'[j] = psi[inverse[j]]`` is one fancy-indexing pass, where the
    forward table would need a scatter.

    ``table is None`` marks a gate that is *not* a basis permutation.
    Lowering decides this from the gate's whole-domain action, so the
    kernel is also the single source of truth for circuit classicality
    (no probing at selected inputs).
    """

    #: Wire dimensions, in gate order.
    dims: tuple[int, ...]
    #: Flat joint-index lookup table, or None for non-permutation gates.
    table: np.ndarray | None
    #: Mixed-radix encode weights (``weights[k] = prod(dims[k+1:])``).
    weights: np.ndarray
    #: Inverse permutation (gather form), or None for non-permutations.
    inverse: np.ndarray | None = None

    @property
    def is_permutation(self) -> bool:
        """True iff the gate lowered to an actual lookup table."""
        return self.table is not None


def mixed_radix_weights(dims: Sequence[int]) -> np.ndarray:
    """Encode factors for the library's mixed-radix convention.

    ``weights[k] = prod(dims[k+1:])`` (first wire most significant), so
    ``index = values @ weights`` and ``values[k] = index // weights[k]
    % dims[k]`` — the vectorized counterparts of
    :func:`repro.gates.base.values_to_index` / ``index_to_values``.
    """
    weights = np.ones(len(dims), dtype=np.int64)
    for k in range(len(dims) - 2, -1, -1):
        weights[k] = weights[k + 1] * dims[k + 1]
    return weights


def embed_permutation_table(
    table: "Sequence[int] | np.ndarray",
    old_dims: Sequence[int],
    new_dims: Sequence[int],
) -> np.ndarray:
    """Lift a permutation table onto elementwise-larger wire dimensions.

    The returned table acts as the original permutation on every joint
    basis state whose per-wire values all lie below the old dimensions,
    and as the identity on every state touching an added level — the
    whole-domain action of a block-diagonal embedding.  This is the
    permutation-table form of the qubit->qutrit lift, computed with the
    same vectorized mixed-radix arithmetic as the batched classical
    engine, so :class:`~repro.gates.embedded.EmbeddedGate` wrapping a
    classical gate lowers to a lookup table without ever forming its
    dense matrix and keeps the permutation fast paths.
    """
    old_dims = tuple(int(d) for d in old_dims)
    new_dims = tuple(int(d) for d in new_dims)
    if len(old_dims) != len(new_dims) or any(
        n < o for n, o in zip(new_dims, old_dims)
    ):
        raise ValueError(
            f"cannot embed dims {old_dims} into {new_dims}"
        )
    table = np.asarray(table, dtype=np.int64)
    new_weights = mixed_radix_weights(new_dims)
    old_weights = mixed_radix_weights(old_dims)
    size = 1
    for d in new_dims:
        size *= d
    index = np.arange(size, dtype=np.int64)
    digits = [
        (index // new_weights[k]) % new_dims[k]
        for k in range(len(new_dims))
    ]
    member = np.ones(size, dtype=bool)
    for k, old in enumerate(old_dims):
        member &= digits[k] < old
    sub_index = np.zeros(int(member.sum()), dtype=np.int64)
    for k in range(len(old_dims)):
        sub_index += digits[k][member] * old_weights[k]
    mapped = table[sub_index]
    image = np.zeros_like(sub_index)
    for k in range(len(old_dims)):
        image += ((mapped // old_weights[k]) % old_dims[k]) * new_weights[k]
    out = index.copy()
    out[member] = image
    return out


def apply_block(
    tensor: np.ndarray, block: np.ndarray, axes: Sequence[int]
) -> np.ndarray:
    """Contract a kernel-form operator block against ``axes`` of a tensor.

    ``block`` has output legs first, input legs last (``dims + dims``);
    the input legs tie to the given ``axes`` and the result's new legs
    move back into place, leaving every other axis untouched.  This is
    the one contraction every dense engine shares: state vectors pass
    their bare tensor, the batched engines pass stacked tensors whose
    batch axis simply never appears in ``axes``.
    """
    axes = list(axes)
    k = len(axes)
    moved = np.tensordot(block, tensor, axes=(range(k, 2 * k), axes))
    return np.moveaxis(moved, range(k), axes)


#: (canonical GateSpec, dtype char) -> GateKernel.  Process-wide; specs
#: are immutable values, so entries never go stale.  complex64 variants
#: (the bulk-sweep mode) get their own entries, cast once from the
#: complex128 block.
_GATE_KERNELS: dict[tuple[GateSpec, str], GateKernel] = {}

#: canonical GateSpec -> PermutationKernel (including negative results:
#: "not a permutation" is cached too, so classicality checks of circuits
#: full of non-classical gates stay cheap).
_PERM_KERNELS: dict[GateSpec, PermutationKernel] = {}

#: channel instance -> ChannelKernel.  Weak keys: cached factory channels
#: live for the process anyway, ad-hoc channels can be collected.
_CHANNEL_KERNELS: "weakref.WeakKeyDictionary[object, ChannelKernel]" = (
    weakref.WeakKeyDictionary()
)

#: (canonical GateSpec, touched axes, register shape) -> full-register
#: gather indices.  Entries are O(register size) ints, so this cache is
#: the memory-heaviest of the family — clear_kernel_caches() drops it
#: with the rest, and entries only exist for (gate, placement, register)
#: combos the state-vector fast path actually executed.
_PERM_GATHERS: dict[
    tuple[GateSpec, tuple[int, ...], tuple[int, ...]], np.ndarray
] = {}

#: (tuple of (canonical spec, axes) steps, register shape) -> composed
#: full-register gather indices for a whole run of consecutive
#: permutation operations.  Same memory note as _PERM_GATHERS; only
#: multi-op segments are cached (single ops live in _PERM_GATHERS).
_SEGMENT_GATHERS: dict[tuple, np.ndarray] = {}


def _as_block(matrix: np.ndarray, dims: tuple[int, ...]) -> np.ndarray:
    block = np.ascontiguousarray(matrix, dtype=complex)
    return block.reshape(dims + dims)


def gate_kernel(
    op: GateOperation, dtype: "np.dtype | type" = np.complex128
) -> GateKernel:
    """The cached kernel for ``op``'s gate (built on first use).

    Building the kernel also pays the gate's ``unitary()`` cost (which,
    for decomposed/controlled gates, multiplies out the construction), so
    repeated applications of a structurally identical gate never
    recompute the matrix.  ``dtype`` selects the precision of the cached
    block (``complex64`` for the bulk-sweep mode); each precision is its
    own cache entry, cast once.
    """
    dtype = np.dtype(dtype)
    spec = op.gate.canonical_spec()
    key = (spec, dtype.char)
    kernel = _GATE_KERNELS.get(key)
    if kernel is None:
        dims = tuple(op.gate.dims)
        block = _as_block(op.unitary(), dims)
        if dtype != np.dtype(np.complex128):
            block = block.astype(dtype)
        kernel = GateKernel(dims, block, block.conj())
        _GATE_KERNELS[key] = kernel
    return kernel


def permutation_kernel(op: GateOperation) -> PermutationKernel:
    """The cached permutation kernel for ``op``'s gate (built on first use).

    Lowering asks the gate for its whole-domain permutation
    (:meth:`~repro.gates.base.Gate.permutation`): permutation-native
    gates hand over their mapping directly, matrix-backed gates pay one
    permutation-matrix check of their unitary.  Either way the verdict
    and the table are cached on the canonical spec, so every structurally
    identical gate across circuits, constructions, and engines lowers
    exactly once.
    """
    spec = op.gate.canonical_spec()
    kernel = _PERM_KERNELS.get(spec)
    if kernel is None:
        dims = tuple(op.gate.dims)
        weights = mixed_radix_weights(dims)
        try:
            table = np.asarray(op.gate.permutation(), dtype=np.int64)
            table.setflags(write=False)
        except NotClassicalError:
            table = None
        weights.setflags(write=False)
        inverse = None
        if table is not None:
            inverse = np.empty_like(table)
            inverse[table] = np.arange(table.size, dtype=np.int64)
            inverse.setflags(write=False)
        kernel = PermutationKernel(dims, table, weights, inverse)
        _PERM_KERNELS[spec] = kernel
    return kernel


def _build_permutation_gather(
    kernel: PermutationKernel,
    axes: Sequence[int],
    shape: Sequence[int],
) -> np.ndarray:
    """Lift a gate's inverse table to full-register gather indices.

    Decodes the touched-axis digits of every joint index, routes them
    through the inverse table, and re-encodes — a few vectorized
    integer passes over the register.  Callers cache the result.
    """
    full_weights = mixed_radix_weights(shape)
    gate_weights = kernel.weights
    size = 1
    for d in shape:
        size *= d
    index = np.arange(size, dtype=np.int64)
    digits = [(index // full_weights[a]) % shape[a] for a in axes]
    gate_index = digits[0] * gate_weights[0]
    for t in range(1, len(axes)):
        gate_index += digits[t] * gate_weights[t]
    mapped = kernel.inverse[gate_index]
    gather = index
    for t, a in enumerate(axes):
        new_digit = (mapped // gate_weights[t]) % kernel.dims[t]
        gather += (new_digit - digits[t]) * full_weights[a]
    return gather


def permutation_gather(
    op: GateOperation,
    axes: Sequence[int],
    shape: Sequence[int],
) -> np.ndarray:
    """Full-register gather indices for a permutation gate on ``axes``.

    The returned array ``g`` moves amplitudes in one fancy-indexing pass
    over the *flat* state vector: ``psi'[j] = psi[g[j]]`` for every
    joint index ``j`` of a register of the given ``shape``.  This is the
    state-vector fast path's whole per-application cost — one contiguous
    gather, no moveaxis shuffling, no ``D x D`` contraction — and the
    index map is cached on ``(canonical spec, axes, shape)``, so a gate
    that repeats at one placement (across moments, runs, or sweeps)
    builds it once.

    Raises :class:`NotClassicalError` for non-permutation gates.
    """
    spec = op.gate.canonical_spec()
    key = (spec, tuple(axes), tuple(shape))
    gather = _PERM_GATHERS.get(key)
    if gather is None:
        kernel = permutation_kernel(op)
        if kernel.inverse is None:
            raise NotClassicalError(
                f"gate {op.gate} is not a basis permutation"
            )
        gather = _build_permutation_gather(kernel, axes, shape)
        gather.setflags(write=False)
        _PERM_GATHERS[key] = gather
    return gather


def segment_permutation_gather(
    steps: Sequence[tuple[GateOperation, Sequence[int]]],
    shape: Sequence[int],
) -> np.ndarray:
    """Composed gather indices for a run of permutation operations.

    A contiguous stretch of permutation gates is itself one basis
    permutation of the register, so the whole segment collapses to a
    single fancy-indexing pass: applying ``g1`` then ``g2`` to the
    state equals one gather through ``g1[g2]``.  The composed map is
    cached on the sequence of ``(canonical spec, axes)`` steps plus the
    register shape — a circuit (or sweep) that repeats the same
    permutation stretch pays the composition once and every subsequent
    run is one pass over the amplitudes, however deep the stretch.

    Composition runs over int64 indices (half the traffic of complex
    amplitudes), so even the first run costs no more than applying the
    gates one by one.
    """
    if len(steps) == 1:
        op, axes = steps[0]
        return permutation_gather(op, axes, shape)
    key = (
        tuple(
            (op.gate.canonical_spec(), tuple(axes)) for op, axes in steps
        ),
        tuple(shape),
    )
    gather = _SEGMENT_GATHERS.get(key)
    if gather is None:
        total: np.ndarray | None = None
        for op, axes in steps:
            kernel = permutation_kernel(op)
            if kernel.inverse is None:
                raise NotClassicalError(
                    f"gate {op.gate} is not a basis permutation"
                )
            step = _build_permutation_gather(kernel, axes, shape)
            total = step if total is None else total[step]
        gather = total
        gather.setflags(write=False)
        _SEGMENT_GATHERS[key] = gather
    return gather


def kraus_operators(
    channel: KrausChannel | UnitaryMixtureChannel,
) -> list[np.ndarray]:
    """The channel's explicit Kraus operators (mixtures are lowered).

    For a unitary mixture the lowering is ``sqrt(1 - p_total) * I``
    plus ``sqrt(p_i) * E_i`` for every branch with non-zero
    probability.  This is the single definition of that lowering — the
    dense reference engine reuses it, so the two density paths can only
    diverge in their *contraction*, which is what the parity tests pin.
    """
    if isinstance(channel, KrausChannel):
        return channel.operators
    dim = 1
    for d in channel.dims:
        dim *= d
    identity_weight = 1.0 - channel.error_probability
    operators = [
        np.sqrt(identity_weight) * np.eye(dim, dtype=complex)
    ]
    for prob, op in channel.terms:
        if prob > 0:
            operators.append(np.sqrt(prob) * op)
    return operators


def channel_kernel(
    channel: KrausChannel | UnitaryMixtureChannel,
) -> ChannelKernel:
    """The cached Kraus-block kernel for ``channel`` (built on first use)."""
    kernel = _CHANNEL_KERNELS.get(channel)
    if kernel is None:
        dims = channel.dims
        blocks = tuple(
            _as_block(op, dims) for op in kraus_operators(channel)
        )
        kernel = ChannelKernel(
            dims, blocks, tuple(b.conj() for b in blocks)
        )
        _CHANNEL_KERNELS[channel] = kernel
    return kernel


def clear_kernel_caches() -> None:
    """Drop all cached kernels (tests and memory-sensitive callers)."""
    _GATE_KERNELS.clear()
    _CHANNEL_KERNELS.clear()
    _PERM_KERNELS.clear()
    _PERM_GATHERS.clear()
    _SEGMENT_GATHERS.clear()


def kernel_cache_stats() -> dict[str, int]:
    """Entry counts of the process-wide kernel caches (diagnostics)."""
    return {
        "gate_kernels": len(_GATE_KERNELS),
        "channel_kernels": len(_CHANNEL_KERNELS),
        "permutation_kernels": len(_PERM_KERNELS),
        "permutation_gathers": len(_PERM_GATHERS),
        "segment_gathers": len(_SEGMENT_GATHERS),
    }
