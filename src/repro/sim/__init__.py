"""Simulators: classical verification (looped and batched permutation
engines), state vector, noisy trajectories (looped and batched), exact
density-matrix reference, measurement sampling, and the shared
contraction- and permutation-kernel caches.

See ``docs/SIMULATORS.md`` for how the four engines relate and when to
pick each.
"""

from .state import StateVector
from .classical import ClassicalSimulator
from .classical_batch import (
    BatchedClassicalSimulator,
    resolve_classical_batch_size,
)
from .statevector import StateVectorSimulator
from .trajectory import (
    BatchedTrajectorySimulator,
    TrajectoryResult,
    TrajectorySimulator,
)
from .fidelity import (
    FidelityEstimate,
    estimate_circuit_fidelity,
    resolve_batch_size,
)
from .density import DensityMatrix, DensityMatrixSimulator, DensityTensor
from .dense_reference import DenseDensityMatrix, DenseDensityMatrixSimulator
from .kernels import (
    apply_block,
    channel_kernel,
    clear_kernel_caches,
    gate_kernel,
    kernel_cache_stats,
    mixed_radix_weights,
    permutation_kernel,
)
from .measurement import MeasurementResult, sample_counts, sample_state
from .parallel import estimate_circuit_fidelity_parallel, merge_estimates

__all__ = [
    "StateVector",
    "ClassicalSimulator",
    "BatchedClassicalSimulator",
    "resolve_classical_batch_size",
    "StateVectorSimulator",
    "TrajectorySimulator",
    "BatchedTrajectorySimulator",
    "TrajectoryResult",
    "FidelityEstimate",
    "estimate_circuit_fidelity",
    "estimate_circuit_fidelity_parallel",
    "resolve_batch_size",
    "merge_estimates",
    "DensityMatrix",
    "DensityTensor",
    "DensityMatrixSimulator",
    "DenseDensityMatrix",
    "DenseDensityMatrixSimulator",
    "MeasurementResult",
    "sample_counts",
    "sample_state",
    "gate_kernel",
    "channel_kernel",
    "permutation_kernel",
    "apply_block",
    "mixed_radix_weights",
    "clear_kernel_caches",
    "kernel_cache_stats",
]
