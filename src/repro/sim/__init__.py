"""Simulators: classical verification, state vector, noisy trajectories,
exact density-matrix reference, measurement sampling."""

from .state import StateVector
from .classical import ClassicalSimulator
from .statevector import StateVectorSimulator
from .trajectory import TrajectoryResult, TrajectorySimulator
from .fidelity import FidelityEstimate, estimate_circuit_fidelity
from .density import DensityMatrix, DensityMatrixSimulator
from .measurement import MeasurementResult, sample_state
from .parallel import estimate_circuit_fidelity_parallel, merge_estimates

__all__ = [
    "StateVector",
    "ClassicalSimulator",
    "StateVectorSimulator",
    "TrajectorySimulator",
    "TrajectoryResult",
    "FidelityEstimate",
    "estimate_circuit_fidelity",
    "estimate_circuit_fidelity_parallel",
    "merge_estimates",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "MeasurementResult",
    "sample_state",
]
