"""Batched classical permutation simulation — the verification hot path.

The paper's Sec. 6 infrastructure claim is that gates "specify their
action on classical non-superposition input states", cutting exhaustive
verification from exponential to linear cost and enabling checks of all
classical inputs up to width 14.  The looped engine
(:class:`~repro.sim.classical.ClassicalSimulator` walking
``Circuit.classical_map``) already has the right *asymptotics* but pays
Python-interpreter cost per input per gate: the width-14 workload is
2^14 inputs x thousands of dict operations.

This module removes the per-input Python cost.  All basis inputs live in
one ``(B, width)`` integer array and the whole batch advances per
operation with numpy fancy indexing:

1. each classical gate lowers **once** (keyed on its canonical spec) to
   a flat ``int64`` lookup table over the mixed-radix index of its wires
   (:func:`repro.sim.kernels.permutation_kernel`);
2. per operation, the touched columns are encoded into joint indices
   (``values @ weights``), gathered through the table, and decoded back
   — three vectorized passes over the batch, no per-input work.

Cost drops from ``O(B x ops x python)`` to ``O(ops)`` vectorized passes,
which is what makes the paper's exhaustive width-14 check (N=13
controls, all 2^14 inputs) complete in seconds — see ``BENCH_verify.json``.

The ``batch_size`` knob mirrors the trajectory engine's chunking (PR 3):
``None`` auto-sizes (one pass for every workload up to
``_AUTO_BATCH_ROWS`` rows), an explicit value bounds the rows advanced
per pass.  Chunking changes memory use only, never results.

Lowerings are memoised per circuit (LRU on the content-addressed
circuit identity from PR 2), and single-input calls take a scalar walk
over the cached tables instead of 1-row fancy indexing, so the
per-assignment surfaces (``ClassicalSimulator``, ``ClassicalBackend``)
get faster too, not just the exhaustive ones.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..exceptions import NotClassicalError, SchedulingError
from ..qudits import Qudit
from .kernels import (
    PermutationKernel,
    mixed_radix_weights,
    permutation_kernel,
)

#: Auto-batching cap: rows advanced per vectorized pass.  A row is
#: ``width`` int64 values, so 1 << 16 rows over width 14 is ~7 MB of
#: working set — large enough to amortise per-op numpy overhead, small
#: enough to stay cache-friendly for the full-radix permutation vector
#: of wide qutrit circuits.
_AUTO_BATCH_ROWS = 1 << 16


def resolve_classical_batch_size(batch_size: int | None, rows: int) -> int:
    """The number of input rows to advance per vectorized pass.

    ``None`` auto-sizes: everything at once up to ``_AUTO_BATCH_ROWS``.
    Explicit values are clamped to ``[1, rows]``.  Unlike the trajectory
    engine there is no RNG, so the chunking affects memory only — any
    ``batch_size`` produces bit-identical outputs.
    """
    if rows <= 1:
        return 1
    if batch_size is not None:
        return max(1, min(int(batch_size), rows))
    return min(rows, _AUTO_BATCH_ROWS)


@lru_cache(maxsize=128)
def _lowered_operations(
    circuit: Circuit, wires: tuple[Qudit, ...]
) -> tuple[tuple[np.ndarray, PermutationKernel], ...]:
    """The cached ``(columns, kernel)`` lowering of one settled circuit."""
    column = {wire: k for k, wire in enumerate(wires)}
    lowered = []
    for op in circuit.all_operations():
        for wire in op.qudits:
            if wire not in column:
                raise SchedulingError(
                    f"no input value provided for wire {wire}"
                )
        kernel = permutation_kernel(op)
        if not kernel.is_permutation:
            raise NotClassicalError(
                f"gate {op.gate.name} is not a basis permutation"
            )
        cols = np.array([column[w] for w in op.qudits], dtype=np.intp)
        cols.setflags(write=False)
        lowered.append((cols, kernel))
    return tuple(lowered)


class BatchedClassicalSimulator:
    """Propagates whole batches of basis states through permutation circuits.

    The public surface mirrors :class:`~repro.sim.classical
    .ClassicalSimulator` where it overlaps (``run_values``,
    ``truth_table``, ``is_classical_circuit``) and adds the array-native
    entry points the verification layer uses (``run_array``,
    ``permutation_vector``).
    """

    def __init__(self, batch_size: int | None = None) -> None:
        self._batch_size = batch_size

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------

    @staticmethod
    def _lower(
        circuit: Circuit, wires: Sequence[Qudit]
    ) -> tuple[tuple[np.ndarray, PermutationKernel], ...]:
        """Lower ``circuit`` to ``(column indices, table kernel)`` pairs.

        Raises :class:`SchedulingError` for operations on wires outside
        ``wires`` and :class:`NotClassicalError` for non-permutation
        gates — the same failures the looped engine reports, decided
        here once per circuit instead of once per input.

        Memoised on the circuit's content-addressed identity (PR 2), so
        repeated runs of one circuit — truth tables, benchmark repeats,
        backend sweeps — skip the op walk entirely.  Mutating a circuit
        after a run changes its hash, which simply misses the cache.
        """
        return _lowered_operations(circuit, tuple(wires))

    def is_classical_circuit(self, circuit: Circuit) -> bool:
        """True iff every gate lowers to a permutation table.

        Decided from the whole-domain lowering — a gate that merely acts
        classically on some probe input (e.g. a controlled non-classical
        gate with inactive controls) does not pass.
        """
        return all(
            permutation_kernel(op).is_permutation
            for op in circuit.all_operations()
        )

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------

    def run_array(
        self,
        circuit: Circuit,
        wires: Sequence[Qudit],
        inputs: np.ndarray,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Output values for every input row (shape ``(B, width)``).

        ``inputs[b, k]`` is the starting value of ``wires[k]`` in batch
        member ``b``; the result has the same shape and dtype ``int64``.
        Rows are advanced in chunks of the resolved batch size; results
        are independent of the chunking.
        """
        wires = list(wires)
        inputs = np.asarray(inputs, dtype=np.int64)
        if inputs.ndim != 2 or inputs.shape[1] != len(wires):
            raise ValueError(
                f"inputs must have shape (B, {len(wires)}), "
                f"got {inputs.shape}"
            )
        dims = np.array([w.dimension for w in wires], dtype=np.int64)
        if inputs.size and (
            np.any(inputs < 0) or np.any(inputs >= dims)
        ):
            bad = int(
                np.argmax(np.any((inputs < 0) | (inputs >= dims), axis=1))
            )
            raise ValueError(
                f"input row {bad} = {inputs[bad].tolist()} out of range "
                f"for wire dimensions {dims.tolist()}"
            )
        lowered = self._lower(circuit, wires)
        values = inputs.copy()
        chunk = resolve_classical_batch_size(
            batch_size if batch_size is not None else self._batch_size,
            len(values),
        )
        for start in range(0, len(values), chunk):
            block = values[start : start + chunk]
            for cols, kernel in lowered:
                indices = block[:, cols] @ kernel.weights
                images = kernel.table[indices]
                for k in range(len(cols)):
                    block[:, cols[k]] = (
                        images // kernel.weights[k]
                    ) % kernel.dims[k]
        return values

    def run_values(
        self,
        circuit: Circuit,
        wires: Sequence[Qudit],
        values: Sequence[int],
    ) -> tuple[int, ...]:
        """Single-input run against the cached lowering.

        A batch of one gains nothing from fancy indexing, so this walks
        the lowered tables with scalar arithmetic — the cached lowering
        (no per-call op walk, no permutation re-derivation) is what
        makes it faster than the per-gate dict walk it replaced.
        """
        wires = list(wires)
        state = [int(v) for v in values]
        if len(state) != len(wires):
            raise ValueError(
                f"inputs must have shape (B, {len(wires)}), "
                f"got (1, {len(state)})"
            )
        for value, wire in zip(state, wires):
            if not 0 <= value < wire.dimension:
                raise ValueError(
                    f"input row 0 = {state} out of range for wire "
                    f"dimensions {[w.dimension for w in wires]}"
                )
        for cols, kernel in self._lower(circuit, wires):
            index = 0
            for k in range(len(cols)):
                index = index * kernel.dims[k] + state[cols[k]]
            image = int(kernel.table[index])
            for k in range(len(cols) - 1, -1, -1):
                state[cols[k]] = image % kernel.dims[k]
                image //= kernel.dims[k]
        return tuple(state)

    # ------------------------------------------------------------------
    # Exhaustive surfaces
    # ------------------------------------------------------------------

    @staticmethod
    def input_space(
        wires: Sequence[Qudit],
        input_levels: Mapping[Qudit, Iterable[int]] | None = None,
    ) -> np.ndarray:
        """Every input combination as one ``(B, width)`` array.

        Rows enumerate in ``itertools.product`` order (first wire most
        significant), matching the looped engine's ``truth_table``.
        ``input_levels`` restricts the starting values of selected wires
        (the paper's binary-in convention on qutrit wires).
        """
        choices = []
        for wire in wires:
            if input_levels is not None and wire in input_levels:
                choices.append(
                    np.asarray(list(input_levels[wire]), dtype=np.int64)
                )
            else:
                choices.append(np.arange(wire.dimension, dtype=np.int64))
        if not choices:
            return np.zeros((1, 0), dtype=np.int64)
        grids = np.meshgrid(*choices, indexing="ij")
        return np.stack([g.reshape(-1) for g in grids], axis=1)

    def truth_table(
        self,
        circuit: Circuit,
        wires: Sequence[Qudit],
        input_levels: Mapping[Qudit, Iterable[int]] | None = None,
        batch_size: int | None = None,
    ) -> dict[tuple[int, ...], tuple[int, ...]]:
        """Exhaustive input -> output map over selected input levels.

        Same contract (and iteration order) as the looped engine's
        ``truth_table``; one batched run instead of ``B`` circuit walks.
        """
        wires = list(wires)
        inputs = self.input_space(wires, input_levels)
        outputs = self.run_array(circuit, wires, inputs, batch_size)
        return {
            tuple(int(v) for v in row_in): tuple(int(v) for v in row_out)
            for row_in, row_out in zip(inputs, outputs)
        }

    def permutation_vector(
        self,
        circuit: Circuit,
        wires: Sequence[Qudit] | None = None,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """The circuit's full classical action as one index array.

        ``vector[i] = j`` means joint basis state ``i`` (mixed-radix over
        ``wires``, first wire most significant) maps to ``j`` — the
        circuit analogue of a gate's permutation table.  Round-trips
        against :meth:`truth_table` over full levels, and composes:
        ``v_ab = v_b[v_a]`` for concatenated circuits.
        """
        wires = list(wires) if wires is not None else circuit.all_qudits()
        if not wires:
            return np.zeros(1, dtype=np.int64)
        # Full-level input_space rows enumerate in product order, which
        # is exactly the mixed-radix decode of 0, 1, 2, ...: row i of
        # the input array IS basis state i.
        inputs = self.input_space(wires)
        outputs = self.run_array(circuit, wires, inputs, batch_size)
        return outputs @ mixed_radix_weights(
            [w.dimension for w in wires]
        )
