"""Quantum-trajectory noise simulation (Algorithm 1 of the paper).

One trajectory = one run of the circuit on a random initial state where,
after every gate, a depolarizing error term may fire, and, after every
moment, every qudit suffers an idle channel whose duration matches the
moment (two-qudit moments are longer).  The returned figure of merit is the
fidelity |<psi_ideal | psi_actual>|^2 against the noise-free evolution of
the same initial state.

Averaged over trajectories this converges to the density-matrix result
(Sec. 6.2), at state-vector cost.

Two engines share that schedule:

* :class:`TrajectorySimulator` — the reference loop, one trajectory at a
  time (one :class:`~repro.sim.state.StateVector` per shot);
* :class:`BatchedTrajectorySimulator` — the production engine: ``B``
  trajectories advance together as one stacked tensor of shape
  ``(B, d_0, ..., d_{n-1})`` (batch axis first, then the StateVector leg
  order).  Gates hit all ``B`` members in a single ``tensordot``; noise
  branches are drawn for the whole batch at once (vectorized uniform
  draws against each channel's cumulative table, per-member populations
  via one ``|amplitude|^2`` reduction) and each distinct branch operator
  is applied to its sub-batch in one call.  The per-shot Python overhead
  that dominates small-state looped runs amortises across the batch.

Both engines sample the same per-trajectory distribution; they consume
their RNG streams differently, so fixed-seed results agree in
distribution (asserted statistically in the tests), not draw-for-draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..exceptions import SimulationError
from ..noise.kraus import KrausChannel, UnitaryMixtureChannel
from ..noise.model import NoiseModel
from ..qudits import Qudit
from .kernels import apply_block, gate_kernel
from .state import StateVector


@dataclass(frozen=True)
class TrajectoryResult:
    """Outcome of a single noisy trajectory."""

    fidelity: float
    gate_errors: int
    idle_jumps: int


class TrajectorySimulator:
    """Runs noisy trajectories of a circuit under a :class:`NoiseModel`."""

    def __init__(
        self, noise_model: NoiseModel, rng: np.random.Generator | None = None
    ) -> None:
        self._model = noise_model
        self._rng = rng or np.random.default_rng()

    @property
    def noise_model(self) -> NoiseModel:
        """The device model supplying gate-error and idle channels."""
        return self._model

    # ------------------------------------------------------------------

    def run_trajectory(
        self,
        circuit: Circuit,
        initial_state: StateVector,
        ideal_final: StateVector | None = None,
    ) -> TrajectoryResult:
        """One noisy pass of ``circuit`` from ``initial_state``.

        ``ideal_final`` (the noise-free output for the same input) is
        computed on the fly when not supplied; passing it in lets callers
        amortise the ideal run across trajectories that share an input.
        """
        state = initial_state.copy()
        wires = state.wires
        circuit_wires = set(circuit.all_qudits())
        if not circuit_wires.issubset(wires):
            raise SimulationError(
                "initial state does not cover all circuit wires"
            )
        if ideal_final is None:
            ideal_final = self.ideal_final_state(circuit, initial_state)

        gate_errors = 0
        idle_jumps = 0
        idle_cache: dict[
            tuple[int, float], list[KrausChannel | UnitaryMixtureChannel]
        ] = {}

        for moment in circuit:
            # Gates, each followed by its depolarizing error draw.
            for op in moment:
                state.apply_operation(op)
                dims = tuple(w.dimension for w in op.qudits)
                channel = self._model.gate_error(dims)
                if channel.apply_sampled(state, op.qudits, self._rng):
                    gate_errors += 1
            # Idle errors for every wire, scaled to the moment duration.
            # One probability-tensor pass serves all wires' marginals; the
            # cache is refreshed after any jump (no-jump attenuations only
            # perturb other wires' marginals at O(lambda), which shifts
            # sampling weights at O(lambda^2) — far below sampling noise).
            duration = self._model.moment_duration(moment)
            probability_tensor = state.probability_tensor()
            for wire in wires:
                key = (wire.dimension, duration)
                if key not in idle_cache:
                    idle_cache[key] = self._model.idle_channels(
                        wire.dimension, duration
                    )
                if not idle_cache[key]:
                    continue
                populations = state.populations_from(
                    probability_tensor, wire
                )
                for idle in idle_cache[key]:
                    if isinstance(idle, KrausChannel):
                        # Ground-state wires cannot damp: K0 acts as the
                        # exact identity on them, so skip the whole draw.
                        if populations[1:].sum() < 1e-15:
                            continue
                        branch = idle.apply_sampled(
                            state, [wire], self._rng, populations
                        )
                        if branch > 0:
                            idle_jumps += 1
                            probability_tensor = state.probability_tensor()
                    else:
                        if idle.apply_sampled(state, [wire], self._rng):
                            idle_jumps += 1
            state.renormalize()

        return TrajectoryResult(
            fidelity=state.fidelity(ideal_final),
            gate_errors=gate_errors,
            idle_jumps=idle_jumps,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def ideal_final_state(
        circuit: Circuit, initial_state: StateVector
    ) -> StateVector:
        """Noise-free evolution of ``initial_state`` through ``circuit``."""
        state = initial_state.copy()
        for op in circuit.all_operations():
            state.apply_operation(op)
        return state

    def random_binary_input(
        self, wires: Sequence[Qudit]
    ) -> StateVector:
        """A Haar-random state over the *binary* subspace of ``wires``.

        The paper's circuits keep inputs and outputs binary even on qutrit
        wires (|2> is only occupied transiently), so initial states populate
        levels {0, 1} of every wire.
        """
        caps = {w: 2 for w in wires}
        return StateVector.random(
            list(wires), rng=self._rng, levels_per_wire=caps
        )


class BatchedTrajectorySimulator:
    """Runs ``B`` noisy trajectories at once on stacked state tensors.

    See the module docstring for the batching design.  The public
    surface mirrors :class:`TrajectorySimulator` shot-for-shot: one
    :class:`TrajectoryResult` per batch member, drawn from the same
    per-trajectory distribution.
    """

    def __init__(
        self, noise_model: NoiseModel, rng: np.random.Generator | None = None
    ) -> None:
        self._model = noise_model
        self._rng = rng or np.random.default_rng()

    @property
    def noise_model(self) -> NoiseModel:
        """The device model supplying gate-error and idle channels."""
        return self._model

    # -- batched tensor primitives -------------------------------------

    @staticmethod
    def _apply_block(
        batch: np.ndarray, block: np.ndarray, axes: list[int]
    ) -> np.ndarray:
        """Contract an operator block against ``axes`` of the batch.

        ``block`` is in kernel form (output legs first); the batch axis
        is never touched, so one call advances every member.  Shares the
        engines' one contraction (:func:`repro.sim.kernels.apply_block`).
        """
        return apply_block(batch, block, axes)

    @staticmethod
    def _apply_diagonal(
        batch: np.ndarray, diagonal: np.ndarray, axis: int
    ) -> np.ndarray:
        """Broadcast-multiply one wire's levels across the batch."""
        shape = [1] * batch.ndim
        shape[axis] = len(diagonal)
        return batch * np.asarray(diagonal).reshape(shape)

    def _apply_branches(
        self,
        batch: np.ndarray,
        indices: np.ndarray,
        channel: KrausChannel | UnitaryMixtureChannel,
        axes: list[int],
        identity_index: int,
    ) -> np.ndarray:
        """Apply each member's sampled branch operator to its sub-batch.

        ``indices`` holds one branch per member; ``identity_index``
        marks the branch that needs no work (``-1`` for mixtures'
        identity, never hit for Kraus channels whose branch 0 is an
        explicit operator).  Members are grouped by branch so each
        distinct operator is applied once, to a contiguous sub-batch.
        """
        for branch in np.unique(indices):
            if branch == identity_index:
                continue
            mask = indices == branch
            sub = batch[mask]
            diagonal = channel.operator_diagonal(int(branch))
            if diagonal is not None and len(axes) == 1:
                sub = self._apply_diagonal(sub, diagonal, axes[0])
            else:
                dims = channel.dims
                block = channel.operator(int(branch)).reshape(dims + dims)
                sub = self._apply_block(sub, block, axes)
            batch[mask] = sub
        return batch

    @staticmethod
    def _member_norms(batch: np.ndarray) -> np.ndarray:
        """Euclidean norm of every batch member (shape ``(B,)``)."""
        probability = np.abs(batch) ** 2
        return np.sqrt(
            probability.sum(axis=tuple(range(1, batch.ndim)))
        )

    @staticmethod
    def _renormalize(batch: np.ndarray) -> np.ndarray:
        norms = BatchedTrajectorySimulator._member_norms(batch)
        if np.any(norms == 0.0):
            raise SimulationError("cannot renormalise a zero state")
        return batch / norms.reshape((-1,) + (1,) * (batch.ndim - 1))

    def _sample_kraus_branches(
        self,
        batch: np.ndarray,
        channel: KrausChannel,
        axes: list[int],
        populations: np.ndarray,
    ) -> np.ndarray:
        """One state-dependent branch draw per member (shape ``(B,)``).

        With diagonal Gram matrices (amplitude damping), per-member
        branch probabilities are ``populations @ gram.T`` — one matmul
        for the whole batch.  Otherwise each operator is trial-applied
        to the full batch and the norms give the probabilities.
        """
        gram = channel.gram_diagonal_matrix
        if gram is not None and len(axes) == 1:
            probs = populations @ gram.T
        else:
            columns = []
            for index in range(channel.num_operators):
                dims = channel.dims
                block = channel.operator(index).reshape(dims + dims)
                trial = self._apply_block(batch, block, axes)
                columns.append(self._member_norms(trial) ** 2)
            probs = np.stack(columns, axis=1)
        probs = np.clip(probs, 0.0, None)
        totals = probs.sum(axis=1, keepdims=True)
        if np.any(totals <= 0):
            raise SimulationError(
                f"channel {channel.name} produced zero total probability"
            )
        cumulative = np.cumsum(probs / totals, axis=1)
        u = self._rng.random(len(batch))
        indices = (cumulative < u[:, None]).sum(axis=1)
        return np.minimum(indices, channel.num_operators - 1)

    # ------------------------------------------------------------------

    def run_batch(
        self,
        circuit: Circuit,
        initial_states: Sequence[StateVector],
        ideal_finals: Sequence[StateVector] | None = None,
    ) -> list[TrajectoryResult]:
        """One noisy pass of ``circuit`` for every initial state.

        All initial states must share one wire order.  ``ideal_finals``
        (the noise-free outputs for the same inputs) are computed in one
        vectorized noise-free pass when not supplied.
        """
        if not initial_states:
            return []
        wires = initial_states[0].wires
        for state in initial_states:
            if state.wires != wires:
                raise SimulationError(
                    "batched trajectories need a common wire order"
                )
        circuit_wires = set(circuit.all_qudits())
        if not circuit_wires.issubset(wires):
            raise SimulationError(
                "initial state does not cover all circuit wires"
            )
        count = len(initial_states)
        axis = {w: 1 + k for k, w in enumerate(wires)}
        batch = np.stack([s.tensor for s in initial_states])

        # Noise-free reference pass, vectorized over the same stack.
        if ideal_finals is not None:
            ideal = np.stack([s.tensor for s in ideal_finals])
        else:
            ideal = batch.copy()
            for op in circuit.all_operations():
                kernel = gate_kernel(op)
                ideal = self._apply_block(
                    ideal, kernel.block, [axis[w] for w in op.qudits]
                )

        gate_errors = np.zeros(count, dtype=int)
        idle_jumps = np.zeros(count, dtype=int)

        for moment in circuit:
            for op in moment:
                axes = [axis[w] for w in op.qudits]
                kernel = gate_kernel(op)
                batch = self._apply_block(batch, kernel.block, axes)
                dims = tuple(w.dimension for w in op.qudits)
                error = self._model.gate_error(dims)
                indices = error.sample_indices(self._rng, count)
                batch = self._apply_branches(
                    batch, indices, error, axes, identity_index=-1
                )
                gate_errors += indices >= 0
            duration = self._model.moment_duration(moment)
            for wire in wires:
                channels = self._model.idle_channels(
                    wire.dimension, duration
                )
                if not channels:
                    continue
                wire_axis = axis[wire]
                for idle in channels:
                    if isinstance(idle, KrausChannel):
                        # Per-member populations of this wire: one
                        # |amplitude|^2 pass reduced over all other axes.
                        probability = np.abs(batch) ** 2
                        other = tuple(
                            k
                            for k in range(1, batch.ndim)
                            if k != wire_axis
                        )
                        populations = probability.sum(axis=other)
                        indices = self._sample_kraus_branches(
                            batch, idle, [wire_axis], populations
                        )
                        batch = self._apply_branches(
                            batch,
                            indices,
                            idle,
                            [wire_axis],
                            identity_index=-2,  # branch 0 always applies
                        )
                        # Kraus branches are sub-normalised; restore unit
                        # norm so later populations stay probabilities.
                        batch = self._renormalize(batch)
                        idle_jumps += indices > 0
                    else:
                        indices = idle.sample_indices(self._rng, count)
                        batch = self._apply_branches(
                            batch,
                            indices,
                            idle,
                            [wire_axis],
                            identity_index=-1,
                        )
                        idle_jumps += indices >= 0
            batch = self._renormalize(batch)

        overlaps = (ideal.conj() * batch).sum(
            axis=tuple(range(1, batch.ndim))
        )
        fidelities = np.abs(overlaps) ** 2
        return [
            TrajectoryResult(
                fidelity=float(fidelities[index]),
                gate_errors=int(gate_errors[index]),
                idle_jumps=int(idle_jumps[index]),
            )
            for index in range(count)
        ]

    def random_binary_inputs(
        self, wires: Sequence[Qudit], count: int
    ) -> list[StateVector]:
        """``count`` independent binary-subspace random inputs."""
        caps = {w: 2 for w in wires}
        return [
            StateVector.random(
                list(wires), rng=self._rng, levels_per_wire=caps
            )
            for _ in range(count)
        ]
