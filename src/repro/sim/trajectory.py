"""Quantum-trajectory noise simulation (Algorithm 1 of the paper).

One trajectory = one run of the circuit on a random initial state where,
after every gate, a depolarizing error term may fire, and, after every
moment, every qudit suffers an idle channel whose duration matches the
moment (two-qudit moments are longer).  The returned figure of merit is the
fidelity |<psi_ideal | psi_actual>|^2 against the noise-free evolution of
the same initial state.

Averaged over trajectories this converges to the density-matrix result
(Sec. 6.2), at state-vector cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..exceptions import SimulationError
from ..noise.kraus import KrausChannel, UnitaryMixtureChannel
from ..noise.model import NoiseModel
from ..qudits import Qudit
from .state import StateVector


@dataclass(frozen=True)
class TrajectoryResult:
    """Outcome of a single noisy trajectory."""

    fidelity: float
    gate_errors: int
    idle_jumps: int


class TrajectorySimulator:
    """Runs noisy trajectories of a circuit under a :class:`NoiseModel`."""

    def __init__(
        self, noise_model: NoiseModel, rng: np.random.Generator | None = None
    ) -> None:
        self._model = noise_model
        self._rng = rng or np.random.default_rng()

    @property
    def noise_model(self) -> NoiseModel:
        """The device model supplying gate-error and idle channels."""
        return self._model

    # ------------------------------------------------------------------

    def run_trajectory(
        self,
        circuit: Circuit,
        initial_state: StateVector,
        ideal_final: StateVector | None = None,
    ) -> TrajectoryResult:
        """One noisy pass of ``circuit`` from ``initial_state``.

        ``ideal_final`` (the noise-free output for the same input) is
        computed on the fly when not supplied; passing it in lets callers
        amortise the ideal run across trajectories that share an input.
        """
        state = initial_state.copy()
        wires = state.wires
        circuit_wires = set(circuit.all_qudits())
        if not circuit_wires.issubset(wires):
            raise SimulationError(
                "initial state does not cover all circuit wires"
            )
        if ideal_final is None:
            ideal_final = self.ideal_final_state(circuit, initial_state)

        gate_errors = 0
        idle_jumps = 0
        idle_cache: dict[
            tuple[int, float], list[KrausChannel | UnitaryMixtureChannel]
        ] = {}

        for moment in circuit:
            # Gates, each followed by its depolarizing error draw.
            for op in moment:
                state.apply_operation(op)
                dims = tuple(w.dimension for w in op.qudits)
                channel = self._model.gate_error(dims)
                if channel.apply_sampled(state, op.qudits, self._rng):
                    gate_errors += 1
            # Idle errors for every wire, scaled to the moment duration.
            # One probability-tensor pass serves all wires' marginals; the
            # cache is refreshed after any jump (no-jump attenuations only
            # perturb other wires' marginals at O(lambda), which shifts
            # sampling weights at O(lambda^2) — far below sampling noise).
            duration = self._model.moment_duration(moment)
            probability_tensor = state.probability_tensor()
            for wire in wires:
                key = (wire.dimension, duration)
                if key not in idle_cache:
                    idle_cache[key] = self._model.idle_channels(
                        wire.dimension, duration
                    )
                if not idle_cache[key]:
                    continue
                populations = state.populations_from(
                    probability_tensor, wire
                )
                for idle in idle_cache[key]:
                    if isinstance(idle, KrausChannel):
                        # Ground-state wires cannot damp: K0 acts as the
                        # exact identity on them, so skip the whole draw.
                        if populations[1:].sum() < 1e-15:
                            continue
                        branch = idle.apply_sampled(
                            state, [wire], self._rng, populations
                        )
                        if branch > 0:
                            idle_jumps += 1
                            probability_tensor = state.probability_tensor()
                    else:
                        if idle.apply_sampled(state, [wire], self._rng):
                            idle_jumps += 1
            state.renormalize()

        return TrajectoryResult(
            fidelity=state.fidelity(ideal_final),
            gate_errors=gate_errors,
            idle_jumps=idle_jumps,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def ideal_final_state(
        circuit: Circuit, initial_state: StateVector
    ) -> StateVector:
        """Noise-free evolution of ``initial_state`` through ``circuit``."""
        state = initial_state.copy()
        for op in circuit.all_operations():
            state.apply_operation(op)
        return state

    def random_binary_input(
        self, wires: Sequence[Qudit]
    ) -> StateVector:
        """A Haar-random state over the *binary* subspace of ``wires``.

        The paper's circuits keep inputs and outputs binary even on qutrit
        wires (|2> is only occupied transiently), so initial states populate
        levels {0, 1} of every wire.
        """
        caps = {w: 2 for w in wires}
        return StateVector.random(
            list(wires), rng=self._rng, levels_per_wire=caps
        )
