"""Classical basis-state simulation of permutation circuits.

The paper extended Cirq so gates "specify their action on classical
non-superposition input states without considering full state vectors",
cutting verification from exponential to linear cost and enabling exhaustive
checks of all classical inputs up to width 14 (Sec. 6).  This simulator is
that feature's per-assignment surface.  Since PR 4 it is a thin veneer over
the batched permutation engine
(:class:`~repro.sim.classical_batch.BatchedClassicalSimulator`): the
circuit lowers once into cached permutation tables (LRU-memoised on the
circuit's content-addressed identity) and single assignments walk those
tables with scalar arithmetic — about 2x faster than the per-gate dict
walk it replaced (``Circuit.classical_map``, which remains as the looped
reference implementation, used by parity tests and ``python -m repro
bench``).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..circuits.circuit import Circuit
from ..qudits import Qudit
from .classical_batch import BatchedClassicalSimulator


class ClassicalSimulator:
    """Propagates computational basis states through permutation circuits."""

    def __init__(self) -> None:
        self._batched = BatchedClassicalSimulator()

    def run(
        self, circuit: Circuit, assignment: Mapping[Qudit, int]
    ) -> dict[Qudit, int]:
        """Output wire values for the given input values.

        Raises :class:`NotClassicalError` if any gate is not a basis
        permutation and :class:`SchedulingError` if the circuit touches a
        wire missing from ``assignment`` — the same contract as the
        looped ``Circuit.classical_map``.
        """
        wires = list(assignment)
        output = self._batched.run_values(
            circuit, wires, [assignment[w] for w in wires]
        )
        return dict(zip(wires, output))

    def run_values(
        self,
        circuit: Circuit,
        wires: Sequence[Qudit],
        values: Sequence[int],
    ) -> tuple[int, ...]:
        """Like :meth:`run`, with positional values over ``wires``."""
        if len(values) != len(wires):
            raise ValueError(
                f"{len(wires)} wires but {len(values)} values"
            )
        return self._batched.run_values(circuit, wires, values)

    def truth_table(
        self,
        circuit: Circuit,
        wires: Sequence[Qudit],
        input_levels: Mapping[Qudit, Iterable[int]] | None = None,
    ) -> dict[tuple[int, ...], tuple[int, ...]]:
        """Exhaustive input -> output map over selected input levels.

        ``input_levels`` restricts which values each wire may start in
        (e.g. qubit inputs {0, 1} on qutrit wires, per the paper's
        binary-in / binary-out convention).  Defaults to every level.
        One batched run over the whole input space.
        """
        return self._batched.truth_table(circuit, wires, input_levels)

    def is_classical_circuit(self, circuit: Circuit) -> bool:
        """True iff every gate in the circuit permutes basis states.

        Decided from each gate's whole-domain permutation lowering — not
        by probing one input — so gates that act classically only on
        selected inputs (e.g. a controlled Hadamard, which fixes
        ``|00..>``) are correctly rejected.
        """
        return self._batched.is_classical_circuit(circuit)
