"""Classical basis-state simulation of permutation circuits.

The paper extended Cirq so gates "specify their action on classical
non-superposition input states without considering full state vectors",
cutting verification from exponential to linear cost and enabling exhaustive
checks of all classical inputs up to width 14 (Sec. 6).  This simulator is
that feature: each gate is resolved through its permutation action in
O(circuit width) per gate.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Mapping, Sequence

from ..circuits.circuit import Circuit
from ..exceptions import NotClassicalError
from ..qudits import Qudit


class ClassicalSimulator:
    """Propagates computational basis states through permutation circuits."""

    def run(
        self, circuit: Circuit, assignment: Mapping[Qudit, int]
    ) -> dict[Qudit, int]:
        """Output wire values for the given input values.

        Raises :class:`NotClassicalError` if any gate is not a basis
        permutation.
        """
        return circuit.classical_map(assignment)

    def run_values(
        self,
        circuit: Circuit,
        wires: Sequence[Qudit],
        values: Sequence[int],
    ) -> tuple[int, ...]:
        """Like :meth:`run`, with positional values over ``wires``."""
        result = self.run(circuit, dict(zip(wires, values, strict=True)))
        return tuple(result[w] for w in wires)

    def truth_table(
        self,
        circuit: Circuit,
        wires: Sequence[Qudit],
        input_levels: Mapping[Qudit, Iterable[int]] | None = None,
    ) -> dict[tuple[int, ...], tuple[int, ...]]:
        """Exhaustive input -> output map over selected input levels.

        ``input_levels`` restricts which values each wire may start in
        (e.g. qubit inputs {0, 1} on qutrit wires, per the paper's
        binary-in / binary-out convention).  Defaults to every level.
        """
        wires = list(wires)
        level_choices = []
        for wire in wires:
            if input_levels is not None and wire in input_levels:
                level_choices.append(tuple(input_levels[wire]))
            else:
                level_choices.append(tuple(wire.levels))
        table: dict[tuple[int, ...], tuple[int, ...]] = {}
        for values in product(*level_choices):
            table[values] = self.run_values(circuit, wires, values)
        return table

    def is_classical_circuit(self, circuit: Circuit) -> bool:
        """True iff every gate in the circuit permutes basis states."""
        try:
            for op in circuit.all_operations():
                op.gate.classical_action(
                    tuple(0 for _ in op.qudits)
                )
        except NotClassicalError:
            return False
        return True
