"""Mean-fidelity estimation — the Figure 11 measurement harness.

Each trial draws a fresh random binary-subspace input, evolves it both
noiselessly and through one noisy trajectory, and records the squared
overlap.  The estimate reports the mean and the 2-sigma standard error the
paper quotes ("error bars are all 2 sigma < 0.1%").

Trials run through the batched trajectory engine by default: shots are
grouped into stacked-tensor chunks sized so one chunk stays cache-friendly
(``batch_size=None`` auto-sizes; see :func:`resolve_batch_size`).  Pass
``batch_size=1`` to force the original one-trajectory-at-a-time loop —
both engines sample the same distribution, but their RNG streams differ,
so fixed-seed results are engine-specific.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..noise.model import NoiseModel
from ..qudits import Qudit, total_dimension
from .trajectory import BatchedTrajectorySimulator, TrajectorySimulator

#: Auto-batching budget: total stacked amplitudes per chunk.  A chunk of
#: B trajectories over an n-wire state costs B * d^n complex entries;
#: 2^18 keeps a chunk around 4 MB — large enough to amortise per-gate
#: numpy overhead, small enough to stay in cache.
_AUTO_BATCH_ENTRIES = 1 << 18

#: Upper bound on the auto-chosen batch, so tiny states don't produce
#: needlessly huge stacks.
_MAX_AUTO_BATCH = 1024


def resolve_batch_size(
    batch_size: int | None, wires: Sequence[Qudit], trials: int
) -> int:
    """The trajectory chunk size to use for one estimate.

    ``None`` auto-sizes from the state dimension (the only shape input),
    so a given ``(circuit, trials, seed, batch_size=None)`` call is
    deterministic across machines.  Explicit values are clamped to
    ``[1, trials]``; ``1`` selects the looped reference engine.
    """
    if trials <= 1:
        return 1
    if batch_size is not None:
        return max(1, min(int(batch_size), trials))
    state_entries = max(1, total_dimension(list(wires)))
    auto = _AUTO_BATCH_ENTRIES // state_entries
    return max(1, min(trials, auto, _MAX_AUTO_BATCH))


@dataclass(frozen=True)
class FidelityEstimate:
    """Aggregated trajectory statistics for one circuit/noise-model pair."""

    circuit_name: str
    noise_model_name: str
    trials: int
    mean_fidelity: float
    std_error: float
    mean_gate_errors: float
    mean_idle_jumps: float

    @property
    def two_sigma(self) -> float:
        """The paper's quoted uncertainty: two standard errors."""
        return 2.0 * self.std_error

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.circuit_name} under {self.noise_model_name}: "
            f"{100 * self.mean_fidelity:.1f}% "
            f"(+/- {100 * self.two_sigma:.2f}%, {self.trials} trials)"
        )


def estimate_circuit_fidelity(
    circuit: Circuit,
    noise_model: NoiseModel,
    trials: int,
    seed: int | None = None,
    wires: Sequence[Qudit] | None = None,
    circuit_name: str = "circuit",
    batch_size: int | None = None,
) -> FidelityEstimate:
    """Run ``trials`` independent trajectories and aggregate.

    Every trial uses its own random binary-subspace initial state, per
    Algorithm 1.  Deterministic given ``seed`` (and the effective batch
    size, which the default auto-sizing derives from the state shape
    alone).  ``batch_size`` controls the stacked-trajectory chunking:
    ``None`` auto-sizes, ``1`` forces the looped reference engine.
    """
    rng = np.random.default_rng(seed)
    wires = list(wires) if wires else circuit.all_qudits()
    batch = resolve_batch_size(batch_size, wires, trials)

    fidelities = np.empty(trials)
    gate_errors = np.empty(trials)
    idle_jumps = np.empty(trials)
    if batch <= 1:
        simulator = TrajectorySimulator(noise_model, rng)
        for trial in range(trials):
            initial = simulator.random_binary_input(wires)
            result = simulator.run_trajectory(circuit, initial)
            fidelities[trial] = result.fidelity
            gate_errors[trial] = result.gate_errors
            idle_jumps[trial] = result.idle_jumps
    else:
        batched = BatchedTrajectorySimulator(noise_model, rng)
        done = 0
        while done < trials:
            chunk = min(batch, trials - done)
            initials = batched.random_binary_inputs(wires, chunk)
            for offset, result in enumerate(
                batched.run_batch(circuit, initials)
            ):
                fidelities[done + offset] = result.fidelity
                gate_errors[done + offset] = result.gate_errors
                idle_jumps[done + offset] = result.idle_jumps
            done += chunk

    std_error = (
        float(fidelities.std(ddof=1) / np.sqrt(trials)) if trials > 1 else 0.0
    )
    return FidelityEstimate(
        circuit_name=circuit_name,
        noise_model_name=noise_model.name,
        trials=trials,
        mean_fidelity=float(fidelities.mean()),
        std_error=std_error,
        mean_gate_errors=float(gate_errors.mean()),
        mean_idle_jumps=float(idle_jumps.mean()),
    )
