"""Mean-fidelity estimation — the Figure 11 measurement harness.

Each trial draws a fresh random binary-subspace input, evolves it both
noiselessly and through one noisy trajectory, and records the squared
overlap.  The estimate reports the mean and the 2-sigma standard error the
paper quotes ("error bars are all 2 sigma < 0.1%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..noise.model import NoiseModel
from ..qudits import Qudit
from .trajectory import TrajectorySimulator


@dataclass(frozen=True)
class FidelityEstimate:
    """Aggregated trajectory statistics for one circuit/noise-model pair."""

    circuit_name: str
    noise_model_name: str
    trials: int
    mean_fidelity: float
    std_error: float
    mean_gate_errors: float
    mean_idle_jumps: float

    @property
    def two_sigma(self) -> float:
        """The paper's quoted uncertainty: two standard errors."""
        return 2.0 * self.std_error

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.circuit_name} under {self.noise_model_name}: "
            f"{100 * self.mean_fidelity:.1f}% "
            f"(+/- {100 * self.two_sigma:.2f}%, {self.trials} trials)"
        )


def estimate_circuit_fidelity(
    circuit: Circuit,
    noise_model: NoiseModel,
    trials: int,
    seed: int | None = None,
    wires: Sequence[Qudit] | None = None,
    circuit_name: str = "circuit",
) -> FidelityEstimate:
    """Run ``trials`` independent trajectories and aggregate.

    Every trial uses its own random binary-subspace initial state, per
    Algorithm 1.  Deterministic given ``seed``.
    """
    rng = np.random.default_rng(seed)
    simulator = TrajectorySimulator(noise_model, rng)
    wires = list(wires) if wires else circuit.all_qudits()

    fidelities = np.empty(trials)
    gate_errors = np.empty(trials)
    idle_jumps = np.empty(trials)
    for trial in range(trials):
        initial = simulator.random_binary_input(wires)
        result = simulator.run_trajectory(circuit, initial)
        fidelities[trial] = result.fidelity
        gate_errors[trial] = result.gate_errors
        idle_jumps[trial] = result.idle_jumps

    std_error = (
        float(fidelities.std(ddof=1) / np.sqrt(trials)) if trials > 1 else 0.0
    )
    return FidelityEstimate(
        circuit_name=circuit_name,
        noise_model_name=noise_model.name,
        trials=trials,
        mean_fidelity=float(fidelities.mean()),
        std_error=std_error,
        mean_gate_errors=float(gate_errors.mean()),
        mean_idle_jumps=float(idle_jumps.mean()),
    )
