"""The original dense ``kron``-embedding density engine, kept as an oracle.

This is the noise engine v1 hot path, verbatim in behaviour: every gate
and Kraus operator is embedded into the full ``d^n x d^n`` space (active
wires first, ``kron`` with identity on the rest, legs permuted back) and
applied as dense matrix products — ``O(d^3n)`` per operator, against the
axis-local engine's ``O(prod(active_dims) * d^2n)``.

It exists for two reasons only:

* **parity tests** — the axis-local :class:`~repro.sim.density.DensityTensor`
  must agree with this embedding to machine precision on every noise
  preset (``tests/sim/test_density_parity.py``);
* **benchmarks** — ``python -m repro bench`` times the two engines
  against each other and records the speedup in ``BENCH_noise.json``.

Do not use it for new work; it is deliberately unoptimised.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..exceptions import SimulationError
from ..noise.kraus import KrausChannel
from ..noise.model import NoiseModel
from ..qudits import Qudit, total_dimension
from .kernels import kraus_operators
from .state import StateVector

#: Same default width cap as the axis-local engine, so the two can be
#: benchmarked on identical workloads.
_MAX_DIM = 3**5


class DenseDensityMatrix:
    """A density operator evolved through full-space dense embeddings."""

    def __init__(self, wires: list[Qudit], matrix: np.ndarray) -> None:
        self._wires = list(wires)
        dim = total_dimension(self._wires)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (dim, dim):
            raise SimulationError(
                f"density matrix shape {matrix.shape} does not match "
                f"total dimension {dim}"
            )
        self._matrix = matrix
        self._dims = tuple(w.dimension for w in self._wires)
        self._axis = {w: k for k, w in enumerate(self._wires)}

    @classmethod
    def from_state(cls, state: StateVector) -> "DenseDensityMatrix":
        """|psi><psi| for a pure state."""
        vector = state.vector
        return cls(state.wires, np.outer(vector, vector.conj()))

    @property
    def wires(self) -> list[Qudit]:
        """Wire order of the operator's tensor legs."""
        return list(self._wires)

    @property
    def matrix(self) -> np.ndarray:
        """The density operator (live view)."""
        return self._matrix

    def trace(self) -> float:
        """Tr rho (1 for a normalised state)."""
        return float(np.real(np.trace(self._matrix)))

    def purity(self) -> float:
        """Tr rho^2 (1 iff pure; decreases as noise mixes the state)."""
        return float(np.real(np.trace(self._matrix @ self._matrix)))

    def fidelity_with_pure(self, state: StateVector) -> float:
        """<psi| rho |psi> against a pure reference state."""
        vector = state.vector
        return float(np.real(vector.conj() @ self._matrix @ vector))

    # ------------------------------------------------------------------

    def _expand(self, op_matrix: np.ndarray, wires: list[Qudit]) -> np.ndarray:
        """Embed an operator on ``wires`` into the full space.

        The v1 construction: permute wires so the active ones come
        first, ``kron`` with identity on the rest, permute the row and
        column tensor legs back to circuit order.
        """
        axes = [self._axis[w] for w in wires]
        n = len(self._dims)
        dims = self._dims
        order = axes + [k for k in range(n) if k not in axes]
        inverse = np.argsort(order)
        rest_dim = 1
        for k in range(n):
            if k not in axes:
                rest_dim *= dims[k]
        block = np.kron(
            np.asarray(op_matrix, dtype=complex), np.eye(rest_dim)
        )
        permuted_dims = [dims[k] for k in order]
        tensor = block.reshape(permuted_dims * 2)
        move = list(inverse) + [n + k for k in inverse]
        tensor = tensor.transpose(move)
        dim = total_dimension(self._wires)
        return tensor.reshape(dim, dim)

    def apply_unitary(self, matrix: np.ndarray, wires: list[Qudit]) -> None:
        """rho -> U rho U^dag via the full-space embedding."""
        full = self._expand(matrix, wires)
        self._matrix = full @ self._matrix @ full.conj().T

    def apply_kraus(
        self, operators: list[np.ndarray], wires: list[Qudit]
    ) -> None:
        """rho -> sum_i K_i rho K_i^dag via full-space embeddings."""
        full_ops = [self._expand(op, wires) for op in operators]
        self._matrix = sum(
            op @ self._matrix @ op.conj().T for op in full_ops
        )


class DenseDensityMatrixSimulator:
    """The v1 exact noisy evolution loop over :class:`DenseDensityMatrix`."""

    def __init__(
        self, noise_model: NoiseModel, max_dim: int | None = None
    ) -> None:
        self._model = noise_model
        self._max_dim = max_dim if max_dim is not None else _MAX_DIM

    def run(
        self, circuit: Circuit, initial_state: StateVector
    ) -> DenseDensityMatrix:
        """Evolve ``initial_state`` with the full channel at every step."""
        wires = initial_state.wires
        if total_dimension(wires) > self._max_dim:
            raise SimulationError(
                "dense density-matrix simulation limited to "
                f"{self._max_dim}-dimensional spaces"
            )
        rho = DenseDensityMatrix.from_state(initial_state)
        for moment in circuit:
            for op in moment:
                rho.apply_unitary(op.unitary(), list(op.qudits))
                dims = tuple(w.dimension for w in op.qudits)
                channel = self._model.gate_error(dims)
                rho.apply_kraus(
                    kraus_operators(channel), list(op.qudits)
                )
            duration = self._model.moment_duration(moment)
            for wire in wires:
                for idle in self._model.idle_channels(
                    wire.dimension, duration
                ):
                    if isinstance(idle, KrausChannel):
                        rho.apply_kraus(idle.operators, [wire])
                    else:
                        rho.apply_kraus(kraus_operators(idle), [wire])
        return rho

    def mean_fidelity(
        self, circuit: Circuit, initial_state: StateVector
    ) -> float:
        """<psi_ideal| rho |psi_ideal> under the dense embedding."""
        from .trajectory import TrajectorySimulator

        ideal = TrajectorySimulator.ideal_final_state(circuit, initial_state)
        rho = self.run(circuit, initial_state)
        return rho.fidelity_with_pure(ideal)
