"""Computational-basis measurement and sampling.

The paper's metric is state-vector fidelity, but a usable simulator also
needs terminal measurement: sampling outcomes from the final state
(readout is binary — circuits return to the qubit subspace — but the
sampler supports all levels so tests can verify |2> populations vanish).

Two sampling surfaces share one seeded draw primitive:

* :func:`sample_state` materialises a ``(shots, wires)`` sample array —
  the looped-shape reference, kept for callers that need per-shot rows;
* :func:`sample_counts` draws *counts* directly: flat outcomes are drawn
  in vectorized chunks from the cumulative distribution, histogrammed
  with ``np.unique``, and only the distinct outcomes are ever decoded —
  no per-shot array, so a million shots over a handful of outcomes
  costs a few kilobytes.

Both draw through :func:`_draw_flat_outcomes` (inverse-CDF sampling on
``rng.random``), so for one seed the two surfaces agree *exactly*, and
because ``Generator.random`` consumes its stream sequentially, chunked
draws concatenate to the unchunked draw: ``batch_size`` changes memory
use only, never the counts.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

import numpy as np

from ..qudits import Qudit
from .kernels import mixed_radix_weights
from .state import StateVector

#: Auto-chunking cap of the counts sampler: flat outcome draws held in
#: memory per pass.  2^20 int64 draws is 8 MB — large enough to amortise
#: the per-chunk unique/merge, bounded however many shots are requested.
_AUTO_SHOT_CHUNK = 1 << 20


class MeasurementResult:
    """Samples from measuring a register in the computational basis.

    Two storage modes, one API:

    * **sample-backed** — ``MeasurementResult(wires, samples)`` holds
      the explicit ``(shots, wires)`` array (the historical form);
    * **counts-backed** — :meth:`from_counts` (what
      :func:`sample_counts` returns) holds only the distinct outcomes
      and their multiplicities, in lexicographic outcome order.

    ``counts()`` / ``probability_of`` / ``most_common`` are identical
    across modes; ``samples`` on a counts-backed result materialises a
    deterministic array (outcomes in lexicographic order, each repeated
    by its count) — the multiset of rows is faithful, the shot *order*
    is not, because it was never drawn.
    """

    def __init__(
        self,
        wires: Sequence[Qudit],
        samples: np.ndarray | None = None,
        *,
        outcomes: np.ndarray | None = None,
        counts: np.ndarray | None = None,
    ) -> None:
        self._wires = list(wires)
        if (samples is None) == (outcomes is None):
            raise ValueError(
                "provide either samples or outcomes/counts, not both"
            )
        if samples is not None:
            self._samples = np.asarray(samples, dtype=np.int64)
            if self._samples.ndim != 2 or self._samples.shape[1] != len(
                self._wires
            ):
                raise ValueError(
                    f"samples shape {self._samples.shape} does not match "
                    f"{len(self._wires)} wires"
                )
            self._outcomes = None
            self._counts = None
            self._shots = self._samples.shape[0]
        else:
            outcomes = np.asarray(outcomes, dtype=np.int64)
            counts = np.asarray(counts, dtype=np.int64)
            if outcomes.ndim != 2 or outcomes.shape[1] != len(self._wires):
                raise ValueError(
                    f"outcomes shape {outcomes.shape} does not match "
                    f"{len(self._wires)} wires"
                )
            if counts.shape != (outcomes.shape[0],):
                raise ValueError(
                    f"counts shape {counts.shape} does not match "
                    f"{outcomes.shape[0]} outcomes"
                )
            if counts.size and counts.min() < 1:
                raise ValueError("outcome counts must be positive")
            if outcomes.shape[0] > 1:
                order = np.lexsort(outcomes.T[::-1])
                outcomes = outcomes[order]
                counts = counts[order]
            self._samples = None
            self._outcomes = outcomes
            self._counts = counts
            self._shots = int(counts.sum())

    @classmethod
    def from_counts(
        cls,
        wires: Sequence[Qudit],
        counts: "Mapping[Sequence[int], int] | Counter",
    ) -> "MeasurementResult":
        """A counts-backed result from an outcome -> count mapping."""
        wires = list(wires)
        outcomes = np.array(
            [list(outcome) for outcome in counts], dtype=np.int64
        ).reshape(len(counts), len(wires))
        values = np.array(
            [int(count) for count in counts.values()], dtype=np.int64
        )
        return cls(wires, outcomes=outcomes, counts=values)

    @property
    def wires(self) -> list[Qudit]:
        """Measured wires, in sample-column order."""
        return list(self._wires)

    @property
    def shots(self) -> int:
        """Number of samples taken."""
        return self._shots

    @property
    def is_counts_backed(self) -> bool:
        """True when only outcome counts are stored, not per-shot rows."""
        return self._samples is None

    @property
    def samples(self) -> np.ndarray:
        """(shots, wires) array of measured levels.

        Counts-backed results materialise the array on demand: outcomes
        in lexicographic order, each repeated by its count.  Same
        multiset as any sample-backed equivalent; no per-shot order.
        """
        if self._samples is not None:
            return self._samples.copy()
        return np.repeat(self._outcomes, self._counts, axis=0)

    def _unique_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Distinct outcome rows and their multiplicities."""
        if self._samples is None:
            return self._outcomes, self._counts
        if self._samples.shape[0] == 0 or self._samples.shape[1] == 0:
            # np.unique(axis=0) mishandles empty axes; the histogram is
            # trivial either way: no rows, or `shots` empty tuples.
            return (
                self._samples[: 1 if self._samples.shape[0] else 0],
                np.array(
                    [self._shots] if self._shots else [], dtype=np.int64
                ),
            )
        return np.unique(self._samples, axis=0, return_counts=True)

    def counts(self) -> Counter:
        """Histogram of outcomes as tuples of levels.

        Vectorized: one ``np.unique(axis=0)`` pass over the samples (or
        a direct read on counts-backed results) instead of a per-row
        Python loop — same Counter, built from ``U`` distinct outcomes
        rather than ``shots`` rows.
        """
        outcomes, counts = self._unique_counts()
        return Counter(
            {
                tuple(int(v) for v in row): int(count)
                for row, count in zip(outcomes, counts)
            }
        )

    def probability_of(self, outcome: Sequence[int]) -> float:
        """Empirical probability of one outcome."""
        target = tuple(outcome)
        return self.counts()[target] / self.shots

    def most_common(self, k: int = 1) -> list[tuple[tuple[int, ...], int]]:
        """The ``k`` most frequent outcomes with their counts."""
        return self.counts().most_common(k)


def _flat_probabilities(state: StateVector) -> np.ndarray:
    """Normalised float64 probabilities over the joint basis."""
    probabilities = np.abs(state.vector.astype(np.complex128)) ** 2
    return probabilities / probabilities.sum()


def _draw_flat_outcomes(
    cdf: np.ndarray, shots: int, rng: np.random.Generator
) -> np.ndarray:
    """``shots`` joint-basis indices by inverse-CDF sampling.

    One uniform draw per shot, binary-searched into the cumulative
    distribution.  This is the single draw primitive both samplers
    share: same rng state => same outcomes, and chunked calls
    concatenate to one big call because ``Generator.random`` consumes
    its stream sequentially.
    """
    uniform = rng.random(shots)
    indices = np.searchsorted(cdf, uniform, side="right")
    # Guard the cdf's float edge: cumsum can land a hair under 1.0.
    return np.minimum(indices, cdf.size - 1)


def _resolve_rng(
    rng: "int | np.random.Generator | None",
) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _marginal_columns(
    state: StateVector, wires: Sequence[Qudit] | None
) -> tuple[list[Qudit], np.ndarray]:
    """Requested wires and their column positions in state order."""
    order = state.wires
    wires = list(wires) if wires is not None else order
    position = {wire: k for k, wire in enumerate(order)}
    missing = [w for w in wires if w not in position]
    if missing:
        raise ValueError(f"wires {missing} not part of the state")
    return wires, np.array([position[w] for w in wires], dtype=np.intp)


def sample_state(
    state: StateVector,
    shots: int,
    rng: "int | np.random.Generator | None" = None,
    wires: Sequence[Qudit] | None = None,
) -> MeasurementResult:
    """Draw ``shots`` full-register samples from ``state``.

    Sampling is exact: outcomes are drawn from |amplitude|^2 over the
    joint computational basis, then marginalised to ``wires`` (default:
    every wire, in state order).  This is the per-shot reference
    surface — it materialises the ``(shots, wires)`` array.  Prefer
    :func:`sample_counts` when only the histogram is needed; for one
    seed the two agree exactly.
    """
    rng = _resolve_rng(rng)
    wires, positions = _marginal_columns(state, wires)
    order = state.wires
    cdf = np.cumsum(_flat_probabilities(state))
    flat_outcomes = _draw_flat_outcomes(cdf, shots, rng)
    dims = np.array([w.dimension for w in order], dtype=np.int64)
    weights = mixed_radix_weights(dims)
    values = (flat_outcomes[:, None] // weights[None, :]) % dims[None, :]
    return MeasurementResult(wires, values[:, positions])


def sample_counts(
    state: StateVector,
    shots: int,
    rng: "int | np.random.Generator | None" = None,
    wires: Sequence[Qudit] | None = None,
    batch_size: int | None = None,
) -> MeasurementResult:
    """Outcome counts of ``shots`` measurements, without per-shot rows.

    Flat outcomes are drawn in chunks of ``batch_size`` (default: all
    at once up to ~1M draws), histogrammed per chunk with ``np.unique``
    and merged on the joint index; only the distinct outcomes are
    decoded to level tuples at the end.  Memory is
    ``O(batch_size + distinct outcomes)`` — never ``O(shots x wires)``.

    Deterministic for a fixed ``rng`` seed, and independent of
    ``batch_size``: chunked draws concatenate to the unchunked draw, and
    histogram merging is exact integer addition.  With the same seed the
    counts equal ``Counter`` of :func:`sample_state`'s rows exactly —
    the property the test battery pins.
    """
    if shots < 0:
        raise ValueError(f"shots must be non-negative, got {shots}")
    rng = _resolve_rng(rng)
    wires, positions = _marginal_columns(state, wires)
    order = state.wires
    cdf = np.cumsum(_flat_probabilities(state))

    chunk = (
        min(shots, _AUTO_SHOT_CHUNK)
        if batch_size is None
        else max(1, int(batch_size))
    )
    accumulated: dict[int, int] = {}
    drawn = 0
    while drawn < shots:
        take = min(chunk, shots - drawn)
        flat = _draw_flat_outcomes(cdf, take, rng)
        distinct, multiplicity = np.unique(flat, return_counts=True)
        for index, count in zip(distinct, multiplicity):
            key = int(index)
            accumulated[key] = accumulated.get(key, 0) + int(count)
        drawn += take

    dims = np.array([w.dimension for w in order], dtype=np.int64)
    weights = mixed_radix_weights(dims)
    flat_indices = np.fromiter(
        accumulated.keys(), dtype=np.int64, count=len(accumulated)
    )
    flat_counts = np.fromiter(
        accumulated.values(), dtype=np.int64, count=len(accumulated)
    )
    values = (flat_indices[:, None] // weights[None, :]) % dims[None, :]
    columns = values[:, positions]

    # Marginalising can collide distinct joint outcomes; merge them on
    # the selected wires' own mixed-radix index.
    selected_dims = [w.dimension for w in wires]
    selected_weights = mixed_radix_weights(selected_dims)
    marginal = columns @ selected_weights
    distinct, inverse = np.unique(marginal, return_inverse=True)
    merged = np.zeros(distinct.size, dtype=np.int64)
    np.add.at(merged, inverse, flat_counts)
    outcomes = (
        distinct[:, None] // selected_weights[None, :]
    ) % np.array(selected_dims, dtype=np.int64)[None, :]
    return MeasurementResult(wires, outcomes=outcomes, counts=merged)
