"""Computational-basis measurement and sampling.

The paper's metric is state-vector fidelity, but a usable simulator also
needs terminal measurement: sampling outcomes from the final state
(readout is binary — circuits return to the qubit subspace — but the
sampler supports all levels so tests can verify |2> populations vanish).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from ..qudits import Qudit
from .state import StateVector


class MeasurementResult:
    """Samples from measuring a register in the computational basis."""

    def __init__(
        self, wires: Sequence[Qudit], samples: np.ndarray
    ) -> None:
        self._wires = list(wires)
        self._samples = np.asarray(samples, dtype=np.int64)
        if self._samples.ndim != 2 or self._samples.shape[1] != len(
            self._wires
        ):
            raise ValueError(
                f"samples shape {self._samples.shape} does not match "
                f"{len(self._wires)} wires"
            )

    @property
    def wires(self) -> list[Qudit]:
        """Measured wires, in sample-column order."""
        return list(self._wires)

    @property
    def shots(self) -> int:
        """Number of samples taken."""
        return self._samples.shape[0]

    @property
    def samples(self) -> np.ndarray:
        """(shots, wires) array of measured levels."""
        return self._samples.copy()

    def counts(self) -> Counter:
        """Histogram of outcomes as tuples of levels."""
        return Counter(tuple(int(v) for v in row) for row in self._samples)

    def probability_of(self, outcome: Sequence[int]) -> float:
        """Empirical probability of one outcome."""
        target = tuple(outcome)
        return self.counts()[target] / self.shots

    def most_common(self, k: int = 1) -> list[tuple[tuple[int, ...], int]]:
        """The ``k`` most frequent outcomes with their counts."""
        return self.counts().most_common(k)


def sample_state(
    state: StateVector,
    shots: int,
    rng: np.random.Generator | None = None,
    wires: Sequence[Qudit] | None = None,
) -> MeasurementResult:
    """Draw ``shots`` full-register samples from ``state``.

    Sampling is exact: outcomes are drawn from |amplitude|^2 over the
    joint computational basis, then marginalised to ``wires`` (default:
    every wire, in state order).
    """
    rng = rng or np.random.default_rng()
    wires = list(wires) if wires is not None else state.wires
    order = state.wires
    missing = [w for w in wires if w not in order]
    if missing:
        raise ValueError(f"wires {missing} not part of the state")
    probabilities = state.probability_tensor().reshape(-1)
    probabilities = probabilities / probabilities.sum()
    flat_outcomes = rng.choice(
        probabilities.size, size=shots, p=probabilities
    )
    dims = [w.dimension for w in order]
    columns = []
    remainders = flat_outcomes
    values_by_wire = {}
    for wire, dim in zip(reversed(order), reversed(dims)):
        values_by_wire[wire] = remainders % dim
        remainders = remainders // dim
    for wire in wires:
        columns.append(values_by_wire[wire])
    samples = np.stack(columns, axis=1)
    return MeasurementResult(wires, samples)
