"""Multi-process fidelity estimation for the full-scale experiment.

The paper's Figure 11 campaign ran trajectories "in parallel over multiple
processes and multiple machines" (Sec. 6.2).  This module is the
single-machine equivalent: it shards trials across worker processes with
derived seeds and merges the per-shard statistics exactly (weighted means
and pooled variance), so the combined estimate is equivalent to one big
serial run in distribution.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..noise.model import NoiseModel
from ..qudits import Qudit
from .fidelity import FidelityEstimate, estimate_circuit_fidelity


@dataclass(frozen=True)
class _Shard:
    #: Circuit serialized to its canonical JSON form (see
    #: :meth:`~repro.circuits.circuit.Circuit.to_json`) — workers rebuild
    #: it through the gate registry instead of unpickling object graphs.
    circuit_data: str
    noise_model: NoiseModel
    trials: int
    seed: int
    wires: tuple[Qudit, ...]
    circuit_name: str
    #: Trajectory chunk size inside the worker (None = auto-batch).
    batch_size: int | None = None


def _run_shard(shard: _Shard) -> FidelityEstimate:
    return estimate_circuit_fidelity(
        Circuit.from_json(shard.circuit_data),
        shard.noise_model,
        trials=shard.trials,
        seed=shard.seed,
        wires=list(shard.wires),
        circuit_name=shard.circuit_name,
        batch_size=shard.batch_size,
    )


def merge_estimates(estimates: Sequence[FidelityEstimate]) -> FidelityEstimate:
    """Combine shard estimates into one (exact pooled statistics)."""
    if not estimates:
        raise ValueError("nothing to merge")
    total = sum(e.trials for e in estimates)
    mean = sum(e.mean_fidelity * e.trials for e in estimates) / total
    # Pool variances: Var = E[Var_shard] + Var[mean_shard], via moments.
    second_moment = 0.0
    for e in estimates:
        shard_var = (e.std_error**2) * e.trials
        second_moment += e.trials * (shard_var + e.mean_fidelity**2)
    variance = max(0.0, second_moment / total - mean**2)
    std_error = float(np.sqrt(variance / total)) if total > 1 else 0.0
    return FidelityEstimate(
        circuit_name=estimates[0].circuit_name,
        noise_model_name=estimates[0].noise_model_name,
        trials=total,
        mean_fidelity=float(mean),
        std_error=std_error,
        mean_gate_errors=sum(
            e.mean_gate_errors * e.trials for e in estimates
        )
        / total,
        mean_idle_jumps=sum(
            e.mean_idle_jumps * e.trials for e in estimates
        )
        / total,
    )


def estimate_circuit_fidelity_parallel(
    circuit: Circuit,
    noise_model: NoiseModel,
    trials: int,
    seed: int = 0,
    wires: Sequence[Qudit] | None = None,
    circuit_name: str = "circuit",
    workers: int = 4,
    batch_size: int | None = None,
) -> FidelityEstimate:
    """Like :func:`estimate_circuit_fidelity`, sharded over processes.

    Deterministic given ``seed``, ``workers`` and ``batch_size`` (each
    shard derives its own seed and batches its own trials).  Falls back
    to the serial path for tiny jobs.
    """
    wires = tuple(wires) if wires else tuple(circuit.all_qudits())
    if workers <= 1 or trials < 2 * workers:
        return estimate_circuit_fidelity(
            circuit, noise_model, trials, seed, list(wires), circuit_name,
            batch_size=batch_size,
        )
    base, extra = divmod(trials, workers)
    circuit_data = circuit.to_json()
    shards = [
        _Shard(
            circuit_data=circuit_data,
            noise_model=noise_model,
            trials=base + (1 if index < extra else 0),
            seed=seed * 1_000_003 + index,
            wires=wires,
            circuit_name=circuit_name,
            batch_size=batch_size,
        )
        for index in range(workers)
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        estimates = list(pool.map(_run_shard, shards))
    return merge_estimates(estimates)
