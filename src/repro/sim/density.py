"""Reference density-matrix simulation of noisy circuits.

The paper's trajectory methodology is justified by its convergence to full
density-matrix evolution (Sec. 6.2: "Over repeated trials, the quantum
trajectory methodology converges to the same results as from full density
matrix simulation").  This module *is* that reference: it evolves the
d^N x d^N density operator exactly under the same noise model —

* gates:       rho -> U rho U^dag
* gate errors: the depolarizing channel, eqs. 3-6
* idle errors: per-wire amplitude damping / dephasing Kraus maps

— so tests can assert that averaged trajectories match it.  Exponentially
more expensive than trajectories (d^2N memory), which is exactly why the
paper samples trajectories for the 14-input experiment; keep widths small.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..exceptions import SimulationError
from ..noise.kraus import KrausChannel, UnitaryMixtureChannel
from ..noise.model import NoiseModel
from ..qudits import Qudit, total_dimension
from .state import StateVector

_MAX_DIM = 1 << 7  # 128-dimensional Hilbert space -> 16k-entry rho


class DensityMatrix:
    """A density operator over an ordered list of wires."""

    def __init__(self, wires: list[Qudit], matrix: np.ndarray) -> None:
        self._wires = list(wires)
        dim = total_dimension(self._wires)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (dim, dim):
            raise SimulationError(
                f"density matrix shape {matrix.shape} does not match "
                f"total dimension {dim}"
            )
        self._matrix = matrix
        self._dims = tuple(w.dimension for w in self._wires)
        self._axis = {w: k for k, w in enumerate(self._wires)}

    @classmethod
    def from_state(cls, state: StateVector) -> "DensityMatrix":
        """|psi><psi| for a pure state."""
        vector = state.vector
        return cls(state.wires, np.outer(vector, vector.conj()))

    @property
    def wires(self) -> list[Qudit]:
        """Wire order of the operator's tensor legs."""
        return list(self._wires)

    @property
    def matrix(self) -> np.ndarray:
        """The density operator (live view)."""
        return self._matrix

    def trace(self) -> float:
        """Tr rho (1 for a normalised state)."""
        return float(np.real(np.trace(self._matrix)))

    def purity(self) -> float:
        """Tr rho^2 (1 iff pure; decreases as noise mixes the state)."""
        return float(np.real(np.trace(self._matrix @ self._matrix)))

    def fidelity_with_pure(self, state: StateVector) -> float:
        """<psi| rho |psi> — the mean-fidelity observable of Figure 11."""
        vector = state.vector
        return float(np.real(vector.conj() @ self._matrix @ vector))

    # ------------------------------------------------------------------

    def _expand(self, op_matrix: np.ndarray, wires: list[Qudit]) -> np.ndarray:
        """Embed an operator on ``wires`` into the full space."""
        axes = [self._axis[w] for w in wires]
        n = len(self._dims)
        dims = self._dims
        # Build the dense embedding via tensordot with identity on the rest.
        # For the small spaces this module allows, a reshape/einsum-free
        # construction through kron ordering is simplest: permute wires so
        # the active ones come first, kron with identity, permute back.
        order = axes + [k for k in range(n) if k not in axes]
        inverse = np.argsort(order)
        rest_dim = 1
        for k in range(n):
            if k not in axes:
                rest_dim *= dims[k]
        block = np.kron(
            np.asarray(op_matrix, dtype=complex), np.eye(rest_dim)
        )
        # block acts on (active wires in `axes` order, then the rest):
        # transpose its row/column tensor legs back to circuit order.
        permuted_dims = [dims[k] for k in order]
        tensor = block.reshape(permuted_dims * 2)
        move = list(inverse) + [n + k for k in inverse]
        tensor = tensor.transpose(move)
        dim = total_dimension(self._wires)
        return tensor.reshape(dim, dim)

    def apply_unitary(self, matrix: np.ndarray, wires: list[Qudit]) -> None:
        """rho -> U rho U^dag."""
        full = self._expand(matrix, wires)
        self._matrix = full @ self._matrix @ full.conj().T

    def apply_kraus(
        self, operators: list[np.ndarray], wires: list[Qudit]
    ) -> None:
        """rho -> sum_i K_i rho K_i^dag."""
        full_ops = [self._expand(op, wires) for op in operators]
        self._matrix = sum(
            op @ self._matrix @ op.conj().T for op in full_ops
        )


class DensityMatrixSimulator:
    """Exact noisy evolution under a :class:`NoiseModel` (small widths)."""

    def __init__(self, noise_model: NoiseModel) -> None:
        self._model = noise_model

    def run(
        self, circuit: Circuit, initial_state: StateVector
    ) -> DensityMatrix:
        """Evolve ``initial_state`` with the full channel at every step.

        Mirrors the trajectory simulator's schedule exactly: per-gate
        depolarizing channels, then per-wire idle channels scaled to each
        moment's duration.
        """
        wires = initial_state.wires
        if total_dimension(wires) > _MAX_DIM:
            raise SimulationError(
                "density-matrix simulation limited to "
                f"{_MAX_DIM}-dimensional spaces; use trajectories instead"
            )
        rho = DensityMatrix.from_state(initial_state)
        for moment in circuit:
            for op in moment:
                rho.apply_unitary(op.unitary(), list(op.qudits))
                dims = tuple(w.dimension for w in op.qudits)
                channel = self._model.gate_error(dims)
                rho.apply_kraus(
                    _mixture_kraus(channel), list(op.qudits)
                )
            duration = self._model.moment_duration(moment)
            for wire in wires:
                for idle in self._model.idle_channels(
                    wire.dimension, duration
                ):
                    if isinstance(idle, KrausChannel):
                        rho.apply_kraus(idle.operators, [wire])
                    else:
                        rho.apply_kraus(_mixture_kraus(idle), [wire])
        return rho

    def mean_fidelity(
        self, circuit: Circuit, initial_state: StateVector
    ) -> float:
        """<psi_ideal| rho |psi_ideal> — what trajectories converge to."""
        from .trajectory import TrajectorySimulator

        ideal = TrajectorySimulator.ideal_final_state(circuit, initial_state)
        rho = self.run(circuit, initial_state)
        return rho.fidelity_with_pure(ideal)


def _mixture_kraus(channel: UnitaryMixtureChannel) -> list[np.ndarray]:
    """Kraus form of a unitary-mixture channel: sqrt(p_i) E_i."""
    dim = 1
    for d in channel.dims:
        dim *= d
    identity_weight = 1.0 - channel.error_probability
    operators = [np.sqrt(identity_weight) * np.eye(dim, dtype=complex)]
    probs = channel._probs  # noqa: SLF001 - same-package reference use
    ops = channel._ops  # noqa: SLF001
    for p, op in zip(probs, ops):
        if p > 0:
            operators.append(np.sqrt(p) * op)
    return operators
