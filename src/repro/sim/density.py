"""Axis-local density-matrix simulation of noisy circuits.

The paper's trajectory methodology is justified by its convergence to full
density-matrix evolution (Sec. 6.2: "Over repeated trials, the quantum
trajectory methodology converges to the same results as from full density
matrix simulation").  This module *is* that reference: it evolves the
density operator exactly under the same noise model —

* gates:       rho -> U rho U^dag
* gate errors: the depolarizing channel, eqs. 3-6
* idle errors: per-wire amplitude damping / dephasing Kraus maps

— so tests can assert that averaged trajectories match it.

Tensor leg convention
---------------------

The density operator of ``n`` wires with dimensions ``(d_0, ..., d_{n-1})``
is stored as a tensor of shape ``(d_0, ..., d_{n-1}, d_0, ..., d_{n-1})``:

* axes ``0 .. n-1`` are the **row** legs (the ket side of ``|r><c|``),
  ordered like the wire list — the same convention as
  :class:`~repro.sim.state.StateVector`;
* axes ``n .. 2n-1`` are the matching **column** legs (the bra side).

An operator on ``k`` wires is applied by contracting only those wires'
legs: its :class:`~repro.sim.kernels.GateKernel` block hits the row legs,
its conjugate hits the column legs.  Each side costs
``O(prod(active_dims) * d^2n)`` — the full ``d^n x d^n`` matrix of the
embedded operator (the old ``kron``-with-identity path, preserved in
:mod:`repro.sim.dense_reference`) is never materialised.  Flattening row
legs then column legs in C order recovers the conventional ``d^n x d^n``
matrix, which is what the :attr:`DensityTensor.matrix` property does.

Memory is still ``d^2n``, which is exactly why the paper samples
trajectories for the 14-input experiment; keep widths moderate.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..exceptions import SimulationError
from ..noise.model import NoiseModel
from ..qudits import Qudit, total_dimension
from .kernels import ChannelKernel, GateKernel, channel_kernel, gate_kernel
from .state import StateVector

#: Default Hilbert-space cap: 5 qutrits (243) — rho has 3^10 entries.
#: Wide enough for the benchmark workloads, small enough that an
#: accidental 14-wire run fails fast; override via ``max_dim=``.
_MAX_DIM = 3**5


class DensityTensor:
    """A density operator over an ordered list of wires.

    Stored in tensor-leg form (row legs then column legs, see the module
    docstring); accepts either that tensor or the flat ``dim x dim``
    matrix at construction.
    """

    def __init__(self, wires: list[Qudit], matrix: np.ndarray) -> None:
        self._wires = list(wires)
        dim = total_dimension(self._wires)
        self._dims = tuple(w.dimension for w in self._wires)
        self._axis = {w: k for k, w in enumerate(self._wires)}
        shape = self._dims + self._dims
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape == shape:
            self._tensor = matrix
        elif matrix.shape == (dim, dim):
            self._tensor = matrix.reshape(shape)
        else:
            raise SimulationError(
                f"density matrix shape {matrix.shape} does not match "
                f"total dimension {dim}"
            )

    @classmethod
    def from_state(cls, state: StateVector) -> "DensityTensor":
        """|psi><psi| for a pure state."""
        tensor = state.tensor
        return cls(
            state.wires, np.multiply.outer(tensor, tensor.conj())
        )

    @property
    def wires(self) -> list[Qudit]:
        """Wire order of the operator's tensor legs."""
        return list(self._wires)

    @property
    def tensor(self) -> np.ndarray:
        """The density operator in tensor-leg form (live view)."""
        return self._tensor

    @property
    def matrix(self) -> np.ndarray:
        """The conventional ``dim x dim`` density matrix.

        A *read* surface: after evolution the underlying tensor is
        usually non-contiguous, so this is typically a fresh copy and
        writes to it do not reach the state.  Mutate through the
        ``apply_*`` methods instead.
        """
        dim = total_dimension(self._wires)
        return self._tensor.reshape(dim, dim)

    def trace(self) -> float:
        """Tr rho (1 for a normalised state)."""
        # Contract each row leg with its column leg directly — no
        # full-matrix copy.
        n = len(self._wires)
        subscripts = list(range(n)) * 2
        return float(np.real(np.einsum(self._tensor, subscripts)))

    def purity(self) -> float:
        """Tr rho^2 (1 iff pure; decreases as noise mixes the state)."""
        matrix = self.matrix
        # Tr rho^2 = sum_ij rho_ij rho_ji — O(dim^2), no matmul needed.
        return float(np.real(np.einsum("ij,ji->", matrix, matrix)))

    def fidelity_with_pure(self, state: StateVector) -> float:
        """<psi| rho |psi> — the mean-fidelity observable of Figure 11."""
        vector = state.vector
        return float(np.real(vector.conj() @ self.matrix @ vector))

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def _contract(
        self, block: np.ndarray, axes: list[int]
    ) -> None:
        """Contract ``block``'s input legs against ``axes`` of rho.

        ``tensordot`` leaves the block's output legs at the front; they
        are moved back to the contracted positions, restoring the leg
        order.
        """
        k = len(axes)
        moved = np.tensordot(
            block, self._tensor, axes=(range(k, 2 * k), axes)
        )
        self._tensor = np.moveaxis(moved, range(k), axes)

    def _row_col_axes(
        self, wires: list[Qudit]
    ) -> tuple[list[int], list[int]]:
        n = len(self._wires)
        rows = [self._axis[w] for w in wires]
        return rows, [n + a for a in rows]

    def apply_gate_kernel(
        self, kernel: GateKernel, wires: list[Qudit]
    ) -> None:
        """rho -> U rho U^dag with a precomputed kernel."""
        rows, cols = self._row_col_axes(wires)
        self._contract(kernel.block, rows)
        self._contract(kernel.conj_block, cols)

    def apply_channel_kernel(
        self, kernel: ChannelKernel, wires: list[Qudit]
    ) -> None:
        """rho -> sum_i K_i rho K_i^dag with a precomputed kernel."""
        rows, cols = self._row_col_axes(wires)
        original = self._tensor
        total = None
        for block, conj_block in zip(kernel.blocks, kernel.conj_blocks):
            self._tensor = original
            self._contract(block, rows)
            self._contract(conj_block, cols)
            total = (
                self._tensor if total is None else total + self._tensor
            )
        self._tensor = total

    def apply_symmetric_depolarizing(
        self, p_channel: float, wires: list[Qudit]
    ) -> None:
        """Apply a full symmetric Pauli channel in closed form.

        For a mixture giving every non-identity generalized Pauli on the
        active wires the same probability ``p``, the twirl identity
        ``sum_{all P} P rho P^dag = d * I_A (x) Tr_A rho`` collapses the
        whole channel to

            rho -> (1 - p d^2) rho + p d (I_A (x) Tr_A rho)

        with ``d`` the active wires' joint dimension — one partial trace
        and one broadcast instead of ``d^2 - 1`` operator conjugations
        (162 contractions for a two-qutrit gate error).
        """
        n = len(self._wires)
        rows, cols = self._row_col_axes(wires)
        k = len(rows)
        active_dims = tuple(w.dimension for w in wires)
        d_active = 1
        for d in active_dims:
            d_active *= d
        # Partial trace over the active wires: tie each active row leg
        # to its column leg in one einsum.
        subscripts = list(range(2 * n))
        for r, c in zip(rows, cols):
            subscripts[c] = subscripts[r]
        rest = [
            axis
            for axis in range(2 * n)
            if axis not in rows and axis not in cols
        ]
        traced = np.einsum(
            self._tensor, subscripts, [subscripts[axis] for axis in rest]
        )
        # I_A (x) Tr_A rho, built with active legs in front, then moved
        # back into circuit leg order.
        eye = np.eye(d_active, dtype=complex).reshape(
            active_dims + active_dims
        )
        block = np.multiply.outer(eye, traced)
        block = np.moveaxis(block, range(2 * n), rows + cols + rest)
        self._tensor = (
            (1.0 - p_channel * d_active**2) * self._tensor
            + (p_channel * d_active) * block
        )

    def apply_unitary(
        self, matrix: np.ndarray, wires: list[Qudit]
    ) -> None:
        """rho -> U rho U^dag for a raw operator matrix."""
        dims = tuple(w.dimension for w in wires)
        block = np.asarray(matrix, dtype=complex).reshape(dims + dims)
        self.apply_gate_kernel(
            GateKernel(dims, block, block.conj()), wires
        )

    def apply_kraus(
        self, operators: list[np.ndarray], wires: list[Qudit]
    ) -> None:
        """rho -> sum_i K_i rho K_i^dag for raw operator matrices."""
        dims = tuple(w.dimension for w in wires)
        blocks = tuple(
            np.asarray(op, dtype=complex).reshape(dims + dims)
            for op in operators
        )
        self.apply_channel_kernel(
            ChannelKernel(dims, blocks, tuple(b.conj() for b in blocks)),
            wires,
        )


#: Backwards-compatible name: the axis-local tensor *is* the library's
#: density matrix.
DensityMatrix = DensityTensor


class DensityMatrixSimulator:
    """Exact noisy evolution under a :class:`NoiseModel`.

    Every gate, depolarizing draw, and idle window of the trajectory
    engine is applied here as its *full* channel, through cached
    axis-local kernels (:mod:`repro.sim.kernels`), so the two engines
    share one noise schedule and the trajectory average converges to
    this result.
    """

    def __init__(
        self, noise_model: NoiseModel, max_dim: int | None = None
    ) -> None:
        self._model = noise_model
        self._max_dim = max_dim if max_dim is not None else _MAX_DIM

    def run(
        self, circuit: Circuit, initial_state: StateVector
    ) -> DensityTensor:
        """Evolve ``initial_state`` with the full channel at every step.

        Mirrors the trajectory simulator's schedule exactly: per-gate
        depolarizing channels, then per-wire idle channels scaled to each
        moment's duration.
        """
        wires = initial_state.wires
        if total_dimension(wires) > self._max_dim:
            raise SimulationError(
                "density-matrix simulation limited to "
                f"{self._max_dim}-dimensional spaces; use trajectories "
                "instead (or raise max_dim)"
            )
        rho = DensityTensor.from_state(initial_state)
        for moment in circuit:
            for op in moment:
                op_wires = list(op.qudits)
                rho.apply_gate_kernel(gate_kernel(op), op_wires)
                dims = tuple(w.dimension for w in op.qudits)
                error = self._model.gate_error(dims)
                symmetric = getattr(
                    error, "symmetric_pauli_probability", None
                )
                if symmetric is not None:
                    rho.apply_symmetric_depolarizing(symmetric, op_wires)
                else:
                    rho.apply_channel_kernel(
                        channel_kernel(error), op_wires
                    )
            duration = self._model.moment_duration(moment)
            for wire in wires:
                for idle in self._model.idle_channels(
                    wire.dimension, duration
                ):
                    rho.apply_channel_kernel(
                        channel_kernel(idle), [wire]
                    )
        return rho

    def mean_fidelity(
        self, circuit: Circuit, initial_state: StateVector
    ) -> float:
        """<psi_ideal| rho |psi_ideal> — what trajectories converge to."""
        from .trajectory import TrajectorySimulator

        ideal = TrajectorySimulator.ideal_final_state(circuit, initial_state)
        rho = self.run(circuit, initial_state)
        return rho.fidelity_with_pure(ideal)
