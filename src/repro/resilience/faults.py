"""Deterministic, seedable fault injection — chaos as a first-class layer.

Every failure path the serving stack claims to survive must be
*exercisable*, or the claim is folklore.  A :class:`FaultInjector` is a
seeded source of injected failures: each call site names itself
(``inject("store.read")``), the injector decides — deterministically
for a fixed seed and per-site call count — whether that call fails, and
if so raises the configured exception (default
:class:`~repro.resilience.retry.TransientServiceError`).

The wired sites (:data:`INJECTION_SITES`):

* ``worker.run``    — the service worker loop, before each attempt;
* ``facade.task``   — :func:`repro.execute`'s per-task runner;
* ``store.read`` / ``store.write`` — the persistent
  :class:`~repro.service.store.ResultStore` paths (injected failures
  are absorbed as IO errors: counted, fed to the circuit breaker,
  never propagated to callers);
* ``protocol.request`` — the serve protocol dispatcher (surfaces as a
  structured ``{"ok": false}`` response, never kills the loop).

Injection decisions draw from one seeded per-site stream guarded by a
lock, so for a fixed seed and a single-threaded call order the exact
fault sequence is reproducible — what the hypothesis failure-matrix
tests rely on.  Under concurrency the per-site *decision sequence* is
still fixed; only its assignment to callers varies with interleaving.

Activation is either explicit (pass the injector to the component) or
ambient (:func:`install_injector` / the :func:`injected` context
manager); :func:`maybe_inject` is the no-op-when-inactive check sites
call.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping

from .retry import TransientServiceError

#: Every call site wired into the stack, for iteration in tests/benches.
INJECTION_SITES: tuple[str, ...] = (
    "worker.run",
    "facade.task",
    "store.read",
    "store.write",
    "protocol.request",
)


class FaultInjector:
    """Seeded chaos: raise at named sites with per-site probability.

    ``rate`` is a global probability or a mapping ``site -> rate``
    (missing sites never fire; ``{"*": r}`` sets a default).  The
    exception factory receives ``(site, ordinal)`` so injected errors
    identify themselves.
    """

    def __init__(
        self,
        rate: "float | Mapping[str, float]" = 0.0,
        seed: int = 0,
        exc_factory: Callable[[str, int], BaseException] | None = None,
    ) -> None:
        if isinstance(rate, Mapping):
            self._rates = dict(rate)
            self._default_rate = float(self._rates.pop("*", 0.0))
        else:
            self._rates = {}
            self._default_rate = float(rate)
        for site, value in self._rates.items():
            self._rates[site] = float(value)
        for value in (self._default_rate, *self._rates.values()):
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"fault rates must be probabilities in [0, 1], "
                    f"got {value!r}"
                )
        self.seed = seed
        self._exc_factory = exc_factory or (
            lambda site, ordinal: TransientServiceError(
                f"injected fault at {site} (#{ordinal})"
            )
        )
        self._lock = threading.Lock()
        self._streams: dict[str, random.Random] = {}
        self.calls: dict[str, int] = {}
        self.injections: dict[str, int] = {}

    def rate_for(self, site: str) -> float:
        """The injection probability at ``site``."""
        return self._rates.get(site, self._default_rate)

    def should_inject(self, site: str) -> bool:
        """Advance ``site``'s decision stream by one call."""
        with self._lock:
            self.calls[site] = self.calls.get(site, 0) + 1
            rate = self.rate_for(site)
            if rate <= 0.0:
                return False
            stream = self._streams.get(site)
            if stream is None:
                # One independent stream per site, derived from the
                # injector seed — sites never perturb each other.
                stream = random.Random(f"{self.seed}|{site}")
                self._streams[site] = stream
            fire = stream.random() < rate
            if fire:
                self.injections[site] = self.injections.get(site, 0) + 1
            return fire

    def inject(self, site: str) -> None:
        """Raise the configured fault at ``site``, or return quietly."""
        if self.should_inject(site):
            raise self._exc_factory(site, self.injections[site])

    def to_dict(self) -> dict:
        """JSON-ready snapshot: per-site call and injection counts."""
        sites = sorted(set(self.calls) | set(self.injections))
        return {
            "seed": self.seed,
            "rates": {site: self.rate_for(site) for site in sites},
            "calls": dict(sorted(self.calls.items())),
            "injections": dict(sorted(self.injections.items())),
        }


#: The ambient injector (None = chaos off, the production default).
_ACTIVE: FaultInjector | None = None
_ACTIVE_LOCK = threading.Lock()


def install_injector(injector: FaultInjector | None) -> None:
    """Set (or with None, clear) the process-wide ambient injector."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = injector


def current_injector() -> FaultInjector | None:
    """The ambient injector, if one is installed."""
    return _ACTIVE


@contextmanager
def injected(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Scope an ambient injector to a with-block (restores the prior)."""
    with _ACTIVE_LOCK:
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = injector
    try:
        yield injector
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = previous


def maybe_inject(
    site: str, injector: FaultInjector | None = None
) -> None:
    """The check every wired site calls: explicit injector first, then
    the ambient one, else a no-op."""
    active = injector if injector is not None else _ACTIVE
    if active is not None:
        active.inject(site)
