"""Graceful degradation: admission control over estimated memory.

An OOM kill is the worst failure mode a serving process has — it takes
every in-flight job down with the one that was too big.  Admission
control converts that into an *upfront, typed* decision: the footprint
of a run is estimated in closed form from the circuit's wire dimensions
(state vectors are ``prod(dims)`` complex amplitudes, density matrices
the square of that, batched trajectories a ``batch x state`` stack, and
``parallel=True`` multiplies by the worker count), and a request that
would blow the budget is **downgraded** down a ladder of cheaper
execution modes before it is ever **rejected**:

1. ``parallel=True -> parallel=False`` — one process image instead of
   ``workers`` of them;
2. batched trajectories -> ``batch_size=1`` — the looped reference
   engine holds one state at a time;
3. still over budget -> :class:`AdmissionError` (a clean, immediate,
   retryable-by-a-smaller-request failure — not an OOM).

Estimates are deliberately closed-form and conservative-but-simple:
they cover the dominant allocation (the state/stack itself, at 16
bytes per complex128 amplitude) and ignore small constant factors, so
the policy is cheap enough to run on every submission.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import Circuit
from ..exceptions import ReproError

#: Bytes per complex128 amplitude.
_COMPLEX_BYTES = 16

#: Mirrors the trajectory engine's auto-chunking cap
#: (:func:`repro.sim.fidelity.resolve_batch_size`): the stacked state is
#: bounded by ``_AUTO_BATCH_ENTRIES`` amplitudes regardless of trials.
_AUTO_BATCH_ENTRIES = 1 << 20
_MAX_AUTO_BATCH = 256


class AdmissionError(ReproError):
    """A submission was refused because it would exceed the memory
    budget even after every downgrade."""


def state_entries(circuit: Circuit) -> int:
    """The joint state dimension ``prod(wire dims)`` of a circuit."""
    entries = 1
    for wire in circuit.all_qudits():
        entries *= wire.dimension
    return entries


def estimate_memory_bytes(
    circuit: Circuit,
    kind: str,
    *,
    trials: int | None = None,
    batch_size: int | None = None,
    parallel: bool = False,
    workers: int = 1,
) -> int:
    """Closed-form footprint estimate of one run, in bytes.

    ``kind`` is the backend capability kind (``"classical"``,
    ``"statevector"``, ``"density"``, ``"trajectory"``).  Classical runs
    hold integers per wire, not amplitudes, and effectively never
    dominate.
    """
    wires = circuit.all_qudits()
    if kind == "classical":
        per_run = 8 * max(1, len(wires))
    else:
        entries = state_entries(circuit)
        if kind == "density":
            per_run = entries * entries * _COMPLEX_BYTES
        elif kind == "trajectory":
            effective_trials = trials if trials is not None else 100
            if batch_size is not None:
                batch = max(1, min(batch_size, effective_trials))
            else:
                batch = max(1, min(
                    effective_trials,
                    _AUTO_BATCH_ENTRIES // max(1, entries),
                    _MAX_AUTO_BATCH,
                ))
            # Noisy + ideal stacks both live during a batched pass.
            per_run = 2 * batch * entries * _COMPLEX_BYTES
        else:
            per_run = entries * _COMPLEX_BYTES
    if parallel:
        per_run *= max(1, workers)
    return per_run


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of reviewing one submission."""

    #: ``"admit"``, ``"downgrade"``, or ``"reject"``.
    action: str
    estimated_bytes: int
    limit_bytes: int
    #: Ladder steps applied, e.g. ``("parallel-to-serial",)``.
    downgrades: tuple[str, ...] = ()
    reason: str = ""

    @property
    def admitted(self) -> bool:
        """True unless the request was rejected outright."""
        return self.action != "reject"


class AdmissionPolicy:
    """Estimate-and-downgrade admission control for the job queue."""

    def __init__(self, max_state_bytes: int = 1 << 30) -> None:
        if max_state_bytes < 1:
            raise ValueError("max_state_bytes must be positive")
        self.max_state_bytes = max_state_bytes

    def review(
        self,
        circuit: Circuit,
        kind: str,
        *,
        trials: int | None = None,
        batch_size: int | None = None,
        parallel: bool = False,
        workers: int = 1,
    ) -> AdmissionDecision:
        """Admit, downgrade, or reject one fully resolved request."""

        def estimate(parallel: bool, batch_size: int | None) -> int:
            return estimate_memory_bytes(
                circuit, kind,
                trials=trials, batch_size=batch_size,
                parallel=parallel, workers=workers,
            )

        limit = self.max_state_bytes
        first = estimate(parallel, batch_size)
        if first <= limit:
            return AdmissionDecision("admit", first, limit)

        downgrades: list[str] = []
        if parallel:
            parallel = False
            downgrades.append("parallel-to-serial")
        current = estimate(parallel, batch_size)
        if current > limit and kind == "trajectory" and batch_size != 1:
            batch_size = 1
            downgrades.append("batched-to-looped")
            current = estimate(parallel, batch_size)
        if current <= limit:
            return AdmissionDecision(
                "downgrade", current, limit, tuple(downgrades),
                reason=(
                    f"estimated {first} B over the {limit} B budget; "
                    f"downgraded via {', '.join(downgrades)}"
                ),
            )
        return AdmissionDecision(
            "reject", current, limit, tuple(downgrades),
            reason=(
                f"estimated {current} B exceeds the {limit} B budget "
                f"even after downgrades "
                f"({', '.join(downgrades) or 'none applicable'})"
            ),
        )


#: The queue's default budget: 1 GiB of state per run.  Large enough
#: that every workload in this repo admits untouched; small enough to
#: refuse a density-matrix request that would dirty tens of GiB.
DEFAULT_ADMISSION = AdmissionPolicy()
