"""Resilience primitives for the execution service.

The serving layer's failure story lives here, deliberately free of any
dependency on :mod:`repro.service` or :mod:`repro.execution` so every
layer of the stack can import it:

* :mod:`~repro.resilience.deadlines` — cooperative time budgets and the
  one typed :class:`JobTimeoutError` every layer agrees on;
* :mod:`~repro.resilience.retry` — bounded attempts, exponential
  backoff, deterministic seeded jitter, retryable-error classification;
* :mod:`~repro.resilience.faults` — seeded chaos injection at named
  sites (:data:`INJECTION_SITES`);
* :mod:`~repro.resilience.breaker` — the three-state circuit breaker
  guarding the persistent store;
* :mod:`~repro.resilience.degradation` — admission control that
  estimates a run's memory and downgrades before it rejects.

The chaos bench (:mod:`repro.resilience.chaos`) is *not* re-exported
here: it drives the serving stack, so importing it from the package
root would create a cycle — import it directly.

See ``docs/RESILIENCE.md`` for the full operating model.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .deadlines import Deadline, JobTimeoutError, resolve_deadline
from .degradation import (
    DEFAULT_ADMISSION,
    AdmissionDecision,
    AdmissionError,
    AdmissionPolicy,
    estimate_memory_bytes,
    state_entries,
)
from .faults import (
    INJECTION_SITES,
    FaultInjector,
    current_injector,
    injected,
    install_injector,
    maybe_inject,
)
from .retry import AttemptRecord, RetryPolicy, TransientServiceError

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "Deadline",
    "JobTimeoutError",
    "resolve_deadline",
    "DEFAULT_ADMISSION",
    "AdmissionDecision",
    "AdmissionError",
    "AdmissionPolicy",
    "estimate_memory_bytes",
    "state_entries",
    "INJECTION_SITES",
    "FaultInjector",
    "current_injector",
    "injected",
    "install_injector",
    "maybe_inject",
    "AttemptRecord",
    "RetryPolicy",
    "TransientServiceError",
]
