"""The chaos bench: zipfian load under injected faults, gated on
deterministic invariants (``BENCH_chaos.json``).

The resilience layer's claims — no handle is ever lost, retries are
capped, coalesced groups see exactly one fan-out, the store never
serves a corrupt payload — are only worth committing to if they hold
*under* failure.  This bench drives the full serving stack (queue,
workers, retry policy, circuit breaker, persistent store) through a
zipfian workload while a seeded :class:`~repro.resilience.FaultInjector`
fires at every wired site, then re-runs the workload against a store
with deliberately corrupted entries.

Like the serve bench, wall-clock numbers are recorded but **never
gated** — CI checks only invariants that are deterministic regardless
of thread interleaving:

* **no lost handles** — every submitted job reaches a terminal state;
* **conservation** — DONE + FAILED + TIMED_OUT + CANCELLED equals the
  number of submissions;
* **retries capped** — no group records more attempts than the policy
  allows;
* **only injected failures** — every FAILED job carries the injected
  :class:`~repro.resilience.TransientServiceError`, nothing real broke;
* **exactly-once fan-out** — every handle of a coalesced group received
  the *identical* result object of its one successful execution;
* **corruption containment** — each corrupted store entry is dropped on
  first read (counted once), its job transparently re-executes, and no
  corrupt payload is ever served.
"""

from __future__ import annotations

import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from .breaker import CircuitBreaker
from .faults import FaultInjector, injected
from .retry import RetryPolicy, TransientServiceError

#: Schema tag of the chaos report (``BENCH_chaos.json``).
CHAOS_SCHEMA = "repro-bench-chaos/v1"

#: Deadline attached to every third submission in the chaos phase —
#: generous enough never to expire, so the deadline *plumbing* (budget
#: threading through retries into the facade) is exercised on every run
#: without making the gated outcome racy.
_EXERCISE_DEADLINE = 300.0


def _run_workload(queue, catalog, workload, deadlines: bool) -> list:
    """Submit the whole workload and wait every handle terminal."""
    from ..service.loadgen import SUBMITTERS

    jobs = []
    for position, index in enumerate(workload):
        entry = dict(catalog[index])
        target = entry.pop("target")
        build = entry.pop("build", {})
        if deadlines and position % 3 == 0:
            entry["deadline"] = _EXERCISE_DEADLINE
        jobs.append(queue.submit(
            target,
            submitter=SUBMITTERS[position % len(SUBMITTERS)],
            **entry, **build,
        ))
    for job in jobs:
        job.wait(timeout=300)
    return jobs


def _state_counts(jobs) -> dict:
    counts: dict[str, int] = {}
    for job in jobs:
        counts[job.state.value] = counts.get(job.state.value, 0) + 1
    return counts


def _exactly_once_fanout(jobs) -> bool:
    """Every DONE handle of a group aliases its one execution's result.

    Handles of the same group share one attempts-list object (the
    queue aliases it on attach), which identifies the group without
    reaching into queue internals; cache-hit handles each carry their
    own empty list and form trivial singleton groups.
    """
    by_group: dict[int, list] = {}
    for job in jobs:
        by_group.setdefault(id(job.attempts), []).append(job)
    for group in by_group.values():
        done = [job for job in group if job.state.value == "DONE"]
        if len(done) > 1:
            first = done[0].result()
            if any(job.result() is not first for job in done[1:]):
                return False
    return True


def _chaos_phase(
    root: str,
    catalog,
    workload,
    *,
    workers: int,
    rate: float,
    seed: int,
) -> tuple[dict, dict]:
    """Phase 1: the full stack under injected faults at every site."""
    from ..execution.cache import ResultCache
    from ..service.queue import JobQueue
    from ..service.store import ResultStore

    injector = FaultInjector(rate=rate, seed=seed)
    policy = RetryPolicy(
        max_attempts=4, base_delay=0.001, max_delay=0.01, seed=seed,
    )
    store = ResultStore(
        root,
        breaker=CircuitBreaker(failure_threshold=5, reset_timeout=0.05),
        fault_injector=injector,
    )
    start = time.perf_counter()
    with injected(injector):  # facade.task reads the ambient injector
        with JobQueue(
            workers=workers,
            cache=ResultCache(backing=store),
            retry_policy=policy,
            fault_injector=injector,
        ) as queue:
            jobs = _run_workload(queue, catalog, workload, deadlines=True)
            stats = queue.stats_snapshot()
    elapsed = time.perf_counter() - start

    counts = _state_counts(jobs)
    terminal = sum(counts.values())
    max_attempts_seen = max(
        (len(job.attempts) for job in jobs), default=0
    )
    failed_jobs = [job for job in jobs if job.state.value == "FAILED"]
    invariants = {
        "no_lost_handles": all(job.done() for job in jobs),
        "conservation": terminal == len(jobs)
        and sum(
            counts.get(state, 0)
            for state in ("DONE", "FAILED", "TIMED_OUT", "CANCELLED")
        ) == len(jobs),
        "retries_capped": max_attempts_seen <= policy.max_attempts,
        "only_injected_failures": all(
            isinstance(job.error, TransientServiceError)
            for job in failed_jobs
        ),
        "exactly_once_fanout": _exactly_once_fanout(jobs),
    }
    phase = {
        "requests": len(jobs),
        "elapsed_seconds": elapsed,
        "states": counts,
        "executed": stats.executed,
        "retries": stats.retries,
        "timed_out": stats.timed_out,
        "coalesced": stats.coalesced,
        "memory_hits": stats.memory_hits,
        "persistent_hits": stats.persistent_hits,
        "max_attempts_observed": max_attempts_seen,
        "retry_policy": {
            "max_attempts": policy.max_attempts,
            "base_delay": policy.base_delay,
            "max_delay": policy.max_delay,
            "seed": policy.seed,
        },
        "store": store.stats.to_dict(),
        "breaker": store.breaker.to_dict(),
        "faults": injector.to_dict(),
    }
    return phase, invariants


def _corruption_phase(
    root: str, catalog, workload, *, workers: int, distinct: int
) -> tuple[dict, dict]:
    """Phase 2: deliberately corrupt store entries, replay fault-free.

    Each corrupted file must be dropped exactly once (its first
    lookup), its key transparently re-executed, and every handle must
    end DONE — corruption is contained, never served.  Keys whose
    phase-1 write was lost to an injected ``store.write`` fault are
    also expected to re-execute (write-through is best effort).
    """
    from ..execution.cache import ResultCache
    from ..service.queue import JobQueue
    from ..service.store import ResultStore

    entries = sorted(Path(root).glob("*.json"))
    missing = max(0, distinct - len(entries))
    corrupted = entries[: min(5, len(entries))]
    for path in corrupted:
        path.write_text('{"schema": "garbage", "payload": 7')  # truncated

    store = ResultStore(root)
    start = time.perf_counter()
    with JobQueue(
        workers=workers, cache=ResultCache(backing=store),
    ) as queue:
        jobs = _run_workload(queue, catalog, workload, deadlines=False)
        stats = queue.stats_snapshot()
    elapsed = time.perf_counter() - start

    counts = _state_counts(jobs)
    invariants = {
        "corrupt_dropped_exactly_once":
            store.stats.corrupt_dropped == len(corrupted),
        "corrupt_never_served": counts.get("DONE", 0) == len(jobs),
        "corrupt_reexecuted":
            stats.executed == len(corrupted) + missing,
    }
    phase = {
        "requests": len(jobs),
        "elapsed_seconds": elapsed,
        "states": counts,
        "corrupted_entries": len(corrupted),
        "missing_entries": missing,
        "executed": stats.executed,
        "coalesced": stats.coalesced,
        "memory_hits": stats.memory_hits,
        "persistent_hits": stats.persistent_hits,
        "store": store.stats.to_dict(),
    }
    return phase, invariants


def run_chaos_bench(
    smoke: bool = False,
    seed: int = 2019,
    workers: int = 4,
    rate: float = 0.2,
    store_dir: str | None = None,
) -> dict:
    """Run the two-phase chaos bench and return the JSON-ready report.

    Phase 1 pushes a zipfian workload through a queue whose every
    injection site fires with probability ``rate`` (seeded, so the
    per-site fault sequences are reproducible); phase 2 corrupts store
    entries and replays fault-free.  ``smoke`` shrinks the workload so
    CI finishes in seconds.
    """
    from ..service.loadgen import default_catalog, zipf_workload

    catalog = default_catalog(smoke=True)
    requests = 60 if smoke else 150
    workload = zipf_workload(len(catalog), requests, seed=seed)
    distinct = len(set(workload))

    with tempfile.TemporaryDirectory() as scratch:
        root = store_dir or scratch
        chaos, chaos_inv = _chaos_phase(
            root, catalog, workload,
            workers=workers, rate=rate, seed=seed,
        )
        corruption, corrupt_inv = _corruption_phase(
            root, catalog, workload, workers=workers, distinct=distinct,
        )

    invariants = {**chaos_inv, **corrupt_inv}
    invariants["all_pass"] = all(invariants.values())
    return {
        "schema": CHAOS_SCHEMA,
        "generated_by": "python -m repro bench"
        + (" --smoke" if smoke else ""),
        "smoke": smoke,
        "seed": seed,
        "rate": rate,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "workload": {
            "requests": requests,
            "catalog_size": len(catalog),
            "distinct_keys": distinct,
            "workers": workers,
        },
        "chaos_phase": chaos,
        "corruption_phase": corruption,
        "invariants": invariants,
    }


def render_chaos_report(report: dict) -> str:
    """Human-readable summary of :func:`run_chaos_bench` output."""
    workload = report["workload"]
    chaos = report["chaos_phase"]
    corruption = report["corruption_phase"]
    invariants = report["invariants"]
    faults = chaos["faults"]
    lines = [
        f"chaos bench ({'smoke' if report['smoke'] else 'full'}, "
        f"seed {report['seed']}, fault rate {report['rate']})",
        "",
        f"workload: {workload['requests']} zipfian requests over "
        f"{workload['catalog_size']} catalog entries "
        f"({workload['distinct_keys']} distinct), "
        f"{workload['workers']} workers",
        "",
        "chaos phase:",
        f"  states {chaos['states']}",
        f"  executed {chaos['executed']}   retries {chaos['retries']}   "
        f"max attempts {chaos['max_attempts_observed']}",
        f"  injections {faults['injections']}",
        f"  breaker {chaos['breaker']['state']} "
        f"(opens {chaos['breaker']['opens']}, "
        f"refusals {chaos['breaker']['refusals']})",
        "",
        "corruption phase:",
        f"  corrupted {corruption['corrupted_entries']}   "
        f"dropped {corruption['store']['corrupt_dropped']}   "
        f"re-executed {corruption['executed']}",
        "",
        "invariants:",
    ]
    lines += [
        f"  {name}: {'PASS' if value else 'FAIL'}"
        for name, value in invariants.items()
        if name != "all_pass"
    ]
    lines.append(
        f"all invariants: {'PASS' if invariants['all_pass'] else 'FAIL'}"
    )
    return "\n".join(lines)


def check_chaos_regression(committed: dict, fresh: dict) -> list[str]:
    """The CI gate over a fresh chaos report.

    Every invariant of the fresh run must hold, and when the committed
    baseline ran the same configuration (seed/rate/requests), the
    distinct-key count must not have drifted.  Timing and injection
    counts are never gated.  Returns failure messages (empty = pass).
    """
    failures = []
    if fresh.get("schema") != CHAOS_SCHEMA:
        failures.append(
            f"unexpected chaos report schema {fresh.get('schema')!r}"
        )
        return failures
    for name, value in fresh["invariants"].items():
        if name != "all_pass" and not value:
            failures.append(f"chaos invariant violated: {name}")
    same_config = (
        committed.get("seed") == fresh.get("seed")
        and committed.get("rate") == fresh.get("rate")
        and committed.get("workload", {}).get("requests")
        == fresh["workload"]["requests"]
    )
    if same_config:
        baseline = committed["workload"]["distinct_keys"]
        distinct = fresh["workload"]["distinct_keys"]
        if baseline != distinct:
            failures.append(
                f"distinct-key count drifted: committed {baseline}, "
                f"fresh {distinct} (workload no longer reproducible)"
            )
    return failures
