"""A circuit breaker for flaky dependencies (the persistent store).

The classic three-state machine:

* **closed** — traffic flows; consecutive failures are counted and
  ``failure_threshold`` of them trips the breaker **open**;
* **open** — calls are refused up front (:meth:`allow` returns False)
  so a corrupt or dying disk cannot drag every lookup through its
  failure path; after ``reset_timeout`` seconds the breaker lets
  probes through;
* **half-open** — up to ``half_open_probes`` trial calls pass; one
  success closes the breaker (healthy again), one failure re-opens it
  and restarts the cooldown.

The service wires one of these around the
:class:`~repro.service.store.ResultStore`: with the breaker open the
job queue keeps serving from the in-memory LRU and re-executing — a
degraded but correct mode — instead of hammering a broken disk.

Deterministic by construction: the clock is injectable, so every
transition is unit-testable without sleeping, and a fixed call sequence
at a fixed clock walks a fixed state sequence.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open recovery probes."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        # Lifetime counters (JSON-ready via to_dict).
        self.opens = 0
        self.closes = 0
        self.refusals = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (refreshing the
        open -> half-open transition on read)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            self._probes_in_flight = 0

    def allow(self) -> bool:
        """Whether the protected call may proceed right now."""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
            self.refusals += 1
            return False

    def record_success(self) -> None:
        """A protected call succeeded: heal."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._state = CLOSED
                self._opened_at = None
                self._probes_in_flight = 0
                self.closes += 1

    def record_failure(self) -> None:
        """A protected call failed: count, and maybe trip open."""
        with self._lock:
            self._maybe_half_open()
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._probes_in_flight = 0
                self.opens += 1

    def to_dict(self) -> dict:
        """JSON-ready snapshot for stats surfaces."""
        return {
            "state": self.state,
            "failure_threshold": self.failure_threshold,
            "reset_timeout": self.reset_timeout,
            "consecutive_failures": self._consecutive_failures,
            "opens": self.opens,
            "closes": self.closes,
            "refusals": self.refusals,
        }
