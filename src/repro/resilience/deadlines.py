"""Deadlines: cooperative time budgets for jobs and executions.

A :class:`Deadline` is an absolute point on a monotonic clock plus the
helpers every cooperative checkpoint needs: ``remaining()`` for handing
a shrinking budget down a call chain, ``expired()`` for cheap polling,
and ``check()`` for raising the one typed error —
:class:`JobTimeoutError` — that every layer of the stack agrees on.

"Cooperative" is a semantic contract, not a weakness: nothing is ever
killed mid-flight.  The worker loop checks a job's deadline before
running it, :func:`repro.execute` checks between sweep tasks and while
waiting on process shards, and :meth:`repro.service.Job.result` raises
the same typed error when its own wait runs out.  A computation that
finishes just as its deadline passes still delivers its result —
completion wins the race, because the result already exists and
discarding it helps nobody.

The clock is injectable so every transition is unit-testable without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

from ..exceptions import ReproError


class JobTimeoutError(ReproError, TimeoutError):
    """A deadline or wait budget expired before the work completed.

    Subclasses :class:`TimeoutError` so pre-existing ``except
    TimeoutError`` call sites (the serve protocol's ``result`` op, test
    harnesses) keep working, while new code can catch the typed form.
    """


class Deadline:
    """An absolute expiry instant on a monotonic clock.

    Build one with :meth:`after` (relative seconds) or the constructor
    (absolute instant).  ``None`` budgets are represented by *absence*
    — APIs take ``Deadline | None`` — so there is no sentinel
    "infinite" deadline to special-case arithmetic around.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        expires_at: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = float(expires_at)
        self._clock = clock

    @classmethod
    def after(
        cls,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """The deadline ``seconds`` from now (must be positive)."""
        if seconds <= 0:
            raise ValueError(
                f"deadline must be a positive number of seconds, "
                f"got {seconds!r}"
            )
        return cls(clock() + float(seconds), clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        """True once the instant has passed."""
        return self.remaining() <= 0.0

    def check(self, label: str = "operation") -> None:
        """Raise :class:`JobTimeoutError` if the deadline has passed."""
        overdue = -self.remaining()
        if overdue >= 0.0:
            raise JobTimeoutError(
                f"{label} exceeded its deadline by {overdue:.3f}s"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Deadline {self.remaining():+.3f}s>"


def resolve_deadline(
    timeout: "float | Deadline | None",
    clock: Callable[[], float] = time.monotonic,
) -> Deadline | None:
    """Accept a relative budget in seconds, a deadline, or None."""
    if timeout is None or isinstance(timeout, Deadline):
        return timeout
    return Deadline.after(float(timeout), clock)
