"""Retry policies: bounded attempts, exponential backoff, seeded jitter.

Transient failures — an OOM-killed process shard, a flaky disk read, an
injected chaos fault — deserve another attempt; logic errors do not.
:class:`RetryPolicy` packages the three decisions a retry loop needs:

* **classification** — :meth:`RetryPolicy.retryable` consults an
  explicit tuple of exception types (default:
  :class:`TransientServiceError`, :class:`ConnectionError`, and
  non-file-missing :class:`OSError`).  Deadline expiry
  (:class:`~repro.resilience.deadlines.JobTimeoutError`) is *never*
  retryable: the budget is gone, more attempts only overshoot further.
* **backoff** — attempt ``k`` (1-based) waits
  ``min(base * multiplier**(k-1), max_delay)`` plus jitter.
* **deterministic jitter** — the jitter fraction is derived by hashing
  ``(seed, token, attempt)``, not by sampling shared RNG state, so the
  full backoff sequence of any job is reproducible from its token alone
  and property tests can assert it exactly.

An :class:`AttemptRecord` is the serializable trace of one failed
attempt; the service keeps the list on every :class:`~repro.service.Job`
so a retried job's history survives into ``stats`` and the protocol.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..exceptions import ReproError
from .deadlines import JobTimeoutError


class TransientServiceError(ReproError):
    """A failure expected to clear on retry (and the default fault the
    chaos layer injects)."""


def _default_retryable(error: BaseException) -> bool:
    if isinstance(error, JobTimeoutError):
        return False
    if isinstance(error, TransientServiceError):
        return True
    if isinstance(error, FileNotFoundError):
        return False
    return isinstance(error, (OSError, ConnectionError))


@dataclass(frozen=True)
class AttemptRecord:
    """One failed attempt of a retried execution."""

    attempt: int
    error_type: str
    message: str
    #: Backoff waited *after* this attempt (0.0 for the final one).
    delay: float
    #: False when this failure exhausted the policy (job went terminal).
    retried: bool

    def to_dict(self) -> dict:
        """JSON-ready form (stats op / attempt history)."""
        return {
            "attempt": self.attempt,
            "error_type": self.error_type,
            "message": self.message,
            "delay": self.delay,
            "retried": self.retried,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``max_attempts`` counts *total* executions (1 = never retry).
    ``retryable`` replaces the default exception classification with an
    explicit tuple of types; :class:`JobTimeoutError` stays
    non-retryable even when listed, since a spent deadline cannot be
    waited out.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: Jitter as a fraction of the capped delay, in ``[0, jitter)``.
    jitter: float = 0.5
    seed: int = 0
    retryable_types: tuple[type, ...] | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is worth another attempt."""
        if isinstance(error, JobTimeoutError):
            return False
        if self.retryable_types is not None:
            return isinstance(error, self.retryable_types)
        return _default_retryable(error)

    def _jitter_fraction(self, token: str, attempt: int) -> float:
        payload = f"{self.seed}|{token}|{attempt}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff after failed attempt ``attempt`` (1-based).

        Deterministic: the same ``(seed, token, attempt)`` always
        yields the same delay.
        """
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        base = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        return base * (1.0 + self.jitter * self._jitter_fraction(
            token, attempt
        ))

    def backoff_sequence(self, token: str = "") -> list[float]:
        """Every backoff delay the policy would wait for ``token``
        (one entry per retryable failure; empty when never retrying)."""
        return [
            self.delay(attempt, token)
            for attempt in range(1, self.max_attempts)
        ]
