"""Applications of the qutrit Generalized Toffoli (Sec. 5 of the paper)."""

from .incrementer import (
    conditional_increment_ops,
    increment_value,
    qubit_ripple_incrementer_ops,
    qutrit_incrementer_circuit,
    qutrit_incrementer_ops,
)
from .grover import GroverSearch
from .neuron import QuantumNeuron
from .arithmetic import add_constant_ops, controlled_add_constant_ops

__all__ = [
    "qutrit_incrementer_ops",
    "qutrit_incrementer_circuit",
    "qubit_ripple_incrementer_ops",
    "conditional_increment_ops",
    "increment_value",
    "GroverSearch",
    "QuantumNeuron",
    "add_constant_ops",
    "controlled_add_constant_ops",
]
