"""The artificial quantum neuron (Sec. 5.1; Tacchino et al. 2019).

An n-wire register encodes m = 2^n binary coefficients: the input state
|psi_i> = (1/sqrt m) sum_j i_j |j> with i_j in {-1, +1}, and likewise a
weight state |psi_w>.  The circuit

1. prepares |psi_i> from |0...0> with Hadamards and sign flips
   (multi-controlled Z on every j with i_j = -1 — hypergraph-state
   machinery dominated by Generalized Toffolis, which is why the paper
   flags the neuron as a target application),
2. applies U_w^-1, mapping |psi_w> onto |1...1>,
3. flips an output wire with an n-controlled X.

The output wire then reads 1 with probability |<psi_w|psi_i>|^2 =
(w . i / m)^2 — a quadratic perceptron activation.  With the qutrit tree
the final n-controlled X needs no ancilla, which is exactly the paper's
"larger neurons without waiting for larger hardware" argument.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import DecompositionError
from ..gates.base import Gate
from ..gates.qubit import H as QUBIT_H
from ..gates.qubit import X as QUBIT_X
from ..gates.qubit import Z as QUBIT_Z
from ..gates.qutrit import embedded_qubit_gate, phase_gate
from ..qudits import QUTRIT_D, Qudit, qubits, qutrits
from ..toffoli.ancilla_free import multi_controlled_u_cascade
from ..toffoli.qutrit_tree import qutrit_multi_controlled_ops


def _validate_signs(signs: Sequence[int], m: int, label: str) -> list[int]:
    signs = list(signs)
    if len(signs) != m:
        raise ValueError(f"{label} must have {m} entries, got {len(signs)}")
    if any(s not in (-1, 1) for s in signs):
        raise ValueError(f"{label} entries must be +1 or -1")
    return signs


class QuantumNeuron:
    """A 2^n-input binary perceptron evaluated on n+1 wires."""

    def __init__(
        self,
        num_bits: int,
        weights: Sequence[int],
        construction: str = "qutrit_tree",
    ) -> None:
        if num_bits < 2:
            raise ValueError("the neuron needs at least 2 register wires")
        if construction not in ("qutrit_tree", "qubit_cascade"):
            raise DecompositionError(
                f"unsupported construction {construction!r}"
            )
        self.num_bits = num_bits
        self.num_inputs = 1 << num_bits
        self.weights = _validate_signs(weights, self.num_inputs, "weights")
        self.construction = construction
        if construction == "qutrit_tree":
            self.register: list[Qudit] = qutrits(num_bits)
            self.output = Qudit(num_bits, QUTRIT_D)
            self._h: Gate = embedded_qubit_gate(QUBIT_H, 3)
            self._x: Gate = embedded_qubit_gate(QUBIT_X, 3)
        else:
            self.register = qubits(num_bits)
            self.output = Qudit(num_bits, 2)
            self._h = QUBIT_H
            self._x = QUBIT_X

    # ------------------------------------------------------------------

    def _bits(self, index: int) -> list[int]:
        n = self.num_bits
        return [(index >> (n - 1 - k)) & 1 for k in range(n)]

    def _phase_flip_ops(self, index: int) -> list[GateOperation]:
        """Phase -1 on basis state |index> of the register."""
        pattern = self._bits(index)
        controls, target = self.register[:-1], self.register[-1]
        if self.construction == "qutrit_tree":
            gate = phase_gate(3, pattern[-1], np.pi)
            return qutrit_multi_controlled_ops(
                controls, pattern[:-1], target, gate
            )
        ops: list[GateOperation] = []
        flips = [
            QUBIT_X.on(w) for w, v in zip(self.register, pattern) if v == 0
        ]
        ops.extend(flips)
        ops.extend(
            multi_controlled_u_cascade(
                controls, target, QUBIT_Z.unitary(), "Z"
            )
        )
        ops.extend(flips)
        return ops

    def _sign_ops(self, signs: Sequence[int]) -> list[GateOperation]:
        """Diagonal +-1 pattern over the register basis."""
        ops: list[GateOperation] = []
        for index, sign in enumerate(signs):
            if sign == -1:
                ops.extend(self._phase_flip_ops(index))
        return ops

    def state_prep_ops(self, signs: Sequence[int]) -> list[GateOperation]:
        """|0..0> -> (1/sqrt m) sum_j signs_j |j>."""
        signs = _validate_signs(signs, self.num_inputs, "signs")
        ops = [self._h.on(w) for w in self.register]
        ops.extend(self._sign_ops(signs))
        return ops

    def activation_ops(self) -> list[GateOperation]:
        """U_w^-1 then the n-controlled X onto the output wire.

        U_w^-1 = (sign flips of w) . H^n . X^n sends |psi_w> to |1...1>,
        so the multi-controlled X fires with amplitude <psi_w|psi_i>.
        """
        ops = self._sign_ops(self.weights)
        ops.extend(self._h.on(w) for w in self.register)
        ops.extend(self._x.on(w) for w in self.register)
        if self.construction == "qutrit_tree":
            ops.extend(
                qutrit_multi_controlled_ops(
                    self.register,
                    [1] * self.num_bits,
                    self.output,
                    embedded_qubit_gate(QUBIT_X, 3),
                )
            )
        else:
            ops.extend(
                multi_controlled_u_cascade(
                    self.register, self.output, QUBIT_X.unitary(), "X"
                )
            )
        return ops

    def build_circuit(self, input_signs: Sequence[int]) -> Circuit:
        """Full neuron evaluation circuit for one input pattern."""
        circuit = Circuit()
        circuit.append(self.state_prep_ops(input_signs))
        circuit.append(self.activation_ops())
        return circuit

    # ------------------------------------------------------------------

    def activation_probability(self, input_signs: Sequence[int]) -> float:
        """P(output reads 1) for the given input pattern (simulated)."""
        result = self.run(input_signs)
        populations = result.state.level_populations(self.output)
        return float(populations[1])

    def run(self, input_signs: Sequence[int], **execute_kwargs):
        """Evaluate the neuron through the facade.

        Forwards ``backend``, ``pipeline``, ``noise_model``, ``shots``,
        ``seed``, ... to :func:`repro.execute`.
        """
        from ..execution.facade import execute

        execute_kwargs.setdefault("backend", "statevector")
        execute_kwargs.setdefault("wires", self.register + [self.output])
        return execute(self.build_circuit(input_signs), **execute_kwargs)

    def classical_activation(self, input_signs: Sequence[int]) -> float:
        """The ideal activation (w . i / m)^2 for cross-checking."""
        signs = _validate_signs(input_signs, self.num_inputs, "signs")
        dot = sum(w * s for w, s in zip(self.weights, signs))
        return (dot / self.num_inputs) ** 2
