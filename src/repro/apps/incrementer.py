"""The ancilla-free qutrit incrementer (Sec. 5.3, Figure 7).

``+1 mod 2^N`` on an N-wire register, LSB first.  The recursive design:

1. Elevate the LSB with X+1: afterwards the LSB is |2> iff it was |1>, i.e.
   iff a carry is *generated*.
2. Add the carry to the remaining wires (:func:`conditional_increment_ops`):
   split them into a low half L and high half H.  A single multi-controlled
   X+1 — carry control at |2>, propagate controls at |1> across L — elevates
   H's first wire, which then acts as the carry into the rest of H.  L
   recurses with the original carry.  A closing multi-controlled X02 —
   carry control plus |0> controls on the now-finalised L — restores H's
   first wire to binary.
3. Finalise the LSB with X02 (2 -> 0 when a carry fired, 1 stays 1).

Every multi-controlled gate is the paper's log-depth tree (with its |2>-
and |0>-activated control support), and the carry chain touches registers
of halving width, so total depth is O(log^2 N) with zero ancilla — the
paper's headline improvement over linear-depth [37] / quadratic-depth [30]
ancilla-free qubit incrementers.

:func:`qubit_ripple_incrementer_ops` provides the quadratic qubit baseline:
a ripple of multi-controlled X gates, each lowered through the
dirty-ancilla machinery, with the top bit paying the ancilla-free cascade.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import DecompositionError
from ..gates.qubit import X
from ..gates.qutrit import X01, X02, X_PLUS_1
from ..qudits import QUTRIT_D, Qudit, qutrits
from ..toffoli.ancilla_free import multi_controlled_u_cascade
from ..toffoli.dirty_ancilla import mcx_auto
from ..toffoli.qutrit_tree import qutrit_multi_controlled_ops


def conditional_increment_ops(
    register: Sequence[Qudit],
    carry_wire: Qudit,
    carry_value: int = 2,
    decompose: bool = True,
) -> list[GateOperation]:
    """+1 mod 2^len(register) iff ``carry_wire`` holds ``carry_value``.

    ``register[0]`` is the least significant bit.  All register wires must
    be qutrits holding binary values; the carry wire is only read.
    """
    register = list(register)
    ops: list[GateOperation] = []
    if not register:
        return ops
    if len(register) == 1:
        ops.extend(
            qutrit_multi_controlled_ops(
                [carry_wire], [carry_value], register[0], X01, decompose
            )
        )
        return ops
    split = len(register) // 2
    low, high = register[:split], register[split:]
    head = high[0]
    # Carry generation into the high half: head 1 -> 2 iff the carry is
    # live and every low wire propagates (|1>).
    ops.extend(
        qutrit_multi_controlled_ops(
            [carry_wire] + low,
            [carry_value] + [1] * len(low),
            head,
            X_PLUS_1,
            decompose,
        )
    )
    # The elevated head is the carry for the rest of the high half.
    ops.extend(
        conditional_increment_ops(high[1:], head, 2, decompose)
    )
    # The low half sees the original carry.
    ops.extend(
        conditional_increment_ops(low, carry_wire, carry_value, decompose)
    )
    # Finalise the head: by now a propagating low half has flipped to all
    # |0>, so the closing gate reads |0> controls (Figure 7's 0-controls).
    ops.extend(
        qutrit_multi_controlled_ops(
            [carry_wire] + low,
            [carry_value] + [0] * len(low),
            head,
            X02,
            decompose,
        )
    )
    return ops


def qutrit_incrementer_ops(
    register: Sequence[Qudit], decompose: bool = True
) -> list[GateOperation]:
    """+1 mod 2^N on ``register`` (LSB first), ancilla-free, O(log^2 N) deep."""
    register = list(register)
    for wire in register:
        if wire.dimension != QUTRIT_D:
            raise DecompositionError(
                f"the qutrit incrementer needs qutrit wires, got {wire}"
            )
    if not register:
        return []
    if len(register) == 1:
        return [X01.on(register[0])]
    lsb = register[0]
    ops: list[GateOperation] = [X_PLUS_1.on(lsb)]
    ops.extend(conditional_increment_ops(register[1:], lsb, 2, decompose))
    ops.append(X02.on(lsb))
    return ops


def qutrit_incrementer_circuit(
    width: int, decompose: bool = True
) -> tuple[Circuit, list[Qudit]]:
    """Convenience wrapper: fresh qutrit register + scheduled circuit."""
    register = qutrits(width)
    circuit = Circuit(qutrit_incrementer_ops(register, decompose))
    return circuit, register


def increment_value(
    width: int, value: int, decompose: bool = False, **execute_kwargs
) -> int:
    """Run ``(value + 1) mod 2**width`` through the execution facade.

    Builds the ancilla-free qutrit incrementer and executes it on the
    classical backend by default; ``execute_kwargs`` forwards backend,
    pipeline, noise model, etc. to :func:`repro.execute`.
    """
    from ..execution.facade import execute

    if not 0 <= value < (1 << width):
        raise ValueError(f"value {value} out of range for {width} bits")
    circuit, register = qutrit_incrementer_circuit(width, decompose)
    bits = [(value >> k) & 1 for k in range(width)]  # LSB first
    execute_kwargs.setdefault("backend", "classical")
    result = execute(
        circuit, wires=register, initial=bits, **execute_kwargs
    )
    return sum(bit << k for k, bit in enumerate(result.values))


def qubit_ripple_incrementer_ops(
    register: Sequence[Qudit], decompose: bool = True
) -> list[GateOperation]:
    """Baseline ancilla-free qubit incrementer (quadratic depth).

    Bit k flips iff all lower bits are 1, so ripple from the top:
    ``C^{n-1}X, C^{n-2}X, ..., CX, X``.  Each multi-controlled X below the
    top borrows the untouched higher bits as dirty ancilla; the top gate
    has no spare wires and uses the ancilla-free cascade.
    """
    register = list(register)
    n = len(register)
    ops: list[GateOperation] = []
    for k in range(n - 1, 0, -1):
        controls = register[:k]
        target = register[k]
        dirty = register[k + 1 :]
        if len(controls) >= 3 and not dirty:
            ops.extend(
                multi_controlled_u_cascade(
                    controls, target, X.unitary(), "X", decompose
                )
            )
        else:
            ops.extend(mcx_auto(controls, target, dirty, decompose))
    ops.append(X.on(register[0]))
    return ops
