"""Grover search with a pluggable multi-controlled-Z (Sec. 5.2, Figure 6).

Each Grover iteration needs an oracle phase flip on the marked item and a
diffusion phase flip about |0...0> — both are N-controlled Z gates.  The
paper's point: with the log-depth qutrit tree, the multiply-controlled gate
contributes log log M instead of log M to the iteration depth.

The search register is built from qutrit wires when the qutrit tree is
selected (binary data, |2> transient) and from qubit wires for the
ancilla-free qubit cascade, so both benchmark settings run the *same*
algorithm end to end.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import DecompositionError
from ..gates.base import Gate
from ..gates.qubit import H as QUBIT_H
from ..gates.qubit import X as QUBIT_X
from ..gates.qubit import Z as QUBIT_Z
from ..gates.qutrit import embedded_qubit_gate, phase_gate
from ..qudits import Qudit, qubits, qutrits
from ..toffoli.ancilla_free import multi_controlled_u_cascade
from ..toffoli.qutrit_tree import qutrit_multi_controlled_ops


def _bits(value: int, width: int) -> list[int]:
    """Big-endian bit list: wire 0 is the most significant search bit."""
    return [(value >> (width - 1 - k)) & 1 for k in range(width)]


class GroverSearch:
    """Search for one marked item among 2^n with the chosen decomposition.

    Parameters
    ----------
    num_bits:
        Width n of the search register (M = 2^n items).
    marked:
        Index of the marked item, 0 <= marked < 2^n.
    construction:
        ``"qutrit_tree"`` (default) or ``"qubit_cascade"``.
    """

    def __init__(
        self, num_bits: int, marked: int, construction: str = "qutrit_tree"
    ) -> None:
        if num_bits < 2:
            raise ValueError("Grover search needs at least 2 bits")
        if not 0 <= marked < (1 << num_bits):
            raise ValueError(
                f"marked item {marked} out of range for {num_bits} bits"
            )
        if construction not in ("qutrit_tree", "qubit_cascade"):
            raise DecompositionError(
                f"unsupported construction {construction!r}"
            )
        self.num_bits = num_bits
        self.marked = marked
        self.construction = construction
        if construction == "qutrit_tree":
            self.wires: list[Qudit] = qutrits(num_bits)
            self._h: Gate = embedded_qubit_gate(QUBIT_H, 3)
            self._x: Gate = embedded_qubit_gate(QUBIT_X, 3)
        else:
            self.wires = qubits(num_bits)
            self._h = QUBIT_H
            self._x = QUBIT_X

    # ------------------------------------------------------------------
    # Circuit pieces
    # ------------------------------------------------------------------

    def _phase_flip_on(self, pattern: list[int]) -> list[GateOperation]:
        """Phase -1 exactly on the basis state ``pattern``."""
        controls, target = self.wires[:-1], self.wires[-1]
        control_values = pattern[:-1]
        if self.construction == "qutrit_tree":
            target_gate = phase_gate(3, pattern[-1], np.pi)
            return qutrit_multi_controlled_ops(
                controls, control_values, target, target_gate
            )
        # Qubit path: X-conjugate 0-valued wires around a plain C^{n-1}Z.
        ops: list[GateOperation] = []
        flips = [
            QUBIT_X.on(w)
            for w, v in zip(self.wires, pattern)
            if v == 0
        ]
        ops.extend(flips)
        ops.extend(
            multi_controlled_u_cascade(
                controls, target, QUBIT_Z.unitary(), "Z"
            )
        )
        ops.extend(flips)
        return ops

    def oracle_ops(self) -> list[GateOperation]:
        """Phase flip on the marked item."""
        return self._phase_flip_on(_bits(self.marked, self.num_bits))

    def diffusion_ops(self) -> list[GateOperation]:
        """Inversion about the mean: H^n . (phase flip on |0..0>) . H^n."""
        ops: list[GateOperation] = [self._h.on(w) for w in self.wires]
        ops.extend(self._phase_flip_on([0] * self.num_bits))
        ops.extend(self._h.on(w) for w in self.wires)
        return ops

    def optimal_iterations(self) -> int:
        """floor(pi/4 sqrt(M)) — the standard Grover iteration count."""
        m = 1 << self.num_bits
        return max(1, int(np.floor(np.pi / 4 * np.sqrt(m))))

    def build_circuit(self, iterations: int | None = None) -> Circuit:
        """The full search circuit: prepare, then iterate oracle+diffusion."""
        iterations = (
            self.optimal_iterations() if iterations is None else iterations
        )
        circuit = Circuit()
        circuit.append([self._h.on(w) for w in self.wires])
        for _ in range(iterations):
            circuit.append(self.oracle_ops())
            circuit.append(self.diffusion_ops())
        return circuit

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def success_probability(self, iterations: int | None = None) -> float:
        """Probability of measuring the marked item after the search."""
        from ..execution.facade import execute

        result = execute(
            self.build_circuit(iterations),
            backend="statevector",
            wires=self.wires,
        )
        return result.probability_of(_bits(self.marked, self.num_bits))

    def run(self, iterations: int | None = None, **execute_kwargs):
        """Execute the full search through the facade.

        Forwards ``backend``, ``pipeline``, ``noise_model``, ``shots``,
        ``seed``, ... to :func:`repro.execute`, so the same search can be
        sampled, compiled to a topology, or run under noise.
        """
        from ..execution.facade import execute

        execute_kwargs.setdefault("wires", self.wires)
        return execute(
            self.build_circuit(iterations), **execute_kwargs
        )
