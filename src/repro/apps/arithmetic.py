"""Constant addition from incrementers (Sec. 5.4).

The incrementer is the kernel of larger arithmetic: ``register += c`` for a
classical constant c decomposes into one sub-register increment per set bit
(adding 2^k is incrementing the slice that starts at bit k), and the
controlled variant conditions every increment on a control wire — the shape
modular-exponentiation circuits for Shor's algorithm are built from.  The
paper's qutrit incrementer reduces each piece to O(log^2) depth with no
ancilla, improving the constants of those circuits.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.operation import GateOperation
from ..qudits import Qudit
from .incrementer import conditional_increment_ops, qutrit_incrementer_ops


def add_constant_ops(
    register: Sequence[Qudit], constant: int, decompose: bool = True
) -> list[GateOperation]:
    """``register += constant (mod 2^len(register))``, LSB first.

    One qutrit incrementer per set bit of ``constant``, each acting on the
    sub-register from that bit upward.
    """
    register = list(register)
    width = len(register)
    constant %= 1 << width
    ops: list[GateOperation] = []
    for bit in range(width):
        if (constant >> bit) & 1:
            ops.extend(qutrit_incrementer_ops(register[bit:], decompose))
    return ops


def controlled_add_constant_ops(
    register: Sequence[Qudit],
    constant: int,
    control: Qudit,
    control_value: int = 1,
    decompose: bool = True,
) -> list[GateOperation]:
    """``register += constant`` iff ``control`` holds ``control_value``.

    Uses the carry-conditioned incrementer directly: the control wire plays
    the role of the carry for every sub-register increment.
    """
    register = list(register)
    width = len(register)
    constant %= 1 << width
    ops: list[GateOperation] = []
    for bit in range(width):
        if (constant >> bit) & 1:
            ops.extend(
                conditional_increment_ops(
                    register[bit:], control, control_value, decompose
                )
            )
    return ops
