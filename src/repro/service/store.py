"""Persistent, content-addressed on-disk result store.

Each entry is one JSON file named by the SHA-256 digest of the
canonical cache-key encoding (see
:func:`~repro.execution.cache.cache_key_encoding`), holding the
serialized :class:`~repro.execution.results.RunResult` plus enough
envelope to validate it on the way back in.  The store implements the
:class:`~repro.execution.cache.CacheBacking` protocol, so it can sit
directly underneath the facade's in-memory LRU::

    from repro.execution import ResultCache
    from repro.service import ResultStore

    cache = ResultCache(backing=ResultStore("~/.cache/repro"))
    execute(..., cache=cache)      # results now survive the process

Design points:

* **Corruption tolerance** — a truncated, hand-edited, or
  schema-mismatched file is treated as a miss, deleted, and counted in
  ``stats.corrupt_dropped``; the store never raises on load.
* **Bounded size** — ``max_bytes`` / ``max_entries`` caps are enforced
  after every write by evicting the least recently *used* files
  (access bumps the file mtime), so a long-lived serve process cannot
  grow the cache dir without bound.
* **Write-through safety** — entries are written to a temp file and
  atomically renamed, so a crash mid-write never leaves a half entry
  under a valid name.
* **Failure containment** — an optional
  :class:`~repro.resilience.CircuitBreaker` wraps the disk: corruption
  and IO errors count as failures, a tripped breaker short-circuits
  lookups/writes to fast misses (the queue keeps serving from its
  in-memory LRU and re-executing), and half-open probes heal it.  The
  ``store.read`` / ``store.write`` chaos sites inject here; injected
  faults are absorbed exactly like real IO errors — counted, fed to
  the breaker, never propagated to callers.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import Hashable

from ..exceptions import SerializationError
from ..execution.cache import cache_key_digest, cache_key_encoding
from ..execution.results import RunResult
from ..resilience.breaker import CircuitBreaker
from ..resilience.faults import FaultInjector, maybe_inject
from ..resilience.retry import TransientServiceError
from .serialization import result_from_dict, result_to_dict

#: Version tag of the store's on-disk entry envelope.
STORE_SCHEMA = "repro-result-store/v1"


@dataclass
class StoreStats:
    """Counters for one store instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_failures: int = 0
    evictions: int = 0
    corrupt_dropped: int = 0
    #: Disk-level failures (reads and writes), real or injected —
    #: excludes plain misses and serialization failures.
    io_errors: int = 0
    #: Lookups/writes refused up front by an open circuit breaker.
    short_circuited: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-ready snapshot including the derived rate (surfaced by
        ``JobQueue.describe()`` and the protocol ``stats`` op)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_failures": self.write_failures,
            "evictions": self.evictions,
            "corrupt_dropped": self.corrupt_dropped,
            "io_errors": self.io_errors,
            "short_circuited": self.short_circuited,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


class ResultStore:
    """Content-addressed JSON result entries under one cache directory."""

    def __init__(
        self,
        root: str | Path,
        max_bytes: int = 64 * 1024 * 1024,
        max_entries: int = 4096,
        breaker: CircuitBreaker | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("store needs room for at least one entry")
        if max_bytes < 1:
            raise ValueError("store needs a positive byte budget")
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.stats = StoreStats()
        #: Optional circuit breaker guarding the disk (None = always on).
        self.breaker = breaker
        self._fault_injector = fault_injector
        self._lock = Lock()

    def _disk_ok(self) -> None:
        if self.breaker is not None:
            self.breaker.record_success()

    def _disk_failed(self) -> None:
        if self.breaker is not None:
            self.breaker.record_failure()

    # -- paths ---------------------------------------------------------

    def path_for(self, key: Hashable) -> Path:
        """The entry file a key maps to (existing or not)."""
        return self.root / f"{cache_key_digest(key)}.json"

    def _entries(self) -> list[Path]:
        return list(self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        """Current on-disk footprint of all entries."""
        return sum(p.stat().st_size for p in self._entries())

    # -- CacheBacking protocol -----------------------------------------

    def get(self, key: Hashable) -> RunResult | None:
        """Load the stored result for ``key``; None on miss, corruption,
        IO error (real or injected), or while the breaker is open."""
        path = self.path_for(key)
        with self._lock:
            if self.breaker is not None and not self.breaker.allow():
                self.stats.short_circuited += 1
                self.stats.misses += 1
                return None
            try:
                maybe_inject("store.read", self._fault_injector)
                raw = path.read_text()
            except FileNotFoundError:
                # A genuine miss is a *healthy* disk answer.
                self._disk_ok()
                self.stats.misses += 1
                return None
            except (OSError, TransientServiceError):
                self._disk_failed()
                self.stats.io_errors += 1
                self.stats.misses += 1
                return None
            try:
                envelope = json.loads(raw)
                if envelope.get("schema") != STORE_SCHEMA:
                    raise SerializationError(
                        f"unknown store schema {envelope.get('schema')!r}"
                    )
                if envelope.get("key") != cache_key_encoding(key):
                    # Digest collision or a file moved between stores:
                    # never serve somebody else's result.
                    raise SerializationError("entry key mismatch")
                result = result_from_dict(envelope["payload"])
            except (
                SerializationError,
                json.JSONDecodeError,
                KeyError,
                TypeError,
                ValueError,
            ):
                # Treat any malformed entry as a miss and drop the file
                # so it cannot poison later lookups; corruption counts
                # against the disk's health.
                path.unlink(missing_ok=True)
                self._disk_failed()
                self.stats.corrupt_dropped += 1
                self.stats.misses += 1
                return None
            # Recency bump for eviction ordering.
            try:
                os.utime(path)
            except OSError:  # pragma: no cover - best effort
                pass
            self._disk_ok()
            self.stats.hits += 1
            return result

    def put(self, key: Hashable, result: RunResult) -> bool:
        """Persist ``result`` under ``key``; False if unserializable,
        on IO failure (real or injected), or while the breaker is open."""
        path = self.path_for(key)
        with self._lock:
            if self.breaker is not None and not self.breaker.allow():
                self.stats.short_circuited += 1
                return False
            try:
                envelope = {
                    "schema": STORE_SCHEMA,
                    "key": cache_key_encoding(key),
                    "stored_at": time.time(),
                    "payload": result_to_dict(result),
                }
                text = json.dumps(envelope)
            except (SerializationError, TypeError, ValueError):
                # Unserializable payloads say nothing about the disk:
                # counted, but never fed to the breaker.
                self.stats.write_failures += 1
                return False
            temp = path.with_suffix(".tmp")
            try:
                maybe_inject("store.write", self._fault_injector)
                temp.write_text(text)
                temp.replace(path)
            except (OSError, TransientServiceError):
                temp.unlink(missing_ok=True)
                self._disk_failed()
                self.stats.write_failures += 1
                self.stats.io_errors += 1
                return False
            self._disk_ok()
            self.stats.writes += 1
            self._evict_overflow()
            return True

    # -- maintenance ---------------------------------------------------

    def _evict_overflow(self) -> None:
        """Delete least-recently-used entries until under both caps."""
        entries = []
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced unlink
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        total = sum(size for _, size, _ in entries)
        while entries and (
            len(entries) > self.max_entries or total > self.max_bytes
        ):
            _, size, path = entries.pop(0)
            path.unlink(missing_ok=True)
            total -= size
            self.stats.evictions += 1

    def clear(self) -> None:
        """Delete every entry (counters are kept)."""
        with self._lock:
            for path in self._entries():
                path.unlink(missing_ok=True)
