"""Persistent, content-addressed on-disk result store.

Each entry is one JSON file named by the SHA-256 digest of the
canonical cache-key encoding (see
:func:`~repro.execution.cache.cache_key_encoding`), holding the
serialized :class:`~repro.execution.results.RunResult` plus enough
envelope to validate it on the way back in.  The store implements the
:class:`~repro.execution.cache.CacheBacking` protocol, so it can sit
directly underneath the facade's in-memory LRU::

    from repro.execution import ResultCache
    from repro.service import ResultStore

    cache = ResultCache(backing=ResultStore("~/.cache/repro"))
    execute(..., cache=cache)      # results now survive the process

Design points:

* **Corruption tolerance** — a truncated, hand-edited, or
  schema-mismatched file is treated as a miss, deleted, and counted in
  ``stats.corrupt_dropped``; the store never raises on load.
* **Bounded size** — ``max_bytes`` / ``max_entries`` caps are enforced
  after every write by evicting the least recently *used* files
  (access bumps the file mtime), so a long-lived serve process cannot
  grow the cache dir without bound.
* **Write-through safety** — entries are written to a temp file and
  atomically renamed, so a crash mid-write never leaves a half entry
  under a valid name.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import Hashable

from ..exceptions import SerializationError
from ..execution.cache import cache_key_digest, cache_key_encoding
from ..execution.results import RunResult
from .serialization import result_from_dict, result_to_dict

#: Version tag of the store's on-disk entry envelope.
STORE_SCHEMA = "repro-result-store/v1"


@dataclass
class StoreStats:
    """Counters for one store instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_failures: int = 0
    evictions: int = 0
    corrupt_dropped: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultStore:
    """Content-addressed JSON result entries under one cache directory."""

    def __init__(
        self,
        root: str | Path,
        max_bytes: int = 64 * 1024 * 1024,
        max_entries: int = 4096,
    ) -> None:
        if max_entries < 1:
            raise ValueError("store needs room for at least one entry")
        if max_bytes < 1:
            raise ValueError("store needs a positive byte budget")
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.stats = StoreStats()
        self._lock = Lock()

    # -- paths ---------------------------------------------------------

    def path_for(self, key: Hashable) -> Path:
        """The entry file a key maps to (existing or not)."""
        return self.root / f"{cache_key_digest(key)}.json"

    def _entries(self) -> list[Path]:
        return list(self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        """Current on-disk footprint of all entries."""
        return sum(p.stat().st_size for p in self._entries())

    # -- CacheBacking protocol -----------------------------------------

    def get(self, key: Hashable) -> RunResult | None:
        """Load the stored result for ``key``; None on miss/corruption."""
        path = self.path_for(key)
        with self._lock:
            try:
                raw = path.read_text()
            except OSError:
                self.stats.misses += 1
                return None
            try:
                envelope = json.loads(raw)
                if envelope.get("schema") != STORE_SCHEMA:
                    raise SerializationError(
                        f"unknown store schema {envelope.get('schema')!r}"
                    )
                if envelope.get("key") != cache_key_encoding(key):
                    # Digest collision or a file moved between stores:
                    # never serve somebody else's result.
                    raise SerializationError("entry key mismatch")
                result = result_from_dict(envelope["payload"])
            except (
                SerializationError,
                json.JSONDecodeError,
                KeyError,
                TypeError,
                ValueError,
            ):
                # Treat any malformed entry as a miss and drop the file
                # so it cannot poison later lookups.
                path.unlink(missing_ok=True)
                self.stats.corrupt_dropped += 1
                self.stats.misses += 1
                return None
            # Recency bump for eviction ordering.
            try:
                os.utime(path)
            except OSError:  # pragma: no cover - best effort
                pass
            self.stats.hits += 1
            return result

    def put(self, key: Hashable, result: RunResult) -> bool:
        """Persist ``result`` under ``key``; False if unserializable."""
        path = self.path_for(key)
        with self._lock:
            try:
                envelope = {
                    "schema": STORE_SCHEMA,
                    "key": cache_key_encoding(key),
                    "stored_at": time.time(),
                    "payload": result_to_dict(result),
                }
                text = json.dumps(envelope)
            except (SerializationError, TypeError, ValueError):
                self.stats.write_failures += 1
                return False
            temp = path.with_suffix(".tmp")
            try:
                temp.write_text(text)
                temp.replace(path)
            except OSError:  # pragma: no cover - disk trouble
                temp.unlink(missing_ok=True)
                self.stats.write_failures += 1
                return False
            self.stats.writes += 1
            self._evict_overflow()
            return True

    # -- maintenance ---------------------------------------------------

    def _evict_overflow(self) -> None:
        """Delete least-recently-used entries until under both caps."""
        entries = []
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced unlink
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        total = sum(size for _, size, _ in entries)
        while entries and (
            len(entries) > self.max_entries or total > self.max_bytes
        ):
            _, size, path = entries.pop(0)
            path.unlink(missing_ok=True)
            total -= size
            self.stats.evictions += 1

    def clear(self) -> None:
        """Delete every entry (counters are kept)."""
        with self._lock:
            for path in self._entries():
                path.unlink(missing_ok=True)
