"""The execution service: an async job queue over :func:`repro.execute`.

The serving layer the ROADMAP's north star asks for — exhaustive
verification sweeps, fidelity campaigns and routing studies served to
many concurrent clients::

    from repro.service import JobQueue, ResultStore

    with JobQueue(workers=4, store=ResultStore(".repro-store")) as queue:
        job = queue.submit("qutrit_tree", num_controls=5,
                           backend="classical",
                           initial=(1, 1, 1, 1, 1, 0))
        print(queue.status(job))        # QUEUED / RUNNING / DONE ...
        print(job.result().values)

Identical in-flight submissions coalesce into one execution (keyed on
the circuit's canonical fingerprint plus its run parameters), finished
results persist across processes through the content-addressed
:class:`ResultStore`, submitters are scheduled fairly (round-robin with
aging priorities), and the bounded queue applies reject-or-block
backpressure.  ``python -m repro serve`` exposes the same queue over a
line-delimited JSON protocol; see :mod:`repro.service.protocol` and
``docs/SERVICE.md``.

The service degrades gracefully under failure — per-job deadlines,
retries with deterministic backoff, a circuit breaker on the
persistent store, admission control, and seeded fault injection all
come from :mod:`repro.resilience`; see ``docs/RESILIENCE.md``.
"""

from ..resilience import (
    AdmissionError,
    AdmissionPolicy,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    JobTimeoutError,
    RetryPolicy,
    TransientServiceError,
)
from .jobs import (
    Job,
    JobCancelledError,
    JobFailedError,
    JobState,
    QueueClosedError,
    QueueFullError,
    ServiceError,
)
from .loadgen import (
    SERVE_SCHEMA,
    check_serve_regression,
    default_catalog,
    render_serve_report,
    run_serve_bench,
    zipf_workload,
)
from .protocol import (
    PROTOCOL,
    handle_request,
    serve_lines,
    serve_socket,
    serve_stdio,
)
from .queue import JobQueue, JobRequest, ServiceStats, default_runner
from .scheduler import FairScheduler
from .serialization import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from .store import ResultStore, StoreStats

__all__ = [
    "Job",
    "JobState",
    "JobQueue",
    "JobRequest",
    "ServiceStats",
    "ServiceError",
    "QueueFullError",
    "QueueClosedError",
    "JobFailedError",
    "JobCancelledError",
    "JobTimeoutError",
    "Deadline",
    "RetryPolicy",
    "TransientServiceError",
    "FaultInjector",
    "CircuitBreaker",
    "AdmissionPolicy",
    "AdmissionError",
    "FairScheduler",
    "ResultStore",
    "StoreStats",
    "default_runner",
    "result_to_dict",
    "result_from_dict",
    "result_to_json",
    "result_from_json",
    "PROTOCOL",
    "handle_request",
    "serve_lines",
    "serve_stdio",
    "serve_socket",
    "SERVE_SCHEMA",
    "run_serve_bench",
    "render_serve_report",
    "check_serve_regression",
    "default_catalog",
    "zipf_workload",
]
