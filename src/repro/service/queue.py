"""The async job queue over the :func:`repro.execute` facade.

:class:`JobQueue` is the serving layer's engine room.  One instance owns

* a **worker pool** of threads draining a :class:`FairScheduler`
  (per-submitter round-robin with aging priorities) — heavy jobs may
  additionally request ``parallel=True``, which reuses the facade's
  process-shard machinery (:mod:`repro.sim.parallel`) inside the worker;
* **request coalescing** — submissions are keyed on the circuit's
  canonical fingerprint plus a digest of every run parameter; while a
  job with the same key is in flight, identical submissions attach to it
  as followers and the single execution fans its result (or failure)
  out to every handle;
* a **two-level result cache** — the in-memory
  :class:`~repro.execution.cache.ResultCache` LRU, optionally layered
  over a persistent :class:`~repro.service.store.ResultStore`, checked
  at submit time so repeated deterministic work completes without ever
  touching a worker;
* **backpressure** — the queue of distinct pending executions is
  bounded; overflow either rejects (:class:`QueueFullError`) or blocks
  the submitter until space frees, per the configured policy.

Lifecycle summary (see :class:`~repro.service.jobs.JobState`):
submissions start QUEUED, move to RUNNING when a worker picks their
group up, and finish DONE / FAILED (with the captured traceback) /
CANCELLED / TIMED_OUT.  Cancelling a QUEUED job succeeds immediately;
cancelling a RUNNING job returns False (executions are not interrupted
mid-flight).

The resilience layer (``docs/RESILIENCE.md``) threads through here:

* **deadlines** — ``submit(deadline=...)`` attaches a cooperative
  expiry; workers check it before running a group (an expired queued
  group goes straight to TIMED_OUT) and hand the remaining budget to
  the runner, which :func:`repro.execute` enforces between tasks and
  across process shards.  A run that *completes* just as its deadline
  passes still delivers — completion wins the race.
* **retries** — a :class:`~repro.resilience.RetryPolicy` re-runs
  transient failures with deterministic seeded backoff; each failed
  attempt is recorded on every handle of the group
  (:attr:`Job.attempts`) and counted in :class:`ServiceStats`.
* **admission control** — an
  :class:`~repro.resilience.AdmissionPolicy` estimates the run's
  memory from the circuit dims at submit time and downgrades
  (``parallel`` -> serial, batched -> looped trajectories) or rejects
  (:class:`~repro.resilience.AdmissionError`) instead of OOM-ing.
* **fault injection** — the ``worker.run`` site raises seeded chaos
  faults inside the attempt loop, so the whole retry/failure fan-out
  machinery is exercisable from tests and the chaos bench.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from ..circuits.circuit import Circuit
from ..execution.backends import Backend, resolve_backend
from ..execution.cache import (
    ResultCache,
    cache_key_digest,
    circuit_fingerprint,
)
from ..execution.facade import (
    execute,
    materialize_target,
    resolve_pipeline,
    result_cache_key,
)
from ..execution.results import RunResult
from ..noise.model import NoiseModel
from ..qudits import Qudit
from ..resilience.deadlines import (
    Deadline,
    JobTimeoutError,
    resolve_deadline,
)
from ..resilience.degradation import (
    DEFAULT_ADMISSION,
    AdmissionError,
    AdmissionPolicy,
)
from ..resilience.faults import FaultInjector, maybe_inject
from ..resilience.retry import AttemptRecord, RetryPolicy
from ..sim.state import StateVector
from .jobs import Job, JobState, QueueClosedError, QueueFullError
from .scheduler import FairScheduler
from .store import ResultStore


@dataclass(frozen=True)
class JobRequest:
    """One fully resolved execution: the circuit plus every run knob.

    Built at submit time (targets are materialised and compiled up
    front so the coalescing key exists before any worker runs), then
    handed unchanged to the runner.
    """

    circuit: Circuit
    backend: "str | Backend"
    noise_model: NoiseModel | None
    wires: tuple[Qudit, ...] | None
    initial: "StateVector | tuple[int, ...] | None"
    shots: int | None
    trials: int | None
    seed: int | None
    batch_size: int | None
    #: Process-shard heavy jobs through :mod:`repro.sim.parallel`.
    parallel: bool = False
    workers: int = 4
    #: Remaining deadline budget in seconds, refreshed per attempt by
    #: the worker loop and enforced cooperatively inside the facade.
    timeout: float | None = None


def default_runner(request: JobRequest) -> RunResult:
    """Execute one request through the facade (no facade-level cache —
    the service owns caching so it can attribute hits)."""
    return execute(
        request.circuit,
        backend=request.backend,
        noise_model=request.noise_model,
        wires=list(request.wires) if request.wires is not None else None,
        initial=request.initial,
        shots=request.shots,
        trials=request.trials,
        seed=request.seed,
        batch_size=request.batch_size,
        parallel=request.parallel,
        workers=request.workers,
        timeout=request.timeout,
        cache=False,
    )


@dataclass
class ServiceStats:
    """Counters of one :class:`JobQueue` instance."""

    submitted: int = 0
    #: Runner invocations — with retries, one group may execute several
    #: times; the fault-free count equals distinct executions.
    executed: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    coalesced: int = 0
    memory_hits: int = 0
    persistent_hits: int = 0
    #: Handles whose deadline expired before completion.
    timed_out: int = 0
    #: Re-executions triggered by the retry policy.
    retries: int = 0
    #: Submissions downgraded by admission control (still admitted).
    degraded: int = 0
    #: Submissions refused by admission control (never became jobs,
    #: so they are *not* counted in ``submitted``).
    admission_rejected: int = 0

    @property
    def cache_hits(self) -> int:
        """Submissions served by either cache level."""
        return self.memory_hits + self.persistent_hits

    @property
    def coalesce_rate(self) -> float:
        """Fraction of submissions that attached to an in-flight run."""
        return self.coalesced / self.submitted if self.submitted else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submissions served straight from the caches."""
        return self.cache_hits / self.submitted if self.submitted else 0.0

    @property
    def shared_rate(self) -> float:
        """Fraction of submissions that did not trigger an execution."""
        shared = self.coalesced + self.cache_hits
        return shared / self.submitted if self.submitted else 0.0

    def to_dict(self) -> dict:
        """JSON-ready snapshot including the derived rates."""
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "memory_hits": self.memory_hits,
            "persistent_hits": self.persistent_hits,
            "timed_out": self.timed_out,
            "retries": self.retries,
            "degraded": self.degraded,
            "admission_rejected": self.admission_rejected,
            "coalesce_rate": self.coalesce_rate,
            "cache_hit_rate": self.cache_hit_rate,
            "shared_rate": self.shared_rate,
        }


@dataclass
class _Group:
    """One distinct execution and every job handle attached to it."""

    key: str
    cache_key: tuple | None
    request: JobRequest
    jobs: list[Job] = field(default_factory=list)
    running: bool = False
    #: Every handle cancelled while still queued; workers skip it.
    abandoned: bool = False
    #: The leader's deadline, enforced for the whole group (coalesced
    #: followers ride on the one execution and inherit it).
    deadline: Deadline | None = None
    #: Shared attempt history — every attached handle aliases this list.
    attempts: list[AttemptRecord] = field(default_factory=list)


class JobQueue:
    """Submit/status/result/cancel over a worker pool with coalescing.

    Parameters
    ----------
    workers:
        Worker threads draining the queue.
    cache:
        In-memory :class:`ResultCache` (``None`` builds a private one).
        Pass a cache constructed with ``backing=`` to layer persistence,
        or use ``store`` as a shorthand.
    store:
        Persistent :class:`ResultStore` layered under the LRU (ignored
        when ``cache`` already has a backing).
    max_pending:
        Bound on *distinct* queued executions (coalesced followers and
        cache hits never consume queue space).
    backpressure:
        ``"reject"`` raises :class:`QueueFullError` at the bound;
        ``"block"`` makes ``submit`` wait for space.
    age_weight:
        Aging rate of the fairness scheduler (see
        :class:`~repro.service.scheduler.FairScheduler`).
    runner:
        Execution callable ``(JobRequest) -> RunResult``; tests inject
        counting/blocking runners here.  Defaults to the facade.
    retry_policy:
        :class:`~repro.resilience.RetryPolicy` re-running transient
        worker failures with deterministic backoff (``None`` = never
        retry, the historical behaviour).
    admission:
        :class:`~repro.resilience.AdmissionPolicy` reviewing every
        submission's estimated memory (defaults to the 1 GiB
        :data:`~repro.resilience.DEFAULT_ADMISSION`).
    fault_injector:
        Seeded :class:`~repro.resilience.FaultInjector` for the
        ``worker.run`` chaos site (``None`` = no injection; the
        ambient injector installed via
        :func:`repro.resilience.install_injector` still applies).
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        cache: ResultCache | None = None,
        store: ResultStore | None = None,
        max_pending: int = 256,
        backpressure: str = "reject",
        age_weight: float = 0.1,
        runner: Callable[[JobRequest], RunResult] | None = None,
        job_retention: int = 10_000,
        retry_policy: RetryPolicy | None = None,
        admission: AdmissionPolicy | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least one thread")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if backpressure not in ("reject", "block"):
            raise ValueError(
                f"backpressure must be 'reject' or 'block', "
                f"got {backpressure!r}"
            )
        if cache is None:
            cache = ResultCache(backing=store)
        elif store is not None and cache.backing is None:
            cache.backing = store
        self.cache = cache
        self.store = cache.backing if isinstance(
            cache.backing, ResultStore
        ) else store
        self.max_pending = max_pending
        self.backpressure = backpressure
        self.stats = ServiceStats()
        self._runner = runner or default_runner
        self._retry_policy = retry_policy
        self._admission = admission if admission is not None \
            else DEFAULT_ADMISSION
        self._fault_injector = fault_injector
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._scheduler: FairScheduler[_Group] = FairScheduler(age_weight)
        self._inflight: dict[str, _Group] = {}
        self._jobs: dict[str, Job] = {}
        self._job_retention = job_retention
        self._shutdown = False
        #: False once drain() was called: no new admissions.
        self._admitting = True
        self._running_groups = 0
        #: Set at shutdown to interrupt retry-backoff sleeps.
        self._wake = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(
        self,
        target,
        *,
        backend: "str | Backend" = "statevector",
        pipeline=None,
        noise_model: NoiseModel | None = None,
        wires: Sequence[Qudit] | None = None,
        initial: "StateVector | Sequence[int] | None" = None,
        shots: int | None = None,
        trials: int | None = None,
        seed: int | None = None,
        batch_size: int | None = None,
        parallel: bool = False,
        workers: int = 4,
        submitter: str = "default",
        priority: int = 0,
        timeout: float | None = None,
        deadline: "float | Deadline | None" = None,
        **build_kwargs,
    ) -> Job:
        """Queue one execution and return its :class:`Job` handle.

        Accepts the same targets and run options as
        :func:`repro.execute` plus the service knobs: ``submitter``
        (fairness bucket), ``priority`` (higher runs sooner, with
        aging), ``timeout`` (block-mode backpressure wait), and
        ``deadline`` (seconds of total budget, or a
        :class:`~repro.resilience.Deadline`; expiry lands the job in
        TIMED_OUT).  The circuit is built and compiled here, on the
        submitting thread, so the handle's coalescing key is final
        before it is returned.

        Raises :class:`~repro.service.QueueClosedError` after shutdown
        or drain, and :class:`~repro.resilience.AdmissionError` when
        the estimated memory footprint exceeds the admission budget
        even after downgrades.
        """
        if self._shutdown or not self._admitting:
            raise QueueClosedError("queue is shut down or draining")
        job_deadline = resolve_deadline(deadline)
        compiled_pipeline = resolve_pipeline(pipeline)
        probe = resolve_backend(backend, noise_model)
        circuit, preferred_wires = materialize_target(
            target,
            build_kwargs,
            prefer_undecomposed=probe.capabilities.classical_circuits_only,
        )
        if compiled_pipeline is not None:
            circuit = compiled_pipeline.compile(circuit).circuit
            if set(circuit.all_qudits()) != set(
                preferred_wires or circuit.all_qudits()
            ):
                preferred_wires = None
        job_wires = wires if wires is not None else preferred_wires
        job_wires = tuple(job_wires) if job_wires is not None else None
        if not isinstance(initial, (StateVector, type(None))):
            initial = tuple(initial)

        # Admission control: estimate the run's memory from the wire
        # dims and downgrade (or reject) *before* the coalescing and
        # cache keys are computed, so they reflect what actually runs.
        decision = self._admission.review(
            circuit,
            probe.capabilities.kind,
            trials=trials,
            batch_size=batch_size,
            parallel=parallel,
            workers=workers,
        )
        if not decision.admitted:
            with self._lock:
                self.stats.admission_rejected += 1
            raise AdmissionError(decision.reason)
        if "parallel-to-serial" in decision.downgrades:
            parallel = False
        if "batched-to-looped" in decision.downgrades:
            batch_size = 1

        fingerprint = circuit_fingerprint(circuit)
        request = JobRequest(
            circuit=circuit,
            backend=backend,
            noise_model=noise_model,
            wires=job_wires,
            initial=initial,
            shots=shots,
            trials=trials,
            seed=seed,
            batch_size=batch_size,
            parallel=parallel,
            workers=workers,
        )
        cache_key = result_cache_key(
            fingerprint=fingerprint,
            backend=probe,
            noise_model=noise_model,
            wires=job_wires,
            initial=initial,
            shots=shots,
            trials=trials,
            seed=seed,
            batch_size=batch_size,
        )
        # The coalescing key covers the same run identity but exists
        # even for non-cacheable (unseeded stochastic) jobs: identical
        # in-flight submissions still share the one execution.
        model = getattr(probe, "noise_model", None) or noise_model
        key = cache_key_digest(
            (
                fingerprint,
                probe.name,
                model.name if model is not None else None,
                job_wires,
                None if isinstance(initial, StateVector) else initial,
                shots,
                trials,
                seed,
                batch_size,
            )
        )
        label = target if isinstance(target, str) else type(target).__name__
        job = Job(key, submitter=submitter, priority=priority,
                  label=str(label), deadline=job_deadline)
        job.degraded = decision.downgrades

        with self._lock:
            self.stats.submitted += 1
            if decision.downgrades:
                self.stats.degraded += 1
            self._remember(job)

            # Level 1+2: the layered result cache.
            if cache_key is not None:
                hit, source = self.cache.get_with_source(cache_key)
                if hit is not None:
                    if source == "memory":
                        self.stats.memory_hits += 1
                    else:
                        self.stats.persistent_hits += 1
                    self.stats.completed += 1
                    job.served_from = source
                    job._finish(JobState.DONE, result=hit)
                    return job

            # Level 3: coalesce onto an in-flight identical run.
            group = self._inflight.get(key)
            if group is not None and not group.abandoned:
                self.stats.coalesced += 1
                job.served_from = "coalesced"
                group.jobs.append(job)
                # Followers ride the leader's execution: they share its
                # attempt history and its (possibly absent) deadline.
                job.attempts = group.attempts
                if group.running:
                    job._mark_running()
                return job

            # Level 4: a genuinely new execution — bounded queue.
            if len(self._scheduler) >= self.max_pending:
                if self.backpressure == "reject":
                    self.stats.rejected += 1
                    raise QueueFullError(
                        f"queue full ({self.max_pending} pending "
                        f"executions); job {job.id} rejected"
                    )
                if not self._space.wait_for(
                    lambda: (
                        len(self._scheduler) < self.max_pending
                        or self._shutdown
                    ),
                    timeout=timeout,
                ):
                    self.stats.rejected += 1
                    raise QueueFullError(
                        f"queue full; job {job.id} timed out waiting "
                        f"for space after {timeout}s"
                    )
                if self._shutdown or not self._admitting:
                    raise QueueClosedError("queue is shut down or draining")
            group = _Group(key=key, cache_key=cache_key, request=request,
                           jobs=[job], deadline=job_deadline)
            job.attempts = group.attempts
            self._inflight[key] = group
            self._scheduler.push(group, submitter=submitter,
                                 priority=priority)
            self._not_empty.notify()
        return job

    def _remember(self, job: Job) -> None:
        """Track the handle for id lookups; trim old terminal jobs."""
        self._jobs[job.id] = job
        if len(self._jobs) > self._job_retention:
            for job_id in list(self._jobs):
                if len(self._jobs) <= self._job_retention:
                    break
                if self._jobs[job_id].done():
                    del self._jobs[job_id]

    # -- queries -------------------------------------------------------

    def _resolve_job(self, job: "Job | str") -> Job:
        if isinstance(job, Job):
            return job
        try:
            return self._jobs[job]
        except KeyError:
            raise KeyError(f"unknown job id {job!r}") from None

    def status(self, job: "Job | str") -> JobState:
        """The lifecycle state of a job (by handle or id)."""
        return self._resolve_job(job).state

    def result(self, job: "Job | str", timeout: float | None = None):
        """Block for and return a job's result (see :meth:`Job.result`)."""
        return self._resolve_job(job).result(timeout)

    def job(self, job_id: str) -> Job:
        """Look a handle up by id (raises KeyError when unknown)."""
        return self._resolve_job(job_id)

    def depth(self) -> int:
        """Distinct executions currently queued (not yet running)."""
        with self._lock:
            return len(self._scheduler)

    # -- cancellation --------------------------------------------------

    def cancel(self, job: "Job | str") -> bool:
        """Cancel one handle.

        QUEUED jobs cancel immediately (True).  RUNNING or terminal
        jobs return False — executions are never interrupted mid-
        flight, and coalesced siblings keep their claim on the result.
        When every handle of a queued group is cancelled, the execution
        itself is abandoned and its queue slot freed.
        """
        job = self._resolve_job(job)
        with self._lock:
            if job.state is not JobState.QUEUED:
                return False
            job._finish(JobState.CANCELLED)
            self.stats.cancelled += 1
            group: _Group | None = self._inflight.get(job.key)
            if group is not None and all(j.done() for j in group.jobs):
                group.abandoned = True
                del self._inflight[job.key]
                # The scheduler entry stays queued; workers skip
                # abandoned groups when they surface.
            return True

    # -- worker pool ---------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._scheduler and not self._shutdown:
                    self._not_empty.wait()
                if self._shutdown and not self._scheduler:
                    return
                group = self._scheduler.pop()
                self._space.notify()
                if group is None or group.abandoned:
                    self._notify_if_idle()
                    continue
                if group.deadline is not None and group.deadline.expired():
                    # Expired while queued: straight to TIMED_OUT,
                    # never run.
                    self._inflight.pop(group.key, None)
                    error = JobTimeoutError(
                        "deadline expired before execution started"
                    )
                    for job in group.jobs:
                        if not job.done():
                            self.stats.timed_out += 1
                            job._finish(JobState.TIMED_OUT, error=error)
                    self._notify_if_idle()
                    continue
                group.running = True
                self._running_groups += 1
                for job in group.jobs:
                    if not job.done():
                        job._mark_running()
            self._run_group(group)

    def _run_group(self, group: _Group) -> None:
        """One group's attempt loop, outside the queue lock.

        Each attempt hands the runner the *remaining* deadline budget;
        transient failures retry with deterministic backoff up to the
        policy's cap; a run that completes after its deadline passed
        still delivers (completion wins the race).
        """
        policy = self._retry_policy
        attempt = 0
        while True:
            attempt += 1
            request = group.request
            if group.deadline is not None:
                remaining = group.deadline.remaining()
                if remaining <= 0.0:
                    self._finish_group(
                        group, JobState.TIMED_OUT,
                        error=JobTimeoutError(
                            f"deadline expired after {attempt - 1} "
                            f"attempt(s)"
                        ),
                    )
                    return
                request = replace(request, timeout=remaining)
            try:
                maybe_inject("worker.run", self._fault_injector)
                result = self._runner(request)
            except JobTimeoutError as error:
                with self._lock:
                    self.stats.executed += 1
                self._finish_group(group, JobState.TIMED_OUT, error=error)
                return
            except BaseException as error:  # noqa: BLE001 - fan out
                captured = traceback.format_exc()
                retry = (
                    policy is not None
                    and attempt < policy.max_attempts
                    and policy.retryable(error)
                    and not self._shutdown
                    and not (
                        group.deadline is not None
                        and group.deadline.expired()
                    )
                )
                delay = policy.delay(attempt, group.key) if retry else 0.0
                record = AttemptRecord(
                    attempt=attempt,
                    error_type=type(error).__name__,
                    message=str(error),
                    delay=delay,
                    retried=retry,
                )
                with self._lock:
                    self.stats.executed += 1
                    group.attempts.append(record)
                    if retry:
                        self.stats.retries += 1
                if not retry:
                    self._finish_group(
                        group, JobState.FAILED,
                        error=error, traceback_text=captured,
                    )
                    return
                # Interruptible backoff: shutdown wakes sleepers early.
                self._wake.wait(delay)
            else:
                with self._lock:
                    self.stats.executed += 1
                self._finish_group(group, JobState.DONE, result=result)
                return

    def _finish_group(
        self,
        group: _Group,
        state: JobState,
        *,
        result: RunResult | None = None,
        error: BaseException | None = None,
        traceback_text: str | None = None,
    ) -> None:
        """Fan one terminal state out to every live handle of a group."""
        with self._lock:
            self._inflight.pop(group.key, None)
            self._running_groups -= 1
            if state is JobState.DONE and group.cache_key is not None:
                self.cache.put(group.cache_key, result)
            for job in group.jobs:
                if job.done():
                    continue
                if state is JobState.DONE:
                    self.stats.completed += 1
                elif state is JobState.TIMED_OUT:
                    self.stats.timed_out += 1
                else:
                    self.stats.failed += 1
                job._finish(state, result=result, error=error,
                            traceback=traceback_text)
            self._notify_if_idle()

    def _notify_if_idle(self) -> None:
        """Wake drain() waiters once nothing is queued or running.

        Caller must hold ``self._lock``.
        """
        if not self._scheduler and self._running_groups == 0:
            self._idle.notify_all()

    # -- lifecycle -----------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admissions and wait for in-flight work to finish.

        After ``drain()`` every further :meth:`submit` raises
        :class:`~repro.service.QueueClosedError`; queued and running
        groups complete normally.  Returns True once the queue is idle
        (False on ``timeout``).  The workers stay alive — call
        :meth:`shutdown` to stop them.
        """
        with self._lock:
            self._admitting = False
            settled = self._idle.wait_for(
                lambda: (
                    (not self._scheduler and self._running_groups == 0)
                    or self._shutdown
                ),
                timeout=timeout,
            )
        return bool(settled)

    def shutdown(self, wait: bool = True,
                 cancel_pending: bool = False) -> None:
        """Stop the pool.

        ``wait=True`` drains the queue first (workers finish every
        pending group).  ``wait=False`` or ``cancel_pending=True``
        deterministically CANCELs every still-queued group (cancel
        reason ``"queue shut down"``) rather than orphaning handles in
        QUEUED forever; running groups always finish.  Idempotent.
        """
        with self._lock:
            self._shutdown = True
            self._admitting = False
            self._wake.set()
            if cancel_pending or not wait:
                for group in self._scheduler.drain():
                    if group.abandoned:
                        continue
                    self._inflight.pop(group.key, None)
                    for job in group.jobs:
                        if not job.done():
                            self.stats.cancelled += 1
                            job._finish(JobState.CANCELLED,
                                        reason="queue shut down")
            self._not_empty.notify_all()
            self._space.notify_all()
            self._idle.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    def stats_snapshot(self) -> ServiceStats:
        """A point-in-time copy of the counters."""
        with self._lock:
            return replace(self.stats)

    def describe(self) -> Mapping:
        """JSON-ready summary: counters, rates, queue depth, caches."""
        with self._lock:
            info = self.stats.to_dict()
            info["queue_depth"] = len(self._scheduler)
            info["inflight"] = len(self._inflight)
            info["workers"] = len(self._threads)
            info["cache_entries"] = len(self.cache)
            if self.store is not None:
                info["store_entries"] = len(self.store)
                info["store_bytes"] = self.store.total_bytes()
                info["store"] = self.store.stats.to_dict()
                if self.store.breaker is not None:
                    info["breaker"] = self.store.breaker.to_dict()
            if self._fault_injector is not None:
                info["faults"] = self._fault_injector.to_dict()
            return info
