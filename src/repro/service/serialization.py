"""JSON round-trip for :class:`~repro.execution.results.RunResult`.

The persistent :class:`~repro.service.store.ResultStore` and the serve
protocol both need results as plain JSON: every payload a backend can
produce — classical values, state vectors, density matrices, sampled
measurements, fidelity estimates — flattens to nested lists and
primitives, and rebuilds into the same result type.  Complex arrays are
stored as parallel real/imaginary lists; wires as (index, dimension)
pairs, mirroring the circuit wire format.
"""

from __future__ import annotations

import json
from typing import Mapping

import numpy as np

from ..exceptions import SerializationError
from ..execution.results import FidelityResult, RunResult
from ..qudits import Qudit
from ..sim.density import DensityMatrix
from ..sim.fidelity import FidelityEstimate
from ..sim.measurement import MeasurementResult
from ..sim.state import StateVector

#: Version tag of the serialized result format.
RESULT_SCHEMA = "repro-result/v1"


def _wires_to_data(wires) -> list[list[int]]:
    return [[w.index, w.dimension] for w in wires]


def _wires_from_data(data) -> list[Qudit]:
    return [Qudit(int(index), int(dimension)) for index, dimension in data]


def _complex_to_data(array: np.ndarray) -> dict:
    flat = np.asarray(array, dtype=complex).reshape(-1)
    return {
        "re": [float(v) for v in flat.real],
        "im": [float(v) for v in flat.imag],
    }


def _complex_from_data(data: dict, shape: tuple[int, ...]) -> np.ndarray:
    return (
        np.asarray(data["re"], dtype=float)
        + 1j * np.asarray(data["im"], dtype=float)
    ).reshape(shape)


def _params_to_data(params: Mapping) -> dict:
    """Sweep params / metadata as JSON; reject what cannot round-trip."""
    mapping = dict(params)
    try:
        json.dumps(mapping)
    except (TypeError, ValueError) as error:
        raise SerializationError(
            f"result params/metadata are not JSON-serializable: {error}"
        ) from error
    return mapping


def result_to_dict(result: RunResult) -> dict:
    """``result`` as a JSON-ready dict (see :func:`result_from_dict`)."""
    data: dict = {
        "schema": RESULT_SCHEMA,
        "type": type(result).__name__,
        "backend": result.backend,
        "wires": _wires_to_data(result.wires),
        "params": _params_to_data(result.params),
        "metadata": _params_to_data(result.metadata),
        "seed": result.seed,
        "values": list(result.values) if result.values is not None else None,
        "state": None,
        "density": None,
        "measurements": None,
    }
    if result.state is not None:
        data["state"] = {
            "wires": _wires_to_data(result.state.wires),
            "amplitudes": _complex_to_data(result.state.tensor),
        }
    if result.density is not None:
        data["density"] = {
            "wires": _wires_to_data(result.density.wires),
            "matrix": _complex_to_data(result.density.matrix),
        }
    if result.measurements is not None:
        measurements = result.measurements
        if measurements.is_counts_backed:
            # Counts-backed results serialize as the histogram itself:
            # U outcome rows + counts, not shots x wires samples — a
            # million-shot record stays a few lines of JSON.
            counter = measurements.counts()
            data["measurements"] = {
                "wires": _wires_to_data(measurements.wires),
                "outcomes": [list(k) for k in counter],
                "counts": [int(v) for v in counter.values()],
            }
        else:
            data["measurements"] = {
                "wires": _wires_to_data(measurements.wires),
                "samples": measurements.samples.tolist(),
            }
    if isinstance(result, FidelityResult):
        estimate = result.estimate
        data["estimate"] = None
        if estimate is not None:
            data["estimate"] = {
                "circuit_name": estimate.circuit_name,
                "noise_model_name": estimate.noise_model_name,
                "trials": estimate.trials,
                "mean_fidelity": estimate.mean_fidelity,
                "std_error": estimate.std_error,
                "mean_gate_errors": estimate.mean_gate_errors,
                "mean_idle_jumps": estimate.mean_idle_jumps,
            }
    return data


def result_from_dict(data: Mapping) -> RunResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    if data.get("schema") != RESULT_SCHEMA:
        raise SerializationError(
            f"unknown result schema {data.get('schema')!r} "
            f"(expected {RESULT_SCHEMA!r})"
        )
    wires = tuple(_wires_from_data(data["wires"]))
    state = None
    if data.get("state") is not None:
        state_wires = _wires_from_data(data["state"]["wires"])
        shape = tuple(w.dimension for w in state_wires)
        state = StateVector(
            state_wires,
            _complex_from_data(data["state"]["amplitudes"], shape),
        )
    density = None
    if data.get("density") is not None:
        density_wires = _wires_from_data(data["density"]["wires"])
        dim = int(np.prod([w.dimension for w in density_wires]))
        density = DensityMatrix(
            density_wires,
            _complex_from_data(data["density"]["matrix"], (dim, dim)),
        )
    measurements = None
    if data.get("measurements") is not None:
        measured = data["measurements"]
        measured_wires = _wires_from_data(measured["wires"])
        if "samples" in measured:
            measurements = MeasurementResult(
                measured_wires,
                np.asarray(measured["samples"], dtype=np.int64),
            )
        else:
            measurements = MeasurementResult(
                measured_wires,
                outcomes=np.asarray(
                    measured["outcomes"], dtype=np.int64
                ).reshape(-1, len(measured_wires)),
                counts=np.asarray(measured["counts"], dtype=np.int64),
            )
    common = dict(
        backend=data["backend"],
        wires=wires,
        params=dict(data.get("params") or {}),
        seed=data.get("seed"),
        values=(
            tuple(int(v) for v in data["values"])
            if data.get("values") is not None
            else None
        ),
        state=state,
        density=density,
        measurements=measurements,
        metadata=dict(data.get("metadata") or {}),
    )
    if data.get("type") == "FidelityResult":
        estimate = None
        if data.get("estimate") is not None:
            estimate = FidelityEstimate(**data["estimate"])
        return FidelityResult(estimate=estimate, **common)
    return RunResult(**common)


def result_to_json(result: RunResult, indent: int | None = None) -> str:
    """``result`` serialized to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)


def result_from_json(text: str) -> RunResult:
    """Rebuild a result from :func:`result_to_json` output."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(
            f"malformed result JSON: {error}"
        ) from error
    return result_from_dict(data)
