"""Priority/fairness scheduling for the service's worker pool.

Two starvation problems need solving at once:

* **Across submitters** — one chatty client must not monopolise the
  workers.  The scheduler keeps one queue per submitter and serves the
  submitters round-robin, so each client's next job waits behind at
  most one job from every other client.
* **Within a submitter** — a stream of high-priority submissions must
  not starve an old low-priority one.  Entries are ranked by
  ``age_weight * sequence - priority``: higher priority wins now, but
  every later submission ages earlier entries, so a priority advantage
  of ``p`` decays after ``p / age_weight`` subsequent submissions.
  The pairwise rank difference of two queued entries is constant in
  time, which is what lets a plain heap implement aging exactly.

The scheduler is a pure data structure (no locks, no threads); the
:class:`~repro.service.queue.JobQueue` serialises access under its own
lock, which keeps pop-then-transition atomic where it matters.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, Iterator, TypeVar

T = TypeVar("T")


class FairScheduler(Generic[T]):
    """Per-submitter round-robin queues with aging priorities."""

    def __init__(self, age_weight: float = 0.1) -> None:
        if age_weight < 0:
            raise ValueError("age_weight must be >= 0")
        self.age_weight = age_weight
        #: submitter -> heap of (rank, seq, entry); lowest rank pops.
        self._queues: dict[str, list[tuple[float, int, T]]] = {}
        #: Round-robin order; rotated as submitters are served.
        self._order: list[str] = []
        self._cursor = 0
        self._seq = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, entry: T, submitter: str = "default",
             priority: int = 0) -> None:
        """Queue ``entry`` for ``submitter`` at ``priority`` (higher
        runs sooner, subject to aging)."""
        seq = next(self._seq)
        rank = self.age_weight * seq - priority
        if submitter not in self._queues:
            self._queues[submitter] = []
            # New submitters join just behind the cursor: everyone
            # already in the rotation is served once before the
            # newcomer's first turn.
            self._order.insert(self._cursor, submitter)
            self._cursor += 1
        heapq.heappush(self._queues[submitter], (rank, seq, entry))
        self._size += 1

    def pop(self) -> T | None:
        """The next entry in fair order, or None when empty."""
        while self._order:
            if self._cursor >= len(self._order):
                self._cursor = 0
            submitter = self._order[self._cursor]
            queue = self._queues[submitter]
            if not queue:
                # Submitter drained since its last turn: retire it.
                del self._queues[submitter]
                self._order.pop(self._cursor)
                continue
            _, _, entry = heapq.heappop(queue)
            self._size -= 1
            if queue:
                self._cursor += 1
            else:
                del self._queues[submitter]
                self._order.pop(self._cursor)
            if self._cursor >= len(self._order):
                self._cursor = 0
            return entry
        return None

    def drain(self) -> Iterator[T]:
        """Pop every queued entry, in fair order."""
        while True:
            entry = self.pop()
            if entry is None:
                return
            yield entry

    def submitters(self) -> list[str]:
        """Submitters with queued work, in current round-robin order."""
        return [s for s in self._order if self._queues.get(s)]
