"""Job handles and lifecycle states of the execution service.

A :class:`Job` is the caller's view of one submitted run: a small
thread-safe handle that tracks the lifecycle

    QUEUED -> RUNNING -> DONE | FAILED | CANCELLED

and blocks on :meth:`Job.result` until a worker (or a cache hit, or a
coalesced leader) completes it.  Jobs are created by
:meth:`repro.service.JobQueue.submit`; all state transitions go through
the queue, which owns the locking discipline — the handle itself only
exposes reads and the completion event.
"""

from __future__ import annotations

import itertools
import threading
import time
from enum import Enum
from typing import TYPE_CHECKING

from ..exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..execution.results import RunResult


class ServiceError(ReproError):
    """Base class of execution-service failures."""


class QueueFullError(ServiceError):
    """The bounded queue rejected a submission (backpressure)."""


class JobFailedError(ServiceError):
    """The job's execution raised; carries the worker traceback."""

    def __init__(self, message: str, traceback: str | None = None) -> None:
        super().__init__(message)
        #: The worker-side ``traceback.format_exc()`` text, so failures
        #: stay diagnosable across the thread (and protocol) boundary.
        self.traceback = traceback


class JobCancelledError(ServiceError):
    """The job was cancelled before a result was produced."""


class JobState(str, Enum):
    """Lifecycle states of a submitted job."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        """True once the state can no longer change."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


_JOB_IDS = itertools.count(1)


class Job:
    """Handle to one submitted execution.

    Handles are cheap and thread-safe: ``state`` reads are lock-free
    snapshots, ``result()`` blocks on an event the queue sets exactly
    once, at the terminal transition.  Several handles may share one
    underlying execution (request coalescing) — each keeps its own
    state, so cancelling a coalesced follower never disturbs its
    siblings.
    """

    def __init__(
        self,
        key: str,
        submitter: str = "default",
        priority: int = 0,
        label: str = "",
    ) -> None:
        self.id = f"job-{next(_JOB_IDS):06d}"
        #: Coalescing key: circuit fingerprint + run-parameter digest.
        self.key = key
        self.submitter = submitter
        self.priority = priority
        #: Human-readable description (e.g. "qutrit_tree(N=5)").
        self.label = label
        self.state = JobState.QUEUED
        #: Cache level that served the job, when it never ran:
        #: "memory", "backing", or "coalesced"; None for executed jobs.
        self.served_from: str | None = None
        self.submitted_at = time.perf_counter()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._result: "RunResult | None" = None
        self._error: BaseException | None = None
        self._traceback: str | None = None
        self._done = threading.Event()

    # -- queries -------------------------------------------------------

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal (or ``timeout`` seconds); True if done."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> "RunResult":
        """The run's result, blocking until the job completes.

        Raises :class:`JobFailedError` (with the captured worker
        traceback) when execution failed, :class:`JobCancelledError`
        when the job was cancelled, and :class:`TimeoutError` when
        ``timeout`` expires first.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"{self.id} still {self.state.value} after {timeout}s"
            )
        if self.state is JobState.CANCELLED:
            raise JobCancelledError(f"{self.id} was cancelled")
        if self._error is not None:
            raise JobFailedError(
                f"{self.id} failed: {self._error!r}", self._traceback
            ) from self._error
        assert self._result is not None
        return self._result

    @property
    def error(self) -> BaseException | None:
        """The exception a FAILED job captured (None otherwise)."""
        return self._error

    @property
    def traceback(self) -> str | None:
        """The captured worker traceback of a FAILED job."""
        return self._traceback

    @property
    def latency(self) -> float | None:
        """Submit-to-terminal wall-clock seconds (None while pending)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    # -- transitions (called by JobQueue under its lock) ---------------

    def _mark_running(self) -> None:
        self.state = JobState.RUNNING
        self.started_at = time.perf_counter()

    def _finish(
        self,
        state: JobState,
        result: "RunResult | None" = None,
        error: BaseException | None = None,
        traceback: str | None = None,
    ) -> None:
        """Terminal transition; sets the completion event exactly once."""
        if self._done.is_set():  # pragma: no cover - defensive
            return
        self.state = state
        self._result = result
        self._error = error
        self._traceback = traceback
        self.finished_at = time.perf_counter()
        self._done.set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.label}" if self.label else ""
        return f"<Job {self.id} {self.state.value}{label}>"
