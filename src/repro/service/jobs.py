"""Job handles and lifecycle states of the execution service.

A :class:`Job` is the caller's view of one submitted run: a small
thread-safe handle that tracks the lifecycle

    QUEUED -> RUNNING -> DONE | FAILED | CANCELLED | TIMED_OUT

and blocks on :meth:`Job.result` until a worker (or a cache hit, or a
coalesced leader) completes it.  Jobs are created by
:meth:`repro.service.JobQueue.submit`; all state transitions go through
the queue, which owns the locking discipline — the handle itself only
exposes reads and the completion event.

Resilience surfaces on the handle (see ``docs/RESILIENCE.md``): a job
submitted with a deadline carries it here, expiry lands it in the
terminal ``TIMED_OUT`` state (``result()`` raises the typed
:class:`~repro.resilience.JobTimeoutError`), retried attempts leave
their :class:`~repro.resilience.AttemptRecord` history on
``job.attempts``, and admission-control downgrades are recorded on
``job.degraded``.
"""

from __future__ import annotations

import itertools
import threading
import time
from enum import Enum
from typing import TYPE_CHECKING

from ..exceptions import ReproError
from ..resilience.deadlines import Deadline, JobTimeoutError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..execution.results import RunResult
    from ..resilience.retry import AttemptRecord


class ServiceError(ReproError):
    """Base class of execution-service failures."""


class QueueFullError(ServiceError):
    """The bounded queue rejected a submission (backpressure)."""


class QueueClosedError(ServiceError, RuntimeError):
    """The queue is shut down or draining and refuses admissions.

    Subclasses :class:`RuntimeError` for compatibility with callers of
    the original shutdown behaviour.
    """


class JobFailedError(ServiceError):
    """The job's execution raised; carries the worker traceback."""

    def __init__(self, message: str, traceback: str | None = None) -> None:
        super().__init__(message)
        #: The worker-side ``traceback.format_exc()`` text, so failures
        #: stay diagnosable across the thread (and protocol) boundary.
        self.traceback = traceback


class JobCancelledError(ServiceError):
    """The job was cancelled before a result was produced."""


class JobState(str, Enum):
    """Lifecycle states of a submitted job."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMED_OUT = "TIMED_OUT"

    @property
    def terminal(self) -> bool:
        """True once the state can no longer change."""
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMED_OUT,
        )


_JOB_IDS = itertools.count(1)


class Job:
    """Handle to one submitted execution.

    Handles are cheap and thread-safe: ``state`` reads are lock-free
    snapshots, ``result()`` blocks on an event the queue sets exactly
    once, at the terminal transition.  Several handles may share one
    underlying execution (request coalescing) — each keeps its own
    state, so cancelling a coalesced follower never disturbs its
    siblings.
    """

    def __init__(
        self,
        key: str,
        submitter: str = "default",
        priority: int = 0,
        label: str = "",
        deadline: Deadline | None = None,
    ) -> None:
        self.id = f"job-{next(_JOB_IDS):06d}"
        #: Coalescing key: circuit fingerprint + run-parameter digest.
        self.key = key
        self.submitter = submitter
        self.priority = priority
        #: Human-readable description (e.g. "qutrit_tree(N=5)").
        self.label = label
        #: Cooperative expiry budget (None = unbounded).
        self.deadline = deadline
        self.state = JobState.QUEUED
        #: Cache level that served the job, when it never ran:
        #: "memory", "backing", or "coalesced"; None for executed jobs.
        self.served_from: str | None = None
        #: One record per failed attempt of a retried execution.
        self.attempts: "list[AttemptRecord]" = []
        #: Admission-control ladder steps applied at submit time.
        self.degraded: tuple[str, ...] = ()
        #: Why a CANCELLED job was cancelled (e.g. "queue shut down").
        self.cancel_reason: str | None = None
        self.submitted_at = time.perf_counter()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._result: "RunResult | None" = None
        self._error: BaseException | None = None
        self._traceback: str | None = None
        self._done = threading.Event()

    # -- queries -------------------------------------------------------

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal (or ``timeout`` seconds); True if done."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> "RunResult":
        """The run's result, blocking until the job completes.

        Raises :class:`JobFailedError` (with the captured worker
        traceback) when execution failed, :class:`JobCancelledError`
        when the job was cancelled, and the typed
        :class:`~repro.resilience.JobTimeoutError` either when the job
        itself TIMED_OUT (its deadline expired) or when ``timeout``
        seconds pass without a terminal state.
        """
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                f"{self.id} still {self.state.value} after {timeout}s"
            )
        if self.state is JobState.TIMED_OUT:
            raise JobTimeoutError(
                f"{self.id} timed out: "
                f"{self._error or 'deadline expired before completion'}"
            )
        if self.state is JobState.CANCELLED:
            reason = f" ({self.cancel_reason})" if self.cancel_reason else ""
            raise JobCancelledError(f"{self.id} was cancelled{reason}")
        if self._error is not None:
            raise JobFailedError(
                f"{self.id} failed: {self._error!r}", self._traceback
            ) from self._error
        assert self._result is not None
        return self._result

    @property
    def error(self) -> BaseException | None:
        """The exception a FAILED job captured (None otherwise)."""
        return self._error

    @property
    def traceback(self) -> str | None:
        """The captured worker traceback of a FAILED job."""
        return self._traceback

    @property
    def latency(self) -> float | None:
        """Submit-to-terminal wall-clock seconds (None while pending)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    # -- transitions (called by JobQueue under its lock) ---------------

    def _mark_running(self) -> None:
        self.state = JobState.RUNNING
        self.started_at = time.perf_counter()

    def _finish(
        self,
        state: JobState,
        result: "RunResult | None" = None,
        error: BaseException | None = None,
        traceback: str | None = None,
        reason: str | None = None,
    ) -> None:
        """Terminal transition; sets the completion event exactly once."""
        if self._done.is_set():  # pragma: no cover - defensive
            return
        self.state = state
        self._result = result
        self._error = error
        self._traceback = traceback
        if reason is not None:
            self.cancel_reason = reason
        self.finished_at = time.perf_counter()
        self._done.set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.label}" if self.label else ""
        return f"<Job {self.id} {self.state.value}{label}>"
