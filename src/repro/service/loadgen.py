"""Zipfian load generator + the committed ``BENCH_serve.json`` suite.

The "millions of users" story made measurable: real serving traffic is
heavily skewed — a few popular circuits dominate — so the generator
draws requests from the Toffoli construction catalog with zipfian
popularity and pushes them through a live :class:`JobQueue`, measuring
what the serving layer is for:

* **throughput** (jobs/s) and **latency** (p50/p99 of submit→done);
* **coalesce rate** — identical in-flight submissions sharing one run;
* **cache hit rates** — in-memory LRU and persistent store;
* **the restart story** — phase 2 rebuilds the queue with a cold
  in-memory cache over the same store directory (a simulated process
  restart): every distinct request must come back from disk with zero
  re-executions.

Phase arithmetic is deterministic by construction, which is what the CI
gate (:func:`check_serve_regression`) checks: in phase 1 every distinct
key executes exactly once (``executed == distinct``) and every
duplicate is shared (``coalesced + memory_hits == requests -
distinct``); in phase 2 nothing executes at all.  Wall-clock numbers
are recorded but never gated.
"""

from __future__ import annotations

import platform
import tempfile
import time
from typing import Sequence

import numpy as np

from ..execution.cache import ResultCache
from .jobs import Job
from .queue import JobQueue
from .store import ResultStore

#: Schema tag of the serve report (``BENCH_serve.json``).
SERVE_SCHEMA = "repro-bench-serve/v1"

#: Fairness buckets the generator cycles submissions over.
SUBMITTERS: tuple[str, ...] = ("alice", "bob", "carol", "dave")


def default_catalog(smoke: bool = False) -> list[dict]:
    """The request catalog: distinct (construction, run-config) pairs.

    Every entry is deterministic (noise-free backends, or seeded
    trajectory runs), so results are cacheable and the restart phase
    can be served entirely from the persistent store.  Entries mix the
    backends so the store round-trips every payload family.
    """
    catalog: list[dict] = []
    tree_widths = (3, 4) if smoke else (3, 4, 5, 6)
    for n in tree_widths:
        catalog.append(dict(
            target="qutrit_tree", backend="statevector",
            build={"num_controls": n},
        ))
        catalog.append(dict(
            target="qutrit_tree", backend="classical",
            build={"num_controls": n},
            initial=tuple([1] * n + [0]),
        ))
    for n in (3,) if smoke else (3, 4):
        catalog.append(dict(
            target="qubit_ancilla_free", backend="statevector",
            build={"num_controls": n},
        ))
        catalog.append(dict(
            target="qubit_one_dirty", backend="classical",
            build={"num_controls": n},
            initial=tuple([1] * n + [0, 0]),
        ))
    # Seeded noisy estimates: the expensive tail of the catalog, and
    # the FidelityResult round-trip through the store.
    from ..noise.presets import SC

    for n in (3,) if smoke else (3, 4):
        catalog.append(dict(
            target="qutrit_tree", backend="trajectory", noise_model=SC,
            build={"num_controls": n},
            trials=10 if smoke else 25, seed=2019,
        ))
    return catalog


def zipf_workload(
    catalog_size: int,
    requests: int,
    s: float = 1.1,
    seed: int = 2019,
) -> list[int]:
    """Catalog indices for ``requests`` draws with zipfian popularity.

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1) ** s`` — the classic web-traffic skew.  Deterministic
    for a fixed seed, so committed and CI runs sample the same stream.
    """
    if catalog_size < 1:
        raise ValueError("catalog must not be empty")
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, catalog_size + 1, dtype=float) ** s
    weights /= weights.sum()
    return [int(i) for i in rng.choice(catalog_size, size=requests,
                                       p=weights)]


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q) * 1000.0)


def run_phase(
    queue: JobQueue,
    catalog: Sequence[dict],
    workload: Sequence[int],
) -> dict:
    """Submit the whole workload, wait it out, and report the phase."""
    jobs: list[Job] = []
    start = time.perf_counter()
    for position, index in enumerate(workload):
        entry = dict(catalog[index])
        target = entry.pop("target")
        build = entry.pop("build", {})
        jobs.append(queue.submit(
            target,
            submitter=SUBMITTERS[position % len(SUBMITTERS)],
            **entry, **build,
        ))
    for job in jobs:
        job.result(timeout=300)
    elapsed = time.perf_counter() - start
    latencies = [job.latency for job in jobs]
    stats = queue.stats_snapshot()
    return {
        "requests": len(jobs),
        "elapsed_seconds": elapsed,
        "throughput_jobs_per_second": len(jobs) / elapsed,
        "p50_ms": _percentile_ms(latencies, 50),
        "p99_ms": _percentile_ms(latencies, 99),
        "mean_ms": float(np.mean(latencies) * 1000.0),
        "executed": stats.executed,
        "coalesced": stats.coalesced,
        "memory_hits": stats.memory_hits,
        "persistent_hits": stats.persistent_hits,
        "coalesce_rate": stats.coalesce_rate,
        "cache_hit_rate": stats.cache_hit_rate,
        "shared_rate": stats.shared_rate,
    }


def run_serve_bench(
    smoke: bool = False,
    seed: int = 2019,
    workers: int = 4,
    store_dir: str | None = None,
) -> dict:
    """Run the two-phase serving bench and return the JSON-ready report.

    Phase 1 serves a zipfian workload on a fresh queue with an empty
    persistent store; phase 2 rebuilds the queue with a cold in-memory
    cache over the same store (a simulated restart) and replays the
    workload.  ``smoke`` shrinks the catalog and request count so CI
    finishes in seconds.
    """
    catalog = default_catalog(smoke)
    requests = 80 if smoke else 400
    workload = zipf_workload(len(catalog), requests, seed=seed)
    distinct = len(set(workload))

    def phase(store: ResultStore) -> dict:
        with JobQueue(
            workers=workers, cache=ResultCache(backing=store),
        ) as queue:
            return run_phase(queue, catalog, workload)

    with tempfile.TemporaryDirectory() as scratch:
        root = store_dir or scratch
        phase1 = phase(ResultStore(root))
        # Restart simulation: new process state (cold LRU, cold queue),
        # warm disk.
        phase2 = phase(ResultStore(root))

    return {
        "schema": SERVE_SCHEMA,
        "generated_by": "python -m repro bench"
        + (" --smoke" if smoke else ""),
        "smoke": smoke,
        "seed": seed,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "workload": {
            "requests": requests,
            "catalog_size": len(catalog),
            "distinct_keys": distinct,
            "zipf_s": 1.1,
            "submitters": list(SUBMITTERS),
            "workers": workers,
        },
        "phase1_cold": phase1,
        "phase2_restart": phase2,
        "headline": {
            "executed_exactly_once": phase1["executed"] == distinct,
            "restart_executions": phase2["executed"],
            "restart_served_from_store": phase2["persistent_hits"],
        },
    }


def render_serve_report(report: dict) -> str:
    """Human-readable summary of :func:`run_serve_bench` output."""
    workload = report["workload"]
    lines = [
        f"serve bench ({'smoke' if report['smoke'] else 'full'}, "
        f"seed {report['seed']})",
        "",
        f"workload: {workload['requests']} zipfian requests over "
        f"{workload['catalog_size']} catalog entries "
        f"({workload['distinct_keys']} distinct), "
        f"{workload['workers']} workers",
    ]
    for name, phase in (
        ("phase 1 (cold store)", report["phase1_cold"]),
        ("phase 2 (restart)", report["phase2_restart"]),
    ):
        lines += [
            "",
            f"{name}:",
            f"  throughput {phase['throughput_jobs_per_second']:8.1f} "
            f"jobs/s   p50 {phase['p50_ms']:7.2f} ms   "
            f"p99 {phase['p99_ms']:7.2f} ms",
            f"  executed {phase['executed']:4d}   "
            f"coalesced {phase['coalesced']:4d}   "
            f"memory hits {phase['memory_hits']:4d}   "
            f"store hits {phase['persistent_hits']:4d}",
            f"  shared rate {phase['shared_rate'] * 100:5.1f}%   "
            f"cache hit rate {phase['cache_hit_rate'] * 100:5.1f}%",
        ]
    headline = report["headline"]
    lines += [
        "",
        f"exactly-once: {headline['executed_exactly_once']}   "
        f"restart executions: {headline['restart_executions']}",
    ]
    return "\n".join(lines)


def check_serve_regression(committed: dict, fresh: dict) -> list[str]:
    """The CI gate over a fresh serve report.

    Checks the deterministic sharing invariants of the fresh run —
    exactly-once execution in phase 1, zero executions after the
    simulated restart — and, when the committed baseline ran the same
    workload (same seed/requests), that the sharing arithmetic matches
    it.  Timing metrics are never gated.  Returns failure messages
    (empty = pass).
    """
    failures = []
    workload = fresh["workload"]
    phase1 = fresh["phase1_cold"]
    phase2 = fresh["phase2_restart"]
    distinct = workload["distinct_keys"]
    requests = workload["requests"]

    if phase1["executed"] != distinct:
        failures.append(
            f"phase 1 executed {phase1['executed']} runs for "
            f"{distinct} distinct keys (exactly-once violated)"
        )
    shared = phase1["coalesced"] + phase1["memory_hits"]
    if shared != requests - distinct:
        failures.append(
            f"phase 1 shared {shared} duplicates, expected "
            f"{requests - distinct} (coalescing/cache leak)"
        )
    if phase2["executed"] != 0:
        failures.append(
            f"phase 2 re-executed {phase2['executed']} runs after the "
            f"simulated restart (persistent store not serving)"
        )
    if phase2["persistent_hits"] != distinct:
        failures.append(
            f"phase 2 served {phase2['persistent_hits']} keys from the "
            f"store, expected {distinct}"
        )

    same_workload = (
        committed.get("seed") == fresh.get("seed")
        and committed.get("workload", {}).get("requests") == requests
        and committed.get("workload", {}).get("catalog_size")
        == workload["catalog_size"]
    )
    if same_workload:
        baseline = committed["workload"]["distinct_keys"]
        if baseline != distinct:
            failures.append(
                f"distinct-key count drifted: committed {baseline}, "
                f"fresh {distinct} (workload no longer reproducible)"
            )
    return failures
