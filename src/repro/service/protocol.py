"""Line-delimited JSON protocol for ``python -m repro serve``.

One request per line in, one JSON response per line out — over
stdin/stdout by default, or a local Unix socket (``--socket``), where
each connection speaks the same protocol concurrently.  The protocol is
deliberately plain: any language that can spawn a process and write
JSON lines can drive the service.

Requests are objects with an ``op`` and optional ``id`` (echoed back)::

    {"op": "submit", "target": "qutrit_tree",
     "build": {"num_controls": 5}, "backend": "classical",
     "input": [1, 1, 1, 1, 1, 0]}
    {"op": "submit", "target": "qutrit_tree", "backend": "trajectory",
     "noise": "SC", "trials": 50, "seed": 7, "wait": true}
    {"op": "status", "job": "job-000001"}
    {"op": "result", "job": "job-000001", "timeout": 30}
    {"op": "cancel", "job": "job-000001"}
    {"op": "stats"}
    {"op": "shutdown"}

Responses always carry ``ok``; failures add ``error`` (and
``traceback`` for FAILED jobs).  ``submit`` returns the job id and
state; with ``"wait": true`` it blocks and inlines the serialized
result (:func:`~repro.service.serialization.result_to_dict`).
"""

from __future__ import annotations

import json
import socket
import socketserver
import sys
import threading
from typing import Callable, Iterable, TextIO

from .jobs import (
    JobCancelledError,
    JobFailedError,
    JobState,
    QueueFullError,
)
from .queue import JobQueue
from .serialization import result_to_dict

#: Protocol version announced in the hello line.
PROTOCOL = "repro-serve/v1"


def _resolve_noise(name: str | None):
    if name is None:
        return None
    from ..noise.presets import ALL_MODELS

    if name not in ALL_MODELS:
        raise ValueError(
            f"unknown noise model {name!r}; "
            f"choose from {sorted(ALL_MODELS)}"
        )
    return ALL_MODELS[name]


def _submit(queue: JobQueue, request: dict) -> dict:
    target = request.get("target")
    if not target:
        raise ValueError("submit needs a 'target' (construction name)")
    build = dict(request.get("build") or {})
    initial = request.get("input")
    job = queue.submit(
        target,
        backend=request.get("backend", "statevector"),
        pipeline=request.get("pipeline"),
        noise_model=_resolve_noise(request.get("noise")),
        initial=tuple(initial) if initial is not None else None,
        shots=request.get("shots"),
        trials=request.get("trials"),
        seed=request.get("seed"),
        batch_size=request.get("batch_size"),
        parallel=bool(request.get("parallel", False)),
        submitter=str(request.get("submitter", "default")),
        priority=int(request.get("priority", 0)),
        **build,
    )
    response = {"ok": True, "job": job.id, "state": job.state.value}
    if job.served_from is not None:
        response["served_from"] = job.served_from
    if request.get("wait"):
        return _await_result(job, request.get("timeout"), response)
    return response


def _await_result(job, timeout, response: dict) -> dict:
    try:
        result = job.result(timeout)
    except JobFailedError as error:
        response.update(
            ok=False, state=job.state.value, error=str(error),
            traceback=error.traceback,
        )
    except JobCancelledError as error:
        response.update(ok=False, state=job.state.value, error=str(error))
    except TimeoutError as error:
        response.update(ok=False, state=job.state.value, error=str(error))
    else:
        response.update(
            ok=True, state=job.state.value, result=result_to_dict(result),
        )
        if job.latency is not None:
            response["latency_ms"] = round(job.latency * 1000, 3)
    return response


def handle_request(queue: JobQueue, request: dict) -> dict:
    """Dispatch one decoded request; always returns a response dict."""
    op = request.get("op")
    try:
        if op == "submit":
            response = _submit(queue, request)
        elif op == "status":
            state = queue.status(str(request["job"]))
            response = {"ok": True, "job": request["job"],
                        "state": state.value}
        elif op == "result":
            job = queue.job(str(request["job"]))
            response = _await_result(
                job, request.get("timeout"), {"job": job.id}
            )
        elif op == "cancel":
            job = queue.job(str(request["job"]))
            cancelled = queue.cancel(job)
            response = {"ok": True, "job": job.id, "cancelled": cancelled,
                        "state": job.state.value}
        elif op == "stats":
            response = {"ok": True, "stats": dict(queue.describe())}
        elif op == "ping":
            response = {"ok": True, "pong": True}
        elif op == "shutdown":
            response = {"ok": True, "shutdown": True}
        else:
            response = {
                "ok": False,
                "error": f"unknown op {op!r}; expected submit/status/"
                "result/cancel/stats/ping/shutdown",
            }
    except QueueFullError as error:
        response = {"ok": False, "error": str(error), "rejected": True}
    except (KeyError, ValueError, TypeError) as error:
        response = {"ok": False, "error": str(error)}
    if "id" in request:
        response["id"] = request["id"]
    return response


def serve_lines(
    queue: JobQueue,
    lines: Iterable[str],
    write: Callable[[str], None],
    *,
    hello: bool = True,
) -> str:
    """Run the protocol over any line source/sink until EOF/shutdown.

    Returns ``"shutdown"`` when an acknowledged shutdown op ended the
    loop, ``"eof"`` when the line source ran dry.
    """
    if hello:
        write(json.dumps({
            "ok": True, "protocol": PROTOCOL,
            "workers": len(queue._threads),
        }))
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, ValueError) as error:
            write(json.dumps({"ok": False, "error": f"bad request: {error}"}))
            continue
        response = handle_request(queue, request)
        write(json.dumps(response))
        if request.get("op") == "shutdown" and response.get("ok"):
            return "shutdown"
    return "eof"


def serve_stdio(
    queue: JobQueue,
    stdin: TextIO | None = None,
    stdout: TextIO | None = None,
) -> None:
    """Speak the protocol over stdin/stdout (the default serve mode)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    def write(text: str) -> None:
        stdout.write(text + "\n")
        stdout.flush()

    serve_lines(queue, stdin, write)


def serve_socket(queue: JobQueue, path: str) -> None:
    """Speak the protocol on a Unix socket, one thread per connection.

    Every connection shares the one queue (and therefore the caches and
    coalescing map), which is the point: concurrent clients submitting
    the same circuit coalesce into one execution.  A ``shutdown``
    request from any connection stops the server.
    """
    stop = threading.Event()

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            def write(text: str) -> None:
                try:
                    self.wfile.write(text.encode() + b"\n")
                    self.wfile.flush()
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass

            lines = (raw.decode() for raw in self.rfile)
            # EOF just closes this connection; an acknowledged
            # shutdown op stops the whole server.
            if serve_lines(queue, lines, write) == "shutdown":
                stop.set()

    class Server(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True
        allow_reuse_address = True

    with Server(path, Handler) as server:
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            stop.wait()
        finally:
            server.shutdown()


def connect_socket(path: str) -> socket.socket:
    """Client helper: a connected Unix-socket stream to a server."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.connect(path)
    return client
