"""Line-delimited JSON protocol for ``python -m repro serve``.

One request per line in, one JSON response per line out — over
stdin/stdout by default, or a local Unix socket (``--socket``), where
each connection speaks the same protocol concurrently.  The protocol is
deliberately plain: any language that can spawn a process and write
JSON lines can drive the service.

Requests are objects with an ``op`` and optional ``id`` (echoed back)::

    {"op": "submit", "target": "qutrit_tree",
     "build": {"num_controls": 5}, "backend": "classical",
     "input": [1, 1, 1, 1, 1, 0]}
    {"op": "submit", "target": "qutrit_tree", "backend": "trajectory",
     "noise": "SC", "trials": 50, "seed": 7, "wait": true}
    {"op": "status", "job": "job-000001"}
    {"op": "result", "job": "job-000001", "timeout": 30}
    {"op": "cancel", "job": "job-000001"}
    {"op": "stats"}
    {"op": "drain", "timeout": 30}
    {"op": "shutdown"}

Responses always carry ``ok``; failures add ``error`` (and
``traceback`` for FAILED jobs).  ``submit`` returns the job id and
state; with ``"wait": true`` it blocks and inlines the serialized
result (:func:`~repro.service.serialization.result_to_dict`).

The loop is hardened against hostile or broken peers: a malformed or
oversized request line gets a structured ``{"ok": false}`` response, an
unexpected dispatch error is reported as ``"internal": true`` instead
of killing the server, and a peer that disconnects mid-request just
closes its own connection.  ``drain`` stops admissions and waits for
in-flight work (new submits then fail with ``"closed": true``).
"""

from __future__ import annotations

import json
import socket
import socketserver
import sys
import threading
from typing import Callable, Iterable, TextIO

from ..resilience.degradation import AdmissionError
from ..resilience.faults import maybe_inject
from ..resilience.retry import TransientServiceError
from .jobs import (
    JobCancelledError,
    JobFailedError,
    JobState,
    QueueClosedError,
    QueueFullError,
)
from .queue import JobQueue
from .serialization import result_to_dict

#: Protocol version announced in the hello line.
PROTOCOL = "repro-serve/v1"

#: Requests longer than this are refused unparsed — a missing newline
#: or a hostile client must not buffer the server into the ground.
MAX_LINE_BYTES = 1 << 20


def _resolve_noise(name: str | None):
    if name is None:
        return None
    from ..noise.presets import ALL_MODELS

    if name not in ALL_MODELS:
        raise ValueError(
            f"unknown noise model {name!r}; "
            f"choose from {sorted(ALL_MODELS)}"
        )
    return ALL_MODELS[name]


def _submit(queue: JobQueue, request: dict) -> dict:
    target = request.get("target")
    if not target:
        raise ValueError("submit needs a 'target' (construction name)")
    build = dict(request.get("build") or {})
    initial = request.get("input")
    job = queue.submit(
        target,
        backend=request.get("backend", "statevector"),
        pipeline=request.get("pipeline"),
        noise_model=_resolve_noise(request.get("noise")),
        initial=tuple(initial) if initial is not None else None,
        shots=request.get("shots"),
        trials=request.get("trials"),
        seed=request.get("seed"),
        batch_size=request.get("batch_size"),
        parallel=bool(request.get("parallel", False)),
        submitter=str(request.get("submitter", "default")),
        priority=int(request.get("priority", 0)),
        deadline=request.get("deadline"),
        **build,
    )
    response = {"ok": True, "job": job.id, "state": job.state.value}
    if job.served_from is not None:
        response["served_from"] = job.served_from
    if request.get("wait"):
        return _await_result(job, request.get("timeout"), response)
    return response


def _await_result(job, timeout, response: dict) -> dict:
    try:
        result = job.result(timeout)
    except JobFailedError as error:
        response.update(
            ok=False, state=job.state.value, error=str(error),
            traceback=error.traceback,
        )
    except JobCancelledError as error:
        response.update(ok=False, state=job.state.value, error=str(error))
    except TimeoutError as error:
        response.update(ok=False, state=job.state.value, error=str(error))
    else:
        response.update(
            ok=True, state=job.state.value, result=result_to_dict(result),
        )
        if job.latency is not None:
            response["latency_ms"] = round(job.latency * 1000, 3)
    if job.attempts:
        response["attempts"] = [a.to_dict() for a in job.attempts]
    return response


def handle_request(queue: JobQueue, request: dict) -> dict:
    """Dispatch one decoded request; always returns a response dict."""
    op = request.get("op")
    try:
        maybe_inject("protocol.request")
        if op == "submit":
            response = _submit(queue, request)
        elif op == "status":
            state = queue.status(str(request["job"]))
            response = {"ok": True, "job": request["job"],
                        "state": state.value}
        elif op == "result":
            job = queue.job(str(request["job"]))
            response = _await_result(
                job, request.get("timeout"), {"job": job.id}
            )
        elif op == "cancel":
            job = queue.job(str(request["job"]))
            cancelled = queue.cancel(job)
            response = {"ok": True, "job": job.id, "cancelled": cancelled,
                        "state": job.state.value}
        elif op == "stats":
            response = {"ok": True, "stats": dict(queue.describe())}
        elif op == "ping":
            response = {"ok": True, "pong": True}
        elif op == "drain":
            timeout = request.get("timeout")
            drained = queue.drain(
                float(timeout) if timeout is not None else None
            )
            response = {"ok": True, "drained": drained}
        elif op == "shutdown":
            response = {"ok": True, "shutdown": True}
        else:
            response = {
                "ok": False,
                "error": f"unknown op {op!r}; expected submit/status/"
                "result/cancel/stats/ping/drain/shutdown",
            }
    except QueueFullError as error:
        response = {"ok": False, "error": str(error), "rejected": True}
    except AdmissionError as error:
        response = {"ok": False, "error": str(error), "rejected": True}
    except QueueClosedError as error:
        response = {"ok": False, "error": str(error), "closed": True}
    except TransientServiceError as error:
        response = {"ok": False, "error": str(error), "transient": True}
    except (KeyError, ValueError, TypeError) as error:
        response = {"ok": False, "error": str(error)}
    except Exception as error:  # noqa: BLE001 - the loop must survive
        response = {
            "ok": False,
            "error": f"internal error: {error!r}",
            "internal": True,
        }
    if "id" in request:
        response["id"] = request["id"]
    return response


def serve_lines(
    queue: JobQueue,
    lines: Iterable[str],
    write: Callable[[str], None],
    *,
    hello: bool = True,
) -> str:
    """Run the protocol over any line source/sink until EOF/shutdown.

    Returns ``"shutdown"`` when an acknowledged shutdown op ended the
    loop, ``"eof"`` when the line source ran dry.
    """
    if hello:
        write(json.dumps({
            "ok": True, "protocol": PROTOCOL,
            "workers": len(queue._threads),
        }))
    for line in lines:
        if len(line) > MAX_LINE_BYTES:
            write(json.dumps({
                "ok": False,
                "error": f"request line exceeds {MAX_LINE_BYTES} bytes",
            }))
            continue
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, ValueError) as error:
            write(json.dumps({"ok": False, "error": f"bad request: {error}"}))
            continue
        response = handle_request(queue, request)
        write(json.dumps(response))
        if request.get("op") == "shutdown" and response.get("ok"):
            return "shutdown"
    return "eof"


def serve_stdio(
    queue: JobQueue,
    stdin: TextIO | None = None,
    stdout: TextIO | None = None,
) -> None:
    """Speak the protocol over stdin/stdout (the default serve mode)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    def write(text: str) -> None:
        stdout.write(text + "\n")
        stdout.flush()

    serve_lines(queue, stdin, write)


def serve_socket(queue: JobQueue, path: str) -> None:
    """Speak the protocol on a Unix socket, one thread per connection.

    Every connection shares the one queue (and therefore the caches and
    coalescing map), which is the point: concurrent clients submitting
    the same circuit coalesce into one execution.  A ``shutdown``
    request from any connection stops the server.
    """
    stop = threading.Event()

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            def write(text: str) -> None:
                try:
                    self.wfile.write(text.encode() + b"\n")
                    self.wfile.flush()
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass

            lines = (raw.decode(errors="replace") for raw in self.rfile)
            # EOF just closes this connection; an acknowledged
            # shutdown op stops the whole server.  A peer that vanishes
            # mid-request closes its own connection and nothing else.
            try:
                outcome = serve_lines(queue, lines, write)
            except (ConnectionError, OSError):  # pragma: no cover
                return
            if outcome == "shutdown":
                stop.set()

    class Server(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True
        allow_reuse_address = True

    with Server(path, Handler) as server:
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            stop.wait()
        finally:
            server.shutdown()


def connect_socket(path: str) -> socket.socket:
    """Client helper: a connected Unix-socket stream to a server."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.connect(path)
    return client
