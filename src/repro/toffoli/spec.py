"""Specification of the N-controlled gate and the common result record.

A :class:`GeneralizedToffoli` captures *what* is being decomposed: how many
controls, which value activates each control, and which single-wire gate is
applied to the target.  Every construction module consumes a spec and emits
a :class:`ConstructionResult` with the circuit plus an account of the wires
it used (data wires, clean ancilla, borrowed dirty ancilla) so that tests
and benchmarks can verify semantics and count resources uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..circuits.circuit import Circuit
from ..exceptions import DecompositionError
from ..qudits import Qudit


@dataclass(frozen=True)
class GeneralizedToffoli:
    """An N-controlled single-target gate.

    ``control_values[i]`` is the activation value of control ``i`` (all 1
    by default).  ``target_flip`` describes the classical action on a binary
    target; non-classical targets (e.g. Z for Grover) are handled by the
    constructions through the gate they are given, but the *spec*-level
    reference semantics below assume a permutation target so exhaustive
    classical verification stays linear.
    """

    num_controls: int
    control_values: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.num_controls < 0:
            raise ValueError("num_controls must be non-negative")
        if not self.control_values:
            object.__setattr__(
                self, "control_values", (1,) * self.num_controls
            )
        if len(self.control_values) != self.num_controls:
            raise ValueError(
                f"{self.num_controls} controls but "
                f"{len(self.control_values)} control values"
            )

    @property
    def num_inputs(self) -> int:
        """Total data wires: controls plus the target."""
        return self.num_controls + 1

    def is_active(self, control_inputs: Sequence[int]) -> bool:
        """True iff every control input matches its activation value."""
        if len(control_inputs) != self.num_controls:
            raise ValueError(
                f"expected {self.num_controls} control inputs, "
                f"got {len(control_inputs)}"
            )
        return all(
            value == active
            for value, active in zip(control_inputs, self.control_values)
        )

    def reference_output(
        self,
        control_inputs: Sequence[int],
        target_input: int,
        target_action: Callable[[int], int] | None = None,
    ) -> tuple[tuple[int, ...], int]:
        """Ideal classical output: controls unchanged; target acted on iff
        all controls are active.  ``target_action`` defaults to NOT."""
        action = target_action or (lambda b: b ^ 1)
        target_output = (
            action(target_input)
            if self.is_active(control_inputs)
            else target_input
        )
        return tuple(control_inputs), target_output


@dataclass
class ConstructionResult:
    """A concrete decomposition of a :class:`GeneralizedToffoli`.

    Attributes
    ----------
    circuit:
        The scheduled circuit.
    controls / target:
        The data wires, in spec order.
    clean_ancilla:
        Wires the construction requires to start in |0> (He's tree).
    borrowed_ancilla:
        Dirty wires: any initial state, restored at the end (Gidney-style).
    spec:
        The spec this circuit implements.
    name:
        Registry name of the construction that produced it.
    """

    circuit: Circuit
    controls: list[Qudit]
    target: Qudit
    spec: GeneralizedToffoli
    name: str
    clean_ancilla: list[Qudit] = field(default_factory=list)
    borrowed_ancilla: list[Qudit] = field(default_factory=list)

    @property
    def all_wires(self) -> list[Qudit]:
        """Data wires then ancilla, in a stable order."""
        return (
            list(self.controls)
            + [self.target]
            + list(self.clean_ancilla)
            + list(self.borrowed_ancilla)
        )

    @property
    def ancilla_count(self) -> int:
        """Clean + borrowed ancilla count (the paper's space overhead)."""
        return len(self.clean_ancilla) + len(self.borrowed_ancilla)

    def describe(self) -> str:
        """One-line resource summary used by benchmarks."""
        return (
            f"{self.name}(N={self.spec.num_controls}): "
            f"depth={self.circuit.depth}, "
            f"2q-gates={self.circuit.two_qudit_gate_count}, "
            f"ancilla={self.ancilla_count} "
            f"({len(self.clean_ancilla)} clean, "
            f"{len(self.borrowed_ancilla)} borrowed)"
        )


def require_min_controls(spec: GeneralizedToffoli, minimum: int, name: str) -> None:
    """Raise a uniform error when a construction needs more controls."""
    if spec.num_controls < minimum:
        raise DecompositionError(
            f"{name} needs at least {minimum} controls, "
            f"got {spec.num_controls}"
        )
