"""Lanyon/Ralph-style construction: the target as a high-dimensional qudit.

Table 1's last column: keep the controls as qubits but give the *target*
extra levels.  Our faithful adaptation uses a "shelving" scheme on a
(2N + 2)-level target: each inactive control shelves the target's
computational amplitudes into a private pair of upper levels, the target
flip acts on levels {0, 1} only (so it is vacuous whenever anything was
shelved), and the shelves are then reversed.  Linear depth, zero ancilla,
2N + 1 two-qudit gates — the linear-depth / qudit-target trade-off the
paper contrasts its log-depth tree against.
"""

from __future__ import annotations

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import DecompositionError
from ..gates.base import Gate, PermutationGate
from ..gates.controlled import ControlledGate
from ..qudits import QUBIT_D, Qudit, qubits
from .spec import ConstructionResult, GeneralizedToffoli


def _shelf_gate(dim: int, shelf_index: int) -> PermutationGate:
    """Swap computational levels {0,1} with shelf pair {2+2i, 3+2i}."""
    lo, hi = 2 + 2 * shelf_index, 3 + 2 * shelf_index
    if hi >= dim:
        raise DecompositionError(
            f"shelf {shelf_index} does not fit in a d={dim} target"
        )
    mapping = list(range(dim))
    mapping[0], mapping[lo] = mapping[lo], mapping[0]
    mapping[1], mapping[hi] = mapping[hi], mapping[1]
    return PermutationGate(mapping, (dim,), f"SHELF{shelf_index}(d{dim})")


def build_lanyon_target(
    spec: GeneralizedToffoli, target_gate: Gate | None = None
) -> ConstructionResult:
    """Linear-depth construction with a d = 2N+2 target qudit."""
    n = spec.num_controls
    controls = qubits(n)
    target_dim = max(2, 2 * n + 2)
    target = Qudit(n, target_dim)
    for value in spec.control_values:
        if value > 1:
            raise DecompositionError(
                "qubit controls support activation values 0 and 1 only"
            )

    if target_gate is None:
        mapping = list(range(target_dim))
        mapping[0], mapping[1] = 1, 0
        target_gate = PermutationGate(mapping, (target_dim,), "X01")
    if target_gate.dims != (target_dim,):
        raise DecompositionError(
            f"target gate must act on the d={target_dim} target"
        )

    shelve: list[GateOperation] = []
    for i, (wire, value) in enumerate(zip(controls, spec.control_values)):
        inactive = 1 - value
        shelve.append(
            ControlledGate(
                _shelf_gate(target_dim, i), (QUBIT_D,), (inactive,)
            ).on(wire, target)
        )
    flip = target_gate.on(target)
    unshelve = [op.inverse() for op in reversed(shelve)]
    circuit = Circuit(shelve + [flip] + unshelve)
    return ConstructionResult(
        circuit=circuit,
        controls=controls,
        target=target,
        spec=spec,
        name="lanyon_target",
    )
