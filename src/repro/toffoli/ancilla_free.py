"""Ancilla-free qubit-only Generalized Toffoli (the paper's QUBIT baseline).

The paper benchmarks Gidney's ancilla-free construction, characterised by
linear scaling with *large* constants (633N depth, 397N two-qubit gates)
and rotation gates with very small angles.  Gidney's exact gate sequence is
specified only in a blog post; as documented in DESIGN.md we substitute a
correct-by-construction zero-ancilla decomposition in the same cost regime
at the paper's simulated sizes:

Barenco Lemma 7.5 target-peeling — ``C^n U = CV . C^{n-1}X . CV^-1 .
C^{n-1}X . C^{n-1}V`` with ``V = sqrt(U)`` — applied recursively.  Every
peeled control joins a pool of *borrowed* wires, so each level's two
C^{k}X gates use the dirty-ancilla ladders of
:mod:`repro.toffoli.dirty_ancilla` and stay linear in k.  The V-cascade
produces the hallmark X^(1/2^j) small-angle gates.  Total cost is
Theta(N^2) with a small constant; at the paper's evaluation width
(N = 13 controls) the two-qubit gate count is within ~1.5x of the paper's
397N figure, so the fidelity experiment (Figure 11) compares like against
like.  The depth/count sweeps report our measured curve next to the
paper's reported fit.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import DecompositionError
from ..gates.controlled import ControlledGate
from ..gates.decompositions import two_controlled_qubit_u
from ..gates.matrix import MatrixGate
from ..gates.qubit import X
from ..linalg import matrix_root
from ..qudits import QUBIT_D, Qudit, qubits
from .dirty_ancilla import mcx_auto
from .spec import ConstructionResult, GeneralizedToffoli


def _controlled_single(matrix: np.ndarray, name: str) -> ControlledGate:
    return ControlledGate(MatrixGate(matrix, (2,), name=name), (QUBIT_D,))


def multi_controlled_u_cascade(
    controls: list[Qudit],
    target: Qudit,
    u_matrix: np.ndarray,
    u_name: str = "U",
    decompose: bool = True,
) -> list[GateOperation]:
    """C^k U on exactly ``k + 1`` wires — no ancilla, clean or dirty.

    The recursion peels the last control with controlled square roots of U;
    the two inner C^{k-1}X gates borrow the target plus previously peeled
    controls as dirty wires.
    """
    ops: list[GateOperation] = []

    def cascade(
        ctrls: list[Qudit], u: np.ndarray, name: str, pool: list[Qudit]
    ) -> None:
        k = len(ctrls)
        if k == 0:
            ops.append(MatrixGate(u, (2,), name=name).on(target))
            return
        if k == 1:
            ops.append(_controlled_single(u, name).on(ctrls[0], target))
            return
        if k == 2:
            ops.extend(
                two_controlled_qubit_u(
                    ctrls[0], ctrls[1], target, MatrixGate(u, (2,), name)
                )
            )
            return
        v = matrix_root(u, 0.5)
        v_name = f"sqrt({name})"
        last, rest = ctrls[-1], ctrls[:-1]
        cv = _controlled_single(v, v_name)
        cv_dag = _controlled_single(v.conj().T, f"{v_name}^-1")
        x_dirty = pool + [target]
        ops.append(cv.on(last, target))
        ops.extend(mcx_auto(rest, last, x_dirty, decompose))
        ops.append(cv_dag.on(last, target))
        ops.extend(mcx_auto(rest, last, x_dirty, decompose))
        cascade(rest, v, v_name, pool + [last])

    cascade(list(controls), np.asarray(u_matrix, dtype=complex), u_name, [])
    return ops


def build_ancilla_free_cascade(
    spec: GeneralizedToffoli, decompose: bool = True
) -> ConstructionResult:
    """The QUBIT benchmark: N-controlled X on N+1 qubit wires, zero ancilla."""
    n = spec.num_controls
    controls = qubits(n)
    target = Qudit(n, QUBIT_D)
    for value in spec.control_values:
        if value > 1:
            raise DecompositionError(
                "qubit constructions support activation values 0 and 1 only"
            )
    flips = [
        X.on(wire)
        for wire, value in zip(controls, spec.control_values)
        if value == 0
    ]
    core = multi_controlled_u_cascade(
        controls, target, X.unitary(), "X", decompose
    )
    circuit = Circuit(flips + core + flips)
    return ConstructionResult(
        circuit=circuit,
        controls=controls,
        target=target,
        spec=spec,
        name="qubit_ancilla_free",
    )
