"""Generalized Toffoli constructions: the paper's qutrit tree and baselines."""

from .spec import ConstructionResult, GeneralizedToffoli
from .qutrit_tree import build_qutrit_tree
from .dirty_ancilla import (
    build_one_dirty_ancilla,
    mcx_dirty_ladder,
    mcx_one_dirty,
)
from .ancilla_free import build_ancilla_free_cascade
from .he_tree import build_he_tree
from .wang_chain import build_wang_chain
from .lanyon_target import build_lanyon_target
from .registry import CONSTRUCTIONS, ConstructionInfo, build_toffoli
from .verification import (
    VerificationError,
    verify_classical,
    verify_classical_looped,
    verify_construction,
    verify_statevector,
)

__all__ = [
    "VerificationError",
    "verify_classical",
    "verify_classical_looped",
    "verify_construction",
    "verify_statevector",
    "GeneralizedToffoli",
    "ConstructionResult",
    "build_qutrit_tree",
    "build_one_dirty_ancilla",
    "build_ancilla_free_cascade",
    "build_he_tree",
    "build_wang_chain",
    "build_lanyon_target",
    "mcx_dirty_ladder",
    "mcx_one_dirty",
    "CONSTRUCTIONS",
    "ConstructionInfo",
    "build_toffoli",
]
