"""Uniform access to every Generalized Toffoli construction (Table 1).

Each entry records the paper-facing metadata (benchmark label, expected
depth scaling, ancilla usage, qudit types) next to its builder so the
benchmarks can sweep all constructions generically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .ancilla_free import build_ancilla_free_cascade
from .dirty_ancilla import build_one_dirty_ancilla
from .he_tree import build_he_tree
from .lanyon_target import build_lanyon_target
from .qutrit_tree import build_qutrit_tree
from .spec import ConstructionResult, GeneralizedToffoli
from .wang_chain import build_wang_chain


@dataclass(frozen=True)
class ConstructionInfo:
    """Registry record for one decomposition strategy."""

    name: str
    builder: Callable[[GeneralizedToffoli], ConstructionResult]
    paper_label: str
    depth_scaling: str
    ancilla: str
    qudit_types: str
    notes: str = ""


CONSTRUCTIONS: dict[str, ConstructionInfo] = {
    info.name: info
    for info in (
        ConstructionInfo(
            name="qutrit_tree",
            builder=build_qutrit_tree,
            paper_label="This work (QUTRIT)",
            depth_scaling="log N",
            ancilla="0",
            qudit_types="controls are qutrits",
            notes="Sec 4.2 binary tree; |2> stores partial conjunctions",
        ),
        ConstructionInfo(
            name="qubit_ancilla_free",
            builder=build_ancilla_free_cascade,
            paper_label="Gidney (QUBIT)",
            depth_scaling="N (paper); N^2 small-constant substitute here",
            ancilla="0",
            qudit_types="qubits",
            notes="substituted construction, see DESIGN.md; small angles",
        ),
        ConstructionInfo(
            name="qubit_one_dirty",
            builder=build_one_dirty_ancilla,
            paper_label="Gidney + ancilla (QUBIT+ANCILLA)",
            depth_scaling="N",
            ancilla="1 borrowed",
            qudit_types="qubits",
            notes="four-way split over dirty Toffoli ladders",
        ),
        ConstructionInfo(
            name="he_tree",
            builder=build_he_tree,
            paper_label="He",
            depth_scaling="log N",
            ancilla="N-1 clean",
            qudit_types="qubits",
            notes="Toffoli AND-tree into clean ancilla",
        ),
        ConstructionInfo(
            name="wang_chain",
            builder=build_wang_chain,
            paper_label="Wang",
            depth_scaling="N",
            ancilla="0",
            qudit_types="controls are qutrits",
            notes="linear |2>-elevation chain",
        ),
        ConstructionInfo(
            name="lanyon_target",
            builder=build_lanyon_target,
            paper_label="Lanyon / Ralph",
            depth_scaling="N",
            ancilla="0",
            qudit_types="target is a d=2N+2 qudit",
            notes="shelving adaptation; see module docstring",
        ),
    )
}


def build_toffoli(
    name: str,
    num_controls: int,
    control_values: tuple[int, ...] | None = None,
    **kwargs,
) -> ConstructionResult:
    """Build a named construction for an ``num_controls``-controlled gate."""
    if name not in CONSTRUCTIONS:
        raise KeyError(
            f"unknown construction {name!r}; "
            f"choose from {sorted(CONSTRUCTIONS)}"
        )
    spec = GeneralizedToffoli(
        num_controls=num_controls,
        control_values=control_values or (),
    )
    return CONSTRUCTIONS[name].builder(spec, **kwargs)


def construction_circuit(name: str, num_controls: int, **kwargs):
    """The bare circuit of a named construction.

    Convenience for file-based workloads (``python -m repro circuit
    save``) and anywhere only the serializable circuit value is wanted,
    not the full :class:`ConstructionResult` bookkeeping.
    """
    return build_toffoli(name, num_controls, **kwargs).circuit
