"""Wang & Perkowski's linear-depth qutrit-control chain (Table 1).

Like the paper's tree, the controls are qutrits and |2> marks partial
conjunctions — but the elevations ripple down a chain instead of a tree:
control i is elevated iff control i-1 reached |2>, so the last control ends
at |2> iff every control was active.  Linear depth, zero ancilla, small
constants: the qutrit tree keeps all of this and upgrades depth to log N.
"""

from __future__ import annotations

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import DecompositionError
from ..gates.base import Gate
from ..gates.controlled import ControlledGate
from ..gates.qutrit import X01, X02, X_PLUS_1
from ..qudits import QUTRIT_D, Qudit, qutrits
from .spec import ConstructionResult, GeneralizedToffoli


def _elevation_gate(active_value: int) -> Gate:
    if active_value == 1:
        return X_PLUS_1
    if active_value == 0:
        return X02
    raise DecompositionError(
        "chain elevation hosts must activate on 0 or 1"
    )


def build_wang_chain(
    spec: GeneralizedToffoli, target_gate: Gate | None = None
) -> ConstructionResult:
    """Linear-depth ancilla-free qutrit chain for ``spec``."""
    n = spec.num_controls
    controls = qutrits(n)
    target = Qudit(n, QUTRIT_D)
    gate = target_gate or X01
    if gate.dims != (target.dimension,):
        raise DecompositionError(
            f"target gate {gate.name} does not fit a d={target.dimension} wire"
        )
    values = spec.control_values
    if n and values[0] == 2 and n > 1:
        raise DecompositionError(
            "the chain's first control may not activate on |2>"
        )

    if n == 0:
        circuit = Circuit([gate.on(target)])
        return ConstructionResult(
            circuit, controls, target, spec, "wang_chain"
        )
    if n == 1:
        op = ControlledGate(gate, (QUTRIT_D,), (values[0],)).on(
            controls[0], target
        )
        return ConstructionResult(
            Circuit([op]), controls, target, spec, "wang_chain"
        )

    compute: list[GateOperation] = []
    # First link: elevate control 1 conditioned on control 0's own value.
    compute.append(
        ControlledGate(
            _elevation_gate(values[1]), (QUTRIT_D,), (values[0],)
        ).on(controls[0], controls[1])
    )
    # Ripple: elevate control i conditioned on control i-1 being |2>.
    for i in range(2, n):
        compute.append(
            ControlledGate(
                _elevation_gate(values[i]), (QUTRIT_D,), (2,)
            ).on(controls[i - 1], controls[i])
        )
    apply_op = ControlledGate(gate, (QUTRIT_D,), (2,)).on(
        controls[-1], target
    )
    uncompute = [op.inverse() for op in reversed(compute)]
    circuit = Circuit(compute + [apply_op] + uncompute)
    return ConstructionResult(
        circuit=circuit,
        controls=controls,
        target=target,
        spec=spec,
        name="wang_chain",
    )
