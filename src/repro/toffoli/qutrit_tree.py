"""The paper's qutrit Generalized Toffoli (Sec. 4.2, Figure 5).

The construction is a binary tree over the controls.  Leaf gates elevate a
qutrit from its activation value to |2> when its two sibling controls are
active; interior gates do the same conditioned on both child roots being
|2>.  After log N levels, the tree root is |2> iff *all* controls were
active, so a single |2>-controlled gate applies U to the target, and the
mirrored uncomputation restores every control.  No ancilla are used — the
|2> level *is* the storage.

Generalisations implemented here, both required by the incrementer
(Sec. 5.3):

* any number of controls (not just 2^k - 1);
* per-control activation values 0, 1 or 2.  Values 0 and 1 elevate with
  X02 / X+1 respectively; value-2 controls cannot be elevation hosts (a
  permutation cannot make "still |2>" mean "was |2> AND siblings active"),
  so the builder arranges them into control-only tree slots, of which at
  least a quarter of all positions (and always position 0) are available —
  ample for the incrementer's single |2>-activated carry control.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import DecompositionError
from ..gates.base import Gate
from ..gates.controlled import ControlledGate
from ..gates.decompositions import decompose_all
from ..gates.qutrit import X01, X02, X_PLUS_1, level_swap, shift_gate
from ..qudits import QUTRIT_D, Qudit, qudit_line
from .spec import ConstructionResult, GeneralizedToffoli

#: Tree node: a wire together with the value that marks it "active".
_Node = tuple[Qudit, int]


def _elevation_gate(active_value: int, dimension: int = QUTRIT_D) -> Gate:
    """The single-qudit permutation lifting ``active_value`` to |2>.

    X+1 maps 1 -> 2 (and the inactive 0 harmlessly off |2>); X02 maps
    0 -> 2 (and fixes the inactive 1).  Either way, after the gate the
    wire is |2> iff it was active *and* the gate's controls fired.  Works
    for any d >= 3: only levels {0, 1, 2} of binary-valued hosts are ever
    populated.
    """
    if active_value == 1:
        return X_PLUS_1 if dimension == QUTRIT_D else shift_gate(dimension, 1)
    if active_value == 0:
        return X02 if dimension == QUTRIT_D else level_swap(dimension, 0, 2)
    raise DecompositionError(
        "a |2>-activated control cannot be an elevation host"
    )


@lru_cache(maxsize=None)
def elevation_slots(num_controls: int) -> frozenset[int]:
    """Positions (within the control list) that the tree elevates.

    Mirrors the recursion of :func:`_conjunction_tree`; position 0 is never
    a slot, and at least a quarter of all positions stay control-only, so
    gates with a few |2>-activated controls are always constructible.
    """
    n = num_controls
    if n <= 1:
        return frozenset()
    if n == 2:
        return frozenset({1})
    k = (n - 1) // 2
    left = elevation_slots(k)
    right = elevation_slots(n - k - 1)
    return frozenset(left) | {k} | {k + 1 + i for i in right}


def _arrange(nodes: Sequence[_Node]) -> list[_Node]:
    """Order controls so no |2>-activated control lands in an elevation slot."""
    n = len(nodes)
    slots = elevation_slots(n)
    twos = [node for node in nodes if node[1] == 2]
    others = [node for node in nodes if node[1] != 2]
    if len(twos) > n - len(slots):
        raise DecompositionError(
            f"too many |2>-activated controls ({len(twos)}) for "
            f"{n - len(slots)} control-only tree positions"
        )
    arranged: list[_Node] = []
    twos_iter = iter(twos)
    others_iter = iter(others)
    remaining_twos = len(twos)
    for position in range(n):
        if position in slots:
            arranged.append(next(others_iter))
        elif remaining_twos:
            arranged.append(next(twos_iter))
            remaining_twos -= 1
        else:
            arranged.append(next(others_iter))
    return arranged


def _conjunction_tree(
    nodes: Sequence[_Node], ops: list[GateOperation]
) -> _Node:
    """Emit elevation gates; return the root (wire, active-value).

    After the emitted gates run, the root wire holds its active value iff
    every node in ``nodes`` held its own active value on entry.
    """
    nodes = list(nodes)
    if len(nodes) == 1:
        return nodes[0]
    if len(nodes) == 2:
        (c0, v0), (c1, v1) = nodes
        gate = ControlledGate(
            _elevation_gate(v1, c1.dimension), (c0.dimension,), (v0,)
        )
        ops.append(gate.on(c0, c1))
        return (c1, 2)
    split = (len(nodes) - 1) // 2
    left_root = _conjunction_tree(nodes[:split], ops)
    right_root = _conjunction_tree(nodes[split + 1 :], ops)
    host, host_value = nodes[split]
    gate = ControlledGate(
        _elevation_gate(host_value, host.dimension),
        (left_root[0].dimension, right_root[0].dimension),
        (left_root[1], right_root[1]),
    )
    ops.append(gate.on(left_root[0], right_root[0], host))
    return (host, 2)


def qutrit_multi_controlled_ops(
    controls: Sequence[Qudit],
    control_values: Sequence[int],
    target: Qudit,
    target_gate: Gate,
    decompose: bool = True,
) -> list[GateOperation]:
    """Operations applying ``target_gate`` iff every control matches.

    This is the reusable core: the incrementer embeds these gate lists
    inside a larger circuit.  With ``decompose=True`` the three-qutrit tree
    gates are lowered to two-qudit gates; with ``False`` the returned list
    is a permutation circuit that the classical simulator can verify in
    linear time (the granularity of Figure 5).
    """
    controls = list(controls)
    control_values = list(control_values)
    if len(controls) != len(control_values):
        raise ValueError("controls and control_values must align")
    for wire in controls:
        if wire.dimension < QUTRIT_D:
            raise DecompositionError(
                f"the tree needs controls with 3+ levels, got {wire}"
            )
    for value, wire in zip(control_values, controls):
        if not 0 <= value < wire.dimension:
            raise ValueError(f"control value {value} invalid for {wire}")

    if not controls:
        return [target_gate.on(target)]
    if len(controls) == 1:
        gate = ControlledGate(
            target_gate, (controls[0].dimension,), (control_values[0],)
        )
        return [gate.on(controls[0], target)]

    nodes = _arrange(list(zip(controls, control_values)))
    compute: list[GateOperation] = []
    root, root_value = _conjunction_tree(nodes, compute)
    apply_op = ControlledGate(
        target_gate, (root.dimension,), (root_value,)
    ).on(root, target)
    uncompute = [op.inverse() for op in reversed(compute)]
    ops = compute + [apply_op] + uncompute
    if decompose:
        ops = decompose_all(ops)
    return ops


def build_qutrit_tree(
    spec: GeneralizedToffoli,
    target_gate: Gate | None = None,
    decompose: bool = True,
    dimension: int = QUTRIT_D,
) -> ConstructionResult:
    """Build the paper's construction for ``spec`` on fresh qudit wires.

    The target wire shares the control dimension and the default target
    gate is X01 (the binary NOT embedded on levels {0, 1}), matching the
    paper's convention that inputs and outputs remain binary.

    ``dimension`` generalises the construction to d > 3 information
    carriers (the paper's future-work direction): the tree only ever uses
    levels {0, 1, 2}, so any d >= 3 works; with the root-of-U cascade the
    decomposed two-qudit count grows as 2d + 1 per tree gate, quantifying
    the paper's observation that d = 3 is the sweet spot absent
    connectivity pressure.
    """
    if dimension < QUTRIT_D:
        raise DecompositionError(
            f"the tree needs d >= 3 information carriers, got {dimension}"
        )
    controls = qudit_line([dimension] * spec.num_controls)
    target = Qudit(spec.num_controls, dimension)
    gate = target_gate or (
        X01 if dimension == QUTRIT_D else level_swap(dimension, 0, 1)
    )
    if gate.dims != (target.dimension,):
        raise DecompositionError(
            f"target gate {gate.name} does not fit a d={target.dimension} wire"
        )
    ops = qutrit_multi_controlled_ops(
        controls, spec.control_values, target, gate, decompose=decompose
    )
    circuit = Circuit(ops)
    return ConstructionResult(
        circuit=circuit,
        controls=controls,
        target=target,
        spec=spec,
        name="qutrit_tree" if dimension == QUTRIT_D else f"qudit_tree_d{dimension}",
    )
