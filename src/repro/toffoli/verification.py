"""Public verification API for Generalized Toffoli constructions.

Mirrors the paper's two verification modes (Sec. 4.2 / Sec. 6):

* :func:`verify_classical` — exhaustive basis-input checking through the
  batched classical permutation engine.  The whole input space advances
  as one ``(B, width)`` integer array (one table gather per operation),
  which is what makes the paper's width-14 exhaustive check finish in
  seconds — see ``BENCH_verify.json``.  Only valid for permutation
  circuits (the undecomposed tree, ladders, chains).
* :func:`verify_classical_looped` — the per-input reference walking
  ``Circuit.classical_map``.  Kept as the parity oracle and the looped
  side of the verification benchmark; decisions are identical to the
  batched path.
* :func:`verify_statevector` — exhaustive basis-input checking through
  dense state vectors, valid for any circuit (the decomposed circuits
  contain fractional-power gates that are not permutations).  Basis
  inputs advance in stacked ``(B, d_0, ..., d_{n-1})`` chunks through
  the engines' shared vectorized contraction
  (:func:`repro.sim.kernels.apply_block`, the trajectory engine's
  ideal-pass primitive), one cached gate kernel per operation.
* :func:`verify_construction` — picks the right mode from the
  permutation-table lowering, also checking that clean ancilla return to
  |0> and borrowed wires are restored for every dirty pattern.

Raising :class:`VerificationError` with the offending input makes these
usable both from tests and from user code validating custom constructions.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable

import numpy as np

from ..exceptions import ReproError
from ..sim.classical_batch import BatchedClassicalSimulator
from ..sim.fidelity import resolve_batch_size
from ..sim.kernels import apply_block, gate_kernel
from .spec import ConstructionResult


class VerificationError(ReproError):
    """A construction produced the wrong output for some input."""


def _expected_output(result: ConstructionResult, values: list[int]) -> list[int]:
    spec = result.spec
    n = spec.num_controls
    expected = list(values)
    if spec.is_active(tuple(values[:n])):
        expected[n] ^= 1
    return expected


def _input_space(
    result: ConstructionResult, dirty_patterns: bool
) -> Iterable[list[int]]:
    """Per-input generator form of the input space (looped reference)."""
    spec = result.spec
    n = spec.num_controls
    num_clean = len(result.clean_ancilla)
    num_borrowed = len(result.borrowed_ancilla)
    borrow_space = (
        product([0, 1], repeat=num_borrowed)
        if dirty_patterns
        else [(0,) * num_borrowed]
    )
    borrow_space = list(borrow_space)
    for data in product([0, 1], repeat=n + 1):
        for borrowed in borrow_space:
            yield list(data) + [0] * num_clean + list(borrowed)


def _input_array(
    result: ConstructionResult, dirty_patterns: bool
) -> np.ndarray:
    """The whole input space as one ``(B, width)`` array.

    Binary data wires, |0> clean ancilla, borrowed wires swept (or
    pinned to 0) — expressed as per-wire level restrictions over the
    batched engine's :meth:`input_space`, whose ``product`` row order
    matches :func:`_input_space` (data bits outer, borrowed patterns
    inner), so failure reports and input counts agree between the
    batched and looped paths.
    """
    levels: dict = {
        w: (0, 1) for w in result.controls + [result.target]
    }
    levels.update({w: (0,) for w in result.clean_ancilla})
    levels.update(
        {
            w: (0, 1) if dirty_patterns else (0,)
            for w in result.borrowed_ancilla
        }
    )
    return BatchedClassicalSimulator.input_space(result.all_wires, levels)


def _expected_array(
    result: ConstructionResult, inputs: np.ndarray
) -> np.ndarray:
    """Vectorized ideal outputs: controls (and ancilla) unchanged, the
    target flipped exactly on the rows whose controls are all active."""
    spec = result.spec
    n = spec.num_controls
    expected = inputs.copy()
    active = np.all(
        inputs[:, :n] == np.asarray(spec.control_values, dtype=np.int64),
        axis=1,
    )
    expected[active, n] ^= 1
    return expected


def _raise_first_mismatch(
    result: ConstructionResult,
    inputs: np.ndarray,
    outputs: np.ndarray,
    expected: np.ndarray,
) -> None:
    row = int(np.argmax(np.any(outputs != expected, axis=1)))
    raise VerificationError(
        f"{result.name}: input {inputs[row].tolist()} -> "
        f"{outputs[row].tolist()}, expected {expected[row].tolist()}"
    )


def verify_classical(
    result: ConstructionResult, dirty_patterns: bool = True
) -> int:
    """Exhaustively verify a permutation construction; returns input count.

    The paper's width-14 verification trick, batched: the full input
    space runs as one array through the permutation-table engine and the
    expected outputs are compared in one vectorized pass.
    """
    inputs = _input_array(result, dirty_patterns)
    outputs = BatchedClassicalSimulator().run_array(
        result.circuit, result.all_wires, inputs
    )
    expected = _expected_array(result, inputs)
    if not np.array_equal(outputs, expected):
        _raise_first_mismatch(result, inputs, outputs, expected)
    return len(inputs)


def verify_classical_looped(
    result: ConstructionResult, dirty_patterns: bool = True
) -> int:
    """Per-input reference implementation of :func:`verify_classical`.

    Walks ``Circuit.classical_map`` once per input — the pre-batching
    engine, preserved verbatim so the benchmark has a looped side to
    time and the parity tests have an independent oracle.
    """
    circuit = result.circuit
    wires = result.all_wires
    checked = 0
    for values in _input_space(result, dirty_patterns):
        assignment = circuit.classical_map(dict(zip(wires, values)))
        out = [assignment[w] for w in wires]
        if out != _expected_output(result, values):
            raise VerificationError(
                f"{result.name}: input {values} -> {out}, "
                f"expected {_expected_output(result, values)}"
            )
        checked += 1
    return checked


def verify_statevector(
    result: ConstructionResult,
    dirty_patterns: bool = True,
    atol: float = 1e-7,
    batch_size: int | None = None,
) -> int:
    """Exhaustively verify any construction via dense simulation.

    Basis inputs advance together as stacked ``(B, dims...)`` tensors —
    the trajectory engine's vectorized ideal pass over cached gate
    kernels — chunked like trajectory batching (``batch_size=None``
    auto-sizes from the state dimension).
    """
    wires = result.all_wires
    dims = tuple(w.dimension for w in wires)
    inputs = _input_array(result, dirty_patterns)
    expected = _expected_array(result, inputs)
    operations = list(result.circuit.all_operations())
    axis = {w: 1 + k for k, w in enumerate(wires)}
    chunk = resolve_batch_size(batch_size, wires, len(inputs))
    for start in range(0, len(inputs), chunk):
        rows = inputs[start : start + chunk]
        batch = np.zeros((len(rows),) + dims, dtype=complex)
        member = (np.arange(len(rows)),) + tuple(
            rows[:, k] for k in range(len(wires))
        )
        batch[member] = 1.0
        for op in operations:
            kernel = gate_kernel(op)
            batch = apply_block(
                batch, kernel.block, [axis[w] for w in op.qudits]
            )
        want = expected[start : start + chunk]
        amplitudes = batch[
            (np.arange(len(rows)),)
            + tuple(want[:, k] for k in range(len(wires)))
        ]
        probabilities = np.abs(amplitudes) ** 2
        if not np.all(np.isclose(probabilities, 1.0, atol=atol)):
            row = int(np.argmax(~np.isclose(probabilities, 1.0, atol=atol)))
            raise VerificationError(
                f"{result.name}: input {rows[row].tolist()} reached the "
                f"expected output with probability "
                f"{probabilities[row]:.6f}"
            )
    return len(inputs)


def verify_construction(
    result: ConstructionResult, dirty_patterns: bool = True
) -> int:
    """Verify a construction with the cheapest sound method.

    Uses the batched classical engine when every gate lowers to a
    permutation table and falls back to stacked state vectors otherwise.
    Returns the number of inputs checked; raises
    :class:`VerificationError` on any mismatch.
    """
    if BatchedClassicalSimulator().is_classical_circuit(result.circuit):
        return verify_classical(result, dirty_patterns)
    return verify_statevector(result, dirty_patterns)
