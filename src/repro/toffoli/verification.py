"""Public verification API for Generalized Toffoli constructions.

Mirrors the paper's two verification modes (Sec. 4.2 / Sec. 6):

* :func:`verify_classical` — exhaustive basis-input checking through the
  classical simulator, linear per input.  Only valid for permutation
  circuits (the undecomposed tree, ladders, chains).
* :func:`verify_statevector` — exhaustive basis-input checking through
  dense state vectors, valid for any circuit (the decomposed circuits
  contain fractional-power gates that are not permutations).
* :func:`verify_construction` — picks the right mode, also checking that
  clean ancilla return to |0> and borrowed wires are restored for every
  dirty pattern.

Raising :class:`VerificationError` with the offending input makes these
usable both from tests and from user code validating custom constructions.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable

import numpy as np

from ..exceptions import ReproError
from ..sim.classical import ClassicalSimulator
from ..sim.statevector import StateVectorSimulator
from .spec import ConstructionResult


class VerificationError(ReproError):
    """A construction produced the wrong output for some input."""


def _expected_output(result: ConstructionResult, values: list[int]) -> list[int]:
    spec = result.spec
    n = spec.num_controls
    expected = list(values)
    if spec.is_active(tuple(values[:n])):
        expected[n] ^= 1
    return expected


def _input_space(
    result: ConstructionResult, dirty_patterns: bool
) -> Iterable[list[int]]:
    spec = result.spec
    n = spec.num_controls
    num_clean = len(result.clean_ancilla)
    num_borrowed = len(result.borrowed_ancilla)
    borrow_space = (
        product([0, 1], repeat=num_borrowed)
        if dirty_patterns
        else [(0,) * num_borrowed]
    )
    borrow_space = list(borrow_space)
    for data in product([0, 1], repeat=n + 1):
        for borrowed in borrow_space:
            yield list(data) + [0] * num_clean + list(borrowed)


def verify_classical(
    result: ConstructionResult, dirty_patterns: bool = True
) -> int:
    """Exhaustively verify a permutation construction; returns input count.

    Linear cost per input (the paper's width-14 verification trick).
    """
    sim = ClassicalSimulator()
    wires = result.all_wires
    checked = 0
    for values in _input_space(result, dirty_patterns):
        out = sim.run_values(result.circuit, wires, values)
        if list(out) != _expected_output(result, values):
            raise VerificationError(
                f"{result.name}: input {values} -> {list(out)}, "
                f"expected {_expected_output(result, values)}"
            )
        checked += 1
    return checked


def verify_statevector(
    result: ConstructionResult,
    dirty_patterns: bool = True,
    atol: float = 1e-7,
) -> int:
    """Exhaustively verify any construction via dense simulation."""
    sim = StateVectorSimulator()
    wires = result.all_wires
    checked = 0
    for values in _input_space(result, dirty_patterns):
        state = sim.run_basis(result.circuit, wires, values)
        expected = _expected_output(result, values)
        probability = state.probability_of(expected)
        if not np.isclose(probability, 1.0, atol=atol):
            raise VerificationError(
                f"{result.name}: input {values} reached the expected "
                f"output with probability {probability:.6f}"
            )
        checked += 1
    return checked


def verify_construction(
    result: ConstructionResult, dirty_patterns: bool = True
) -> int:
    """Verify a construction with the cheapest sound method.

    Uses the classical simulator when every gate is a basis permutation
    and falls back to state vectors otherwise.  Returns the number of
    inputs checked; raises :class:`VerificationError` on any mismatch.
    """
    if ClassicalSimulator().is_classical_circuit(result.circuit):
        return verify_classical(result, dirty_patterns)
    return verify_statevector(result, dirty_patterns)
