"""He et al.'s log-depth construction with a linear number of clean ancilla.

A binary tree of Toffolis ANDs control pairs into fresh |0> ancilla; after
log2 N layers a single wire holds the conjunction, one CNOT hits the
target, and the mirrored tree uncomputes.  This is the design the paper's
qutrit tree replaces: same log-depth shape, but the ancilla register it
needs "effectively halves the potential of any given hardware" (Sec. 3.2) —
the qutrit |2> states stand in for these ancilla.
"""

from __future__ import annotations

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import DecompositionError
from ..gates.qubit import CNOT, X
from ..qudits import QUBIT_D, Qudit, qubits
from .dirty_ancilla import toffoli_ops
from .spec import ConstructionResult, GeneralizedToffoli


def build_he_tree(
    spec: GeneralizedToffoli, decompose: bool = True
) -> ConstructionResult:
    """Log-depth Generalized Toffoli with N-1 clean ancilla."""
    n = spec.num_controls
    controls = qubits(n)
    target = Qudit(n, QUBIT_D)
    for value in spec.control_values:
        if value > 1:
            raise DecompositionError(
                "qubit constructions support activation values 0 and 1 only"
            )
    flips = [
        X.on(wire)
        for wire, value in zip(controls, spec.control_values)
        if value == 0
    ]

    ancilla: list[Qudit] = []
    next_index = n + 1
    compute: list[GateOperation] = []
    layer = list(controls)
    while len(layer) > 1:
        next_layer: list[Qudit] = []
        for i in range(0, len(layer) - 1, 2):
            fresh = Qudit(next_index, QUBIT_D)
            next_index += 1
            ancilla.append(fresh)
            compute.extend(
                toffoli_ops(layer[i], layer[i + 1], fresh, decompose)
            )
            next_layer.append(fresh)
        if len(layer) % 2:
            next_layer.append(layer[-1])
        layer = next_layer

    if n == 0:
        core: list[GateOperation] = [X.on(target)]
    else:
        apply_op = CNOT.on(layer[0], target)
        uncompute = [op.inverse() for op in reversed(compute)]
        core = compute + [apply_op] + uncompute

    circuit = Circuit(flips + core + flips)
    return ConstructionResult(
        circuit=circuit,
        controls=controls,
        target=target,
        spec=spec,
        name="he_tree",
        clean_ancilla=ancilla,
    )
