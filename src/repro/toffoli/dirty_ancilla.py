"""Qubit-only multi-controlled X from borrowed (dirty) ancilla.

Two classic components (Barenco et al. 1995; popularised by Gidney's
"constructing large controlled nots"):

* :func:`mcx_dirty_ladder` — C^k X from 4(k-2) Toffolis when k-2 borrowed
  wires are available.  Borrowed wires may hold any state and are restored.
* :func:`mcx_one_dirty` — C^k X from a *single* borrowed wire: split the
  controls in half and alternate two half-sized ladders four times
  (t ^= b&w, w ^= a, t ^= b&w, w ^= a gives t ^= a&b with w restored).

:func:`build_one_dirty_ancilla` packages the latter as the paper's
QUBIT+ANCILLA benchmark: linear cost, one borrowed bit, measured at about
8N Toffolis = 48N two-qubit gates, matching the paper's reported 48N.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import DecompositionError
from ..gates.decompositions import toffoli_to_cnots
from ..gates.qubit import CNOT, TOFFOLI, X
from ..qudits import QUBIT_D, Qudit, qubits
from .spec import ConstructionResult, GeneralizedToffoli


def toffoli_ops(
    control_a: Qudit, control_b: Qudit, target: Qudit, decompose: bool
) -> list[GateOperation]:
    """A Toffoli, optionally lowered to the 6-CNOT standard form."""
    if decompose:
        return toffoli_to_cnots(control_a, control_b, target)
    return [TOFFOLI.on(control_a, control_b, target)]


def mcx_dirty_ladder(
    controls: Sequence[Qudit],
    target: Qudit,
    dirty: Sequence[Qudit],
    decompose: bool = True,
) -> list[GateOperation]:
    """C^k X via the Toffoli V-chain, borrowing ``k - 2`` dirty wires.

    The chain applies 4(k-2) Toffolis; every borrowed wire is returned to
    its initial state, whatever that state was.
    """
    controls = list(controls)
    k = len(controls)
    if k == 0:
        return [X.on(target)]
    if k == 1:
        return [CNOT.on(controls[0], target)]
    if k == 2:
        return toffoli_ops(controls[0], controls[1], target, decompose)
    needed = k - 2
    if len(dirty) < needed:
        raise DecompositionError(
            f"ladder for {k} controls needs {needed} borrowed wires, "
            f"got {len(dirty)}"
        )
    rungs = list(dirty[:needed])

    def tof(a: Qudit, b: Qudit, t: Qudit) -> list[GateOperation]:
        return toffoli_ops(a, b, t, decompose)

    # Staircase from the target down to the bottom borrowed wire.
    down: list[list[GateOperation]] = [
        tof(controls[k - 1], rungs[needed - 1], target)
    ]
    for i in range(needed - 1, 0, -1):
        down.append(tof(controls[i + 1], rungs[i - 1], rungs[i]))
    middle = tof(controls[0], controls[1], rungs[0])

    first_half = down + [middle] + down[::-1]
    second_half = down[1:] + [middle] + down[1:][::-1]
    ops: list[GateOperation] = []
    for group in first_half + second_half:
        ops.extend(group)
    return ops


def mcx_one_dirty(
    controls: Sequence[Qudit],
    target: Qudit,
    borrowed: Qudit,
    decompose: bool = True,
) -> list[GateOperation]:
    """C^k X from one borrowed wire via the four-way split.

    With controls split into halves A and B and the borrowed wire w:
    ``t ^= AND(B,w); w ^= AND(A); t ^= AND(B,w); w ^= AND(A)`` nets
    ``t ^= AND(A,B)`` and restores w.  Each half-gate is a dirty ladder
    whose borrowed wires come from the *other* half (plus the target),
    so total cost stays linear: about 8k Toffolis.
    """
    controls = list(controls)
    k = len(controls)
    if k <= 2:
        return mcx_dirty_ladder(controls, target, [], decompose)
    if k == 3:
        return mcx_dirty_ladder(controls, target, [borrowed], decompose)
    half = (k + 1) // 2
    first = controls[:half]
    second = controls[half:]
    gate_b = mcx_dirty_ladder(
        second + [borrowed], target, dirty=first, decompose=decompose
    )
    gate_a = mcx_dirty_ladder(
        first, borrowed, dirty=second + [target], decompose=decompose
    )
    return gate_b + gate_a + gate_b + gate_a


def mcx_auto(
    controls: Sequence[Qudit],
    target: Qudit,
    dirty: Sequence[Qudit],
    decompose: bool = True,
) -> list[GateOperation]:
    """Pick the cheapest dirty-ancilla C^k X the wire budget allows."""
    controls = list(controls)
    k = len(controls)
    if k <= 2 or len(dirty) >= k - 2:
        return mcx_dirty_ladder(controls, target, dirty, decompose)
    if dirty:
        return mcx_one_dirty(controls, target, dirty[0], decompose)
    raise DecompositionError(
        f"C^{k}X needs at least one borrowed wire (got none)"
    )


def build_one_dirty_ancilla(
    spec: GeneralizedToffoli, decompose: bool = True
) -> ConstructionResult:
    """The paper's QUBIT+ANCILLA benchmark: one borrowed bit, linear cost."""
    n = spec.num_controls
    controls = qubits(n)
    target = Qudit(n, QUBIT_D)
    borrowed = Qudit(n + 1, QUBIT_D)

    flips = [
        X.on(wire)
        for wire, value in zip(controls, spec.control_values)
        if value == 0
    ]
    for value in spec.control_values:
        if value > 1:
            raise DecompositionError(
                "qubit constructions support activation values 0 and 1 only"
            )
    core = mcx_one_dirty(controls, target, borrowed, decompose)
    circuit = Circuit(flips + core + flips)
    return ConstructionResult(
        circuit=circuit,
        controls=controls,
        target=target,
        spec=spec,
        name="qubit_one_dirty",
        borrowed_ancilla=[borrowed],
    )
