"""Data generators and text renderers for the paper's figures.

* Figure 9 — circuit depth vs N for QUBIT, QUBIT+ANCILLA, QUTRIT.
* Figure 10 — two-qudit gate count vs N for the same three circuits.
* Figure 11 — mean fidelity of each circuit under each noise model.

The paper's reported fits are included as reference lines so measured
values can be eyeballed against them in the bench output.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from ..noise.model import NoiseModel
from ..sim.fidelity import FidelityEstimate
from .metrics import construction_metrics

#: The three benchmark circuits of Figures 9-11, paper label -> registry name.
BENCHMARK_CIRCUITS: dict[str, str] = {
    "QUBIT": "qubit_ancilla_free",
    "QUBIT+ANCILLA": "qubit_one_dirty",
    "QUTRIT": "qutrit_tree",
}

#: Paper-reported asymptotic fits (Figures 9 and 10).
PAPER_DEPTH_FITS: dict[str, Callable[[float], float]] = {
    "QUBIT": lambda n: 633.0 * n,
    "QUBIT+ANCILLA": lambda n: 76.0 * n,
    "QUTRIT": lambda n: 38.0 * np.log2(n),
}
PAPER_COUNT_FITS: dict[str, Callable[[float], float]] = {
    "QUBIT": lambda n: 397.0 * n,
    "QUBIT+ANCILLA": lambda n: 48.0 * n,
    "QUTRIT": lambda n: 6.0 * n,
}

#: Paper-reported Figure 11 fidelities (percent), (circuit, model) -> value.
PAPER_FIG11_PERCENT: dict[tuple[str, str], float] = {
    ("QUBIT", "SC"): 0.01,
    ("QUBIT", "SC+T1"): 0.56,
    ("QUBIT", "SC+GATES"): 0.01,
    ("QUBIT", "SC+T1+GATES"): 26.1,
    ("QUBIT+ANCILLA", "SC"): 18.5,
    ("QUBIT+ANCILLA", "SC+T1"): 52.3,
    ("QUBIT+ANCILLA", "SC+GATES"): 30.2,
    ("QUBIT+ANCILLA", "SC+T1+GATES"): 84.1,
    ("QUTRIT", "SC"): 56.8,
    ("QUTRIT", "SC+T1"): 65.9,
    ("QUTRIT", "SC+GATES"): 83.1,
    ("QUTRIT", "SC+T1+GATES"): 94.7,
    ("QUBIT", "TI_QUBIT"): 44.7,
    ("QUBIT+ANCILLA", "TI_QUBIT"): 89.9,
    ("QUTRIT", "BARE_QUTRIT"): 94.9,
    ("QUTRIT", "DRESSED_QUTRIT"): 96.1,
}


def fig9_depth_data(
    control_counts: Sequence[int],
) -> dict[str, list[int]]:
    """Measured depth per benchmark circuit across N (Figure 9's series)."""
    return {
        label: [
            construction_metrics(name, n).depth for n in control_counts
        ]
        for label, name in BENCHMARK_CIRCUITS.items()
    }


def fig10_gate_count_data(
    control_counts: Sequence[int],
) -> dict[str, list[int]]:
    """Measured two-qudit gate counts across N (Figure 10's series)."""
    return {
        label: [
            construction_metrics(name, n).two_qudit_gates
            for n in control_counts
        ]
        for label, name in BENCHMARK_CIRCUITS.items()
    }


@dataclass(frozen=True)
class Fig11Point:
    """One bar of Figure 11: a circuit/noise-model fidelity estimate."""

    circuit_label: str
    noise_model: str
    estimate: FidelityEstimate
    paper_percent: float | None


def fig11_fidelity_data(
    pairs: Sequence[tuple[str, NoiseModel]],
    num_controls: int,
    trials: int,
    seed: int = 2019,
) -> list[Fig11Point]:
    """Run the Figure 11 experiment for the given (circuit, model) pairs.

    ``num_controls`` is 13 in the paper (14-input gate); benchmarks default
    to a smaller width so the suite stays minutes-scale, with the full size
    behind an environment flag.
    """
    from ..execution.facade import execute

    points = []
    for offset, (label, model) in enumerate(pairs):
        run = execute(
            BENCHMARK_CIRCUITS[label],
            num_controls=num_controls,
            backend="trajectory",
            noise_model=model,
            trials=trials,
            seed=seed + offset,
        )
        estimate = replace(run.estimate, circuit_name=label)
        points.append(
            Fig11Point(
                circuit_label=label,
                noise_model=model.name,
                estimate=estimate,
                paper_percent=PAPER_FIG11_PERCENT.get((label, model.name)),
            )
        )
    return points


def render_series_table(
    control_counts: Sequence[int],
    measured: Mapping[str, Sequence[float]],
    paper_fits: Mapping[str, Callable[[float], float]],
    value_name: str,
) -> str:
    """Measured-vs-paper table for a Figure 9/10 style sweep."""
    lines = [
        f"{'circuit':15s} {'N':>6s} {value_name + ' (measured)':>22s} "
        f"{'paper fit':>12s}"
    ]
    for label, series in measured.items():
        fit = paper_fits.get(label)
        for n, value in zip(control_counts, series):
            reference = f"{fit(n):12.0f}" if fit else " " * 12
            lines.append(f"{label:15s} {n:6d} {value:22.0f} {reference}")
    return "\n".join(lines)


def render_fidelity_bars(points: Sequence[Fig11Point]) -> str:
    """ASCII bar chart of Figure 11 with paper values alongside."""
    lines = [
        f"{'circuit':15s} {'noise model':15s} {'measured':>9s} "
        f"{'paper':>7s}  bar"
    ]
    for point in points:
        measured = 100 * point.estimate.mean_fidelity
        paper = (
            f"{point.paper_percent:6.1f}%"
            if point.paper_percent is not None
            else "   -   "
        )
        bar = "#" * int(round(measured / 2))
        lines.append(
            f"{point.circuit_label:15s} {point.noise_model:15s} "
            f"{measured:8.1f}% {paper}  {bar}"
        )
    return "\n".join(lines)
