"""Measurement, scaling fits, and paper table/figure renderers."""

from .metrics import CircuitMetrics, construction_metrics, sweep_constructions
from .scaling import ScalingFit, best_fit, fit_model, MODELS
from .tables import render_table1, render_table2, render_table3
from .figures import (
    fig9_depth_data,
    fig10_gate_count_data,
    fig11_fidelity_data,
    render_series_table,
    render_fidelity_bars,
)

__all__ = [
    "CircuitMetrics",
    "construction_metrics",
    "sweep_constructions",
    "ScalingFit",
    "best_fit",
    "fit_model",
    "MODELS",
    "render_table1",
    "render_table2",
    "render_table3",
    "fig9_depth_data",
    "fig10_gate_count_data",
    "fig11_fidelity_data",
    "render_series_table",
    "render_fidelity_bars",
]
