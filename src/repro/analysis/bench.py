"""Engine benchmarks: the paper's workloads, timed and logged.

``python -m repro bench`` runs the noise suites and writes the results
to ``BENCH_noise.json``, then runs the verification suite into
``BENCH_verify.json`` (the committed copies seed the repo's performance
trajectory; CI re-runs the smoke variants on every push):

* **density** — exact density-matrix evolution of a qutrit Generalized
  Toffoli under a noise preset, axis-local engine
  (:class:`~repro.sim.density.DensityMatrixSimulator`) vs the preserved
  v1 dense ``kron`` embedding
  (:class:`~repro.sim.dense_reference.DenseDensityMatrixSimulator`),
  with a parity check on the final operators;
* **trajectory** — the Figure 11 estimator, batched stacked-tensor
  engine (``batch_size=None``) vs the looped reference
  (``batch_size=1``) on one circuit/model pair;
* **workloads** — Table 2/3 style fidelity estimates (circuit construction
  x noise model) through the default batched engine, so the JSON records
  both wall-clock and the physics numbers they produce;
* **verification** (``BENCH_verify.json``) — exhaustive classical
  verification, batched permutation-table engine
  (:func:`~repro.toffoli.verification.verify_classical`) vs the looped
  per-input reference, plus the paper's Sec. 6 headline workload: the
  width-14 exhaustive check (qutrit tree, N=13 controls, all 2^14
  classical inputs), timed end to end;
* **routing** (``BENCH_route.json``) — the Sec. VII connectivity study:
  construction x topology x width, each routed by the greedy v1
  baseline and the lookahead v2 engine
  (:class:`~repro.arch.router.LookaheadRouter`), recording SWAP counts,
  depth inflation, and the closed-form noise-model fidelity proxy.
  Structural numbers (swaps, depths) are deterministic, so CI's
  bench-regression step compares a fresh smoke run against the
  committed JSON (:func:`check_route_regression`);
* **optimizer** (``BENCH_opt.json``) — the rewrite engine
  (:class:`~repro.optimize.RewriteEngine`) over the Fig. 9/10
  constructions, logical and line-routed, recording gate/two-qudit/
  depth reductions per pass and the equivalence-oracle verdict.
  Reductions are deterministic, so CI gates on them the same way
  (:func:`check_opt_regression`); wall-clock is recorded, never gated;
* **state** (``BENCH_state.json``) — the statevector-v2 engine: the
  permutation fast path vs the preserved dense-kernel oracle on an
  undecomposed qutrit tree (timed, with an exactness check), the
  batched counts sampler vs the per-shot reference (timed, with exact
  agreement / determinism / chi-square invariants), and the complex64
  bulk mode vs complex128 (timed, against the documented parity
  bound).  The boolean invariants are deterministic and CI gates on
  them (:func:`check_state_regression`); speedups are recorded, never
  gated.

All suites are seeded and deterministic in their *results*; timings are
hardware-dependent (the JSON records the platform).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..interop.bench import (
    INTEROP_SCHEMA,
    check_interop_regression,
    interop_record_key,
    render_interop_table,
    run_interop_bench,
)
from ..noise.model import NoiseModel
from ..noise.presets import (
    BARE_QUTRIT,
    DRESSED_QUTRIT,
    SC,
    SC_T1_GATES,
    TI_QUBIT,
)
from ..resilience.chaos import (
    CHAOS_SCHEMA,
    check_chaos_regression,
    render_chaos_report,
    run_chaos_bench,
)
from ..service.loadgen import (
    SERVE_SCHEMA,
    check_serve_regression,
    render_serve_report,
    run_serve_bench,
)
from ..sim.dense_reference import DenseDensityMatrixSimulator
from ..sim.density import DensityMatrixSimulator
from ..sim.fidelity import estimate_circuit_fidelity
from ..sim.kernels import mixed_radix_weights
from ..sim.measurement import sample_counts, sample_state
from ..sim.state import StateVector
from ..sim.statevector import StateVectorSimulator
from ..toffoli.registry import build_toffoli, construction_circuit
from ..toffoli.verification import (
    verify_classical,
    verify_classical_looped,
)

__all__ = [
    "SCHEMA",
    "VERIFY_SCHEMA",
    "ROUTE_SCHEMA",
    "SERVE_SCHEMA",
    "CHAOS_SCHEMA",
    "OPT_SCHEMA",
    "STATE_SCHEMA",
    "INTEROP_SCHEMA",
    "run_bench",
    "run_verify_bench",
    "run_route_bench",
    "run_serve_bench",
    "run_chaos_bench",
    "run_opt_bench",
    "run_state_bench",
    "run_interop_bench",
    "render_report",
    "render_verify_report",
    "render_route_report",
    "render_serve_report",
    "render_chaos_report",
    "render_opt_report",
    "render_state_report",
    "render_interop_table",
    "check_route_regression",
    "check_serve_regression",
    "check_chaos_regression",
    "check_opt_regression",
    "check_state_regression",
    "check_interop_regression",
    "route_record_key",
    "opt_record_key",
    "state_record_key",
    "interop_record_key",
    "write_report",
    "BenchSuite",
    "BENCH_SUITES",
]

#: Schema tag written into the JSON, so later PRs can evolve the format.
SCHEMA = "repro-bench-noise/v1"

#: Schema tag of the verification report (``BENCH_verify.json``).
VERIFY_SCHEMA = "repro-bench-verify/v1"

#: Schema tag of the routing report (``BENCH_route.json``).
ROUTE_SCHEMA = "repro-bench-route/v1"

#: Schema tag of the optimizer report (``BENCH_opt.json``).
OPT_SCHEMA = "repro-bench-opt/v1"

#: Schema tag of the statevector report (``BENCH_state.json``).
STATE_SCHEMA = "repro-bench-state/v1"



def _best_of(repeats: int, task: Callable[[], object]) -> tuple[float, object]:
    """Minimum wall-clock over ``repeats`` runs (and the last result)."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = task()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_density(
    num_controls: int = 4,
    model: NoiseModel = SC,
    repeats: int = 2,
    construction: str = "qutrit_tree",
) -> dict:
    """Axis-local vs dense-``kron`` density evolution on one circuit.

    The default (``num_controls=4``) is the acceptance workload: a
    5-wire qutrit Generalized Toffoli, 243-dimensional Hilbert space.
    """
    circuit = construction_circuit(construction, num_controls)
    wires = circuit.all_qudits()
    initial = StateVector.zero(wires)
    new_sim = DensityMatrixSimulator(model)
    old_sim = DenseDensityMatrixSimulator(model)
    # Warm the kernel caches outside the timed region: steady-state cost
    # is what execute() users see across sweeps and repeated runs.
    new_sim.run(circuit, initial)
    new_seconds, rho_new = _best_of(
        repeats, lambda: new_sim.run(circuit, initial)
    )
    old_seconds, rho_old = _best_of(
        repeats, lambda: old_sim.run(circuit, initial)
    )
    max_diff = float(np.abs(rho_new.matrix - rho_old.matrix).max())
    return {
        "workload": f"{construction}(N={num_controls}) density evolution",
        "construction": construction,
        "num_controls": num_controls,
        "wires": len(wires),
        "hilbert_dim": int(np.prod([w.dimension for w in wires])),
        "noise_model": model.name,
        "operations": circuit.num_operations,
        "axis_local_seconds": new_seconds,
        "dense_kron_seconds": old_seconds,
        "speedup": old_seconds / new_seconds,
        "parity_max_abs_diff": max_diff,
    }


def bench_trajectory(
    num_controls: int = 4,
    model: NoiseModel = SC,
    trials: int = 200,
    seed: int = 2019,
    repeats: int = 1,
    construction: str = "qutrit_tree",
) -> dict:
    """Batched vs looped trajectory estimation on one circuit/model."""
    circuit = construction_circuit(construction, num_controls)

    def run(batch_size: int | None):
        return estimate_circuit_fidelity(
            circuit, model, trials=trials, seed=seed,
            batch_size=batch_size,
        )

    batched_seconds, batched = _best_of(repeats, lambda: run(None))
    looped_seconds, looped = _best_of(repeats, lambda: run(1))
    return {
        "workload": (
            f"{construction}(N={num_controls}) x {trials} trajectories"
        ),
        "construction": construction,
        "num_controls": num_controls,
        "noise_model": model.name,
        "trials": trials,
        "seed": seed,
        "batched_seconds": batched_seconds,
        "looped_seconds": looped_seconds,
        "speedup": looped_seconds / batched_seconds,
        "batched_mean_fidelity": batched.mean_fidelity,
        "looped_mean_fidelity": looped.mean_fidelity,
        # Agreement scale for the two engines' independent streams.
        "combined_two_sigma": batched.two_sigma + looped.two_sigma,
    }


#: Figure 11 / Tables 2-3 style pairs: construction x noise model.
WORKLOAD_PAIRS: tuple[tuple[str, NoiseModel], ...] = (
    ("qubit_ancilla_free", SC),
    ("qutrit_tree", SC),
    ("qutrit_tree", SC_T1_GATES),
    ("qutrit_tree", TI_QUBIT),
    ("qutrit_tree", BARE_QUTRIT),
    ("qutrit_tree", DRESSED_QUTRIT),
)


def bench_workloads(
    num_controls: int = 4,
    trials: int = 100,
    seed: int = 2019,
    pairs: tuple[tuple[str, NoiseModel], ...] = WORKLOAD_PAIRS,
) -> list[dict]:
    """Timed Table 2/3 style fidelity estimates on the batched engine."""
    records = []
    for construction, model in pairs:
        circuit = construction_circuit(construction, num_controls)
        start = time.perf_counter()
        estimate = estimate_circuit_fidelity(
            circuit, model, trials=trials, seed=seed,
            circuit_name=construction,
        )
        seconds = time.perf_counter() - start
        records.append(
            {
                "construction": construction,
                "num_controls": num_controls,
                "noise_model": model.name,
                "trials": trials,
                "seed": seed,
                "seconds": seconds,
                "mean_fidelity": estimate.mean_fidelity,
                "two_sigma": estimate.two_sigma,
                "mean_gate_errors": estimate.mean_gate_errors,
                "mean_idle_jumps": estimate.mean_idle_jumps,
            }
        )
    return records


def bench_verify_speedup(
    num_controls: int = 8,
    repeats: int = 3,
    construction: str = "qutrit_tree",
) -> dict:
    """Batched vs looped exhaustive classical verification of one circuit.

    The default (``num_controls=8``) is the acceptance workload: the
    undecomposed qutrit tree, 2^9 classical inputs, checked through the
    batched permutation-table engine and through the per-input looped
    reference.  Both paths are warmed once before timing (the lowering
    and permutation caches are process-wide steady state, exactly like
    the noise suites' kernel warmup).
    """
    result = build_toffoli(construction, num_controls, decompose=False)
    batched_count = verify_classical(result)
    looped_count = verify_classical_looped(result)
    batched_seconds, _ = _best_of(
        repeats, lambda: verify_classical(result)
    )
    looped_seconds, _ = _best_of(
        repeats, lambda: verify_classical_looped(result)
    )
    return {
        "workload": (
            f"{construction}(N={num_controls}) exhaustive verification"
        ),
        "construction": construction,
        "num_controls": num_controls,
        "width": len(result.all_wires),
        "inputs": batched_count,
        "operations": result.circuit.num_operations,
        "batched_seconds": batched_seconds,
        "looped_seconds": looped_seconds,
        "speedup": looped_seconds / batched_seconds,
        "decisions_agree": batched_count == looped_count,
    }


def bench_verify_width14(
    num_controls: int = 13,
    construction: str = "qutrit_tree",
    repeats: int = 1,
) -> dict:
    """The paper's Sec. 6 headline: exhaustively verify a width-14 circuit.

    The qutrit tree at ``N=13`` controls spans 14 wires; all ``2^14``
    classical inputs run through the batched engine in one pass, and the
    wall-clock is recorded — the claim the paper makes ("all classical
    inputs up to width 14"), timed and committed.
    """
    result = build_toffoli(construction, num_controls, decompose=False)
    checked = verify_classical(result)
    seconds, _ = _best_of(repeats, lambda: verify_classical(result))
    return {
        "workload": (
            f"{construction}(N={num_controls}) width-"
            f"{len(result.all_wires)} exhaustive check"
        ),
        "construction": construction,
        "num_controls": num_controls,
        "width": len(result.all_wires),
        "inputs": checked,
        "operations": result.circuit.num_operations,
        "seconds": seconds,
        "completed": True,
    }


def run_verify_bench(smoke: bool = False) -> dict:
    """Run the verification suite and return the JSON-ready report.

    ``smoke`` shrinks the workloads (5-control speedup pair, width-10
    exhaustive check) so CI finishes in well under a second; the full
    run is the acceptance pair: the N=8 speedup and the paper's
    width-14 (N=13) exhaustive check.
    """
    if smoke:
        speedup = bench_verify_speedup(num_controls=5, repeats=2)
        widest = bench_verify_width14(num_controls=9)
    else:
        speedup = bench_verify_speedup(num_controls=8, repeats=3)
        widest = bench_verify_width14(num_controls=13)
    return {
        "schema": VERIFY_SCHEMA,
        "generated_by": "python -m repro bench"
        + (" --smoke" if smoke else ""),
        "smoke": smoke,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "speedup": speedup,
        "width14": widest,
    }


def render_verify_report(report: dict) -> str:
    """Human-readable summary of :func:`run_verify_bench` output."""
    speedup = report["speedup"]
    widest = report["width14"]
    return "\n".join(
        [
            f"verification bench "
            f"({'smoke' if report['smoke'] else 'full'})",
            "",
            f"speedup    {speedup['workload']} "
            f"({speedup['inputs']} inputs):",
            f"  batched    {speedup['batched_seconds'] * 1000:8.2f} ms",
            f"  looped     {speedup['looped_seconds'] * 1000:8.2f} ms",
            f"  speedup    {speedup['speedup']:8.1f} x",
            "",
            f"exhaustive {widest['workload']}:",
            f"  {widest['inputs']} inputs x {widest['operations']} ops "
            f"in {widest['seconds'] * 1000:.1f} ms",
        ]
    )


# ----------------------------------------------------------------------
# Routing suite (BENCH_route.json)
# ----------------------------------------------------------------------

#: Topology zoo kinds swept by the routing suite (sized per circuit).
ROUTE_TOPOLOGIES: tuple[str, ...] = (
    "line",
    "grid_2d",
    "ring",
    "tree",
    "heavy_hex",
    "all_to_all",
)

#: Constructions swept: the paper's qutrit tree vs a qubit baseline.
ROUTE_CONSTRUCTIONS: tuple[str, ...] = ("qutrit_tree", "qubit_one_dirty")

#: Control counts of the full routing sweep (smoke keeps a prefix, so
#: smoke records always join against the committed full report).
ROUTE_WIDTHS: tuple[int, ...] = (4, 8, 12)
ROUTE_SMOKE_WIDTHS: tuple[int, ...] = (4, 8)


def bench_route_case(
    construction: str,
    num_controls: int,
    topology_kind: str,
    router: str,
    model: NoiseModel = SC,
    repeats: int = 1,
) -> dict:
    """Route one construction onto one sized topology; returns the record.

    The structural outputs (swap count, depths, overheads) are
    deterministic for a given library version — that is what the CI
    regression gate compares — while ``seconds`` records wall-clock.
    """
    from ..arch.metrics import routing_metrics
    from ..arch.router import resolve_router
    from ..arch.topology import sized_topology

    circuit = construction_circuit(construction, num_controls)
    wires = circuit.all_qudits()
    topology = sized_topology(topology_kind, len(wires))
    engine = resolve_router(router)
    seconds, routed = _best_of(
        repeats,
        lambda: engine.route(circuit, topology, wires=wires),
    )
    metrics = routing_metrics(circuit, routed, model)
    record = metrics.to_dict()
    record.update(
        {
            "construction": construction,
            "num_controls": num_controls,
            "wires": len(wires),
            "topology_kind": topology_kind,
            "topology": topology.name,
            "sites": topology.size,
            "noise_model": model.name,
            "seconds": seconds,
        }
    )
    return record


def route_record_key(record: dict) -> tuple:
    """The join key of one routing record (deterministic identity)."""
    return (
        record["construction"],
        record["num_controls"],
        record["topology_kind"],
        record["router"],
    )


def bench_route(
    constructions: tuple[str, ...] = ROUTE_CONSTRUCTIONS,
    topologies: tuple[str, ...] = ROUTE_TOPOLOGIES,
    widths: tuple[int, ...] = ROUTE_WIDTHS,
    model: NoiseModel = SC,
) -> list[dict]:
    """The full construction x topology x width x router sweep."""
    records = []
    for construction in constructions:
        for num_controls in widths:
            for kind in topologies:
                for router in ("greedy", "lookahead"):
                    records.append(
                        bench_route_case(
                            construction, num_controls, kind, router,
                            model=model,
                        )
                    )
    return records


def _route_headline(records: list[dict]) -> dict:
    """The acceptance claims, precomputed from the record list.

    * lookahead beats (or ties) greedy on swaps, per (construction,
      topology, width) pair — with the N>=8 qutrit-tree line/grid cells
      called out;
    * the qutrit tree's swap overhead stays flat across widths while
      the qubit baseline's grows (the Sec. VII trend).
    """
    by_key = {route_record_key(r): r for r in records}
    lookahead_wins = []
    for record in records:
        if record["router"] != "lookahead":
            continue
        greedy = by_key.get(
            (
                record["construction"],
                record["num_controls"],
                record["topology_kind"],
                "greedy",
            )
        )
        if greedy is None:
            continue
        lookahead_wins.append(
            {
                "construction": record["construction"],
                "num_controls": record["num_controls"],
                "topology_kind": record["topology_kind"],
                "greedy_swaps": greedy["swap_count"],
                "lookahead_swaps": record["swap_count"],
                "beats_greedy": (
                    record["swap_count"] <= greedy["swap_count"]
                ),
            }
        )

    def overhead_growth(construction: str, kind: str) -> float | None:
        per_width = sorted(
            (
                r["num_controls"], r["swap_overhead"]
            )
            for r in records
            if r["construction"] == construction
            and r["topology_kind"] == kind
            and r["router"] == "lookahead"
        )
        if len(per_width) < 2:
            return None
        first, last = per_width[0][1], per_width[-1][1]
        return last / first if first else None

    constructions = sorted({r["construction"] for r in records})
    kinds = sorted({r["topology_kind"] for r in records})
    return {
        "lookahead_vs_greedy": lookahead_wins,
        "swap_overhead_growth": {
            construction: {
                kind: overhead_growth(construction, kind) for kind in kinds
            }
            for construction in constructions
        },
    }


def run_route_bench(smoke: bool = False) -> dict:
    """Run the routing suite and return the JSON-ready report.

    ``smoke`` keeps the width prefix (:data:`ROUTE_SMOKE_WIDTHS`) so CI
    finishes fast while every smoke record still joins against the
    committed full report for the regression gate.
    """
    widths = ROUTE_SMOKE_WIDTHS if smoke else ROUTE_WIDTHS
    records = bench_route(widths=widths)
    return {
        "schema": ROUTE_SCHEMA,
        "generated_by": "python -m repro bench"
        + (" --smoke" if smoke else ""),
        "smoke": smoke,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "records": records,
        "headline": _route_headline(records),
    }


def render_route_report(report: dict) -> str:
    """Human-readable summary of :func:`run_route_bench` output."""
    lines = [
        f"routing bench ({'smoke' if report['smoke'] else 'full'})",
        "",
        f"{'construction':>18s} {'N':>3s} {'topology':>16s} "
        f"{'router':>9s} {'swaps':>6s} {'depth':>6s} {'overhead':>8s} "
        f"{'fid~':>7s}",
    ]
    for record in report["records"]:
        proxy = record.get("fidelity_proxy")
        lines.append(
            f"{record['construction']:>18s} {record['num_controls']:3d} "
            f"{record['topology']:>16s} {record['router']:>9s} "
            f"{record['swap_count']:6d} {record['routed_depth']:6d} "
            f"{record['depth_overhead']:8.2f} "
            + (f"{proxy:7.3f}" if proxy is not None else "      -")
        )
    growth = report["headline"]["swap_overhead_growth"]
    lines.append("")
    lines.append("swap-overhead growth (lookahead, widest/narrowest):")
    for construction, kinds in growth.items():
        cells = ", ".join(
            f"{kind}={value:.1f}x" if value is not None else f"{kind}=-"
            for kind, value in kinds.items()
        )
        lines.append(f"  {construction:>18s}: {cells}")
    return "\n".join(lines)


def check_route_regression(
    committed: dict, fresh: dict, factor: float = 3.0
) -> list[str]:
    """Compare a fresh routing report against the committed baseline.

    Joins records on :func:`route_record_key` and flags any case whose
    deterministic structural metrics (``swap_count``, ``routed_depth``)
    degraded by more than ``factor`` — the CI bench-regression gate.
    Records present on only one side are skipped (the smoke sweep is a
    width-prefix subset of the committed full sweep).  Returns the list
    of failure messages (empty = pass).
    """
    baseline = {route_record_key(r): r for r in committed["records"]}
    failures = []
    for record in fresh["records"]:
        base = baseline.get(route_record_key(record))
        if base is None:
            continue
        for metric in ("swap_count", "routed_depth"):
            allowed = factor * max(base[metric], 1)
            if record[metric] > allowed:
                failures.append(
                    f"{record['construction']} N={record['num_controls']} "
                    f"{record['topology_kind']}/{record['router']}: "
                    f"{metric} {record[metric]} exceeds {factor:g}x "
                    f"committed {base[metric]}"
                )
    return failures


#: Optimizer sweep: the Figure 9/10 constructions with structure the
#: rewrite passes can act on, plus the paper's tight qutrit circuits
#: (which must come back *unchanged* at the logical stage — also a
#: claim worth pinning).
OPT_CONSTRUCTIONS: tuple[str, ...] = (
    "qutrit_tree",
    "he_tree",
    "qubit_one_dirty",
    "qubit_ancilla_free",
)

#: Control counts of the optimizer sweep (smoke keeps a prefix, so
#: smoke records always join against the committed full report).
OPT_WIDTHS: tuple[int, ...] = (3, 5, 7)
OPT_SMOKE_WIDTHS: tuple[int, ...] = (3, 5)

#: Optimizer stages benchmarked: the logical circuit as built, and the
#: same circuit after lookahead routing onto a sized line (the worst
#: zoo topology for these circuits, hence the richest SWAP structure).
OPT_STAGES: tuple[str, ...] = ("logical", "routed")


def bench_opt_case(
    construction: str, num_controls: int, stage: str
) -> dict:
    """Optimize one construction at one stage; returns the record.

    All structural outputs (gate/depth deltas, per-pass counts, the
    oracle used) are deterministic for a given library version — that
    is what the CI regression gate compares — while ``seconds`` records
    wall-clock.  Verification runs in ``"auto"`` mode: every case whose
    joint space fits an oracle is checked end to end, larger ones
    record ``"skipped"``.
    """
    from ..arch.router import resolve_router
    from ..arch.topology import sized_topology
    from ..optimize import RewriteEngine, clear_commutation_cache

    circuit = construction_circuit(construction, num_controls)
    if stage == "routed":
        wires = circuit.all_qudits()
        topology = sized_topology("line", len(wires))
        circuit = resolve_router("lookahead").route(
            circuit, topology, wires=wires
        ).circuit
    elif stage != "logical":
        raise ValueError(f"unknown optimizer bench stage {stage!r}")

    clear_commutation_cache()
    engine = RewriteEngine(verify="auto")
    seconds, outcome = _best_of(1, lambda: engine.run(circuit))
    _, report = outcome
    passes = {
        name: {
            "applications": stats.applications,
            "gates_removed": stats.gates_removed,
            "gates_fused": stats.gates_fused,
            "accepted": stats.accepted,
        }
        for name, stats in report.totals().items()
    }
    return {
        "construction": construction,
        "num_controls": num_controls,
        "stage": stage,
        "gates_before": report.cost_before.total_gates,
        "gates_after": report.cost_after.total_gates,
        "two_qudit_before": report.cost_before.two_qudit_gates,
        "two_qudit_after": report.cost_after.two_qudit_gates,
        "depth_before": report.cost_before.depth,
        "depth_after": report.cost_after.depth,
        "gates_removed": report.gates_removed,
        "depth_removed": report.depth_removed,
        "iterations": report.iterations,
        "verified": report.verified,
        "passes": passes,
        "seconds": seconds,
    }


def opt_record_key(record: dict) -> tuple:
    """The join key of one optimizer record (deterministic identity)."""
    return (
        record["construction"], record["num_controls"], record["stage"]
    )


def bench_opt(
    constructions: tuple[str, ...] = OPT_CONSTRUCTIONS,
    widths: tuple[int, ...] = OPT_WIDTHS,
    stages: tuple[str, ...] = OPT_STAGES,
) -> list[dict]:
    """The full construction x width x stage optimizer sweep."""
    return [
        bench_opt_case(construction, num_controls, stage)
        for construction in constructions
        for num_controls in widths
        for stage in stages
    ]


def _opt_headline(records: list[dict]) -> dict:
    """The acceptance claims, precomputed from the record list.

    For every rewrite pass: the cases where it was accepted (it
    strictly improved the cost score on that circuit), so the committed
    JSON proves each pass earns its keep on at least one Figure 9/10
    construction; plus how many cases the equivalence oracles covered.
    """
    pass_wins: dict[str, list[dict]] = {}
    for record in records:
        for name, stats in record["passes"].items():
            if not stats["accepted"]:
                continue
            pass_wins.setdefault(name, []).append(
                {
                    "construction": record["construction"],
                    "num_controls": record["num_controls"],
                    "stage": record["stage"],
                    "gates_removed": record["gates_removed"],
                    "depth_removed": record["depth_removed"],
                }
            )
    verified = [r for r in records if r["verified"] in (
        "classical", "statevector"
    )]
    return {
        "pass_wins": pass_wins,
        "cases": len(records),
        "cases_verified": len(verified),
        "total_gates_removed": sum(r["gates_removed"] for r in records),
        "total_depth_removed": sum(r["depth_removed"] for r in records),
    }


def run_opt_bench(smoke: bool = False) -> dict:
    """Run the optimizer suite and return the JSON-ready report.

    ``smoke`` keeps the width prefix (:data:`OPT_SMOKE_WIDTHS`) so CI
    finishes fast while every smoke record still joins against the
    committed full report for the regression gate.
    """
    widths = OPT_SMOKE_WIDTHS if smoke else OPT_WIDTHS
    records = bench_opt(widths=widths)
    return {
        "schema": OPT_SCHEMA,
        "generated_by": "python -m repro bench"
        + (" --smoke" if smoke else ""),
        "smoke": smoke,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "records": records,
        "headline": _opt_headline(records),
    }


def render_opt_report(report: dict) -> str:
    """Human-readable summary of :func:`run_opt_bench` output."""
    lines = [
        f"optimizer bench ({'smoke' if report['smoke'] else 'full'})",
        "",
        f"{'construction':>18s} {'N':>3s} {'stage':>8s} "
        f"{'gates':>11s} {'2q':>9s} {'depth':>11s} {'oracle':>12s}",
    ]
    for record in report["records"]:
        lines.append(
            f"{record['construction']:>18s} {record['num_controls']:3d} "
            f"{record['stage']:>8s} "
            f"{record['gates_before']:5d}>{record['gates_after']:<5d} "
            f"{record['two_qudit_before']:4d}>{record['two_qudit_after']:<4d} "
            f"{record['depth_before']:5d}>{record['depth_after']:<5d} "
            f"{record['verified'] or '-':>12s}"
        )
    headline = report["headline"]
    lines.append("")
    lines.append(
        f"totals: {headline['total_gates_removed']} gates and "
        f"{headline['total_depth_removed']} depth removed across "
        f"{headline['cases']} cases "
        f"({headline['cases_verified']} oracle-verified)"
    )
    lines.append("pass wins (cases where the pass improved the score):")
    for name, wins in headline["pass_wins"].items():
        cells = ", ".join(
            f"{w['construction']}/N={w['num_controls']}/{w['stage']}"
            for w in wins[:4]
        )
        more = f" (+{len(wins) - 4} more)" if len(wins) > 4 else ""
        lines.append(f"  {name:>16s}: {cells}{more}")
    return "\n".join(lines)


def check_opt_regression(committed: dict, fresh: dict) -> list[str]:
    """Compare a fresh optimizer report against the committed baseline.

    Joins records on :func:`opt_record_key` and flags any case whose
    deterministic reductions shrank below the committed numbers
    (``gates_removed`` / ``depth_removed``), or whose equivalence
    verification regressed from an oracle to skipped/absent — the CI
    bench-regression gate.  Wall-clock is never compared.  Records
    present on only one side are skipped (the smoke sweep is a
    width-prefix subset of the committed full sweep).  Returns the list
    of failure messages (empty = pass).
    """
    baseline = {opt_record_key(r): r for r in committed["records"]}
    failures = []
    for record in fresh["records"]:
        base = baseline.get(opt_record_key(record))
        if base is None:
            continue
        label = (
            f"{record['construction']} N={record['num_controls']} "
            f"{record['stage']}"
        )
        for metric in ("gates_removed", "depth_removed"):
            if record[metric] < base[metric]:
                failures.append(
                    f"{label}: {metric} {record[metric]} below "
                    f"committed {base[metric]}"
                )
        oracles = ("classical", "statevector")
        if base["verified"] in oracles and record["verified"] not in oracles:
            failures.append(
                f"{label}: equivalence verification regressed from "
                f"{base['verified']} to {record['verified']}"
            )
    return failures


# ----------------------------------------------------------------------
# Statevector suite (BENCH_state.json)
# ----------------------------------------------------------------------


def _ghz_circuit(width: int):
    """H + CNOT chain over ``width`` qubits — the sampling workload."""
    from ..circuits.circuit import Circuit
    from ..gates import CNOT, H
    from ..qudits import qubits

    wires = qubits(width)
    operations = [H.on(wires[0])]
    operations.extend(
        CNOT.on(wires[k], wires[k + 1]) for k in range(width - 1)
    )
    return Circuit(operations)


def bench_state_fastpath(
    num_controls: int = 10,
    repeats: int = 3,
    construction: str = "qutrit_tree",
    seed: int = 20190608,
) -> dict:
    """Permutation fast path vs the dense-kernel oracle on one circuit.

    The default (``num_controls=10``) is the acceptance workload: the
    undecomposed qutrit tree — every gate a 27x27 three-wire basis
    permutation — applied to a Haar-random state.  The fast path moves
    amplitudes by one table gather per gate; the oracle pays the full
    tensordot.  Both final states must agree *exactly* (a permutation
    contraction multiplies by exact ones and zeros), which is the gated
    invariant; the speedup is recorded, never gated.
    """
    result = build_toffoli(construction, num_controls, decompose=False)
    circuit = result.circuit
    wires = circuit.all_qudits()
    initial = StateVector.random(wires, np.random.default_rng(seed))
    fast_sim = StateVectorSimulator()
    dense_sim = StateVectorSimulator(permutation_fast_path=False)
    # Warm the table and kernel caches outside the timed region.
    fast_state = fast_sim.run(circuit, initial)
    dense_state = dense_sim.run(circuit, initial)
    parity = float(np.abs(fast_state.vector - dense_state.vector).max())
    fast_seconds, _ = _best_of(
        repeats, lambda: fast_sim.run(circuit, initial)
    )
    dense_seconds, _ = _best_of(
        repeats, lambda: dense_sim.run(circuit, initial)
    )
    return {
        "case": "fastpath",
        "workload": (
            f"{construction}(N={num_controls}) state-vector evolution"
        ),
        "construction": construction,
        "num_controls": num_controls,
        "wires": len(wires),
        "hilbert_dim": int(np.prod([w.dimension for w in wires])),
        "operations": circuit.num_operations,
        "seed": seed,
        "fast_seconds": fast_seconds,
        "dense_seconds": dense_seconds,
        "speedup": dense_seconds / fast_seconds,
        "parity_max_abs_diff": parity,
        "invariants": {"fastpath_parity_exact": bool(parity <= 1e-12)},
    }


def bench_state_sampling(
    width: int = 12,
    shots: int = 500_000,
    repeats: int = 3,
    seed: int = 20190608,
) -> dict:
    """Batched counts sampling vs the per-shot reference on a GHZ state.

    One state, two surfaces: :func:`~repro.sim.measurement.sample_counts`
    (chunked draws, unique-merge, no sample array) against
    :func:`~repro.sim.measurement.sample_state` followed by the
    vectorized histogram.  Gated invariants: the two agree exactly at
    one seed, counts are batch-size independent and re-run
    deterministic, and a chi-square GOF against the exact probabilities
    passes (all deterministic for the fixed seed).  Speedup recorded,
    never gated.
    """
    circuit = _ghz_circuit(width)
    state = StateVectorSimulator().run(circuit)

    batched = sample_counts(state, shots, rng=seed)
    looped = sample_state(state, shots, rng=seed)
    rebatched = sample_counts(
        state, shots, rng=seed, batch_size=max(1, shots // 7)
    )
    counts = batched.counts()
    agree = counts == looped.counts()
    batch_invariant = counts == rebatched.counts()
    deterministic = counts == sample_counts(state, shots, rng=seed).counts()

    # Chi-square GOF against the exact |amplitude|^2 distribution.
    # Deterministic for the fixed seed; critical value hardcoded
    # (alpha=0.01) because CI has no scipy.
    probabilities = np.abs(state.vector) ** 2
    expected = probabilities * shots
    support = expected > 0
    observed = np.zeros(probabilities.size, dtype=np.int64)
    dims = [w.dimension for w in state.wires]
    weights = mixed_radix_weights(dims)
    for outcome, count in counts.items():
        observed[int(np.dot(outcome, weights))] = count
    impossible = int(observed[~support].sum())
    statistic = float(
        (((observed[support] - expected[support]) ** 2)
         / expected[support]).sum()
    )
    dof = int(support.sum()) - 1
    critical = _chi2_critical_001.get(dof, float(dof + 4 * np.sqrt(dof)))
    chi_square_pass = impossible == 0 and statistic <= critical

    batched_seconds, _ = _best_of(
        repeats, lambda: sample_counts(state, shots, rng=seed)
    )
    looped_seconds, _ = _best_of(
        repeats, lambda: sample_state(state, shots, rng=seed).counts()
    )
    return {
        "case": "sampling",
        "workload": f"GHZ({width}) x {shots} shots",
        "width": width,
        "shots": shots,
        "seed": seed,
        "distinct_outcomes": len(counts),
        "batched_seconds": batched_seconds,
        "looped_seconds": looped_seconds,
        "speedup": looped_seconds / batched_seconds,
        "chi_square_statistic": statistic,
        "chi_square_dof": dof,
        "chi_square_critical": critical,
        "invariants": {
            "batched_equals_looped": bool(agree),
            "batch_size_invariant": bool(batch_invariant),
            "seed_deterministic": bool(deterministic),
            "chi_square_pass": bool(chi_square_pass),
        },
    }


#: chi-square critical values at alpha = 0.01 (no scipy in CI).
_chi2_critical_001 = {
    1: 6.635, 2: 9.210, 3: 11.345, 4: 13.277, 5: 15.086,
    6: 16.812, 7: 18.475, 8: 20.090, 9: 21.666, 10: 23.209,
}


def bench_state_dtype(
    num_controls: int = 7,
    repeats: int = 3,
    construction: str = "qubit_ancilla_free",
    seed: int = 20190608,
) -> dict:
    """complex64 bulk mode vs complex128 on a dense-gate circuit.

    The qubit ancilla-free construction decomposes into H/T/CNOT —
    plenty of genuinely dense kernels — so this times the per-precision
    cached contraction, not the (rounding-free) permutation gather.
    The gated invariant is the documented parity bound of
    docs/SIMULATORS.md: ``max |psi64 - psi128| <= operations *
    sqrt(hilbert_dim) * 1e-7``.  Speedup recorded, never gated.
    """
    circuit = construction_circuit(construction, num_controls)
    wires = circuit.all_qudits()
    initial = StateVector.random(wires, np.random.default_rng(seed))
    sim128 = StateVectorSimulator()
    sim64 = StateVectorSimulator(dtype=np.complex64)
    state128 = sim128.run(circuit, initial)
    state64 = sim64.run(circuit, initial)
    max_diff = float(
        np.abs(
            state64.vector.astype(np.complex128) - state128.vector
        ).max()
    )
    hilbert_dim = int(np.prod([w.dimension for w in wires]))
    bound = circuit.num_operations * np.sqrt(hilbert_dim) * 1e-7
    seconds128, _ = _best_of(repeats, lambda: sim128.run(circuit, initial))
    seconds64, _ = _best_of(repeats, lambda: sim64.run(circuit, initial))
    return {
        "case": "dtype",
        "workload": (
            f"{construction}(N={num_controls}) complex64 vs complex128"
        ),
        "construction": construction,
        "num_controls": num_controls,
        "wires": len(wires),
        "hilbert_dim": hilbert_dim,
        "operations": circuit.num_operations,
        "seed": seed,
        "complex128_seconds": seconds128,
        "complex64_seconds": seconds64,
        "speedup": seconds128 / seconds64,
        "max_abs_diff": max_diff,
        "documented_bound": float(bound),
        "invariants": {"within_documented_bound": bool(max_diff <= bound)},
    }


def state_record_key(record: dict) -> str:
    """The join key of one statevector record (the case name)."""
    return record["case"]


def run_state_bench(smoke: bool = False) -> dict:
    """Run the statevector suite and return the JSON-ready report.

    ``smoke`` shrinks every case (narrower circuits, fewer shots,
    single timing repeat) so CI finishes in a couple of seconds; the
    record *cases* are the same, so the smoke run always joins against
    the committed full report for the invariant gate.
    """
    if smoke:
        records = [
            bench_state_fastpath(num_controls=6, repeats=1),
            bench_state_sampling(width=8, shots=20_000, repeats=1),
            bench_state_dtype(num_controls=5, repeats=1),
        ]
    else:
        records = [
            bench_state_fastpath(num_controls=10, repeats=3),
            bench_state_sampling(width=12, shots=500_000, repeats=3),
            bench_state_dtype(num_controls=7, repeats=3),
        ]
    return {
        "schema": STATE_SCHEMA,
        "generated_by": "python -m repro bench"
        + (" --smoke" if smoke else ""),
        "smoke": smoke,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "records": records,
    }


def render_state_report(report: dict) -> str:
    """Human-readable summary of :func:`run_state_bench` output."""
    by_case = {state_record_key(r): r for r in report["records"]}
    fastpath = by_case["fastpath"]
    sampling = by_case["sampling"]
    dtype = by_case["dtype"]
    lines = [
        f"statevector bench ({'smoke' if report['smoke'] else 'full'})",
        "",
        f"fastpath  {fastpath['workload']} "
        f"({fastpath['operations']} ops, dim {fastpath['hilbert_dim']}):",
        f"  fast       {fastpath['fast_seconds'] * 1000:8.1f} ms",
        f"  dense      {fastpath['dense_seconds'] * 1000:8.1f} ms",
        f"  speedup    {fastpath['speedup']:8.1f} x   "
        f"(parity {fastpath['parity_max_abs_diff']:.1e})",
        "",
        f"sampling  {sampling['workload']}:",
        f"  batched    {sampling['batched_seconds'] * 1000:8.1f} ms",
        f"  looped     {sampling['looped_seconds'] * 1000:8.1f} ms",
        f"  speedup    {sampling['speedup']:8.1f} x   "
        f"(chi2 {sampling['chi_square_statistic']:.2f} <= "
        f"{sampling['chi_square_critical']:.2f})",
        "",
        f"dtype     {dtype['workload']} "
        f"({dtype['operations']} ops, dim {dtype['hilbert_dim']}):",
        f"  complex128 {dtype['complex128_seconds'] * 1000:8.1f} ms",
        f"  complex64  {dtype['complex64_seconds'] * 1000:8.1f} ms",
        f"  speedup    {dtype['speedup']:8.1f} x   "
        f"(diff {dtype['max_abs_diff']:.1e} <= "
        f"{dtype['documented_bound']:.1e})",
    ]
    invariants = {
        name: value
        for record in report["records"]
        for name, value in record["invariants"].items()
    }
    failed = [name for name, value in invariants.items() if not value]
    lines.append("")
    lines.append(
        "invariants: "
        + (
            "all pass"
            if not failed
            else "FAILED " + ", ".join(failed)
        )
    )
    return "\n".join(lines)


def check_state_regression(committed: dict, fresh: dict) -> list[str]:
    """Compare a fresh statevector report against the committed baseline.

    Joins records on :func:`state_record_key` and checks every boolean
    invariant of the fresh run holds — exact fast-path parity, exact
    batched/looped sampler agreement, batch-size invariance, seeded
    determinism, the chi-square GOF, and the complex64 parity bound.
    All are deterministic; wall-clock and speedups are never compared.
    An invariant the committed report records but the fresh run no
    longer reports also fails (silent coverage loss).  Returns the list
    of failure messages (empty = pass).
    """
    baseline = {state_record_key(r): r for r in committed["records"]}
    failures = []
    for record in fresh["records"]:
        base = baseline.get(state_record_key(record))
        if base is None:
            continue
        for name in base["invariants"]:
            if name not in record["invariants"]:
                failures.append(
                    f"{record['case']}: invariant {name} present in the "
                    f"committed report but missing from the fresh run"
                )
        for name, value in record["invariants"].items():
            if not value:
                failures.append(
                    f"{record['case']}: invariant {name} failed "
                    f"({record['workload']})"
                )
    return failures


def run_bench(smoke: bool = False, seed: int = 2019) -> dict:
    """Run every suite and return the JSON-ready report.

    ``smoke`` shrinks the workloads (4 wires, fewer trials, single
    timing repeat) so CI finishes in seconds; the full run uses the
    5-wire acceptance workload.
    """
    if smoke:
        density = bench_density(num_controls=3, repeats=1)
        trajectory = bench_trajectory(
            num_controls=3, trials=60, seed=seed, repeats=1
        )
        workloads = bench_workloads(
            num_controls=3, trials=30, seed=seed,
            pairs=(("qutrit_tree", SC), ("qutrit_tree", DRESSED_QUTRIT)),
        )
    else:
        density = bench_density(num_controls=4, repeats=2)
        trajectory = bench_trajectory(
            num_controls=4, trials=300, seed=seed, repeats=1
        )
        workloads = bench_workloads(num_controls=4, trials=150, seed=seed)
    return {
        "schema": SCHEMA,
        "generated_by": "python -m repro bench"
        + (" --smoke" if smoke else ""),
        "smoke": smoke,
        "seed": seed,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "density": density,
        "trajectory": trajectory,
        "workloads": workloads,
    }


def render_report(report: dict) -> str:
    """Human-readable summary of :func:`run_bench` output."""
    density = report["density"]
    trajectory = report["trajectory"]
    lines = [
        f"noise bench ({'smoke' if report['smoke'] else 'full'}, "
        f"seed {report['seed']})",
        "",
        f"density   {density['workload']} under {density['noise_model']}:",
        f"  axis-local {density['axis_local_seconds'] * 1000:8.1f} ms",
        f"  dense kron {density['dense_kron_seconds'] * 1000:8.1f} ms",
        f"  speedup    {density['speedup']:8.1f} x   "
        f"(parity {density['parity_max_abs_diff']:.1e})",
        "",
        f"trajectory {trajectory['workload']} under "
        f"{trajectory['noise_model']}:",
        f"  batched    {trajectory['batched_seconds'] * 1000:8.1f} ms",
        f"  looped     {trajectory['looped_seconds'] * 1000:8.1f} ms",
        f"  speedup    {trajectory['speedup']:8.1f} x",
        "",
        "workloads (batched engine):",
    ]
    for record in report["workloads"]:
        lines.append(
            f"  {record['construction']:>14s} x {record['noise_model']:<14s}"
            f" {record['mean_fidelity'] * 100:6.2f}% "
            f"(+/- {record['two_sigma'] * 100:.2f}%)"
            f" in {record['seconds'] * 1000:7.1f} ms"
        )
    return "\n".join(lines)


def write_report(report: dict, path: str | Path) -> Path:
    """Serialize the report to ``path`` (pretty-printed, trailing NL)."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


@dataclass(frozen=True)
class BenchSuite:
    """One registered benchmark suite behind ``repro bench --suite``.

    ``run`` takes ``(smoke, seed)`` regardless of whether the underlying
    runner is seeded — unseeded suites ignore the argument — so the CLI
    can drive every suite through one code path.  ``check`` is ``None``
    for timing-only suites that have no committed-baseline gate.
    """

    name: str
    run: Callable[[bool, int], dict]
    render: Callable[[dict], str]
    default_out: str
    check: "Callable[[dict, dict], list[str]] | None" = None


#: Every benchmark suite, in the order the legacy all-in-one
#: ``repro bench`` invocation ran them (interop, the newest, is last).
#: All callables bind late through this module's globals, so
#: monkeypatching ``repro.analysis.bench.run_route_bench`` (as the CLI
#: tests do) also redirects the registry.
BENCH_SUITES: dict[str, BenchSuite] = {
    suite.name: suite
    for suite in (
        BenchSuite(
            "noise",
            lambda smoke, seed: run_bench(smoke=smoke, seed=seed),
            lambda report: render_report(report),
            "BENCH.json",
        ),
        BenchSuite(
            "verify",
            lambda smoke, seed: run_verify_bench(smoke=smoke),
            lambda report: render_verify_report(report),
            "BENCH_verify.json",
        ),
        BenchSuite(
            "route",
            lambda smoke, seed: run_route_bench(smoke=smoke),
            lambda report: render_route_report(report),
            "BENCH_route.json",
            lambda committed, fresh: check_route_regression(
                committed, fresh
            ),
        ),
        BenchSuite(
            "opt",
            lambda smoke, seed: run_opt_bench(smoke=smoke),
            lambda report: render_opt_report(report),
            "BENCH_opt.json",
            lambda committed, fresh: check_opt_regression(
                committed, fresh
            ),
        ),
        BenchSuite(
            "state",
            lambda smoke, seed: run_state_bench(smoke=smoke),
            lambda report: render_state_report(report),
            "BENCH_state.json",
            lambda committed, fresh: check_state_regression(
                committed, fresh
            ),
        ),
        BenchSuite(
            "serve",
            lambda smoke, seed: run_serve_bench(smoke=smoke, seed=seed),
            lambda report: render_serve_report(report),
            "BENCH_serve.json",
            lambda committed, fresh: check_serve_regression(
                committed, fresh
            ),
        ),
        BenchSuite(
            "chaos",
            lambda smoke, seed: run_chaos_bench(smoke=smoke, seed=seed),
            lambda report: render_chaos_report(report),
            "BENCH_chaos.json",
            lambda committed, fresh: check_chaos_regression(
                committed, fresh
            ),
        ),
        BenchSuite(
            "interop",
            lambda smoke, seed: run_interop_bench(smoke=smoke),
            lambda report: render_interop_table(report),
            "BENCH_interop.json",
            lambda committed, fresh: check_interop_regression(
                committed, fresh
            ),
        ),
    )
}
