"""Text renderers for the paper's tables.

Table 1 — asymptotic comparison of the Generalized Toffoli constructions,
regenerated from *measured* circuits plus scaling fits.
Tables 2 and 3 — the noise-model parameter tables, regenerated from the
preset definitions (with the derived per-channel probabilities shown).
"""

from __future__ import annotations

from typing import Sequence

from ..noise.model import NoiseModel
from ..noise.presets import SUPERCONDUCTING_MODELS, TRAPPED_ION_MODELS
from ..toffoli.registry import CONSTRUCTIONS
from .metrics import sweep_constructions
from .scaling import best_fit


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def _render_grid(header: Sequence[str], rows: list[Sequence[str]]) -> str:
    widths = [
        max(len(str(header[col])), *(len(str(r[col])) for r in rows))
        for col in range(len(header))
    ]
    lines = [_format_row(header, widths)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(_format_row([str(c) for c in row], widths) for row in rows)
    return "\n".join(lines)


def render_table1(
    control_counts: Sequence[int] = (4, 8, 16, 32, 64),
) -> str:
    """Table 1: depth scaling, ancilla and qudit types per construction."""
    sweeps = sweep_constructions(control_counts=control_counts)
    rows = []
    for name, metrics in sweeps.items():
        info = CONSTRUCTIONS[name]
        ns = [m.num_controls for m in metrics]
        depth_fit = best_fit(ns, [m.depth for m in metrics])
        count_fit = best_fit(ns, [m.two_qudit_gates for m in metrics])
        last = metrics[-1]
        rows.append(
            (
                info.paper_label,
                name,
                str(depth_fit),
                str(count_fit),
                f"{last.clean_ancilla} clean + {last.borrowed_ancilla} dirty",
                info.qudit_types,
            )
        )
    header = (
        "paper label",
        "construction",
        "measured depth",
        "measured 2q gates",
        "ancilla",
        "qudit types",
    )
    title = (
        "Table 1 reproduction: measured scaling of N-controlled gate "
        f"decompositions (N in {list(control_counts)})"
    )
    return title + "\n" + _render_grid(header, rows)


def _sc_row(model: NoiseModel) -> tuple[str, ...]:
    return (
        model.name,
        f"{3 * model.p1:.0e}",
        f"{15 * model.p2:.0e}",
        f"{model.t1 * 1e3:g} ms" if model.t1 else "-",
        f"{model.p1:.2e}",
        f"{model.p2:.2e}",
    )


def render_table2() -> str:
    """Table 2: superconducting noise models (totals and per-channel)."""
    header = ("model", "3p1", "15p2", "T1", "p1/channel", "p2/channel")
    rows = [_sc_row(m) for m in SUPERCONDUCTING_MODELS]
    return (
        "Table 2 reproduction: superconducting noise models\n"
        + _render_grid(header, rows)
    )


def _ti_row(model: NoiseModel) -> tuple[str, ...]:
    # Table 3 reports total gate error probabilities; qubit models have
    # 3/15 channels, qutrit models 8/80.
    channels_1q = 3 if model.name == "TI_QUBIT" else 8
    channels_2q = 15 if model.name == "TI_QUBIT" else 80
    return (
        model.name,
        f"{channels_1q * model.p1:.1e}",
        f"{channels_2q * model.p2:.1e}",
        f"{model.gate_time_1q * 1e6:g} us",
        f"{model.gate_time_2q * 1e6:g} us",
        "clock states" if model.idle_dephasing_rate == 0 else "bare",
    )


def render_table3() -> str:
    """Table 3: trapped-ion noise models (total error probabilities)."""
    header = ("model", "p1 (total)", "p2 (total)", "dt 1q", "dt 2q", "idling")
    rows = [_ti_row(m) for m in TRAPPED_ION_MODELS]
    return (
        "Table 3 reproduction: trapped-ion 171Yb+ noise models\n"
        + _render_grid(header, rows)
    )
