"""Per-construction circuit metrics: depth, gate counts, ancilla, width."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

from ..toffoli.registry import CONSTRUCTIONS, build_toffoli


@dataclass(frozen=True)
class CircuitMetrics:
    """The resource profile of one built decomposition."""

    construction: str
    num_controls: int
    depth: int
    total_gates: int
    two_qudit_gates: int
    single_qudit_gates: int
    clean_ancilla: int
    borrowed_ancilla: int
    width: int

    @property
    def ancilla(self) -> int:
        """Total non-data wires."""
        return self.clean_ancilla + self.borrowed_ancilla


@lru_cache(maxsize=4096)
def construction_metrics(name: str, num_controls: int) -> CircuitMetrics:
    """Build the named construction and measure it.

    Cached: the large ancilla-free qubit circuits (millions of gates at
    N = 200) are expensive to rebuild, and the depth/count sweeps request
    the same points repeatedly.  Only the immutable metrics record is
    retained; the circuit itself is released after measurement.
    """
    result = build_toffoli(name, num_controls)
    circuit = result.circuit
    return CircuitMetrics(
        construction=name,
        num_controls=num_controls,
        depth=circuit.depth,
        total_gates=circuit.num_operations,
        two_qudit_gates=circuit.two_qudit_gate_count,
        single_qudit_gates=circuit.single_qudit_gate_count,
        clean_ancilla=len(result.clean_ancilla),
        borrowed_ancilla=len(result.borrowed_ancilla),
        width=len(result.all_wires),
    )


def sweep_constructions(
    names: Iterable[str] | None = None,
    control_counts: Sequence[int] = (2, 4, 8, 16, 32),
) -> dict[str, list[CircuitMetrics]]:
    """Metrics for each construction across a range of control counts."""
    names = list(names) if names is not None else sorted(CONSTRUCTIONS)
    return {
        name: [construction_metrics(name, n) for n in control_counts]
        for name in names
    }
