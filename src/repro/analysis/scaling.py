"""Scaling-law identification for measured circuit costs.

Figure 9/10 and Table 1 report asymptotic classes (log N, N, N^2) with
leading coefficients (38 log2 N, 633 N, ...).  Given measured (N, cost)
points, :func:`best_fit` selects the model with the lowest relative
residual among single-coefficient candidates, and reports the coefficient
so benchmarks can print "measured ~6.9 N vs paper's 6 N" style lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

#: Candidate single-coefficient scaling models: name -> basis function.
MODELS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "log2(N)": lambda n: np.log2(n),
    "N": lambda n: n.astype(float),
    "N*log2(N)": lambda n: n * np.log2(n),
    "N^2": lambda n: n.astype(float) ** 2,
    "log2(N)^2": lambda n: np.log2(n) ** 2,
}


@dataclass(frozen=True)
class ScalingFit:
    """A fitted single-coefficient scaling law ``cost ~ coefficient * f(N)``."""

    model: str
    coefficient: float
    relative_rmse: float

    def predict(self, n: float) -> float:
        """Model prediction at N = n."""
        basis = MODELS[self.model](np.asarray([n], dtype=float))
        return float(self.coefficient * basis[0])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"~{self.coefficient:.3g} {self.model} "
            f"(rel. RMSE {self.relative_rmse:.1%})"
        )


def fit_model(
    control_counts: Sequence[int],
    costs: Sequence[float],
    model: str,
) -> ScalingFit:
    """Least-squares fit of ``costs ~ c * f(N)`` for one named model."""
    if model not in MODELS:
        raise KeyError(f"unknown scaling model {model!r}")
    n = np.asarray(control_counts, dtype=float)
    y = np.asarray(costs, dtype=float)
    if n.shape != y.shape or n.size < 2:
        raise ValueError("need matching N/cost arrays with 2+ points")
    basis = MODELS[model](n)
    coefficient = float(basis @ y / (basis @ basis))
    predictions = coefficient * basis
    with np.errstate(divide="ignore", invalid="ignore"):
        relative = (predictions - y) / np.where(y == 0, 1.0, y)
    rmse = float(np.sqrt(np.mean(relative**2)))
    return ScalingFit(model=model, coefficient=coefficient, relative_rmse=rmse)


def best_fit(
    control_counts: Sequence[int],
    costs: Sequence[float],
    candidates: Sequence[str] | None = None,
) -> ScalingFit:
    """The candidate model with the lowest relative RMSE."""
    candidates = list(candidates) if candidates else list(MODELS)
    fits = [fit_model(control_counts, costs, m) for m in candidates]
    return min(fits, key=lambda fit: fit.relative_rmse)


def crossover_point(
    fit_a: ScalingFit, fit_b: ScalingFit, n_max: int = 1 << 20
) -> int | None:
    """Smallest N >= 2 where ``fit_a`` exceeds ``fit_b`` (None if never).

    Used to locate where one construction starts losing to another, e.g.
    where the substituted quadratic-cost QUBIT baseline overtakes the
    paper's reported linear fit.
    """
    n = 2
    while n <= n_max:
        if fit_a.predict(n) > fit_b.predict(n):
            return n
        n *= 2
    return None
