"""Device connectivity and routing (the paper's Sec. 7/9 discussion).

The paper's circuits assume all-to-all connectivity; Section 9 notes
that mapping onto a nearest-neighbour 2D architecture stretches the
qutrit tree's depth from log N toward sqrt(N), while trapped-ion chains
(all-to-all) keep the log.  This package makes that discussion
measurable, three layers deep:

* :mod:`~repro.arch.topology` — the topology zoo (line, ring, star,
  tree, 2D grid, heavy-hex, random-regular, all-to-all), each built
  from a serializable :class:`TopologySpec` with cached all-pairs
  distances;
* :mod:`~repro.arch.routing` / :mod:`~repro.arch.router` — the greedy
  v1 baseline and the lookahead (SABRE-style) v2 engine with initial-
  placement search;
* :mod:`~repro.arch.metrics` — routing-aware cost records (SWAP
  overhead, depth inflation, noise-model fidelity estimates).
"""

from .topology import (
    TOPOLOGY_KINDS,
    CouplingGraph,
    TopologySpec,
    all_to_all,
    grid_2d,
    heavy_hex,
    line,
    random_regular,
    ring,
    sized_topology,
    star,
    tree,
)
from .routing import (
    RoutedCircuit,
    operations_with_barriers,
    route_circuit,
    swap_gate,
)
from .router import (
    ROUTERS,
    GreedyRouter,
    LookaheadRouter,
    RouterConfig,
    resolve_router,
)
from .metrics import (
    RoutingMetrics,
    estimate_routed_fidelity,
    gate_error_proxy,
    routing_metrics,
)
from .cleanup import cleanup_routed, count_swaps

__all__ = [
    "CouplingGraph",
    "TopologySpec",
    "TOPOLOGY_KINDS",
    "all_to_all",
    "line",
    "ring",
    "star",
    "tree",
    "grid_2d",
    "heavy_hex",
    "random_regular",
    "sized_topology",
    "RoutedCircuit",
    "route_circuit",
    "operations_with_barriers",
    "swap_gate",
    "RouterConfig",
    "LookaheadRouter",
    "GreedyRouter",
    "ROUTERS",
    "resolve_router",
    "RoutingMetrics",
    "routing_metrics",
    "gate_error_proxy",
    "estimate_routed_fidelity",
    "cleanup_routed",
    "count_swaps",
]
