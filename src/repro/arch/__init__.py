"""Device connectivity and routing (the paper's Section 9 discussion).

The paper's circuits assume all-to-all connectivity; Section 9 notes that
mapping onto a nearest-neighbour 2D architecture stretches the qutrit
tree's depth from log N toward sqrt(N), while trapped-ion chains (all-to-
all) keep the log.  This package makes that discussion measurable: device
topologies, a SWAP-inserting router, and depth-inflation analysis.
"""

from .topology import CouplingGraph, all_to_all, grid_2d, line
from .routing import RoutedCircuit, route_circuit, swap_gate

__all__ = [
    "CouplingGraph",
    "all_to_all",
    "line",
    "grid_2d",
    "RoutedCircuit",
    "route_circuit",
    "swap_gate",
]
