"""Post-routing cleanup: run the rewrite engine over a routed circuit.

Routing inserts SWAP chains mechanically, and adjacent legs of
back-to-back chains often cancel (a SWAP is its own inverse) or commute
into earlier moments.  ``cleanup_routed`` re-optimizes a
:class:`~repro.arch.routing.RoutedCircuit` in place of its circuit —
placements are untouched because rewrite passes never change the net
permutation of values over wires — and recounts the SWAP overhead so
:mod:`~repro.arch.metrics` stays honest about what actually survives.
"""

from __future__ import annotations

from dataclasses import replace

from ..circuits.circuit import Circuit
from .routing import RoutedCircuit


def count_swaps(circuit: Circuit) -> int:
    """Number of router-inserted SWAP gates left in ``circuit``."""
    return sum(
        1
        for op in circuit.all_operations()
        if op.gate.name.startswith("SWAP")
    )


def cleanup_routed(
    routed: RoutedCircuit, engine=None
) -> "tuple[RoutedCircuit, object]":
    """Optimize a routed circuit; returns ``(new routed, report)``.

    ``engine`` is anything :func:`repro.optimize.resolve_engine`
    accepts (default: the standard pass set).  The routed record keeps
    its placements — rewrites preserve the circuit's unitary, so the
    logical-to-physical story is unchanged — but ``swap_count`` is
    recounted from the optimized circuit.
    """
    from ..optimize import resolve_engine

    resolved = resolve_engine(True if engine is None else engine)
    optimized, report = resolved.run(routed.circuit)
    if optimized is routed.circuit:
        return routed, report
    return (
        replace(
            routed,
            circuit=optimized,
            swap_count=count_swaps(optimized),
        ),
        report,
    )


__all__ = ["cleanup_routed", "count_swaps"]
