"""Lookahead (SABRE-style) SWAP routing — the v2 engine.

The greedy v1 router (:func:`repro.arch.routing.route_circuit`) walks
each blocked gate's operands together one hop at a time, ignoring every
other pending gate.  This module routes with the heuristic of Li, Ding
& Xie's SABRE compiler instead:

* the circuit is held as a gate dependency DAG; the **front layer** is
  the set of gates with no unrouted predecessors;
* when no front gate is executable, every SWAP touching a front gate's
  operand is scored by the placement it would produce: the mean distance
  of the front layer plus a discounted mean over a bounded **lookahead
  window** of upcoming two-qudit gates;
* a per-site **decay** penalty spreads consecutive SWAPs across the
  device, avoiding ping-pong moves.

On top of the per-gate heuristic the router searches over **initial
placements** (identity, interaction-frequency order, and seeded random
restarts), keeping the candidate with the fewest SWAPs.  Gates wider
than two wires are lowered in place through the library's standard
decomposition (:func:`repro.gates.decompositions.decompose_operation`)
— the same rules :class:`~repro.execution.passes.DecomposeToWidth2`
applies — instead of raising.  Barrier floors are re-issued in the
routed circuit, matching the v1 contract.

Worst-case safety: if the heuristic ever fails to free a gate within
``max_stalled_swaps`` SWAPs (possible only on adversarial graphs), the
router falls back to the greedy shortest-path walk for the oldest front
gate, which guarantees progress and hence termination.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Iterable

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import SchedulingError
from ..qudits import Qudit
from .routing import (
    BARRIER,
    RoutedCircuit,
    check_routable,
    operations_with_barriers,
    resolve_placement,
    swap_gate,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .topology import CouplingGraph


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of the lookahead router.

    The defaults follow the SABRE paper's shape: a modest lookahead
    window weighted at half the front layer, a light decay, and a few
    seeded placement restarts.  ``placement_trials=0`` disables the
    random restarts (identity and interaction-order placements are
    still tried); an explicit ``placement`` argument disables the
    search entirely.
    """

    #: Upcoming two-qudit gates scored beyond the front layer.
    lookahead: int = 16
    #: Weight of the lookahead window relative to the front layer.
    lookahead_weight: float = 0.5
    #: Additive per-SWAP penalty on recently-swapped sites.
    decay: float = 0.01
    #: SWAPs between decay resets.
    decay_reset: int = 5
    #: Random initial placements tried besides identity + interaction.
    placement_trials: int = 4
    #: Seed of the placement-restart stream.
    seed: int = 2019
    #: Stalled-SWAP budget before the greedy fallback fires.
    max_stalled_swaps: int = 0  # 0 = auto (scales with device size)

    def stall_budget(self, topology: "CouplingGraph") -> int:
        """SWAPs tolerated without freeing a gate before falling back."""
        if self.max_stalled_swaps > 0:
            return self.max_stalled_swaps
        return max(16, 4 * topology.size)


def _lowered_operations(
    circuit: Circuit,
) -> Iterable["GateOperation | str"]:
    """Schedule-ordered ops with wide gates decomposed, barriers kept."""
    from ..gates.decompositions import decompose_operation

    for op in operations_with_barriers(circuit):
        if op is BARRIER or op.num_qudits <= 2:
            yield op
        else:
            yield from decompose_operation(op)


class _Segment:
    """One barrier-delimited run of operations as a dependency DAG."""

    def __init__(self, operations: list[GateOperation]) -> None:
        self.operations = operations
        #: op index -> number of unfinished predecessors.
        self.blockers = [0] * len(operations)
        #: op index -> indices unblocked when it finishes.
        self.successors: list[list[int]] = [[] for _ in operations]
        last_on_wire: dict[Qudit, int] = {}
        for index, op in enumerate(operations):
            for wire in op.qudits:
                prev = last_on_wire.get(wire)
                if prev is not None:
                    self.successors[prev].append(index)
                    self.blockers[index] += 1
                last_on_wire[wire] = index
        self.front = deque(
            index
            for index, count in enumerate(self.blockers)
            if count == 0
        )
        #: Remaining two-qudit op indices in schedule order (for the
        #: lookahead window); consumed lazily as gates execute.
        self.pending_2q = deque(
            index
            for index, op in enumerate(operations)
            if op.num_qudits == 2
        )
        self.done = [False] * len(operations)
        self.remaining = len(operations)

    def finish(self, index: int) -> list[int]:
        """Mark ``index`` executed; returns newly unblocked op indices."""
        self.done[index] = True
        self.remaining -= 1
        unblocked = []
        for nxt in self.successors[index]:
            self.blockers[nxt] -= 1
            if self.blockers[nxt] == 0:
                unblocked.append(nxt)
        return unblocked

    def window(self, size: int) -> list[GateOperation]:
        """The next <= ``size`` unexecuted two-qudit ops past the front."""
        while self.pending_2q and self.done[self.pending_2q[0]]:
            self.pending_2q.popleft()
        out = []
        for index in self.pending_2q:
            if len(out) >= size:
                break
            if not self.done[index] and self.blockers[index] > 0:
                out.append(self.operations[index])
        return out


@dataclass
class _RoutingState:
    """Mutable placement state threaded through one routing pass."""

    sites: list[Qudit]
    where: dict[Qudit, int]
    occupant: dict[int, Qudit | None]
    routed: Circuit = field(default_factory=Circuit)
    swap_count: int = 0

    def apply_swap(self, swap, site_a: int, site_b: int) -> None:
        self.routed.append(swap.on(self.sites[site_a], self.sites[site_b]))
        wire_a = self.occupant[site_a]
        wire_b = self.occupant[site_b]
        self.occupant[site_a], self.occupant[site_b] = wire_b, wire_a
        if wire_a is not None:
            self.where[wire_a] = site_b
        if wire_b is not None:
            self.where[wire_b] = site_a
        self.swap_count += 1


class LookaheadRouter:
    """Route circuits with the SABRE front-layer/lookahead heuristic."""

    name = "lookahead"

    def __init__(self, config: RouterConfig | None = None) -> None:
        self.config = config or RouterConfig()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    def route(
        self,
        circuit: Circuit,
        topology: "CouplingGraph",
        placement: dict[Qudit, int] | None = None,
        wires: list[Qudit] | None = None,
    ) -> RoutedCircuit:
        """Map ``circuit`` onto ``topology`` with lookahead SWAP search.

        Same contract as :func:`repro.arch.routing.route_circuit`, plus:
        gates wider than two wires are decomposed in place, and with
        ``placement=None`` several initial placements are tried (see
        :class:`RouterConfig`), returning the cheapest routing found.
        """
        logical_wires, dim = check_routable(circuit, topology, wires)
        if not logical_wires:
            return RoutedCircuit(
                Circuit(), [], {}, {}, 0, topology.name,
                router_name=self.name,
            )
        stream = list(_lowered_operations(circuit))

        candidates = (
            [resolve_placement(logical_wires, placement, topology.size)]
            if placement is not None
            else self._candidate_placements(logical_wires, stream, topology)
        )
        best: RoutedCircuit | None = None
        for candidate in candidates:
            routed = self._route_once(
                stream, logical_wires, dim, topology, candidate
            )
            if best is None or (routed.swap_count, routed.depth) < (
                best.swap_count, best.depth
            ):
                best = routed
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # Initial placement search
    # ------------------------------------------------------------------

    def _candidate_placements(
        self,
        logical_wires: list[Qudit],
        stream: list["GateOperation | str"],
        topology: "CouplingGraph",
    ) -> list[dict[Qudit, int]]:
        """Identity, interaction-frequency, and seeded random placements."""
        candidates = [{w: k for k, w in enumerate(logical_wires)}]
        candidates.append(
            self._interaction_placement(logical_wires, stream, topology)
        )
        rng = Random(self.config.seed)
        for _ in range(max(0, self.config.placement_trials)):
            sites = list(range(topology.size))
            rng.shuffle(sites)
            candidates.append(
                {w: sites[k] for k, w in enumerate(logical_wires)}
            )
        # Each candidate costs a full routing pass; collisions are
        # common on small devices (few distinct placements exist).
        unique: dict[tuple, dict[Qudit, int]] = {}
        for candidate in candidates:
            unique.setdefault(
                tuple(sorted(candidate.items())), candidate
            )
        return list(unique.values())

    def _interaction_placement(
        self,
        logical_wires: list[Qudit],
        stream: list["GateOperation | str"],
        topology: "CouplingGraph",
    ) -> dict[Qudit, int]:
        """Greedy interaction-graph embedding.

        Wires are visited by interaction degree (most-coupled first) and
        each is placed on the free site minimising the summed distance
        to its already-placed interaction partners — a cheap one-pass
        approximation of subgraph embedding that gives tree- and
        grid-shaped interaction graphs a near-native start.
        """
        weight: Counter[tuple[Qudit, Qudit]] = Counter()
        degree: Counter[Qudit] = Counter()
        for op in stream:
            if op is BARRIER or op.num_qudits != 2:
                continue
            a, b = op.qudits
            weight[(a, b) if a < b else (b, a)] += 1
            degree[a] += 1
            degree[b] += 1
        partners: dict[Qudit, list[tuple[Qudit, int]]] = defaultdict(list)
        for (a, b), count in weight.items():
            partners[a].append((b, count))
            partners[b].append((a, count))
        table = topology.distance_table()
        order = sorted(
            logical_wires, key=lambda w: (-degree[w], w)
        )
        placed: dict[Qudit, int] = {}
        free = set(range(topology.size))

        def cost(site: int, wire: Qudit) -> int:
            return sum(
                table[site][placed[other]] * count
                for other, count in partners[wire]
                if other in placed
            )

        for wire in order:
            site = min(free, key=lambda s: (cost(s, wire), s))
            placed[wire] = site
            free.discard(site)
        return placed

    # ------------------------------------------------------------------
    # One routing pass
    # ------------------------------------------------------------------

    def _route_once(
        self,
        stream: list["GateOperation | str"],
        logical_wires: list[Qudit],
        dim: int,
        topology: "CouplingGraph",
        placement: dict[Qudit, int],
    ) -> RoutedCircuit:
        sites = [Qudit(index, dim) for index in range(topology.size)]
        occupant: dict[int, Qudit | None] = {
            s: None for s in range(topology.size)
        }
        for wire, site in placement.items():
            occupant[site] = wire
        state = _RoutingState(
            sites=sites, where=dict(placement), occupant=occupant
        )
        swap = swap_gate(dim)

        segment: list[GateOperation] = []
        for op in stream:
            if op is BARRIER:
                self._route_segment(segment, state, topology, swap)
                state.routed.barrier()
                segment = []
            else:
                segment.append(op)
        self._route_segment(segment, state, topology, swap)

        return RoutedCircuit(
            circuit=state.routed,
            sites=sites,
            final_placement={
                w: state.where[w] for w in logical_wires
            },
            initial_placement=dict(placement),
            swap_count=state.swap_count,
            topology_name=topology.name,
            router_name=self.name,
        )

    def _route_segment(
        self,
        operations: list[GateOperation],
        state: _RoutingState,
        topology: "CouplingGraph",
        swap,
    ) -> None:
        """Route one barrier-delimited segment with the SABRE loop."""
        if not operations:
            return
        segment = _Segment(operations)
        table = topology.distance_table()
        decay: dict[int, float] = defaultdict(float)
        stalled = 0
        stall_budget = self.config.stall_budget(topology)
        last_swap: tuple[int, int] | None = None

        while segment.remaining:
            # Flush every executable front gate (1q always; 2q if the
            # operands sit on coupled sites).
            progressed = False
            scan = len(segment.front)
            for _ in range(scan):
                index = segment.front.popleft()
                op = segment.operations[index]
                if op.num_qudits == 1:
                    state.routed.append(
                        op.gate.on(state.sites[state.where[op.qudits[0]]])
                    )
                elif topology.are_adjacent(
                    state.where[op.qudits[0]], state.where[op.qudits[1]]
                ):
                    state.routed.append(
                        op.gate.on(
                            state.sites[state.where[op.qudits[0]]],
                            state.sites[state.where[op.qudits[1]]],
                        )
                    )
                else:
                    segment.front.append(index)
                    continue
                segment.front.extend(segment.finish(index))
                progressed = True
            if progressed:
                stalled = 0
                decay.clear()
                last_swap = None
                continue
            if not segment.front:  # pragma: no cover - DAG invariant
                raise SchedulingError(
                    "router invariant violated: pending operations with "
                    "an empty front layer"
                )

            if stalled >= stall_budget:
                # Heuristic is wedged (adversarial graph): greedily walk
                # the oldest front gate's operands together.
                self._greedy_unblock(
                    segment.operations[segment.front[0]],
                    state, topology, swap,
                )
                stalled = 0
                continue

            front_ops = [
                segment.operations[index] for index in segment.front
            ]
            window = segment.window(self.config.lookahead)
            choice = self._best_swap(
                front_ops, window, state, topology, table, decay, last_swap
            )
            state.apply_swap(swap, *choice)
            last_swap = choice
            decay[choice[0]] += self.config.decay
            decay[choice[1]] += self.config.decay
            stalled += 1
            if stalled % max(1, self.config.decay_reset) == 0:
                decay.clear()

    def _best_swap(
        self,
        front_ops: list[GateOperation],
        window: list[GateOperation],
        state: _RoutingState,
        topology: "CouplingGraph",
        table: list[list[int]],
        decay: dict[int, float],
        last_swap: tuple[int, int] | None,
    ) -> tuple[int, int]:
        """The SWAP minimising the front + discounted-window distance."""
        where = state.where
        active_sites = {
            where[w] for op in front_ops for w in op.qudits
        }
        # Normalised pairs: an edge between two active sites would
        # otherwise be scored in both orientations (score is symmetric).
        candidates = sorted(
            {
                (min(site, other), max(site, other))
                for site in active_sites
                for other in topology.neighbors(site)
            }
        )

        def score(site_a: int, site_b: int) -> float:
            # Distances under the hypothetical swap, without mutating
            # the placement: only wires on the two touched sites move.
            moved = {}
            wire_a = state.occupant[site_a]
            wire_b = state.occupant[site_b]
            if wire_a is not None:
                moved[wire_a] = site_b
            if wire_b is not None:
                moved[wire_b] = site_a

            def dist(op: GateOperation) -> int:
                a, b = op.qudits
                return table[moved.get(a, where[a])][
                    moved.get(b, where[b])
                ]

            total = sum(dist(op) for op in front_ops) / len(front_ops)
            if window:
                total += (
                    self.config.lookahead_weight
                    * sum(dist(op) for op in window)
                    / len(window)
                )
            return total * (1.0 + decay[site_a] + decay[site_b])

        best_score: float | None = None
        best: tuple[int, int] | None = None
        for site_a, site_b in candidates:
            if last_swap is not None and {site_a, site_b} == set(last_swap):
                continue  # never undo the move we just made
            value = score(site_a, site_b)
            if best_score is None or value < best_score:
                best_score = value
                best = (site_a, site_b)
        if best is None:
            # Only the reversing swap exists (degree-1 pocket): take it.
            best = last_swap  # type: ignore[assignment]
        if best is None:  # pragma: no cover - check_routable guarantees
            raise SchedulingError("no SWAP candidate on a connected device")
        return best

    def _greedy_unblock(
        self,
        op: GateOperation,
        state: _RoutingState,
        topology: "CouplingGraph",
        swap,
    ) -> None:
        """Shortest-path fallback: force ``op``'s operands adjacent."""
        wire_a, wire_b = op.qudits
        while not topology.are_adjacent(
            state.where[wire_a], state.where[wire_b]
        ):
            step = topology.shortest_path_step(
                state.where[wire_a], state.where[wire_b]
            )
            state.apply_swap(swap, state.where[wire_a], step)


class GreedyRouter:
    """The v1 one-hop router behind the shared router interface."""

    name = "greedy"

    def route(
        self,
        circuit: Circuit,
        topology: "CouplingGraph",
        placement: dict[Qudit, int] | None = None,
        wires: list[Qudit] | None = None,
    ) -> RoutedCircuit:
        from .routing import route_circuit

        return route_circuit(
            circuit, topology, placement=placement, wires=wires
        )


#: Router names accepted by :func:`resolve_router` and the CLI.
ROUTERS = ("lookahead", "greedy")


def resolve_router(
    spec: "str | RouterConfig | LookaheadRouter | GreedyRouter | None",
) -> "LookaheadRouter | GreedyRouter":
    """Accept a router name, a config, an instance, or None (lookahead)."""
    if spec is None:
        return LookaheadRouter()
    if isinstance(spec, (LookaheadRouter, GreedyRouter)):
        return spec
    if isinstance(spec, RouterConfig):
        return LookaheadRouter(spec)
    if spec == "lookahead":
        return LookaheadRouter()
    if spec == "greedy":
        return GreedyRouter()
    raise KeyError(
        f"unknown router {spec!r}; choose from {list(ROUTERS)} or pass "
        "a RouterConfig / router instance"
    )


__all__ = [
    "RouterConfig",
    "LookaheadRouter",
    "GreedyRouter",
    "ROUTERS",
    "resolve_router",
]
