"""Routing-aware cost accounting.

The paper's connectivity discussion (Sec. 7/9) is about what a topology
*costs*: SWAP insertion inflates two-qudit gate counts and depth, which
in turn eats fidelity.  This module condenses one routing run into a
:class:`RoutingMetrics` record with three layers of cost:

* **structure** — SWAP count, routed vs logical depth/two-qudit counts,
  and the overhead ratios benches sweep;
* **closed-form fidelity proxy** — the product of per-gate success
  probabilities ``prod(1 - total_gate_error)`` under a
  :class:`~repro.noise.model.NoiseModel`, the cheap analytic estimate
  (idle errors excluded) that makes topology sweeps instant;
* **trajectory estimate** — :func:`estimate_routed_fidelity` feeds the
  routed circuit through the batched trajectory engine
  (:func:`repro.sim.fidelity.estimate_circuit_fidelity`) for the full
  Monte-Carlo number including idling, at simulation cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..circuits.circuit import Circuit
from .routing import RoutedCircuit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..noise.model import NoiseModel
    from ..sim.fidelity import FidelityEstimate


@dataclass(frozen=True)
class RoutingMetrics:
    """The cost profile of one routed circuit."""

    topology: str
    router: str
    swap_count: int
    logical_depth: int
    routed_depth: int
    logical_two_qudit: int
    routed_two_qudit: int
    #: routed depth / logical depth (1.0 = free routing).
    depth_overhead: float
    #: inserted SWAPs per logical two-qudit gate.
    swap_overhead: float
    #: closed-form gate-error fidelity proxy (None without a model).
    fidelity_proxy: float | None = None
    #: the proxy of the unrouted circuit, for the routing-cost delta.
    logical_fidelity_proxy: float | None = None

    @property
    def fidelity_cost(self) -> float | None:
        """Fraction of proxy fidelity lost to routing (0.0 = free)."""
        if self.fidelity_proxy is None or not self.logical_fidelity_proxy:
            return None
        return 1.0 - self.fidelity_proxy / self.logical_fidelity_proxy

    def to_dict(self) -> dict:
        """JSON-clean form, as written into ``BENCH_route.json``."""
        return {
            "topology": self.topology,
            "router": self.router,
            "swap_count": self.swap_count,
            "logical_depth": self.logical_depth,
            "routed_depth": self.routed_depth,
            "logical_two_qudit": self.logical_two_qudit,
            "routed_two_qudit": self.routed_two_qudit,
            "depth_overhead": self.depth_overhead,
            "swap_overhead": self.swap_overhead,
            "fidelity_proxy": self.fidelity_proxy,
            "logical_fidelity_proxy": self.logical_fidelity_proxy,
        }


def gate_error_proxy(circuit: Circuit, noise_model: "NoiseModel") -> float:
    """Closed-form success probability: ``prod(1 - total_gate_error)``.

    Multiplies each gate's depolarizing success probability under
    ``noise_model`` — the paper's back-of-envelope fidelity logic
    (Sec. 7.1.1's reliability ratios compounded over the whole circuit).
    Idle damping/dephasing are excluded; use
    :func:`estimate_routed_fidelity` when they matter.
    """
    fidelity = 1.0
    for op in circuit.all_operations():
        dims = tuple(w.dimension for w in op.qudits)
        fidelity *= max(0.0, 1.0 - noise_model.total_gate_error(dims))
    return fidelity


def routing_metrics(
    logical: Circuit,
    routed: RoutedCircuit,
    noise_model: "NoiseModel | None" = None,
) -> RoutingMetrics:
    """Condense one routing run against its logical source circuit."""
    logical_2q = logical.two_qudit_gate_count
    return RoutingMetrics(
        topology=routed.topology_name,
        router=routed.router_name,
        swap_count=routed.swap_count,
        logical_depth=logical.depth,
        routed_depth=routed.depth,
        logical_two_qudit=logical_2q,
        routed_two_qudit=routed.circuit.two_qudit_gate_count,
        depth_overhead=(
            routed.depth / logical.depth if logical.depth else 1.0
        ),
        swap_overhead=(
            routed.swap_count / logical_2q if logical_2q else 0.0
        ),
        fidelity_proxy=(
            gate_error_proxy(routed.circuit, noise_model)
            if noise_model is not None
            else None
        ),
        logical_fidelity_proxy=(
            gate_error_proxy(logical, noise_model)
            if noise_model is not None
            else None
        ),
    )


def estimate_routed_fidelity(
    routed: RoutedCircuit,
    noise_model: "NoiseModel",
    trials: int = 100,
    seed: int | None = 2019,
    batch_size: int | None = None,
) -> "FidelityEstimate":
    """Monte-Carlo mean fidelity of the routed circuit (PR 3 engine).

    Runs :func:`repro.sim.fidelity.estimate_circuit_fidelity` over the
    routed circuit's full site register, so SWAP gate errors and the
    idle windows routing creates are all charged — the number the
    paper's Figure 11 methodology would measure on the constrained
    device.
    """
    from ..sim.fidelity import estimate_circuit_fidelity

    return estimate_circuit_fidelity(
        routed.circuit,
        noise_model,
        trials=trials,
        seed=seed,
        # The full site register, not just gated sites: reserved wires
        # idle through the whole schedule and their decay must count.
        wires=routed.sites if routed.sites else None,
        circuit_name=f"routed@{routed.topology_name}",
        batch_size=batch_size,
    )


__all__ = [
    "RoutingMetrics",
    "routing_metrics",
    "gate_error_proxy",
    "estimate_routed_fidelity",
]
