"""Device coupling graphs.

A :class:`CouplingGraph` is a set of physical sites with an undirected
edge wherever a two-qudit gate can act natively.  Three families cover
the paper's discussion: all-to-all (trapped-ion chains, Sec. 7.3), the
1D line, and the nearest-neighbour 2D grid (superconducting lattices,
Sec. 9).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable


class CouplingGraph:
    """An undirected connectivity graph over sites ``0 .. size-1``."""

    def __init__(
        self, size: int, edges: Iterable[tuple[int, int]], name: str
    ) -> None:
        if size < 1:
            raise ValueError("topology needs at least one site")
        self._size = size
        self._name = name
        self._adjacency: dict[int, set[int]] = {s: set() for s in range(size)}
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on site {a}")
            if not (0 <= a < size and 0 <= b < size):
                raise ValueError(f"edge ({a},{b}) outside 0..{size - 1}")
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._distance: list[list[int]] | None = None

    @property
    def size(self) -> int:
        """Number of physical sites."""
        return self._size

    @property
    def name(self) -> str:
        """Topology label used in reports."""
        return self._name

    def neighbors(self, site: int) -> set[int]:
        """Sites adjacent to ``site``."""
        return set(self._adjacency[site])

    def are_adjacent(self, a: int, b: int) -> bool:
        """True iff a native two-qudit gate can couple ``a`` and ``b``."""
        return b in self._adjacency[a]

    def _ensure_distances(self) -> list[list[int]]:
        if self._distance is None:
            table = []
            for source in range(self._size):
                dist = [-1] * self._size
                dist[source] = 0
                queue = deque([source])
                while queue:
                    here = queue.popleft()
                    for nxt in self._adjacency[here]:
                        if dist[nxt] < 0:
                            dist[nxt] = dist[here] + 1
                            queue.append(nxt)
                table.append(dist)
            self._distance = table
        return self._distance

    def distance(self, a: int, b: int) -> int:
        """Hop count between sites (-1 if disconnected)."""
        return self._ensure_distances()[a][b]

    def is_connected(self) -> bool:
        """True iff every site can reach every other."""
        return all(d >= 0 for d in self._ensure_distances()[0])

    def diameter(self) -> int:
        """Longest shortest path — the routing worst case."""
        table = self._ensure_distances()
        return max(max(row) for row in table)

    def shortest_path_step(self, source: int, target: int) -> int:
        """The neighbour of ``source`` that moves one hop toward ``target``."""
        if source == target:
            raise ValueError("source equals target")
        table = self._ensure_distances()
        best = min(
            self._adjacency[source], key=lambda s: table[s][target]
        )
        if table[best][target] >= table[source][target]:
            raise ValueError(
                f"no progress from {source} toward {target} (disconnected?)"
            )
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CouplingGraph {self._name} size={self._size}>"


def all_to_all(size: int) -> CouplingGraph:
    """Full connectivity — trapped-ion chains within one trap."""
    edges = [(a, b) for a in range(size) for b in range(a + 1, size)]
    return CouplingGraph(size, edges, f"all-to-all({size})")


def line(size: int) -> CouplingGraph:
    """1D nearest-neighbour chain."""
    return CouplingGraph(
        size, [(k, k + 1) for k in range(size - 1)], f"line({size})"
    )


def grid_2d(rows: int, cols: int) -> CouplingGraph:
    """2D nearest-neighbour grid — superconducting lattices (Sec. 9)."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            site = r * cols + c
            if c + 1 < cols:
                edges.append((site, site + 1))
            if r + 1 < rows:
                edges.append((site, site + cols))
    return CouplingGraph(rows * cols, edges, f"grid({rows}x{cols})")
