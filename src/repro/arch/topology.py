"""Device coupling graphs — the topology zoo.

A :class:`CouplingGraph` is a set of physical sites with an undirected
edge wherever a two-qudit gate can act natively.  The zoo covers the
families the paper's Sec. 7/9 connectivity discussion needs plus the
lattices of real devices:

* :func:`all_to_all` — trapped-ion chains within one trap (Sec. 7.3);
* :func:`line` / :func:`ring` — 1D nearest-neighbour chains, open or
  periodic;
* :func:`grid_2d` — nearest-neighbour 2D grid (superconducting
  lattices, Sec. 9);
* :func:`star` — one central hub (a resonator-bus caricature);
* :func:`tree` — complete b-ary tree, the natural host for the paper's
  log-depth qutrit tree;
* :func:`heavy_hex` — hexagonal lattice with every edge subdivided
  (degree <= 3, IBM-style heavy-hex);
* :func:`random_regular` — seeded random d-regular graph, the
  expander-like control case.

Every factory records a serializable :class:`TopologySpec` on the graph
it returns, so topologies round-trip through JSON alongside circuits and
bench reports.  Factories are memoised: repeated builds of one spec
share the graph object and its cached all-pairs distance table.
"""

from __future__ import annotations

import json
import math
import random
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Iterable, Mapping

from ..exceptions import SerializationError


class CouplingGraph:
    """An undirected connectivity graph over sites ``0 .. size-1``."""

    def __init__(
        self,
        size: int,
        edges: Iterable[tuple[int, int]],
        name: str,
        spec: "TopologySpec | None" = None,
    ) -> None:
        if size < 1:
            raise ValueError("topology needs at least one site")
        self._size = size
        self._name = name
        self._spec = spec
        self._adjacency: dict[int, set[int]] = {s: set() for s in range(size)}
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on site {a}")
            if not (0 <= a < size and 0 <= b < size):
                raise ValueError(f"edge ({a},{b}) outside 0..{size - 1}")
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._distance: list[list[int]] | None = None

    @property
    def size(self) -> int:
        """Number of physical sites."""
        return self._size

    @property
    def name(self) -> str:
        """Topology label used in reports."""
        return self._name

    @property
    def spec(self) -> "TopologySpec | None":
        """The serializable recipe this graph was built from (if any)."""
        return self._spec

    def neighbors(self, site: int) -> set[int]:
        """Sites adjacent to ``site``."""
        return set(self._adjacency[site])

    def edges(self) -> list[tuple[int, int]]:
        """Every undirected edge once, as sorted pairs in sorted order."""
        return sorted(
            (a, b)
            for a, nbrs in self._adjacency.items()
            for b in nbrs
            if a < b
        )

    def degree(self, site: int) -> int:
        """Number of native couplings at ``site``."""
        return len(self._adjacency[site])

    def are_adjacent(self, a: int, b: int) -> bool:
        """True iff a native two-qudit gate can couple ``a`` and ``b``."""
        return b in self._adjacency[a]

    def _ensure_distances(self) -> list[list[int]]:
        if self._distance is None:
            table = []
            for source in range(self._size):
                dist = [-1] * self._size
                dist[source] = 0
                queue = deque([source])
                while queue:
                    here = queue.popleft()
                    for nxt in self._adjacency[here]:
                        if dist[nxt] < 0:
                            dist[nxt] = dist[here] + 1
                            queue.append(nxt)
                table.append(dist)
            self._distance = table
        return self._distance

    def distance_table(self) -> list[list[int]]:
        """The cached all-pairs hop-count table (BFS from every site).

        Computed once per graph and shared by every router scoring pass;
        ``table[a][b]`` is -1 for disconnected pairs.
        """
        return self._ensure_distances()

    def distance(self, a: int, b: int) -> int:
        """Hop count between sites (-1 if disconnected)."""
        return self._ensure_distances()[a][b]

    def is_connected(self) -> bool:
        """True iff every site can reach every other."""
        return all(d >= 0 for d in self._ensure_distances()[0])

    def diameter(self) -> int:
        """Longest shortest path — the routing worst case."""
        table = self._ensure_distances()
        return max(max(row) for row in table)

    def shortest_path_step(self, source: int, target: int) -> int:
        """The neighbour of ``source`` that moves one hop toward ``target``."""
        if source == target:
            raise ValueError("source equals target")
        table = self._ensure_distances()
        best = min(
            self._adjacency[source], key=lambda s: table[s][target]
        )
        if table[best][target] >= table[source][target]:
            raise ValueError(
                f"no progress from {source} toward {target} (disconnected?)"
            )
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CouplingGraph {self._name} size={self._size}>"


# ----------------------------------------------------------------------
# The zoo
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def all_to_all(size: int) -> CouplingGraph:
    """Full connectivity — trapped-ion chains within one trap."""
    edges = [(a, b) for a in range(size) for b in range(a + 1, size)]
    return CouplingGraph(
        size, edges, f"all-to-all({size})",
        spec=TopologySpec("all_to_all", {"size": size}),
    )


@lru_cache(maxsize=None)
def line(size: int) -> CouplingGraph:
    """1D nearest-neighbour chain."""
    return CouplingGraph(
        size, [(k, k + 1) for k in range(size - 1)], f"line({size})",
        spec=TopologySpec("line", {"size": size}),
    )


@lru_cache(maxsize=None)
def ring(size: int) -> CouplingGraph:
    """1D chain with periodic boundary — halves the worst-case distance."""
    edges = [(k, k + 1) for k in range(size - 1)]
    if size > 2:
        edges.append((size - 1, 0))
    return CouplingGraph(
        size, edges, f"ring({size})",
        spec=TopologySpec("ring", {"size": size}),
    )


@lru_cache(maxsize=None)
def star(size: int) -> CouplingGraph:
    """One central hub (site 0) coupled to every leaf — diameter 2."""
    edges = [(0, leaf) for leaf in range(1, size)]
    return CouplingGraph(
        size, edges, f"star({size})",
        spec=TopologySpec("star", {"size": size}),
    )


@lru_cache(maxsize=None)
def tree(size: int, branching: int = 2) -> CouplingGraph:
    """Complete ``branching``-ary tree filled in level order.

    Site ``k > 0`` hangs off site ``(k - 1) // branching`` — the natural
    host topology for the paper's log-depth qutrit tree.
    """
    if branching < 1:
        raise ValueError("tree branching factor must be >= 1")
    edges = [(k, (k - 1) // branching) for k in range(1, size)]
    return CouplingGraph(
        size, edges, f"tree({size},b{branching})",
        spec=TopologySpec("tree", {"size": size, "branching": branching}),
    )


@lru_cache(maxsize=None)
def grid_2d(rows: int, cols: int) -> CouplingGraph:
    """2D nearest-neighbour grid — superconducting lattices (Sec. 9)."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            site = r * cols + c
            if c + 1 < cols:
                edges.append((site, site + 1))
            if r + 1 < rows:
                edges.append((site, site + cols))
    return CouplingGraph(
        rows * cols, edges, f"grid({rows}x{cols})",
        spec=TopologySpec("grid_2d", {"rows": rows, "cols": cols}),
    )


@lru_cache(maxsize=None)
def heavy_hex(rows: int, cols: int) -> CouplingGraph:
    """Hexagonal (brick-wall) lattice with every edge subdivided.

    Vertices of a ``rows x cols`` grid carry all horizontal edges but
    only the alternating vertical edges where ``(row + col)`` is even —
    the brick-wall embedding of the hexagonal lattice — and one extra
    site subdivides each edge.  Every site has degree <= 3, the
    IBM-style "heavy" property that keeps frequency-collision crosstalk
    low on transmon devices.
    """
    if rows < 1 or cols < 1:
        raise ValueError("heavy_hex needs at least a 1x1 vertex grid")
    base_edges = []
    for r in range(rows):
        for c in range(cols):
            site = r * cols + c
            if c + 1 < cols:
                base_edges.append((site, site + 1))
            # Brick-wall parity drops alternate vertical couplings; a
            # single-column lattice keeps them all (it degenerates to a
            # subdivided path) so every shape stays connected.
            if r + 1 < rows and ((r + c) % 2 == 0 or cols == 1):
                base_edges.append((site, site + cols))
    size = rows * cols
    edges = []
    for a, b in base_edges:
        mid = size
        size += 1
        edges.append((a, mid))
        edges.append((mid, b))
    return CouplingGraph(
        size, edges, f"heavy-hex({rows}x{cols})",
        spec=TopologySpec("heavy_hex", {"rows": rows, "cols": cols}),
    )


@lru_cache(maxsize=None)
def random_regular(
    size: int, degree: int = 3, seed: int = 2019
) -> CouplingGraph:
    """Seeded random ``degree``-regular graph (pairing model).

    The expander-like control case: O(log n) typical distances with
    constant degree.  ``degree`` is clamped to ``size - 1`` and lowered
    by one when ``size * degree`` is odd (no such regular graph exists).
    Deterministic for a given ``(size, degree, seed)``.
    """
    degree = max(0, min(degree, size - 1))
    if (size * degree) % 2:
        degree -= 1
    spec = TopologySpec(
        "random_regular",
        {"size": size, "degree": degree, "seed": seed},
    )
    if degree <= 0:
        if size > 1:
            raise ValueError(
                f"random_regular({size}, degree={degree}) cannot connect "
                "more than one site"
            )
        return CouplingGraph(size, [], f"random-regular({size},d0)", spec)
    rng = random.Random(seed)
    for _ in range(500):
        stubs = [site for site in range(size) for _ in range(degree)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for k in range(0, len(stubs), 2):
            a, b = stubs[k], stubs[k + 1]
            if a == b or (min(a, b), max(a, b)) in edges:
                ok = False
                break
            edges.add((min(a, b), max(a, b)))
        if not ok:
            continue
        graph = CouplingGraph(
            size, sorted(edges),
            f"random-regular({size},d{degree},s{seed})", spec,
        )
        if graph.is_connected():
            return graph
    raise ValueError(
        f"could not sample a connected {degree}-regular graph on "
        f"{size} sites (seed {seed})"
    )


# ----------------------------------------------------------------------
# Serializable specs and size-driven construction
# ----------------------------------------------------------------------

#: kind -> exact-parameter factory, for :meth:`TopologySpec.build`.
TOPOLOGY_KINDS: dict[str, Callable[..., CouplingGraph]] = {
    "all_to_all": all_to_all,
    "line": line,
    "ring": ring,
    "star": star,
    "tree": tree,
    "grid_2d": grid_2d,
    "heavy_hex": heavy_hex,
    "random_regular": random_regular,
}


@dataclass(frozen=True)
class TopologySpec:
    """A serializable recipe for one coupling graph.

    ``kind`` names a factory in :data:`TOPOLOGY_KINDS`; ``params`` holds
    its keyword arguments (plain ints, so the spec is JSON-clean).
    Specs are values: hashable, comparable, and round-trippable through
    :meth:`to_json` — the form bench reports and compiled-circuit
    metadata record.
    """

    kind: str
    params: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze params into a sorted tuple-backed mapping so specs hash.
        object.__setattr__(
            self, "params", dict(sorted(dict(self.params).items()))
        )

    def __hash__(self) -> int:
        return hash((self.kind, tuple(self.params.items())))

    def build(self) -> CouplingGraph:
        """Construct (or fetch the memoised) graph for this spec."""
        if self.kind not in TOPOLOGY_KINDS:
            raise SerializationError(
                f"unknown topology kind {self.kind!r}; choose from "
                f"{sorted(TOPOLOGY_KINDS)}"
            )
        try:
            return TOPOLOGY_KINDS[self.kind](**self.params)
        except TypeError as error:
            raise SerializationError(
                f"bad parameters for topology {self.kind!r}: {error}"
            ) from error

    def to_dict(self) -> dict:
        """Plain-data form (kind + params)."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TopologySpec":
        """Rebuild a spec from :meth:`to_dict` data."""
        try:
            kind = data["kind"]
            params = {
                str(k): int(v) for k, v in dict(data.get("params", {})).items()
            }
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(
                f"malformed topology spec: {error}"
            ) from error
        return cls(kind, params)

    def to_json(self) -> str:
        """JSON text of :meth:`to_dict` (sorted keys, compact)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "TopologySpec":
        """Rebuild a spec from :meth:`to_json` text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(
                f"invalid topology JSON: {error}"
            ) from error
        if not isinstance(data, dict):
            raise SerializationError(
                f"topology JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)


def sized_topology(
    kind: str, num_wires: int, seed: int | None = None
) -> CouplingGraph:
    """The smallest zoo member of ``kind`` with >= ``num_wires`` sites.

    The uniform entry point for passes, the CLI, and benches that know a
    circuit's width but not device shapes: 1D/tree/star/random kinds are
    sized exactly; ``grid_2d`` picks the near-square ``isqrt`` shape;
    ``heavy_hex`` grows its vertex grid until the subdivided lattice
    covers the wires.  ``seed`` only affects ``random_regular``.
    """
    if kind not in TOPOLOGY_KINDS:
        raise KeyError(
            f"unknown topology kind {kind!r}; choose from "
            f"{sorted(TOPOLOGY_KINDS)}"
        )
    num_wires = max(1, num_wires)
    if kind == "grid_2d":
        rows = max(1, math.isqrt(num_wires))
        cols = math.ceil(num_wires / rows)
        return grid_2d(rows, cols)
    if kind == "heavy_hex":
        side = 1
        while heavy_hex(side, side).size < num_wires:
            side += 1
        return heavy_hex(side, side)
    if kind == "random_regular":
        if seed is not None:
            return random_regular(num_wires, seed=seed)
        return random_regular(num_wires)
    return TOPOLOGY_KINDS[kind](num_wires)
