"""Greedy SWAP routing onto constrained topologies — the v1 baseline.

Routes a logical circuit onto a :class:`~repro.arch.topology.CouplingGraph`
by tracking a logical-to-physical placement and inserting SWAPs along
shortest paths until each two-qudit gate's operands are adjacent.  The
router is deliberately simple — one greedy hop at a time, no lookahead,
no placement search — and is kept as the baseline the lookahead engine
(:mod:`repro.arch.router`) is benchmarked against; both are
semantics-preserving and verified: the routed circuit equals the
original up to the reported output placement.

Barrier floors are preserved: a ``barrier()`` placed in the logical
circuit is re-issued at the matching point of the routed circuit (the
same replay contract as ``Circuit.__add__``), so phase separations
survive routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import SchedulingError
from ..gates.base import PermutationGate
from ..qudits import Qudit

#: Sentinel yielded between operations wherever a barrier floor sits.
BARRIER = "barrier"


@lru_cache(maxsize=None)
def swap_gate(dim: int) -> PermutationGate:
    """SWAP on two d-level wires (a classical permutation for any d)."""
    mapping = [0] * (dim * dim)
    for a in range(dim):
        for b in range(dim):
            mapping[a * dim + b] = b * dim + a
    return PermutationGate(mapping, (dim, dim), f"SWAP(d{dim})")


def operations_with_barriers(
    circuit: Circuit,
) -> Iterator["GateOperation | str"]:
    """Operations in schedule order with :data:`BARRIER` markers interleaved.

    Yields the circuit's operations moment by moment, emitting the
    :data:`BARRIER` sentinel wherever a barrier floor was recorded — the
    iteration routers consume so routed circuits preserve the source's
    phase structure exactly like :meth:`Circuit.__add__` does.
    """
    floors = iter(circuit.barrier_floors)
    next_floor = next(floors, None)
    for index, moment in enumerate(circuit.moments):
        while next_floor is not None and next_floor <= index:
            yield BARRIER
            next_floor = next(floors, None)
        yield from moment
    while next_floor is not None:
        yield BARRIER
        next_floor = next(floors, None)


@dataclass
class RoutedCircuit:
    """A routed circuit plus the bookkeeping needed to interpret it."""

    circuit: Circuit
    #: Physical site wires indexed by site number.
    sites: list[Qudit]
    #: logical wire -> final physical site index.
    final_placement: dict[Qudit, int]
    #: logical wire -> initial physical site index.
    initial_placement: dict[Qudit, int]
    swap_count: int
    topology_name: str
    #: Which engine produced the routing ("greedy" / "lookahead").
    router_name: str = "greedy"

    @property
    def depth(self) -> int:
        """Scheduled depth on the constrained device."""
        return self.circuit.depth

    def output_site(self, logical: Qudit) -> Qudit:
        """The physical wire holding ``logical``'s value at the end."""
        return self.sites[self.final_placement[logical]]


def check_routable(
    circuit: Circuit,
    topology,
    wires: list[Qudit] | None,
) -> tuple[list[Qudit], int]:
    """Validate a routing request; returns ``(logical wires, dimension)``.

    Shared by both routers: the wire list must cover the circuit, all
    wires must share one dimension (physical sites are homogeneous), and
    the device must be connected and large enough.  Raises
    :class:`SchedulingError` otherwise.  An empty circuit returns
    ``([], 0)``.
    """
    logical_wires = list(wires) if wires is not None else circuit.all_qudits()
    missing = set(circuit.all_qudits()) - set(logical_wires)
    if missing:
        raise SchedulingError(f"wires {sorted(missing)} not in wire list")
    if not logical_wires:
        return [], 0
    dims = {w.dimension for w in logical_wires}
    if len(dims) > 1:
        raise SchedulingError(
            f"routing needs homogeneous wire dimensions, got {sorted(dims)}"
        )
    dim = dims.pop()
    if topology.size < len(logical_wires):
        raise SchedulingError(
            f"{topology.name} has {topology.size} sites for "
            f"{len(logical_wires)} wires"
        )
    if not topology.is_connected():
        raise SchedulingError(f"{topology.name} is not connected")
    return logical_wires, dim


def resolve_placement(
    logical_wires: list[Qudit],
    placement: dict[Qudit, int] | None,
    num_sites: int,
) -> dict[Qudit, int]:
    """The initial logical->site map (identity order by default).

    Validates injectivity and site bounds — shared by both routers.
    """
    if placement is None:
        return {w: k for k, w in enumerate(logical_wires)}
    resolved = dict(placement)
    occupied: set[int] = set()
    for wire, site in resolved.items():
        if not 0 <= site < num_sites:
            raise SchedulingError(
                f"placement site {site} outside 0..{num_sites - 1}"
            )
        if site in occupied:
            raise SchedulingError(f"two wires placed on site {site}")
        occupied.add(site)
    missing = set(logical_wires) - set(resolved)
    if missing:
        raise SchedulingError(
            f"placement missing wires {sorted(missing)}"
        )
    return resolved


def route_circuit(
    circuit: Circuit,
    topology,
    placement: dict[Qudit, int] | None = None,
    wires: list[Qudit] | None = None,
) -> RoutedCircuit:
    """Map ``circuit`` onto ``topology``, inserting SWAPs as needed.

    All logical wires must share one dimension (the physical sites are
    homogeneous).  ``placement`` assigns logical wires to sites; defaults
    to identity order over ``wires`` (default: the circuit's wires —
    pass a superset to reserve sites for untouched data wires).  Barrier
    floors of the source circuit are re-issued in the routed circuit.
    Raises :class:`SchedulingError` for gates wider than two wires
    (lower circuits first, or use the lookahead router which decomposes
    them itself) or if the device is too small.
    """
    logical_wires, dim = check_routable(circuit, topology, wires)
    if not logical_wires:
        return RoutedCircuit(
            Circuit(), [], {}, {}, 0, topology.name
        )

    sites = [Qudit(index, dim) for index in range(topology.size)]
    placement = resolve_placement(logical_wires, placement, topology.size)
    where = dict(placement)
    occupant: dict[int, Qudit | None] = {s: None for s in range(topology.size)}
    for wire, site in where.items():
        occupant[site] = wire

    swap = swap_gate(dim)
    routed = Circuit()
    swap_count = 0

    def do_swap(site_a: int, site_b: int) -> None:
        nonlocal swap_count
        routed.append(swap.on(sites[site_a], sites[site_b]))
        wire_a, wire_b = occupant[site_a], occupant[site_b]
        occupant[site_a], occupant[site_b] = wire_b, wire_a
        if wire_a is not None:
            where[wire_a] = site_b
        if wire_b is not None:
            where[wire_b] = site_a
        swap_count += 1

    for op in operations_with_barriers(circuit):
        if op is BARRIER:
            routed.barrier()
            continue
        if op.num_qudits == 1:
            routed.append(op.gate.on(sites[where[op.qudits[0]]]))
            continue
        if op.num_qudits != 2:
            raise SchedulingError(
                f"route_circuit handles 1- and 2-qudit gates; decompose "
                f"{op.gate.name} first"
            )
        wire_a, wire_b = op.qudits
        while not topology.are_adjacent(where[wire_a], where[wire_b]):
            step = topology.shortest_path_step(
                where[wire_a], where[wire_b]
            )
            do_swap(where[wire_a], step)
        routed.append(
            op.gate.on(sites[where[wire_a]], sites[where[wire_b]])
        )

    return RoutedCircuit(
        circuit=routed,
        sites=sites,
        final_placement={w: where[w] for w in logical_wires},
        initial_placement=placement,
        swap_count=swap_count,
        topology_name=topology.name,
        router_name="greedy",
    )
