"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro tables            # Tables 1-3
    python -m repro figures           # Figures 9 and 10 (depth / counts)
    python -m repro fidelity          # scaled-down Figure 11
    python -m repro fidelity --controls 13 --trials 1000   # paper size
    python -m repro verify            # exhaustive construction checks
"""

from __future__ import annotations

import argparse
import sys


def _cmd_tables(args: argparse.Namespace) -> None:
    from .analysis.tables import render_table1, render_table2, render_table3

    print(render_table1(control_counts=tuple(args.sizes)))
    print()
    print(render_table2())
    print()
    print(render_table3())


def _cmd_figures(args: argparse.Namespace) -> None:
    from .analysis.figures import (
        PAPER_COUNT_FITS,
        PAPER_DEPTH_FITS,
        fig9_depth_data,
        fig10_gate_count_data,
        render_series_table,
    )

    sizes = list(args.sizes)
    print("Figure 9 reproduction: circuit depth")
    print(
        render_series_table(
            sizes, fig9_depth_data(sizes), PAPER_DEPTH_FITS, "depth"
        )
    )
    print()
    print("Figure 10 reproduction: two-qudit gate count")
    print(
        render_series_table(
            sizes, fig10_gate_count_data(sizes), PAPER_COUNT_FITS, "2q gates"
        )
    )


def _cmd_fidelity(args: argparse.Namespace) -> None:
    from .analysis.figures import fig11_fidelity_data, render_fidelity_bars
    from .noise.presets import (
        BARE_QUTRIT,
        DRESSED_QUTRIT,
        SC,
        SC_GATES,
        SC_T1,
        SC_T1_GATES,
        TI_QUBIT,
    )

    sc_models = (SC, SC_T1, SC_GATES, SC_T1_GATES)
    pairs = (
        [("QUBIT", m) for m in sc_models]
        + [("QUBIT+ANCILLA", m) for m in sc_models]
        + [("QUTRIT", m) for m in sc_models]
        + [
            ("QUBIT", TI_QUBIT),
            ("QUBIT+ANCILLA", TI_QUBIT),
            ("QUTRIT", BARE_QUTRIT),
            ("QUTRIT", DRESSED_QUTRIT),
        ]
    )
    print(
        f"Figure 11 reproduction at {args.controls} controls, "
        f"{args.trials} trajectories per bar"
    )
    points = fig11_fidelity_data(
        pairs, num_controls=args.controls, trials=args.trials,
        seed=args.seed,
    )
    print(render_fidelity_bars(points))


def _cmd_verify(args: argparse.Namespace) -> None:
    from .toffoli.registry import CONSTRUCTIONS, build_toffoli
    from .toffoli.verification import verify_construction

    for name in sorted(CONSTRUCTIONS):
        result = build_toffoli(name, args.controls)
        checked = verify_construction(result)
        print(
            f"{name:20s} N={args.controls}: verified {checked} inputs "
            f"({result.describe()})"
        )


def main(argv: list[str] | None = None) -> int:
    """Dispatch the repro command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ISCA 2019 qutrit-circuits experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tables = sub.add_parser("tables", help="render Tables 1-3")
    tables.add_argument(
        "--sizes", type=int, nargs="+", default=[8, 16, 32, 64]
    )
    tables.set_defaults(func=_cmd_tables)

    figures = sub.add_parser("figures", help="Figures 9 and 10 sweeps")
    figures.add_argument(
        "--sizes", type=int, nargs="+", default=[8, 16, 32, 64]
    )
    figures.set_defaults(func=_cmd_figures)

    fidelity = sub.add_parser("fidelity", help="Figure 11 fidelity bars")
    fidelity.add_argument("--controls", type=int, default=6)
    fidelity.add_argument("--trials", type=int, default=25)
    fidelity.add_argument("--seed", type=int, default=2019)
    fidelity.set_defaults(func=_cmd_fidelity)

    verify = sub.add_parser(
        "verify", help="exhaustively verify every construction"
    )
    verify.add_argument("--controls", type=int, default=4)
    verify.set_defaults(func=_cmd_verify)

    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
