"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro run --construction qutrit_tree --controls 5 \\
        --backend classical --input 1 1 1 1 1 0
    python -m repro run --construction qutrit_tree --backend trajectory \\
        --noise SC --sweep 3 7 --trials 50 --seed 2019 --parallel
    python -m repro tables            # Tables 1-3
    python -m repro figures           # Figures 9 and 10 (depth / counts)
    python -m repro fidelity          # scaled-down Figure 11
    python -m repro fidelity --controls 13 --trials 1000   # paper size
    python -m repro verify            # exhaustive construction checks
    python -m repro verify qutrit_tree -n 13 --undecomposed  # width-14 check
    python -m repro bench --suite all            # every suite, default outs
    python -m repro bench --suite route          # one suite -> BENCH_route.json
    python -m repro bench --suite interop --smoke \\
        --check BENCH_interop.json               # CI regression gate
    python -m repro bench --suite state --out /tmp/state.json
    python -m repro bench                        # deprecated flag zoo: runs
                                                 # the seven legacy suites with
                                                 # --*-out/--check-* flags

    # The rewrite engine: optimize a construction (or saved circuit),
    # print per-pass statistics, verify against the equivalence oracles.
    python -m repro optimize --construction he_tree --controls 5
    python -m repro optimize --construction qubit_one_dirty --controls 5 \\
        --pipeline hardware-line --passes cancel-inverses,fuse-phases
    python -m repro optimize --file tree5.json --out tree5.opt.json

    # The execution service: async job queue over execute(), with
    # coalescing, a persistent result store, and fair scheduling.
    python -m repro serve --workers 4 --store .repro-store
    python -m repro serve --socket /tmp/repro.sock

    # Section VII connectivity study: route onto the topology zoo.
    python -m repro route --construction qutrit_tree --controls 8
    python -m repro route --controls 8 --topology line grid_2d heavy_hex \\
        --router both --noise SC
    python -m repro route --controls 8 --router lookahead --lookahead 32 \\
        --placement-trials 8 --trials 200   # + trajectory fidelity

    # Circuits are serializable values: persist, inspect, and replay.
    python -m repro circuit save --construction qutrit_tree --controls 5 \\
        --pipeline lowering --out tree5.json
    python -m repro circuit show tree5.json
    python -m repro circuit load tree5.json --backend classical \\
        --input 1 1 1 1 1 0
"""

from __future__ import annotations

import argparse
import sys

#: Named pipelines offered by ``run``, ``optimize`` and ``circuit
#: save`` — mirrors :data:`repro.execution.PIPELINE_SPECS`.
PIPELINE_CHOICES = [
    "lowering", "qutrit-promotion", "optimize",
    "naive-lift", "temporary-ternary",
    "hardware-line", "hardware-grid", "hardware-heavy-hex",
    "hardware-line-opt", "hardware-grid-opt", "hardware-heavy-hex-opt",
]

#: Benchmark suites offered by ``bench --suite`` — mirrors
#: :data:`repro.analysis.bench.BENCH_SUITES` (plus ``all``).
BENCH_SUITE_CHOICES = [
    "noise", "verify", "route", "opt", "state", "serve", "chaos",
    "interop", "all",
]


def _cli_pipeline(name: "str | None"):
    """Build the pipeline behind a ``--pipeline`` choice.

    Goes through :meth:`PipelineSpec.from_name` so CLI use never hits
    the string-name deprecation shim in ``resolve_pipeline``.
    """
    if name is None:
        return None
    from .execution import PipelineSpec

    return PipelineSpec.from_name(name).build()


def _print_run_result(result) -> None:
    """Shared result rendering for single runs (run / circuit load)."""
    print(result)
    if result.values is not None:
        print("output values:", result.values)
    if result.measurements is not None:
        for outcome, count in result.measurements.most_common(5):
            print(f"  {outcome}: {count}/{result.measurements.shots}")


def _cmd_run(args: argparse.Namespace) -> None:
    from .execution import execute
    from .noise.presets import ALL_MODELS

    noise_model = None
    if args.noise is not None:
        if args.noise not in ALL_MODELS:
            raise SystemExit(
                f"unknown noise model {args.noise!r}; "
                f"choose from {sorted(ALL_MODELS)}"
            )
        noise_model = ALL_MODELS[args.noise]
    if args.backend in ("density", "trajectory") and noise_model is None:
        raise SystemExit(
            f"backend {args.backend!r} needs --noise "
            f"(one of {sorted(ALL_MODELS)})"
        )

    common = dict(
        backend=args.backend,
        pipeline=_cli_pipeline(args.pipeline),
        noise_model=noise_model,
        shots=args.shots,
        trials=args.trials,
        seed=args.seed,
        batch_size=args.batch_size,
        parallel=args.parallel,
        workers=args.workers,
    )
    if args.sweep is not None:
        if args.input is not None:
            raise SystemExit(
                "--input applies to a single run; it cannot combine "
                "with --sweep (wire counts differ per point)"
            )
        if args.controls is not None:
            raise SystemExit(
                "--controls conflicts with --sweep; the sweep sets "
                "num_controls"
            )
        low, high = args.sweep
        results = execute(
            args.construction,
            sweep={"num_controls": range(low, high + 1)},
            **common,
        )
        for result in results:
            print(result)
    else:
        controls = args.controls if args.controls is not None else 5
        result = execute(
            args.construction,
            num_controls=controls,
            initial=tuple(args.input) if args.input else None,
            **common,
        )
        _print_run_result(result)


def _cmd_tables(args: argparse.Namespace) -> None:
    from .analysis.tables import render_table1, render_table2, render_table3

    print(render_table1(control_counts=tuple(args.sizes)))
    print()
    print(render_table2())
    print()
    print(render_table3())


def _cmd_figures(args: argparse.Namespace) -> None:
    from .analysis.figures import (
        PAPER_COUNT_FITS,
        PAPER_DEPTH_FITS,
        fig9_depth_data,
        fig10_gate_count_data,
        render_series_table,
    )

    sizes = list(args.sizes)
    print("Figure 9 reproduction: circuit depth")
    print(
        render_series_table(
            sizes, fig9_depth_data(sizes), PAPER_DEPTH_FITS, "depth"
        )
    )
    print()
    print("Figure 10 reproduction: two-qudit gate count")
    print(
        render_series_table(
            sizes, fig10_gate_count_data(sizes), PAPER_COUNT_FITS, "2q gates"
        )
    )


def _cmd_fidelity(args: argparse.Namespace) -> None:
    from .analysis.figures import fig11_fidelity_data, render_fidelity_bars
    from .noise.presets import (
        BARE_QUTRIT,
        DRESSED_QUTRIT,
        SC,
        SC_GATES,
        SC_T1,
        SC_T1_GATES,
        TI_QUBIT,
    )

    sc_models = (SC, SC_T1, SC_GATES, SC_T1_GATES)
    pairs = (
        [("QUBIT", m) for m in sc_models]
        + [("QUBIT+ANCILLA", m) for m in sc_models]
        + [("QUTRIT", m) for m in sc_models]
        + [
            ("QUBIT", TI_QUBIT),
            ("QUBIT+ANCILLA", TI_QUBIT),
            ("QUTRIT", BARE_QUTRIT),
            ("QUTRIT", DRESSED_QUTRIT),
        ]
    )
    print(
        f"Figure 11 reproduction at {args.controls} controls, "
        f"{args.trials} trajectories per bar"
    )
    points = fig11_fidelity_data(
        pairs, num_controls=args.controls, trials=args.trials,
        seed=args.seed,
    )
    print(render_fidelity_bars(points))


def _read_circuit(path: str):
    from pathlib import Path

    from .circuits.circuit import Circuit
    from .exceptions import SerializationError

    try:
        text = Path(path).read_text()
    except OSError as error:
        raise SystemExit(f"cannot read {path}: {error}")
    try:
        return Circuit.from_json(text)
    except (SerializationError, KeyError) as error:
        raise SystemExit(f"cannot load circuit from {path}: {error}")


def _circuit_summary(circuit) -> str:
    wires = circuit.all_qudits()
    return (
        f"depth={circuit.depth} operations={circuit.num_operations} "
        f"two_qudit={circuit.two_qudit_gate_count} "
        f"wires={len(wires)} "
        f"dims={tuple(w.dimension for w in wires)}"
    )


def _cmd_circuit_save(args: argparse.Namespace) -> None:
    from pathlib import Path

    from inspect import signature

    from .toffoli.registry import CONSTRUCTIONS, construction_circuit

    build_kwargs = {}
    if args.undecomposed:
        info = CONSTRUCTIONS.get(args.construction)
        if info is not None and (
            "decompose" not in signature(info.builder).parameters
        ):
            raise SystemExit(
                f"construction {args.construction!r} does not take "
                "--undecomposed (it already emits permutation-level "
                "gates)"
            )
        build_kwargs["decompose"] = False
    circuit = construction_circuit(
        args.construction, args.controls, **build_kwargs
    )
    pipeline = _cli_pipeline(args.pipeline)
    if pipeline is not None:
        circuit = pipeline.compile(circuit).circuit
    text = circuit.to_json(indent=2 if args.pretty else None)
    if args.out == "-":
        print(text)
    else:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}: {_circuit_summary(circuit)}")


def _cmd_circuit_show(args: argparse.Namespace) -> None:
    from .circuits.diagram import to_text_diagram

    circuit = _read_circuit(args.file)
    print(_circuit_summary(circuit))
    if circuit.barrier_floors:
        print(f"barriers at moments {circuit.barrier_floors}")
    print()
    print(to_text_diagram(circuit, max_moments=args.max_moments))


def _cmd_circuit_load(args: argparse.Namespace) -> None:
    from .execution import execute
    from .noise.presets import ALL_MODELS

    circuit = _read_circuit(args.file)
    noise_model = None
    if args.noise is not None:
        if args.noise not in ALL_MODELS:
            raise SystemExit(
                f"unknown noise model {args.noise!r}; "
                f"choose from {sorted(ALL_MODELS)}"
            )
        noise_model = ALL_MODELS[args.noise]
    result = execute(
        circuit,
        backend=args.backend,
        noise_model=noise_model,
        initial=tuple(args.input) if args.input else None,
        shots=args.shots,
        trials=args.trials,
        seed=args.seed,
    )
    _print_run_result(result)


def _cmd_bench(args: argparse.Namespace) -> None:
    import json
    import warnings
    from pathlib import Path

    from .analysis.bench import BENCH_SUITES, write_report

    def run_suite(
        name: str,
        out: str,
        check_path: "str | None",
        label: "str | None" = None,
        first: bool = False,
    ) -> None:
        suite = BENCH_SUITES[name]
        label = label or suite.name
        report = suite.run(args.smoke, args.seed)
        if not first:
            print()
        print(suite.render(report))
        if out != "-":
            path = write_report(report, out)
            print(f"\nwrote {path}")
        if check_path is None:
            return
        if suite.check is None:
            gated = sorted(
                s.name for s in BENCH_SUITES.values()
                if s.check is not None
            )
            raise SystemExit(
                f"suite {name!r} has no regression gate; --check "
                f"applies to {gated}"
            )
        try:
            committed = json.loads(Path(check_path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(
                f"cannot read committed {label} report "
                f"{check_path}: {error}"
            )
        failures = suite.check(committed, report)
        if failures:
            print(f"\n{label} regression check FAILED:")
            for failure in failures:
                print(f"  {failure}")
            raise SystemExit(1)
        print(
            f"\n{label} regression check passed against {check_path}"
        )

    if args.suite is None and args.check is not None:
        raise SystemExit("--check requires --suite (the gate is per-suite)")

    if args.suite == "all":
        if args.check is not None:
            raise SystemExit(
                "--check needs a single --suite (a baseline file is "
                "per-suite); gate suites one invocation at a time"
            )
        if args.out is not None:
            raise SystemExit(
                "--out needs a single --suite; with --suite all each "
                "report goes to its default path"
            )
        for index, suite in enumerate(BENCH_SUITES.values()):
            run_suite(suite.name, suite.default_out, None, first=index == 0)
        return

    if args.suite is not None:
        suite = BENCH_SUITES[args.suite]
        out = args.out if args.out is not None else suite.default_out
        run_suite(args.suite, out, args.check, first=True)
        return

    # No --suite: the original seven-suite flag zoo, kept as a shim.
    warnings.warn(
        "the all-in-one bench invocation with per-suite --*-out/"
        "--check-* flags is deprecated; use 'repro bench --suite NAME "
        "[--out PATH] [--check BASELINE]' (or --suite all)",
        DeprecationWarning,
        stacklevel=2,
    )
    run_suite(
        "noise",
        args.out if args.out is not None else "BENCH_noise.json",
        None,
        first=True,
    )
    run_suite("verify", args.verify_out, None)
    run_suite("route", args.route_out, args.check_route, label="routing")
    run_suite("opt", args.opt_out, args.check_opt, label="optimizer")
    run_suite(
        "state", args.state_out, args.check_state, label="statevector"
    )
    run_suite("serve", args.serve_out, args.check_serve, label="serve")
    run_suite("chaos", args.chaos_out, args.check_chaos, label="chaos")


def _cmd_serve(args: argparse.Namespace) -> None:
    from .execution.cache import ResultCache
    from .service import JobQueue, ResultStore, serve_socket, serve_stdio

    store = None
    if args.store is not None:
        store = ResultStore(
            args.store,
            max_bytes=args.store_max_bytes,
            max_entries=args.store_max_entries,
        )
    queue = JobQueue(
        workers=args.workers,
        cache=ResultCache(backing=store),
        max_pending=args.max_pending,
        backpressure=args.backpressure,
    )
    try:
        if args.socket is not None:
            print(f"serving on {args.socket}", file=sys.stderr)
            serve_socket(queue, args.socket)
        else:
            serve_stdio(queue)
    finally:
        queue.shutdown(wait=True, cancel_pending=True)


def _cmd_route(args: argparse.Namespace) -> None:
    from .arch.metrics import estimate_routed_fidelity, routing_metrics
    from .arch.router import LookaheadRouter, GreedyRouter, RouterConfig
    from .arch.topology import TOPOLOGY_KINDS, sized_topology
    from .noise.presets import ALL_MODELS
    from .toffoli.registry import construction_circuit

    noise_model = None
    if args.noise is not None:
        if args.noise not in ALL_MODELS:
            raise SystemExit(
                f"unknown noise model {args.noise!r}; "
                f"choose from {sorted(ALL_MODELS)}"
            )
        noise_model = ALL_MODELS[args.noise]
    if args.trials and noise_model is None:
        raise SystemExit("--trials needs --noise (the model to sample)")

    if args.file is not None:
        circuit = _read_circuit(args.file)
        label = args.file
    else:
        circuit = construction_circuit(args.construction, args.controls)
        label = f"{args.construction}(N={args.controls})"
    pipeline = _cli_pipeline(args.pipeline)
    if pipeline is not None:
        circuit = pipeline.compile(circuit).circuit
    wires = circuit.all_qudits()

    config = RouterConfig(
        lookahead=args.lookahead,
        placement_trials=args.placement_trials,
        seed=args.seed,
    )
    routers = {
        "lookahead": [LookaheadRouter(config)],
        "greedy": [GreedyRouter()],
        "both": [GreedyRouter(), LookaheadRouter(config)],
    }[args.router]

    unknown = [k for k in args.topology if k not in TOPOLOGY_KINDS]
    if unknown:
        raise SystemExit(
            f"unknown topology kind(s) {unknown}; "
            f"choose from {sorted(TOPOLOGY_KINDS)}"
        )

    print(
        f"routing {label}: {len(wires)} wires, depth {circuit.depth}, "
        f"{circuit.two_qudit_gate_count} two-qudit gates"
    )
    header = (
        f"{'topology':>16s} {'router':>9s} {'swaps':>6s} {'depth':>6s} "
        f"{'overhead':>8s} {'swap/2q':>8s}"
    )
    if noise_model is not None:
        header += f" {'fid~':>7s}"
        if args.trials:
            header += f" {'fid(mc)':>9s}"
    print(header)
    for kind in args.topology:
        topology = sized_topology(kind, len(wires), seed=args.seed)
        for router in routers:
            routed = router.route(circuit, topology, wires=wires)
            metrics = routing_metrics(circuit, routed, noise_model)
            row = (
                f"{routed.topology_name:>16s} {routed.router_name:>9s} "
                f"{routed.swap_count:6d} {routed.depth:6d} "
                f"{metrics.depth_overhead:8.2f} {metrics.swap_overhead:8.2f}"
            )
            if noise_model is not None:
                row += f" {metrics.fidelity_proxy:7.3f}"
                if args.trials:
                    estimate = estimate_routed_fidelity(
                        routed, noise_model,
                        trials=args.trials, seed=args.seed,
                    )
                    row += (
                        f" {estimate.mean_fidelity:6.3f}"
                        f"±{estimate.two_sigma:.3f}"
                    )
            print(row)


def _cmd_optimize(args: argparse.Namespace) -> None:
    from pathlib import Path

    from .optimize import RewriteEngine
    from .toffoli.registry import construction_circuit

    if args.file is not None:
        circuit = _read_circuit(args.file)
        label = args.file
    else:
        circuit = construction_circuit(args.construction, args.controls)
        label = f"{args.construction}(N={args.controls})"
    pipeline = _cli_pipeline(args.pipeline)
    if pipeline is not None:
        circuit = pipeline.compile(circuit).circuit

    passes = None
    if args.passes is not None:
        passes = [p.strip() for p in args.passes.split(",") if p.strip()]
    verify = False if args.verify == "off" else args.verify
    engine = RewriteEngine(
        passes=passes, cost_model=args.cost_model, verify=verify
    )
    optimized, report = engine.run(circuit)

    print(f"optimizing {label} ({engine.cost_model.name} cost model)")
    before, after = report.cost_before, report.cost_after
    print(
        f"  gates {before.total_gates} -> {after.total_gates}, "
        f"two-qudit {before.two_qudit_gates} -> {after.two_qudit_gates}, "
        f"non-Clifford {before.non_clifford_gates} -> "
        f"{after.non_clifford_gates}, "
        f"depth {before.depth} -> {after.depth} "
        f"({report.iterations} sweep(s))"
    )
    print(
        f"{'pass':>16s} {'applied':>8s} {'removed':>8s} "
        f"{'fused':>6s} {'accepted':>9s}"
    )
    for name, stats in report.totals().items():
        print(
            f"{name:>16s} {stats.applications:8d} "
            f"{stats.gates_removed:8d} {stats.gates_fused:6d} "
            f"{'yes' if stats.accepted else 'no':>9s}"
        )
    if report.verified is not None:
        print(f"equivalence: {report.verified}")
    if args.out is not None:
        text = optimized.to_json(indent=2 if args.pretty else None)
        if args.out == "-":
            print(text)
        else:
            Path(args.out).write_text(text + "\n")
            print(f"wrote {args.out}: {_circuit_summary(optimized)}")


def _cmd_verify(args: argparse.Namespace) -> None:
    from inspect import signature

    from .toffoli.registry import CONSTRUCTIONS, build_toffoli
    from .toffoli.verification import verify_construction

    if args.construction is not None:
        if args.construction not in CONSTRUCTIONS:
            raise SystemExit(
                f"unknown construction {args.construction!r}; "
                f"choose from {sorted(CONSTRUCTIONS)}"
            )
        names = [args.construction]
    else:
        names = sorted(CONSTRUCTIONS)
    for name in names:
        build_kwargs = {}
        if args.undecomposed:
            builder = CONSTRUCTIONS[name].builder
            if "decompose" not in signature(builder).parameters:
                if args.construction is not None:
                    raise SystemExit(
                        f"construction {name!r} does not take "
                        "--undecomposed (it already emits "
                        "permutation-level gates)"
                    )
            else:
                build_kwargs["decompose"] = False
        result = build_toffoli(name, args.controls, **build_kwargs)
        checked = verify_construction(result)
        print(
            f"{name:20s} N={args.controls}: verified {checked} inputs "
            f"({result.describe()})"
        )


def main(argv: list[str] | None = None) -> int:
    """Dispatch the repro command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ISCA 2019 qutrit-circuits experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute a construction on any backend"
    )
    run.add_argument(
        "--construction", default="qutrit_tree",
        help="registry name (see 'verify' output for the list)",
    )
    run.add_argument(
        "--controls", type=int, default=None,
        help="control count for a single run (default 5)",
    )
    run.add_argument(
        "--backend", default="statevector",
        choices=["classical", "statevector", "density", "trajectory"],
    )
    run.add_argument(
        "--pipeline", default=None, choices=PIPELINE_CHOICES,
    )
    run.add_argument(
        "--noise", default=None,
        help="noise model name (required by density/trajectory)",
    )
    run.add_argument(
        "--input", type=int, nargs="+", default=None,
        help="basis input values over the construction's wires",
    )
    run.add_argument("--shots", type=int, default=None)
    run.add_argument("--trials", type=int, default=None)
    run.add_argument("--seed", type=int, default=None)
    run.add_argument(
        "--batch-size", type=int, default=None,
        help="trajectory chunk size (default: auto; 1 = looped engine)",
    )
    run.add_argument(
        "--sweep", type=int, nargs=2, metavar=("LOW", "HIGH"),
        default=None, help="sweep num_controls over LOW..HIGH inclusive",
    )
    run.add_argument("--parallel", action="store_true")
    run.add_argument("--workers", type=int, default=4)
    run.set_defaults(func=_cmd_run)

    tables = sub.add_parser("tables", help="render Tables 1-3")
    tables.add_argument(
        "--sizes", type=int, nargs="+", default=[8, 16, 32, 64]
    )
    tables.set_defaults(func=_cmd_tables)

    figures = sub.add_parser("figures", help="Figures 9 and 10 sweeps")
    figures.add_argument(
        "--sizes", type=int, nargs="+", default=[8, 16, 32, 64]
    )
    figures.set_defaults(func=_cmd_figures)

    fidelity = sub.add_parser("fidelity", help="Figure 11 fidelity bars")
    fidelity.add_argument("--controls", type=int, default=6)
    fidelity.add_argument("--trials", type=int, default=25)
    fidelity.add_argument("--seed", type=int, default=2019)
    fidelity.set_defaults(func=_cmd_fidelity)

    bench = sub.add_parser(
        "bench",
        help="run a benchmark suite (--suite NAME|all); no --suite runs "
        "the deprecated all-in-one flag interface",
    )
    bench.add_argument(
        "--suite", default=None, choices=BENCH_SUITE_CHOICES,
        help="benchmark suite to run ('all' runs every suite with its "
        "default output path)",
    )
    bench.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="with --suite: compare the fresh report against this "
        "committed JSON and exit non-zero on regression (the CI "
        "bench-regression gate; suites without a gate reject this)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="shrunken workloads for CI (seconds, not minutes)",
    )
    bench.add_argument(
        "--out", default=None,
        help="report path ('-' skips writing; default: the suite's "
        "BENCH_*.json, or BENCH_noise.json for the legacy interface)",
    )
    bench.add_argument(
        "--verify-out", default="BENCH_verify.json",
        help="(deprecated; use --suite verify --out) "
        "verification-report path ('-' skips writing)",
    )
    bench.add_argument(
        "--route-out", default="BENCH_route.json",
        help="routing-report path ('-' skips writing)",
    )
    bench.add_argument(
        "--check-route", default=None, metavar="BASELINE",
        help="compare the fresh routing report against this committed "
        "JSON and exit non-zero if a deterministic metric degraded >3x "
        "(the CI bench-regression gate)",
    )
    bench.add_argument(
        "--opt-out", default="BENCH_opt.json",
        help="optimizer-report path ('-' skips writing)",
    )
    bench.add_argument(
        "--check-opt", default=None, metavar="BASELINE",
        help="compare the fresh optimizer report against this committed "
        "JSON and exit non-zero if a deterministic reduction shrank or "
        "equivalence verification regressed (the CI bench-regression "
        "gate)",
    )
    bench.add_argument(
        "--state-out", default="BENCH_state.json",
        help="statevector-report path ('-' skips writing)",
    )
    bench.add_argument(
        "--check-state", default=None, metavar="BASELINE",
        help="check the fresh statevector report's deterministic "
        "invariants (fast-path parity, sampler agreement and "
        "determinism, chi-square GOF, complex64 bound) against this "
        "committed JSON and exit non-zero on violation; speedups are "
        "recorded, never gated",
    )
    bench.add_argument(
        "--serve-out", default="BENCH_serve.json",
        help="serving-report path ('-' skips writing)",
    )
    bench.add_argument(
        "--check-serve", default=None, metavar="BASELINE",
        help="check the fresh serve report's sharing invariants "
        "(exactly-once execution, restart served from the store) "
        "against this committed JSON and exit non-zero on violation",
    )
    bench.add_argument(
        "--chaos-out", default="BENCH_chaos.json",
        help="chaos-report path ('-' skips writing)",
    )
    bench.add_argument(
        "--check-chaos", default=None, metavar="BASELINE",
        help="check the fresh chaos report's resilience invariants "
        "(no lost handles, capped retries, exactly-once fan-out, "
        "corruption containment) against this committed JSON and exit "
        "non-zero on violation; timings and injection counts are never "
        "gated",
    )
    bench.add_argument("--seed", type=int, default=2019)
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="run the execution service over line-delimited JSON "
        "(stdin/stdout, or a Unix socket with --socket)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="worker threads draining the job queue",
    )
    serve.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist results as content-addressed JSON under DIR "
        "(default: in-memory cache only)",
    )
    serve.add_argument(
        "--store-max-bytes", type=int, default=64 * 1024 * 1024,
        help="persistent store size cap before LRU eviction",
    )
    serve.add_argument(
        "--store-max-entries", type=int, default=4096,
        help="persistent store entry cap before LRU eviction",
    )
    serve.add_argument(
        "--max-pending", type=int, default=256,
        help="bound on distinct queued executions (backpressure)",
    )
    serve.add_argument(
        "--backpressure", default="reject", choices=["reject", "block"],
        help="policy at the bound: reject submissions or block them",
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve on a Unix socket instead of stdin/stdout",
    )
    serve.set_defaults(func=_cmd_serve)

    route = sub.add_parser(
        "route",
        help="route a construction onto the topology zoo (Sec. VII study)",
    )
    route.add_argument(
        "--construction", default="qutrit_tree",
        help="registry name (see 'verify' output for the list)",
    )
    route.add_argument("--controls", type=int, default=8)
    route.add_argument(
        "--file", default=None,
        help="route a saved circuit JSON instead of a construction",
    )
    route.add_argument(
        "--pipeline", default=None,
        choices=["lowering", "qutrit-promotion"],
        help="compile before routing (constructions come pre-lowered)",
    )
    route.add_argument(
        "--topology", nargs="+",
        default=["line", "grid_2d", "heavy_hex", "all_to_all"],
        help="topology zoo kinds, sized to the circuit "
        "(line ring star tree grid_2d heavy_hex random_regular "
        "all_to_all)",
    )
    route.add_argument(
        "--router", default="lookahead",
        choices=["lookahead", "greedy", "both"],
    )
    route.add_argument(
        "--lookahead", type=int, default=16,
        help="lookahead window (upcoming 2-qudit gates scored)",
    )
    route.add_argument(
        "--placement-trials", type=int, default=4,
        help="random initial placements tried besides identity + "
        "interaction order",
    )
    route.add_argument(
        "--noise", default=None,
        help="noise model name: adds the closed-form fidelity proxy",
    )
    route.add_argument(
        "--trials", type=int, default=0,
        help="with --noise: trajectory trials for a Monte-Carlo "
        "fidelity estimate of each routed circuit (0 = proxy only)",
    )
    route.add_argument("--seed", type=int, default=2019)
    route.set_defaults(func=_cmd_route)

    optimize = sub.add_parser(
        "optimize",
        help="run the rewrite engine on a construction or saved circuit",
    )
    optimize.add_argument(
        "--construction", default="qutrit_tree",
        help="registry name (see 'verify' output for the list)",
    )
    optimize.add_argument("--controls", type=int, default=5)
    optimize.add_argument(
        "--file", default=None,
        help="optimize a saved circuit JSON instead of a construction",
    )
    optimize.add_argument(
        "--pipeline", default=None, choices=PIPELINE_CHOICES,
        help="compile before optimizing (e.g. hardware-line to "
        "optimize the routed circuit)",
    )
    optimize.add_argument(
        "--passes", default=None, metavar="NAMES",
        help="comma-separated pass list (default: "
        "cancel-inverses,fuse-phases,pack-commuting)",
    )
    optimize.add_argument(
        "--cost-model", default=None,
        choices=["qutrit-clifford-t", "gate-count"],
        help="accept/reject cost model (default qutrit-clifford-t)",
    )
    optimize.add_argument(
        "--verify", default="auto", choices=["auto", "strict", "off"],
        help="equivalence-oracle mode: auto skips infeasible widths, "
        "strict raises instead, off trusts the passes",
    )
    optimize.add_argument(
        "--out", default=None,
        help="write the optimized circuit JSON ('-' prints to stdout)",
    )
    optimize.add_argument(
        "--pretty", action="store_true", help="indent the JSON output"
    )
    optimize.set_defaults(func=_cmd_optimize)

    verify = sub.add_parser(
        "verify",
        help="exhaustively verify constructions (all, or one by name)",
    )
    verify.add_argument(
        "construction", nargs="?", default=None,
        help="registry name; omitted = every construction",
    )
    verify.add_argument(
        "-n", "--controls", type=int, default=4,
        help="control count to verify at (default 4)",
    )
    verify.add_argument(
        "--undecomposed", action="store_true",
        help="verify the permutation-level circuit (the paper's "
        "linear-cost classical check; required for wide circuits — "
        "decomposed circuits fall back to exponential state vectors)",
    )
    verify.set_defaults(func=_cmd_verify)

    circuit = sub.add_parser(
        "circuit", help="save / show / replay serialized circuits"
    )
    circuit_sub = circuit.add_subparsers(
        dest="circuit_command", required=True
    )

    save = circuit_sub.add_parser(
        "save", help="build a construction and write its JSON form"
    )
    save.add_argument(
        "--construction", default="qutrit_tree",
        help="registry name (see 'verify' output for the list)",
    )
    save.add_argument("--controls", type=int, default=5)
    save.add_argument(
        "--pipeline", default=None, choices=PIPELINE_CHOICES,
        help="compile before saving (same pipelines as 'run')",
    )
    save.add_argument(
        "--out", default="-",
        help="output path ('-' prints to stdout)",
    )
    save.add_argument(
        "--pretty", action="store_true", help="indent the JSON output"
    )
    save.add_argument(
        "--undecomposed", action="store_true",
        help="keep permutation-level gates (classical replay; skips the "
        "builder's width-2 lowering)",
    )
    save.set_defaults(func=_cmd_circuit_save)

    show = circuit_sub.add_parser(
        "show", help="print stats and a diagram of a saved circuit"
    )
    show.add_argument("file", help="path to a saved circuit JSON file")
    show.add_argument(
        "--max-moments", type=int, default=24,
        help="truncate the diagram after this many moments",
    )
    show.set_defaults(func=_cmd_circuit_show)

    load = circuit_sub.add_parser(
        "load", help="load a saved circuit and execute it"
    )
    load.add_argument("file", help="path to a saved circuit JSON file")
    load.add_argument(
        "--backend", default="statevector",
        choices=["classical", "statevector", "density", "trajectory"],
    )
    load.add_argument(
        "--noise", default=None,
        help="noise model name (required by density/trajectory)",
    )
    load.add_argument(
        "--input", type=int, nargs="+", default=None,
        help="basis input values over the circuit's wires",
    )
    load.add_argument("--shots", type=int, default=None)
    load.add_argument("--trials", type=int, default=None)
    load.add_argument("--seed", type=int, default=None)
    load.set_defaults(func=_cmd_circuit_load)

    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
