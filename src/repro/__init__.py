"""repro — reproduction of "Asymptotic Improvements to Quantum Circuits via
Qutrits" (Gokhale et al., ISCA 2019).

The package provides a mixed-dimension qudit circuit library, a
quantum-trajectory noise simulator with the paper's superconducting and
trapped-ion noise models, the paper's log-depth ancilla-free qutrit
Generalized Toffoli plus all benchmarked baselines, and the applications
built on top of it (incrementer, Grover search, quantum neuron).

Quickstart::

    from repro import ClassicalSimulator, build_toffoli

    result = build_toffoli("qutrit_tree", num_controls=5)
    sim = ClassicalSimulator()
    wires = result.controls + [result.target]
    print(sim.run_values(result.circuit, wires, (1, 1, 1, 1, 1, 0)))
"""

from .qudits import QUBIT_D, QUTRIT_D, Qudit, qubits, qudit_line, qutrits
from .circuits import Circuit, GateOperation, Moment
from .sim import (
    ClassicalSimulator,
    FidelityEstimate,
    StateVector,
    StateVectorSimulator,
    TrajectorySimulator,
    estimate_circuit_fidelity,
)
from .noise import ALL_MODELS, NoiseModel
from .toffoli import CONSTRUCTIONS, GeneralizedToffoli, build_toffoli

__version__ = "1.0.0"

__all__ = [
    "Qudit",
    "QUBIT_D",
    "QUTRIT_D",
    "qubits",
    "qutrits",
    "qudit_line",
    "Circuit",
    "Moment",
    "GateOperation",
    "StateVector",
    "ClassicalSimulator",
    "StateVectorSimulator",
    "TrajectorySimulator",
    "FidelityEstimate",
    "estimate_circuit_fidelity",
    "NoiseModel",
    "ALL_MODELS",
    "GeneralizedToffoli",
    "build_toffoli",
    "CONSTRUCTIONS",
    "__version__",
]
