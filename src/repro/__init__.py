"""repro — reproduction of "Asymptotic Improvements to Quantum Circuits via
Qutrits" (Gokhale et al., ISCA 2019).

The package provides a mixed-dimension qudit circuit library, a
quantum-trajectory noise simulator with the paper's superconducting and
trapped-ion noise models, the paper's log-depth ancilla-free qutrit
Generalized Toffoli plus all benchmarked baselines, and the applications
built on top of it (incrementer, Grover search, quantum neuron).

Everything runs through one facade: :func:`execute` builds (or accepts)
a circuit, optionally compiles it through a :class:`CompilePipeline`,
and executes it on any registered :class:`Backend`.

Quickstart::

    from repro import execute

    # Classical check of the paper's log-depth qutrit construction.
    result = execute("qutrit_tree", num_controls=5, backend="classical",
                     initial=(1, 1, 1, 1, 1, 0))
    print(result.values)        # -> (1, 1, 1, 1, 1, 1): target flipped

    # Noisy fidelity sweep, sharded over worker processes.
    from repro.noise import SC
    points = execute("qutrit_tree", backend="trajectory", noise_model=SC,
                     sweep={"num_controls": range(3, 8)},
                     trials=100, seed=2019, parallel=True)
    for point in points:
        print(dict(point.params), point.mean_fidelity)

The simulator engines remain available in :mod:`repro.sim` for direct
use; the old top-level simulator exports still work but are deprecated
in favour of :func:`execute`.
"""

from .qudits import QUBIT_D, QUTRIT_D, Qudit, qubits, qudit_line, qutrits
from .gates import GATE_REGISTRY, GateRegistry, GateSpec
from .circuits import Circuit, GateOperation, Moment
from .sim import StateVector
from .noise import ALL_MODELS, NoiseModel
from .toffoli import CONSTRUCTIONS, GeneralizedToffoli, build_toffoli
from .arch import (
    CouplingGraph,
    LookaheadRouter,
    RouterConfig,
    RoutingMetrics,
    TopologySpec,
    route_circuit,
    routing_metrics,
    sized_topology,
)

# The execution layer wraps sim/noise/toffoli, so it must import last.
from .execution import (
    Backend,
    CompilePipeline,
    FidelityResult,
    PipelineSpec,
    PipelineStage,
    ResultCache,
    RunResult,
    available_backends,
    execute,
    hardware_pipeline,
    lowering_pipeline,
    qutrit_promotion_pipeline,
    register_backend,
    resolve_backend,
)

# The serving layer sits on top of the execution layer.
from .service import Job, JobQueue, JobState, ResultStore

__version__ = "1.3.0"

#: Deprecated top-level names -> (module path, attribute) they forward to.
_DEPRECATED_EXPORTS = {
    "ClassicalSimulator": ("repro.sim", "ClassicalSimulator"),
    "StateVectorSimulator": ("repro.sim", "StateVectorSimulator"),
    "TrajectorySimulator": ("repro.sim", "TrajectorySimulator"),
    "FidelityEstimate": ("repro.sim", "FidelityEstimate"),
    "estimate_circuit_fidelity": ("repro.sim", "estimate_circuit_fidelity"),
}


def __getattr__(name: str):
    """Forward deprecated simulator entry points with a warning.

    The classes themselves are not deprecated — import them from
    :mod:`repro.sim`.  Only the *top-level* re-exports are shimmed, so
    existing code keeps working while new code is steered to
    :func:`execute`.
    """
    if name in _DEPRECATED_EXPORTS:
        import importlib
        import warnings

        module_path, attribute = _DEPRECATED_EXPORTS[name]
        warnings.warn(
            f"'repro.{name}' is deprecated; use repro.execute() with a "
            f"backend, or import {attribute} from {module_path}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module_path), attribute)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "Qudit",
    "QUBIT_D",
    "QUTRIT_D",
    "qubits",
    "qutrits",
    "qudit_line",
    "Circuit",
    "Moment",
    "GateOperation",
    "GateSpec",
    "GateRegistry",
    "GATE_REGISTRY",
    "StateVector",
    "execute",
    "Backend",
    "RunResult",
    "FidelityResult",
    "CompilePipeline",
    "PipelineSpec",
    "PipelineStage",
    "lowering_pipeline",
    "qutrit_promotion_pipeline",
    "hardware_pipeline",
    "CouplingGraph",
    "TopologySpec",
    "sized_topology",
    "RouterConfig",
    "LookaheadRouter",
    "route_circuit",
    "RoutingMetrics",
    "routing_metrics",
    "ResultCache",
    "Job",
    "JobQueue",
    "JobState",
    "ResultStore",
    "register_backend",
    "resolve_backend",
    "available_backends",
    "ClassicalSimulator",
    "StateVectorSimulator",
    "TrajectorySimulator",
    "FidelityEstimate",
    "estimate_circuit_fidelity",
    "NoiseModel",
    "ALL_MODELS",
    "GeneralizedToffoli",
    "build_toffoli",
    "CONSTRUCTIONS",
    "__version__",
]
