"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish the common failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DimensionMismatchError(ReproError):
    """A gate was applied to qudits whose dimensions it does not accept."""


class NotClassicalError(ReproError):
    """A classical (basis-state) action was requested from a gate that is
    not a computational-basis permutation."""


class SchedulingError(ReproError):
    """A circuit edit would produce an invalid moment structure."""


class DecompositionError(ReproError):
    """A requested gate decomposition cannot be constructed."""


class NoiseModelError(ReproError):
    """A noise channel or noise model was configured inconsistently."""


class SimulationError(ReproError):
    """A simulator was driven with inputs it cannot process."""


class SerializationError(ReproError):
    """Circuit or gate data could not be serialized or deserialized."""


class OptimizationError(ReproError):
    """A rewrite pass produced an invalid or non-equivalent circuit."""


class InteropError(ReproError):
    """A qubit<->qutrit dimension transform could not be performed.

    Raised when lifting meets a gate that cannot be embedded, or when
    lowering meets a gate whose action leaks out of the qubit subspace
    (the |2> population is not transient at that gate)."""
