"""Equivalence oracles for optimized circuits.

Two modes, mirroring the PR 4 verification layer:

* **classical** — both circuits lower to permutation tables; their full
  :meth:`~repro.sim.classical_batch.BatchedClassicalSimulator
  .permutation_vector` index arrays must be identical.  Linear in gate
  count, exact, valid at any width — this is the oracle for the
  undecomposed constructions.
* **statevector** — the full basis advances through both circuits as
  stacked ``(B, d_0, ..., d_{n-1})`` tensors (the trajectory engines'
  vectorized contraction) and the resulting amplitude arrays must agree
  elementwise.  This checks *exact* unitary equality — the optimizer's
  rewrites preserve the unitary, not just its action up to phase — and
  is capped at a joint dimension where the dense batch stays small.

``equivalence_method`` picks the cheapest sound mode; ``None`` means the
circuit is both non-classical and too wide to check densely, which
callers (the engine's ``verify="auto"``, the bench) treat as "skip".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..exceptions import NotClassicalError, OptimizationError
from ..qudits import Qudit
from ..sim.classical_batch import BatchedClassicalSimulator
from ..sim.fidelity import resolve_batch_size
from ..sim.kernels import apply_block, gate_kernel

#: Dense-oracle ceiling on the joint dimension (2^12 qubit states /
#: 3^7 qutrit states): beyond it the stacked basis batch stops being
#: cheap and callers should rely on the classical oracle or skip.
MAX_DENSE_DIM = 4096


def _joint_wires(
    before: Circuit, after: Circuit, wires: "Sequence[Qudit] | None"
) -> list[Qudit]:
    if wires is not None:
        return list(wires)
    return sorted(set(before.all_qudits()) | set(after.all_qudits()))


def equivalence_method(
    before: Circuit,
    after: Circuit,
    wires: "Sequence[Qudit] | None" = None,
) -> "str | None":
    """The cheapest sound oracle for this pair: ``"classical"``,
    ``"statevector"``, or None when neither applies."""
    simulator = BatchedClassicalSimulator()
    if simulator.is_classical_circuit(
        before
    ) and simulator.is_classical_circuit(after):
        return "classical"
    joint = 1
    for wire in _joint_wires(before, after, wires):
        joint *= wire.dimension
    if joint <= MAX_DENSE_DIM:
        return "statevector"
    return None


def _basis_states(
    wires: Sequence[Qudit], rows: np.ndarray
) -> np.ndarray:
    dims = tuple(w.dimension for w in wires)
    batch = np.zeros((len(rows),) + dims, dtype=complex)
    member = (np.arange(len(rows)),) + tuple(
        rows[:, k] for k in range(len(wires))
    )
    batch[member] = 1.0
    return batch


def _advance(
    circuit: Circuit, wires: Sequence[Qudit], batch: np.ndarray
) -> np.ndarray:
    axis = {w: 1 + k for k, w in enumerate(wires)}
    for op in circuit.all_operations():
        kernel = gate_kernel(op)
        batch = apply_block(
            batch, kernel.block, [axis[w] for w in op.qudits]
        )
    return batch


def circuits_equivalent(
    before: Circuit,
    after: Circuit,
    wires: "Sequence[Qudit] | None" = None,
    atol: float = 1e-8,
    method: "str | None" = None,
) -> bool:
    """True iff the circuits implement the same unitary on ``wires``.

    ``method`` forces an oracle; by default the cheapest sound one is
    chosen.  Raises :class:`OptimizationError` when no oracle applies
    (non-classical and too wide) — use :func:`equivalence_method` first
    to probe feasibility.
    """
    joint_wires = _joint_wires(before, after, wires)
    if method is None:
        method = equivalence_method(before, after, joint_wires)
    if method == "classical":
        simulator = BatchedClassicalSimulator()
        try:
            vector_before = simulator.permutation_vector(
                before, joint_wires
            )
            vector_after = simulator.permutation_vector(after, joint_wires)
        except NotClassicalError:
            return circuits_equivalent(
                before, after, joint_wires, atol, method="statevector"
            )
        return bool(np.array_equal(vector_before, vector_after))
    if method == "statevector":
        joint = 1
        for wire in joint_wires:
            joint *= wire.dimension
        if joint > MAX_DENSE_DIM:
            raise OptimizationError(
                f"joint dimension {joint} exceeds the dense oracle cap "
                f"{MAX_DENSE_DIM}"
            )
        inputs = BatchedClassicalSimulator.input_space(joint_wires)
        chunk = resolve_batch_size(None, joint_wires, len(inputs))
        for start in range(0, len(inputs), chunk):
            rows = inputs[start : start + chunk]
            batch = _basis_states(joint_wires, rows)
            out_before = _advance(before, joint_wires, batch)
            out_after = _advance(
                after, joint_wires, _basis_states(joint_wires, rows)
            )
            if not np.allclose(out_before, out_after, atol=atol):
                return False
        return True
    raise OptimizationError(
        "no equivalence oracle applies: circuits are not classical and "
        f"the joint dimension exceeds {MAX_DENSE_DIM}"
    )


def assert_equivalent(
    before: Circuit,
    after: Circuit,
    wires: "Sequence[Qudit] | None" = None,
    atol: float = 1e-8,
    context: str = "rewrite",
) -> str:
    """Raise :class:`OptimizationError` unless the circuits agree.

    Returns the oracle used, for reporting.
    """
    joint_wires = _joint_wires(before, after, wires)
    method = equivalence_method(before, after, joint_wires)
    if method is None:
        raise OptimizationError(
            f"cannot verify {context}: no equivalence oracle applies "
            f"(non-classical circuit wider than the dense cap)"
        )
    if not circuits_equivalent(
        before, after, joint_wires, atol, method=method
    ):
        raise OptimizationError(
            f"{context} changed the circuit's action "
            f"({method} oracle mismatch)"
        )
    return method
