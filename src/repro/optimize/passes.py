"""The rewrite passes: cancellation, diagonal fusion, commutation packing.

Every pass rewrites one barrier segment at a time — an operation never
crosses a barrier — and reports how many local rewrites it applied.  The
engine (:mod:`repro.optimize.engine`) reassembles segments through
:meth:`Circuit.with_replaced_moments`, prices the result, and keeps the
rewrite only if the cost model approves, so passes themselves can be
greedy without risking regressions.

All three passes share the same commute-back walk: a candidate slides
left past predecessors it commutes with (diagonal gates glide through
the control side of CNOT-likes, disjoint gates are free) until it hits
a blocker — or, for cancellation and fusion, a partner.  This is what
turns "adjacent"-inverse cancellation into the phase-gadget-style
non-local rewrites of arXiv:2204.13681 without a dedicated gadget IR.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.operation import GateOperation
from ..exceptions import NotClassicalError
from ..gates.base import Gate, PhasedGate, index_to_values, values_to_index
from ..gates.spec import GateSpec
from .commutation import operations_commute

#: How many predecessors the commute-back walk examines before giving
#: up.  Bounds every pass at O(ops * window) commutation queries; the
#: paper's constructions find their partners well within this horizon.
DEFAULT_WINDOW = 64


@dataclass
class PassStats:
    """What one pass invocation did to one circuit."""

    name: str
    applications: int = 0
    gates_removed: int = 0
    gates_fused: int = 0
    depth_before: int = 0
    depth_after: int = 0
    accepted: bool = False

    def to_dict(self) -> dict:
        return {
            "pass": self.name,
            "applications": self.applications,
            "gates_removed": self.gates_removed,
            "gates_fused": self.gates_fused,
            "depth_before": self.depth_before,
            "depth_after": self.depth_after,
            "accepted": self.accepted,
        }

    def merged(self, other: "PassStats") -> "PassStats":
        """Accumulate ``other`` into a summary row (same pass name)."""
        return replace(
            self,
            applications=self.applications + other.applications,
            gates_removed=self.gates_removed + other.gates_removed,
            gates_fused=self.gates_fused + other.gates_fused,
            depth_after=other.depth_after,
            accepted=self.accepted or other.accepted,
        )


class RewritePass(ABC):
    """One rewrite rule, applied segment-wise under barrier floors."""

    #: Registry name (also the CLI ``--passes`` token).
    name: str = "rewrite"

    #: True for passes whose applications merge gates (stats tagging).
    counts_fusions: bool = False

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self.window = window

    @abstractmethod
    def rewrite_segment(
        self, ops: list[GateOperation]
    ) -> tuple[list[GateOperation], int]:
        """Rewrite one barrier segment's operations (schedule order).

        Returns the replacement operation list and the number of local
        rewrites applied (0 = segment untouched).
        """

    def run(self, circuit: Circuit) -> tuple[Circuit, PassStats]:
        """Apply the pass across all barrier segments of ``circuit``.

        With zero applications the input circuit is returned unchanged
        (same object), so no-op passes can never perturb scheduling.
        """
        stats = PassStats(name=self.name, depth_before=circuit.depth)
        replacements = []
        for segment in circuit.barrier_segments():
            ops = [op for moment in segment for op in moment]
            new_ops, applied = self.rewrite_segment(ops)
            stats.applications += applied
            stats.gates_removed += max(0, len(ops) - len(new_ops))
            if self.counts_fusions:
                stats.gates_fused += applied
            replacements.append(new_ops)
        if stats.applications == 0:
            stats.depth_after = circuit.depth
            return circuit, stats
        rewritten = circuit.with_replaced_moments(
            replacements, preserve_floors=True
        )
        stats.depth_after = rewritten.depth
        return rewritten, stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


# ---------------------------------------------------------------------------
# Shared gate analyses, cached on canonical specs
# ---------------------------------------------------------------------------

#: canonical spec -> canonical spec of the gate's inverse.
_INVERSE_CANONICAL: dict[GateSpec, GateSpec] = {}

#: canonical spec -> True iff the gate is the identity.
_IDENTITY_CACHE: dict[GateSpec, bool] = {}


def inverse_canonical_spec(gate: Gate) -> GateSpec:
    """The canonical spec of ``gate.inverse()``, memoised process-wide."""
    key = gate.canonical_spec()
    cached = _INVERSE_CANONICAL.get(key)
    if cached is None:
        cached = gate.inverse().canonical_spec()
        _INVERSE_CANONICAL[key] = cached
    return cached


def is_inverse_pair(first: Gate, second: Gate) -> bool:
    """True iff ``first`` then ``second`` compose to the identity.

    Decided on canonical specs: semantic inverse rules (PR 7's registry
    table) make e.g. ``RX(t)``/``RX(-t)`` and ``T``/``T_DAG`` compare
    exactly, and structurally built daggers (the Barenco CV/CV† pairs)
    match because both sides are the same conjugate-transpose
    arithmetic.
    """
    if first.dims != second.dims:
        return False
    return second.canonical_spec() == inverse_canonical_spec(first)


def is_identity_gate(gate: Gate) -> bool:
    """True iff the gate acts as the identity on its wires."""
    key = gate.canonical_spec()
    cached = _IDENTITY_CACHE.get(key)
    if cached is None:
        phases = gate.diagonal_phases()
        if phases is not None:
            cached = bool(np.allclose(phases, 1.0, atol=1e-9))
        else:
            try:
                cached = gate.permutation() == list(range(gate.total_dim))
            except NotClassicalError:
                cached = False
        _IDENTITY_CACHE[key] = cached
    return cached


# ---------------------------------------------------------------------------
# Pass 1: adjacent-inverse cancellation
# ---------------------------------------------------------------------------


class CancelAdjacentInverses(RewritePass):
    """Remove ``g . g^-1`` pairs (and identity gates) within segments.

    The left operand need not be literally adjacent: the right operand
    commutes back through the window until it meets either its inverse
    on the same wires (cancel both) or a blocker (keep it).  Removing a
    pair can expose a new pair around the hole, which the processed-list
    representation handles naturally — the next candidate walks through
    the closed gap.
    """

    name = "cancel-inverses"

    def rewrite_segment(
        self, ops: list[GateOperation]
    ) -> tuple[list[GateOperation], int]:
        out: list[GateOperation] = []
        applied = 0
        for op in ops:
            if is_identity_gate(op.gate):
                applied += 1
                continue
            position = len(out)
            cancelled = False
            steps = 0
            while position > 0 and steps < self.window:
                prev = out[position - 1]
                if prev.qudits == op.qudits and is_inverse_pair(
                    prev.gate, op.gate
                ):
                    del out[position - 1]
                    applied += 1
                    cancelled = True
                    break
                if not operations_commute(prev, op):
                    break
                position -= 1
                steps += 1
            if not cancelled:
                out.append(op)
        return out, applied


# ---------------------------------------------------------------------------
# Pass 2: diagonal / phase gate fusion
# ---------------------------------------------------------------------------


def _reordered_phases(
    phases: np.ndarray,
    source: Sequence,
    destination: Sequence,
) -> np.ndarray:
    """Re-index a phase vector from ``source`` wire order to ``destination``."""
    if tuple(source) == tuple(destination):
        return phases
    source_dims = [w.dimension for w in source]
    dest_dims = [w.dimension for w in destination]
    slot = {wire: k for k, wire in enumerate(source)}
    out = np.empty_like(phases)
    for index in range(len(phases)):
        values = index_to_values(index, dest_dims)
        source_values = [0] * len(source)
        for k, wire in enumerate(destination):
            source_values[slot[wire]] = values[k]
        out[index] = phases[values_to_index(source_values, source_dims)]
    return out


class FuseDiagonalGates(RewritePass):
    """Merge diagonal gates on the same wires into one phase gate.

    Runs of same-wire diagonal gates — consecutive T's, controlled-phase
    chains, the rotation tails of the cascades — collapse into a single
    :class:`PhasedGate` whose diagonal is the product, the phase-gadget
    fusion of arXiv:2204.13681.  The partner hunt commutes back through
    the window (diagonal gates pass freely over each other and over the
    control side of controlled gates), and a fusion whose product is the
    identity drops the gate entirely.
    """

    name = "fuse-phases"
    counts_fusions = True

    def rewrite_segment(
        self, ops: list[GateOperation]
    ) -> tuple[list[GateOperation], int]:
        out: list[GateOperation] = []
        applied = 0
        for op in ops:
            phases = op.gate.diagonal_phases()
            if phases is None:
                out.append(op)
                continue
            position = len(out)
            partner = None
            steps = 0
            while position > 0 and steps < self.window:
                prev = out[position - 1]
                if set(prev.qudits) == set(
                    op.qudits
                ) and prev.gate.is_diagonal:
                    partner = position - 1
                    break
                if not operations_commute(prev, op):
                    break
                position -= 1
                steps += 1
            if partner is None:
                out.append(op)
                continue
            merged = self._fuse(out[partner], op, phases)
            applied += 1
            if merged is None:
                del out[partner]
            else:
                out[partner] = merged
        return out, applied

    @staticmethod
    def _fuse(
        prev_op: GateOperation,
        op: GateOperation,
        phases: np.ndarray,
    ) -> GateOperation | None:
        prev_phases = prev_op.gate.diagonal_phases()
        assert prev_phases is not None
        merged = prev_phases * _reordered_phases(
            phases, op.qudits, prev_op.qudits
        )
        if np.allclose(merged, 1.0, atol=1e-9):
            return None
        dims = tuple(w.dimension for w in prev_op.qudits)
        gate = PhasedGate(merged, dims, name=f"Phi{len(merged)}")
        return gate.on(*prev_op.qudits)


# ---------------------------------------------------------------------------
# Pass 3: commutation-aware depth packing
# ---------------------------------------------------------------------------


class CommutationPacking(RewritePass):
    """Reorder commuting operations so ASAP scheduling packs tighter.

    Each operation slides to the earliest list position its pairwise
    commutations allow; the segment is then ASAP-rescheduled by
    ``with_replaced_moments``, which is where the depth reduction
    materialises (a diagonal gate stuck behind a long CNOT chain on its
    control wire jumps to the front and fills an idle moment).  The
    engine's cost gate rejects reorderings that do not actually reduce
    the score, so a pure shuffle never survives.
    """

    name = "pack-commuting"

    def rewrite_segment(
        self, ops: list[GateOperation]
    ) -> tuple[list[GateOperation], int]:
        out: list[GateOperation] = []
        applied = 0
        for op in ops:
            position = len(out)
            steps = 0
            while position > 0 and steps < self.window:
                if not operations_commute(out[position - 1], op):
                    break
                position -= 1
                steps += 1
            if position < len(out):
                out.insert(position, op)
                applied += 1
            else:
                out.append(op)
        return out, applied


# ---------------------------------------------------------------------------
# Pass registry
# ---------------------------------------------------------------------------

PASS_TYPES: dict[str, type[RewritePass]] = {
    CancelAdjacentInverses.name: CancelAdjacentInverses,
    FuseDiagonalGates.name: FuseDiagonalGates,
    CommutationPacking.name: CommutationPacking,
}

#: Default pass order: shrink first (cancellation exposes fusions and
#: vice versa — the fixpoint loop alternates them), pack depth last.
DEFAULT_PASS_NAMES = (
    CancelAdjacentInverses.name,
    FuseDiagonalGates.name,
    CommutationPacking.name,
)


def resolve_passes(
    passes: "Sequence[str | RewritePass] | None",
) -> list[RewritePass]:
    """Accept pass instances, registered names, or None (the default set)."""
    if passes is None:
        passes = DEFAULT_PASS_NAMES
    resolved: list[RewritePass] = []
    for item in passes:
        if isinstance(item, RewritePass):
            resolved.append(item)
            continue
        try:
            resolved.append(PASS_TYPES[item]())
        except KeyError:
            raise ValueError(
                f"unknown optimizer pass {item!r}; known: "
                f"{sorted(PASS_TYPES)}"
            ) from None
    return resolved
