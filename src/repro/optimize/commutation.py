"""Pairwise operation commutation, cached on structural identity.

Every optimizer pass that moves an operation left — cancellation and
fusion hunting for a non-adjacent partner, packing hunting for an
earlier moment — needs one primitive: *may these two operations swap
order without changing the circuit's unitary?*  Three tiers decide it:

1. disjoint wires always commute;
2. two diagonal gates always commute (they share the computational
   eigenbasis — the phase-gadget observation of arXiv:2204.13681);
3. otherwise the joint unitaries over the wire union are compared
   directly, ``U_ab == U_ba``, capped at a small joint dimension.

The dense check is memoised on ``(canonical spec, wire pattern)`` pairs,
so a circuit full of repeated T/CNOT patterns pays for each shape once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..circuits.circuit import Circuit
from ..qudits import Qudit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..circuits.operation import GateOperation

#: Largest joint dimension the dense commutation check will build
#: (5 qutrit wires / 8 qubit wires).  Beyond it the answer is a
#: conservative "no" — wider overlapping pairs never arise from the
#: catalog's 1-3 wire gates anyway.
MAX_JOINT_DIM = 256

#: (spec_a, wires_a, spec_b, wires_b, dims) -> bool, process-wide.
_COMMUTE_CACHE: dict[tuple, bool] = {}


def clear_commutation_cache() -> None:
    """Drop the memoised dense-check results (tests use this)."""
    _COMMUTE_CACHE.clear()


def _dense_commute(op_a: "GateOperation", op_b: "GateOperation") -> bool:
    union = sorted(set(op_a.qudits) | set(op_b.qudits))
    joint = 1
    for wire in union:
        joint *= wire.dimension
    if joint > MAX_JOINT_DIM:
        return False
    position = {wire: k for k, wire in enumerate(union)}
    key = (
        op_a.gate.canonical_spec(),
        tuple(position[w] for w in op_a.qudits),
        op_b.gate.canonical_spec(),
        tuple(position[w] for w in op_b.qudits),
        tuple(w.dimension for w in union),
    )
    cached = _COMMUTE_CACHE.get(key)
    if cached is None:
        # Rebuild on fresh canonical wires so the cache never pins the
        # caller's Qudit objects.
        canon = [Qudit(k, w.dimension) for k, w in enumerate(union)]
        a = op_a.gate.on(*(canon[position[w]] for w in op_a.qudits))
        b = op_b.gate.on(*(canon[position[w]] for w in op_b.qudits))
        u_ab = Circuit([a, b]).unitary(wire_order=canon)
        u_ba = Circuit([b, a]).unitary(wire_order=canon)
        cached = bool(np.allclose(u_ab, u_ba, atol=1e-9))
        _COMMUTE_CACHE[key] = cached
    return cached


def operations_commute(
    op_a: "GateOperation", op_b: "GateOperation"
) -> bool:
    """True iff applying ``op_a`` then ``op_b`` equals ``op_b`` then
    ``op_a`` on the joint state space."""
    if not set(op_a.qudits) & set(op_b.qudits):
        return True
    if op_a.gate.is_diagonal and op_b.gate.is_diagonal:
        return True
    return _dense_commute(op_a, op_b)


def commutes_into(
    ops: "list[GateOperation | None]", index: int, op: "GateOperation"
) -> int:
    """How far left ``op`` may slide through ``ops[:index]``.

    Walks left from ``index`` past entries that commute with ``op``
    (``None`` entries — holes left by a cancellation — are transparent)
    and returns the smallest insertion position reachable.  This is the
    shared "commute-back walk" the cancellation, fusion and packing
    passes use to find non-adjacent partners.
    """
    position = index
    while position > 0:
        prev = ops[position - 1]
        if prev is not None and not operations_commute(prev, op):
            break
        position -= 1
    return position
