"""Circuit cost models for the rewrite engine's accept/reject decision.

A rewrite is only kept when it does not worsen the circuit under the
active :class:`CostModel`.  Costs are compared lexicographically as
``(two-qudit gates, non-Clifford gates, total gates, depth)`` — the
order the paper's error model implies: two-qudit interactions dominate
hardware error (Sec. 5), non-Clifford gates dominate fault-tolerant
cost, and depth is the paper's time metric (Sec. 2).

The default instance is qutrit Clifford+T-aware, following Yeh & van de
Wetering's qutrit Clifford+T gate set ("Constructing all qutrit
controlled Clifford+T gates in Clifford+T", arXiv:2204.00552): diagonal
gates on the ``2*pi/d`` phase grid (``pi/2`` for qubits) are Clifford,
one step finer (``2*pi/d^2``; ``pi/4`` for qubits) are T-level, and
anything finer — the fractional-power rotations of the Barenco cascades
— counts as generic non-Clifford.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..circuits.circuit import Circuit
from ..gates.base import Gate
from ..gates.controlled import ControlledGate

#: Registered semantic names that are Clifford for every parameter value.
_CLIFFORD_NAMES = frozenset(
    {
        "I2",
        "X",
        "Y",
        "Z",
        "H",
        "S",
        "S_DAG",
        "CNOT",
        "CZ",
        "SWAP",
        "identity",
        "level_swap",
        "shift",
        "clock",
        "fourier",
    }
)

#: Registered semantic names that are exactly T-level.
_T_NAMES = frozenset({"T", "T_DAG"})


@dataclass(frozen=True)
class CircuitCost:
    """The four cost axes the engine compares, cheapest-first on ties."""

    depth: int
    total_gates: int
    two_qudit_gates: int
    non_clifford_gates: int

    def score(self) -> tuple[int, int, int, int]:
        """Lexicographic comparison key (lower is strictly better)."""
        return (
            self.two_qudit_gates,
            self.non_clifford_gates,
            self.total_gates,
            self.depth,
        )

    def to_dict(self) -> dict:
        return {
            "depth": self.depth,
            "total_gates": self.total_gates,
            "two_qudit_gates": self.two_qudit_gates,
            "non_clifford_gates": self.non_clifford_gates,
        }


@runtime_checkable
class CostModel(Protocol):
    """Anything that prices a circuit for the rewrite engine."""

    name: str

    def cost(self, circuit: Circuit) -> CircuitCost:
        """Price ``circuit``; the engine compares ``cost(...).score()``."""
        ...  # pragma: no cover - protocol body


def _phase_grid_level(phases: np.ndarray, dim: int, atol: float) -> int:
    """0 = Clifford grid, 1 = T grid, 2 = off-grid, for a phase vector.

    The grid step is ``2*pi/d^2`` for qubits (``pi/2`` Clifford,
    ``pi/4`` T) and ``2*pi/d`` for higher dimensions (qutrit Clifford
    phases are cube roots of unity; T-level phases ninth roots), per
    arXiv:2204.00552.
    """
    clifford_steps = 4 if dim == 2 else dim
    angles = np.angle(phases) * clifford_steps / (2 * np.pi)
    if np.allclose(angles, np.round(angles), atol=atol):
        return 0
    angles = angles * dim
    if np.allclose(angles, np.round(angles), atol=atol):
        return 1
    return 2


class QutritCliffordTCostModel:
    """Clifford+T-aware gate pricing for mixed qubit/qutrit circuits."""

    name = "qutrit-clifford-t"

    def __init__(self, atol: float = 1e-9) -> None:
        self._atol = atol
        self._clifford_cache: dict = {}

    def is_clifford(self, gate: Gate) -> bool:
        """Heuristic Clifford membership (False = priced as non-Clifford).

        Decided from the semantic spec name where registered, from the
        phase grid for diagonal gates, and from structure otherwise:
        1- and 2-wire basis permutations are Clifford (qudit Paulis,
        CNOT-likes, SWAPs), wider permutations (Toffolis) and
        unrecognized matrices are not.  Conservative by construction —
        misclassifying a Clifford as non-Clifford only makes the engine
        stricter about accepting rewrites.
        """
        key = gate.canonical_spec()
        cached = self._clifford_cache.get(key)
        if cached is None:
            cached = self._classify(gate)
            self._clifford_cache[key] = cached
        return cached

    def _classify(self, gate: Gate) -> bool:
        spec = gate.spec()
        if spec.name in _CLIFFORD_NAMES:
            return True
        if spec.name in _T_NAMES:
            return False
        if spec.name == "embedded":
            from ..gates.spec import GATE_REGISTRY

            return self.is_clifford(GATE_REGISTRY.build(spec.params[0]))
        if isinstance(gate, ControlledGate):
            sub = gate.sub_gate
            if gate.num_qudits <= 2 and sub.is_classical:
                return True
            if gate.num_qudits <= 2 and sub.is_diagonal:
                phases = gate.diagonal_phases()
                assert phases is not None
                return (
                    _phase_grid_level(phases, max(gate.dims), self._atol)
                    == 0
                )
            return False
        phases = gate.diagonal_phases()
        if phases is not None:
            return (
                _phase_grid_level(phases, max(gate.dims), self._atol) == 0
            )
        if gate.is_classical:
            return gate.num_qudits <= 2
        return False

    def cost(self, circuit: Circuit) -> CircuitCost:
        non_clifford = sum(
            1
            for op in circuit.all_operations()
            if not self.is_clifford(op.gate)
        )
        return CircuitCost(
            depth=circuit.depth,
            total_gates=circuit.num_operations,
            two_qudit_gates=circuit.two_qudit_gate_count,
            non_clifford_gates=non_clifford,
        )


class GateCountCostModel:
    """Structure-only pricing: every gate costs 1, no Clifford analysis.

    Useful when the gate set is exotic enough that Clifford
    classification is meaningless; the score still orders two-qudit
    count first, so routing-sensitive rewrites behave the same.
    """

    name = "gate-count"

    def cost(self, circuit: Circuit) -> CircuitCost:
        return CircuitCost(
            depth=circuit.depth,
            total_gates=circuit.num_operations,
            two_qudit_gates=circuit.two_qudit_gate_count,
            non_clifford_gates=0,
        )


#: Named cost models for CLI / facade string resolution.
COST_MODELS = {
    QutritCliffordTCostModel.name: QutritCliffordTCostModel,
    GateCountCostModel.name: GateCountCostModel,
}


def resolve_cost_model(model: "str | CostModel | None") -> CostModel:
    """Accept a model instance, a registered name, or None (default)."""
    if model is None:
        return QutritCliffordTCostModel()
    if isinstance(model, str):
        try:
            return COST_MODELS[model]()
        except KeyError:
            raise ValueError(
                f"unknown cost model {model!r}; known: "
                f"{sorted(COST_MODELS)}"
            ) from None
    if isinstance(model, CostModel):
        return model
    raise TypeError(
        f"cost model must be a CostModel, name, or None, got "
        f"{type(model).__name__}"
    )
