"""Circuit optimizer: verified rewrite passes over Circuit IR v2.

The subsystem ROADMAP item 2 names: a :class:`RewriteEngine` running
ordered, fixpoint-iterated passes — adjacent-inverse cancellation,
diagonal/phase fusion (after arXiv:2204.13681), commutation-aware depth
packing — gated by a :class:`CostModel` (qutrit Clifford+T-aware by
default, after arXiv:2204.00552) and verified against the PR 4 batched
equivalence oracles.  Pipeline integration lives in
:mod:`repro.execution` (``OptimizePass`` stages, ``*-opt`` named
pipelines, ``execute(optimize=...)``); the CLI surface is
``python -m repro optimize``.
"""

from .commutation import (
    clear_commutation_cache,
    commutes_into,
    operations_commute,
)
from .cost import (
    COST_MODELS,
    CircuitCost,
    CostModel,
    GateCountCostModel,
    QutritCliffordTCostModel,
    resolve_cost_model,
)
from .engine import (
    DEFAULT_MAX_ITERATIONS,
    OptimizationReport,
    RewriteEngine,
    optimize_circuit,
    resolve_engine,
)
from .passes import (
    DEFAULT_PASS_NAMES,
    PASS_TYPES,
    CancelAdjacentInverses,
    CommutationPacking,
    FuseDiagonalGates,
    PassStats,
    RewritePass,
    is_identity_gate,
    is_inverse_pair,
    resolve_passes,
)
from .verify import (
    MAX_DENSE_DIM,
    assert_equivalent,
    circuits_equivalent,
    equivalence_method,
)
from ..exceptions import OptimizationError

__all__ = [
    "CancelAdjacentInverses",
    "CircuitCost",
    "CommutationPacking",
    "CostModel",
    "COST_MODELS",
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_PASS_NAMES",
    "FuseDiagonalGates",
    "GateCountCostModel",
    "MAX_DENSE_DIM",
    "OptimizationError",
    "OptimizationReport",
    "PASS_TYPES",
    "PassStats",
    "QutritCliffordTCostModel",
    "RewriteEngine",
    "RewritePass",
    "assert_equivalent",
    "circuits_equivalent",
    "clear_commutation_cache",
    "commutes_into",
    "equivalence_method",
    "is_identity_gate",
    "is_inverse_pair",
    "operations_commute",
    "optimize_circuit",
    "resolve_cost_model",
    "resolve_engine",
    "resolve_passes",
]
