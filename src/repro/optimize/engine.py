"""The rewrite engine: ordered passes, fixpoint iteration, cost gating.

One engine sweep runs the configured passes in order; a pass's output is
priced by the cost model and kept only if it strictly improves the
score, so every accepted rewrite makes monotone progress and the
fixpoint loop terminates.  Sweeps repeat until a full sweep accepts
nothing (or ``max_iterations`` is hit) — cancellation exposes fusions,
fusion exposes cancellations, packing exposes both.

``verify`` wires in the equivalence oracles: ``"strict"`` checks every
accepted rewrite against the original circuit and raises on mismatch,
``"auto"`` checks when an oracle is feasible and records a skip
otherwise, ``False`` trusts the passes (they are property-tested
against the same oracles across the Toffoli catalog).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..circuits.circuit import Circuit
from ..exceptions import OptimizationError
from .cost import CircuitCost, CostModel, resolve_cost_model
from .passes import PassStats, RewritePass, resolve_passes
from .verify import assert_equivalent, equivalence_method

#: Fixpoint ceiling: every accepted sweep strictly lowers the score, so
#: this is a safety net, not a tuning knob.
DEFAULT_MAX_ITERATIONS = 20


@dataclass
class OptimizationReport:
    """Everything one engine run did, for stats tables and bench rows."""

    cost_before: CircuitCost
    cost_after: CircuitCost
    iterations: int = 0
    pass_stats: list[PassStats] = field(default_factory=list)
    #: Oracle used by verification: "classical", "statevector",
    #: "skipped" (auto mode, no feasible oracle) or None (verify off).
    verified: "str | None" = None

    @property
    def gates_removed(self) -> int:
        return self.cost_before.total_gates - self.cost_after.total_gates

    @property
    def depth_removed(self) -> int:
        return self.cost_before.depth - self.cost_after.depth

    def totals(self) -> "dict[str, PassStats]":
        """Per-pass stats summed across iterations, in pass order."""
        summary: dict[str, PassStats] = {}
        for stats in self.pass_stats:
            if stats.name in summary:
                summary[stats.name] = summary[stats.name].merged(stats)
            else:
                summary[stats.name] = stats
        return summary

    def to_dict(self) -> dict:
        return {
            "cost_before": self.cost_before.to_dict(),
            "cost_after": self.cost_after.to_dict(),
            "iterations": self.iterations,
            "verified": self.verified,
            "passes": [stats.to_dict() for stats in self.pass_stats],
        }


class RewriteEngine:
    """Runs rewrite passes to fixpoint under a cost model."""

    def __init__(
        self,
        passes: "Sequence[str | RewritePass] | None" = None,
        cost_model: "str | CostModel | None" = None,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        verify: "bool | str" = False,
    ) -> None:
        self.passes = resolve_passes(passes)
        self.cost_model = resolve_cost_model(cost_model)
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.max_iterations = max_iterations
        if verify is True:
            verify = "strict"
        if verify not in (False, "strict", "auto"):
            raise ValueError(
                f"verify must be False, 'strict' or 'auto', got {verify!r}"
            )
        self.verify = verify

    def run(self, circuit: Circuit) -> tuple[Circuit, OptimizationReport]:
        """Optimize ``circuit``; returns (new circuit, report).

        The input circuit is never mutated; with nothing to improve the
        original object comes back with an all-zero report.
        """
        cost_before = self.cost_model.cost(circuit)
        report = OptimizationReport(
            cost_before=cost_before, cost_after=cost_before
        )
        current = circuit
        current_cost = cost_before
        for _ in range(self.max_iterations):
            report.iterations += 1
            improved = False
            for rewrite_pass in self.passes:
                candidate, stats = rewrite_pass.run(current)
                if stats.applications:
                    candidate_cost = self.cost_model.cost(candidate)
                    if candidate_cost.score() < current_cost.score():
                        stats.accepted = True
                        current = candidate
                        current_cost = candidate_cost
                        improved = True
                report.pass_stats.append(stats)
            if not improved:
                break
        report.cost_after = current_cost
        if self.verify and current is not circuit:
            if self.verify == "auto" and (
                equivalence_method(circuit, current) is None
            ):
                report.verified = "skipped"
            else:
                report.verified = assert_equivalent(
                    circuit, current, context="optimization"
                )
        return current, report

    def optimize(self, circuit: Circuit) -> Circuit:
        """Convenience: :meth:`run` without the report."""
        optimized, _ = self.run(circuit)
        return optimized

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ",".join(p.name for p in self.passes)
        return (
            f"<RewriteEngine passes=[{names}] "
            f"cost={self.cost_model.name}>"
        )


def optimize_circuit(
    circuit: Circuit,
    passes: "Sequence[str | RewritePass] | None" = None,
    cost_model: "str | CostModel | None" = None,
    verify: "bool | str" = False,
) -> tuple[Circuit, OptimizationReport]:
    """One-shot functional form of :class:`RewriteEngine`."""
    engine = RewriteEngine(
        passes=passes, cost_model=cost_model, verify=verify
    )
    return engine.run(circuit)


def resolve_engine(
    spec: "bool | str | Sequence[str | RewritePass] | RewriteEngine | None",
) -> "RewriteEngine | None":
    """Resolve the facade/CLI ``optimize=`` knob to an engine (or None).

    ``True`` means the default engine, a string is a comma-separated
    pass list (``"cancel-inverses,fuse-phases"``), a sequence names the
    passes directly, and an engine instance passes through.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return RewriteEngine()
    if isinstance(spec, RewriteEngine):
        return spec
    if isinstance(spec, str):
        names = [part.strip() for part in spec.split(",") if part.strip()]
        return RewriteEngine(passes=names or None)
    if isinstance(spec, Sequence):
        return RewriteEngine(passes=list(spec))
    raise TypeError(
        f"optimize must be a bool, pass list, RewriteEngine or None, "
        f"got {type(spec).__name__}"
    )


__all__ = [
    "OptimizationError",
    "OptimizationReport",
    "RewriteEngine",
    "optimize_circuit",
    "resolve_engine",
]
