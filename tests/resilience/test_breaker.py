"""CircuitBreaker: the closed -> open -> half-open -> closed machine."""

import pytest

from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def tripped(clock, threshold=3, reset=10.0, probes=1):
    breaker = CircuitBreaker(
        failure_threshold=threshold, reset_timeout=reset,
        half_open_probes=probes, clock=clock,
    )
    for _ in range(threshold):
        breaker.record_failure()
    return breaker


class TestTransitions:
    def test_starts_closed_and_allows(self, clock):
        breaker = CircuitBreaker(clock=clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_open_on_consecutive_failures(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_failure_count(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_open_refuses_until_reset_timeout(self, clock):
        breaker = tripped(clock, reset=10.0)
        assert not breaker.allow()
        assert breaker.refusals == 1
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe

    def test_half_open_probe_success_closes(self, clock):
        breaker = tripped(clock, reset=10.0)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.closes == 1

    def test_half_open_probe_failure_reopens(self, clock):
        breaker = tripped(clock, reset=10.0)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        assert not breaker.allow()
        # The cooldown restarted from the re-open instant.
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN

    def test_half_open_limits_probe_count(self, clock):
        breaker = tripped(clock, reset=10.0, probes=2)
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # third probe refused


class TestValidationAndStats:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"reset_timeout": 0.0},
        {"half_open_probes": 0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)

    def test_to_dict_snapshot(self, clock):
        breaker = tripped(clock, threshold=3)
        data = breaker.to_dict()
        assert data["state"] == OPEN
        assert data["opens"] == 1
        assert data["failure_threshold"] == 3
        assert data["consecutive_failures"] == 3
