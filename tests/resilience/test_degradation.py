"""Admission control: closed-form estimates and the downgrade ladder."""

import pytest

from repro.circuits.circuit import Circuit
from repro.gates.qubit import X
from repro.gates.qutrit import X01
from repro.qudits import qubits, qutrits
from repro.resilience import (
    AdmissionError,
    AdmissionPolicy,
    estimate_memory_bytes,
    state_entries,
)


def circuit_of(wires, gate=X):
    return Circuit([gate.on(wire) for wire in wires])


@pytest.fixture()
def small():
    return circuit_of(qubits(4))  # 16 amplitudes


class TestEstimates:
    def test_state_entries_multiplies_dimensions(self):
        assert state_entries(circuit_of(qubits(4))) == 16
        assert state_entries(circuit_of(qutrits(3), gate=X01)) == 27

    def test_statevector_bytes(self, small):
        assert estimate_memory_bytes(small, "statevector") == 16 * 16

    def test_density_squares_the_state(self, small):
        assert estimate_memory_bytes(small, "density") == 16 * 16 * 16

    def test_classical_never_dominates(self, small):
        assert estimate_memory_bytes(small, "classical") == 8 * 4

    def test_trajectory_scales_with_batch(self, small):
        explicit = estimate_memory_bytes(
            small, "trajectory", trials=100, batch_size=10,
        )
        assert explicit == 2 * 10 * 16 * 16
        looped = estimate_memory_bytes(
            small, "trajectory", trials=100, batch_size=1,
        )
        assert looped == 2 * 1 * 16 * 16

    def test_trajectory_auto_batch_is_bounded(self, small):
        # Auto-chunking caps the stack at 256 trajectories.
        auto = estimate_memory_bytes(small, "trajectory", trials=10_000)
        assert auto == 2 * 256 * 16 * 16

    def test_parallel_multiplies_by_workers(self, small):
        serial = estimate_memory_bytes(small, "statevector")
        fanned = estimate_memory_bytes(
            small, "statevector", parallel=True, workers=4,
        )
        assert fanned == 4 * serial


class TestReviewLadder:
    def test_admit_within_budget(self, small):
        policy = AdmissionPolicy(max_state_bytes=1 << 20)
        decision = policy.review(small, "statevector")
        assert decision.action == "admit"
        assert decision.admitted
        assert decision.downgrades == ()

    def test_parallel_downgrades_to_serial(self, small):
        serial_cost = estimate_memory_bytes(small, "statevector")
        policy = AdmissionPolicy(max_state_bytes=serial_cost)
        decision = policy.review(
            small, "statevector", parallel=True, workers=4,
        )
        assert decision.action == "downgrade"
        assert decision.downgrades == ("parallel-to-serial",)
        assert decision.estimated_bytes == serial_cost

    def test_batched_downgrades_to_looped(self, small):
        looped_cost = estimate_memory_bytes(
            small, "trajectory", trials=100, batch_size=1,
        )
        policy = AdmissionPolicy(max_state_bytes=looped_cost)
        decision = policy.review(
            small, "trajectory", trials=100, batch_size=64,
        )
        assert decision.action == "downgrade"
        assert decision.downgrades == ("batched-to-looped",)

    def test_both_rungs_applied_in_order(self, small):
        looped_cost = estimate_memory_bytes(
            small, "trajectory", trials=100, batch_size=1,
        )
        policy = AdmissionPolicy(max_state_bytes=looped_cost)
        decision = policy.review(
            small, "trajectory", trials=100, batch_size=64,
            parallel=True, workers=4,
        )
        assert decision.action == "downgrade"
        assert decision.downgrades == (
            "parallel-to-serial", "batched-to-looped",
        )

    def test_reject_when_no_rung_is_enough(self, small):
        policy = AdmissionPolicy(max_state_bytes=1)
        decision = policy.review(small, "statevector")
        assert decision.action == "reject"
        assert not decision.admitted
        assert "budget" in decision.reason

    def test_admission_error_is_typed(self):
        from repro.exceptions import ReproError

        assert issubclass(AdmissionError, ReproError)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_state_bytes=0)
