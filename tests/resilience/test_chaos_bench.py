"""The chaos bench: report shape, invariants, and the CI gate."""

import copy
import json

import pytest

from repro.resilience.chaos import (
    CHAOS_SCHEMA,
    check_chaos_regression,
    render_chaos_report,
    run_chaos_bench,
)


@pytest.fixture(scope="module")
def report():
    return run_chaos_bench(smoke=True, seed=2019)


class TestReport:
    def test_schema_and_shape(self, report):
        assert report["schema"] == CHAOS_SCHEMA
        assert report["smoke"] is True
        for section in ("workload", "chaos_phase", "corruption_phase",
                        "invariants", "platform"):
            assert section in report

    def test_json_serializable(self, report):
        json.dumps(report)

    def test_all_invariants_pass(self, report):
        invariants = report["invariants"]
        assert invariants["all_pass"], {
            name: value for name, value in invariants.items() if not value
        }

    def test_faults_were_actually_injected(self, report):
        # A chaos bench with zero injections tests nothing.
        assert sum(report["chaos_phase"]["faults"]["injections"]
                   .values()) > 0

    def test_retries_happened_and_are_capped(self, report):
        chaos = report["chaos_phase"]
        assert (
            chaos["max_attempts_observed"]
            <= chaos["retry_policy"]["max_attempts"]
        )

    def test_corruption_contained(self, report):
        corruption = report["corruption_phase"]
        assert corruption["corrupted_entries"] > 0
        assert (
            corruption["store"]["corrupt_dropped"]
            == corruption["corrupted_entries"]
        )
        assert (
            corruption["executed"]
            == corruption["corrupted_entries"]
            + corruption["missing_entries"]
        )

    def test_render_mentions_the_verdict(self, report):
        text = render_chaos_report(report)
        assert "all invariants: PASS" in text
        assert "chaos phase:" in text
        assert "corruption phase:" in text


class TestRegressionGate:
    def test_passes_against_itself(self, report):
        assert check_chaos_regression(report, report) == []

    def test_flags_violated_invariant(self, report):
        fresh = copy.deepcopy(report)
        fresh["invariants"]["no_lost_handles"] = False
        failures = check_chaos_regression(report, fresh)
        assert any("no_lost_handles" in message for message in failures)

    def test_flags_schema_mismatch(self, report):
        fresh = copy.deepcopy(report)
        fresh["schema"] = "something-else/v0"
        failures = check_chaos_regression(report, fresh)
        assert failures and "schema" in failures[0]

    def test_flags_distinct_key_drift_same_config(self, report):
        fresh = copy.deepcopy(report)
        fresh["workload"]["distinct_keys"] += 1
        failures = check_chaos_regression(report, fresh)
        assert any("drifted" in message for message in failures)

    def test_ignores_drift_across_configs(self, report):
        fresh = copy.deepcopy(report)
        fresh["seed"] = report["seed"] + 1
        fresh["workload"]["distinct_keys"] += 1
        assert check_chaos_regression(report, fresh) == []


class TestDeterminism:
    def test_same_seed_same_fault_schedule(self, report):
        again = run_chaos_bench(smoke=True, seed=2019)
        assert again["invariants"]["all_pass"]
        # Per-site injection *schedules* are seeded; under concurrency
        # the counts can shift only if call counts shift, so the
        # distinct-key workload itself must be identical.
        assert (
            again["workload"]["distinct_keys"]
            == report["workload"]["distinct_keys"]
        )

    def test_other_seed_still_passes(self):
        other = run_chaos_bench(smoke=True, seed=7)
        assert other["invariants"]["all_pass"]
