"""RetryPolicy: classification, capped backoff, deterministic jitter."""

import pytest

from repro.resilience import (
    AttemptRecord,
    JobTimeoutError,
    RetryPolicy,
    TransientServiceError,
)


class TestClassification:
    def test_transient_is_retryable(self):
        assert RetryPolicy().retryable(TransientServiceError("flaky"))

    def test_os_and_connection_errors_are_retryable(self):
        policy = RetryPolicy()
        assert policy.retryable(OSError("disk hiccup"))
        assert policy.retryable(ConnectionError("reset"))

    def test_file_not_found_is_not_retryable(self):
        assert not RetryPolicy().retryable(FileNotFoundError("gone"))

    def test_logic_errors_are_not_retryable(self):
        policy = RetryPolicy()
        assert not policy.retryable(ValueError("bad input"))
        assert not policy.retryable(TypeError("bad type"))

    def test_timeout_never_retryable_even_when_listed(self):
        policy = RetryPolicy(retryable_types=(JobTimeoutError, OSError))
        assert not policy.retryable(JobTimeoutError("too late"))
        assert policy.retryable(OSError("still listed"))

    def test_explicit_types_replace_default(self):
        policy = RetryPolicy(retryable_types=(ValueError,))
        assert policy.retryable(ValueError("now transient"))
        assert not policy.retryable(TransientServiceError("not listed"))


class TestBackoff:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, max_delay=4.0,
            multiplier=2.0, jitter=0.0,
        )
        delays = [policy.delay(k) for k in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        for attempt in range(1, 50):
            delay = policy.delay(attempt, "token")
            assert 1.0 <= delay < 1.5

    def test_jitter_deterministic_per_seed_and_token(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert a.backoff_sequence("job-1") == b.backoff_sequence("job-1")
        assert a.backoff_sequence("job-1") != a.backoff_sequence("job-2")
        assert (
            RetryPolicy(seed=8).backoff_sequence("job-1")
            != a.backoff_sequence("job-1")
        )

    def test_backoff_sequence_length(self):
        assert RetryPolicy(max_attempts=1).backoff_sequence() == []
        assert len(RetryPolicy(max_attempts=4).backoff_sequence()) == 3

    def test_attempt_numbering_starts_at_one(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
        {"jitter": 1.5},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestAttemptRecord:
    def test_to_dict_round_trip(self):
        record = AttemptRecord(
            attempt=2, error_type="TransientServiceError",
            message="injected fault", delay=0.125, retried=True,
        )
        data = record.to_dict()
        assert data == {
            "attempt": 2,
            "error_type": "TransientServiceError",
            "message": "injected fault",
            "delay": 0.125,
            "retried": True,
        }
        assert AttemptRecord(**data) == record
