"""FaultInjector: seeded streams, site isolation, ambient activation."""

import pytest

from repro.resilience import (
    INJECTION_SITES,
    FaultInjector,
    TransientServiceError,
    current_injector,
    injected,
    install_injector,
    maybe_inject,
)


class TestDecisions:
    def test_rate_zero_never_fires(self):
        injector = FaultInjector(rate=0.0, seed=1)
        assert not any(
            injector.should_inject("worker.run") for _ in range(100)
        )
        assert injector.calls["worker.run"] == 100
        assert injector.injections == {}

    def test_rate_one_always_fires(self):
        injector = FaultInjector(rate=1.0, seed=1)
        assert all(
            injector.should_inject("worker.run") for _ in range(10)
        )
        assert injector.injections["worker.run"] == 10

    def test_same_seed_same_decision_sequence(self):
        a = FaultInjector(rate=0.3, seed=42)
        b = FaultInjector(rate=0.3, seed=42)
        seq_a = [a.should_inject("store.read") for _ in range(200)]
        seq_b = [b.should_inject("store.read") for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_sites_draw_independent_streams(self):
        # Interleaving calls at another site must not perturb the
        # first site's decision sequence.
        alone = FaultInjector(rate=0.3, seed=9)
        mixed = FaultInjector(rate=0.3, seed=9)
        seq_alone = [alone.should_inject("store.read") for _ in range(50)]
        seq_mixed = []
        for _ in range(50):
            mixed.should_inject("store.write")
            seq_mixed.append(mixed.should_inject("store.read"))
        assert seq_alone == seq_mixed

    def test_per_site_rates_with_default(self):
        injector = FaultInjector(rate={"store.read": 1.0, "*": 0.0})
        assert injector.rate_for("store.read") == 1.0
        assert injector.rate_for("worker.run") == 0.0
        assert injector.should_inject("store.read")
        assert not injector.should_inject("worker.run")

    def test_missing_site_never_fires_without_default(self):
        injector = FaultInjector(rate={"store.read": 1.0})
        assert not injector.should_inject("protocol.request")

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(rate={"store.read": -0.1})


class TestInjection:
    def test_inject_raises_transient_by_default(self):
        injector = FaultInjector(rate=1.0)
        with pytest.raises(TransientServiceError, match="store.read"):
            injector.inject("store.read")

    def test_custom_exception_factory(self):
        injector = FaultInjector(
            rate=1.0,
            exc_factory=lambda site, n: OSError(f"{site} #{n}"),
        )
        with pytest.raises(OSError, match="worker.run #1"):
            injector.inject("worker.run")

    def test_to_dict_snapshot(self):
        injector = FaultInjector(rate=1.0, seed=3)
        with pytest.raises(TransientServiceError):
            injector.inject("store.write")
        data = injector.to_dict()
        assert data["seed"] == 3
        assert data["calls"] == {"store.write": 1}
        assert data["injections"] == {"store.write": 1}


class TestAmbientActivation:
    def test_maybe_inject_noop_without_injector(self):
        install_injector(None)
        maybe_inject("worker.run")  # no ambient, no explicit: no-op

    def test_injected_context_scopes_and_restores(self):
        install_injector(None)
        injector = FaultInjector(rate=1.0)
        with injected(injector):
            assert current_injector() is injector
            with pytest.raises(TransientServiceError):
                maybe_inject("facade.task")
        assert current_injector() is None
        maybe_inject("facade.task")  # restored: no-op again

    def test_explicit_injector_beats_ambient(self):
        ambient = FaultInjector(rate=0.0)
        explicit = FaultInjector(rate=1.0)
        with injected(ambient):
            with pytest.raises(TransientServiceError):
                maybe_inject("store.read", explicit)
            assert ambient.calls.get("store.read") is None

    def test_all_wired_sites_listed(self):
        assert set(INJECTION_SITES) == {
            "worker.run", "facade.task", "store.read", "store.write",
            "protocol.request",
        }
