"""Deadline: injectable-clock time budgets and the typed timeout."""

import pytest

from repro.exceptions import ReproError
from repro.resilience import Deadline, JobTimeoutError, resolve_deadline


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline.after(10.0, clock)
        assert deadline.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(6.0)
        assert not deadline.expired()

    def test_expired_after_budget(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(0.0)

    def test_check_raises_typed_error_with_label(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        deadline.check("sweep")  # within budget: no raise
        clock.advance(2.5)
        with pytest.raises(JobTimeoutError, match="sweep exceeded"):
            deadline.check("sweep")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)
        with pytest.raises(ValueError):
            Deadline.after(-3.0)

    def test_absolute_constructor(self):
        clock = FakeClock(100.0)
        deadline = Deadline(103.0, clock)
        assert deadline.remaining() == pytest.approx(3.0)


class TestJobTimeoutErrorHierarchy:
    def test_is_timeout_error(self):
        # Pre-existing `except TimeoutError` call sites keep working.
        assert issubclass(JobTimeoutError, TimeoutError)

    def test_is_repro_error(self):
        assert issubclass(JobTimeoutError, ReproError)


class TestResolveDeadline:
    def test_none_passes_through(self):
        assert resolve_deadline(None) is None

    def test_deadline_passes_through(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock)
        assert resolve_deadline(deadline) is deadline

    def test_seconds_become_deadline(self):
        clock = FakeClock()
        deadline = resolve_deadline(5.0, clock)
        assert isinstance(deadline, Deadline)
        assert deadline.remaining() == pytest.approx(5.0)
