"""The line-delimited JSON protocol: dispatch, errors, and the loop."""

import json
import threading

import pytest

from repro.service import JobQueue, handle_request, serve_lines
from repro.service.protocol import PROTOCOL

TREE = {"target": "qutrit_tree", "build": {"num_controls": 3},
        "backend": "classical", "input": [1, 1, 1, 0]}


@pytest.fixture()
def queue():
    with JobQueue(workers=2) as live:
        yield live


class TestHandleRequest:
    def test_ping(self, queue):
        assert handle_request(queue, {"op": "ping"}) == {
            "ok": True, "pong": True,
        }

    def test_id_echoed(self, queue):
        response = handle_request(queue, {"op": "ping", "id": "abc"})
        assert response["id"] == "abc"

    def test_submit_wait_inlines_result(self, queue):
        response = handle_request(
            queue, {"op": "submit", "wait": True, **TREE}
        )
        assert response["ok"]
        assert response["state"] == "DONE"
        assert response["result"]["values"] == [1, 1, 1, 1]
        assert response["latency_ms"] >= 0

    def test_submit_async_then_result(self, queue):
        submitted = handle_request(queue, {"op": "submit", **TREE})
        assert submitted["ok"]
        job_id = submitted["job"]
        response = handle_request(
            queue, {"op": "result", "job": job_id, "timeout": 30}
        )
        assert response["ok"]
        assert response["result"]["values"] == [1, 1, 1, 1]
        status = handle_request(queue, {"op": "status", "job": job_id})
        assert status == {"ok": True, "job": job_id, "state": "DONE"}

    def test_submit_with_noise_and_seed(self, queue):
        response = handle_request(queue, {
            "op": "submit", "wait": True, "target": "qutrit_tree",
            "build": {"num_controls": 3}, "backend": "trajectory",
            "noise": "SC", "trials": 3, "seed": 7,
        })
        assert response["ok"]
        assert response["result"]["type"] == "FidelityResult"

    def test_unknown_noise_is_an_error(self, queue):
        response = handle_request(queue, {
            "op": "submit", "target": "qutrit_tree",
            "build": {"num_controls": 3}, "noise": "NOPE",
        })
        assert not response["ok"]
        assert "unknown noise model" in response["error"]

    def test_missing_target_is_an_error(self, queue):
        response = handle_request(queue, {"op": "submit"})
        assert not response["ok"]
        assert "target" in response["error"]

    def test_unknown_job_is_an_error(self, queue):
        response = handle_request(
            queue, {"op": "status", "job": "job-424242"}
        )
        assert not response["ok"]

    def test_unknown_op_is_an_error(self, queue):
        response = handle_request(queue, {"op": "frobnicate"})
        assert not response["ok"]
        assert "unknown op" in response["error"]

    def test_cancel_terminal_job_reports_false(self, queue):
        submitted = handle_request(
            queue, {"op": "submit", "wait": True, **TREE}
        )
        response = handle_request(
            queue, {"op": "cancel", "job": submitted["job"]}
        )
        assert response["ok"]
        assert response["cancelled"] is False
        assert response["state"] == "DONE"

    def test_stats_snapshot(self, queue):
        handle_request(queue, {"op": "submit", "wait": True, **TREE})
        response = handle_request(queue, {"op": "stats"})
        assert response["ok"]
        assert response["stats"]["submitted"] == 1
        assert response["stats"]["workers"] == 2

    def test_queue_full_maps_to_rejected(self):
        gate = threading.Event()

        def parked(request):
            gate.wait(timeout=30)
            raise AssertionError("never completes in this test")

        queue = JobQueue(workers=1, max_pending=1, runner=parked)
        try:
            handle_request(queue, {"op": "submit", "seed": 1, **TREE})
            handle_request(queue, {"op": "submit", "seed": 2, **TREE})
            response = handle_request(
                queue, {"op": "submit", "seed": 3, **TREE}
            )
            # One of the first two is running, the other queued; the
            # third distinct submission overflows the bound.
            assert not response["ok"]
            assert response["rejected"] is True
        finally:
            gate.set()
            queue.shutdown(wait=False)


class TestServeLines:
    def run(self, queue, requests):
        written = []
        outcome = serve_lines(
            queue,
            [json.dumps(r) if isinstance(r, dict) else r
             for r in requests],
            written.append,
        )
        return outcome, [json.loads(line) for line in written]

    def test_hello_then_eof(self, queue):
        outcome, responses = self.run(queue, [{"op": "ping"}])
        assert outcome == "eof"
        assert responses[0]["protocol"] == PROTOCOL
        assert responses[1] == {"ok": True, "pong": True}

    def test_shutdown_ends_loop(self, queue):
        outcome, responses = self.run(
            queue, [{"op": "shutdown"}, {"op": "ping"}]
        )
        assert outcome == "shutdown"
        # The ping after shutdown was never served.
        assert len(responses) == 2
        assert responses[1]["shutdown"] is True

    def test_bad_json_reports_and_continues(self, queue):
        outcome, responses = self.run(
            queue, ["{not json", {"op": "ping"}]
        )
        assert outcome == "eof"
        assert not responses[1]["ok"]
        assert "bad request" in responses[1]["error"]
        assert responses[2]["pong"] is True

    def test_non_object_request_rejected(self, queue):
        _, responses = self.run(queue, ["[1, 2, 3]", ""])
        assert not responses[1]["ok"]

    def test_full_session(self, queue):
        outcome, responses = self.run(queue, [
            {"op": "submit", "id": 1, "wait": True, **TREE},
            {"op": "stats", "id": 2},
            {"op": "shutdown", "id": 3},
        ])
        assert outcome == "shutdown"
        by_id = {r.get("id"): r for r in responses if "id" in r}
        assert by_id[1]["result"]["values"] == [1, 1, 1, 1]
        assert by_id[2]["stats"]["executed"] == 1
        assert by_id[3]["shutdown"] is True
