"""FairScheduler: priority order, round-robin fairness, and aging."""

import pytest

from repro.service import FairScheduler


class TestPriorityOrder:
    def test_higher_priority_pops_first(self):
        scheduler = FairScheduler()
        scheduler.push("low", priority=0)
        scheduler.push("high", priority=5)
        assert scheduler.pop() == "high"
        assert scheduler.pop() == "low"

    def test_fifo_within_equal_priority(self):
        scheduler = FairScheduler()
        for name in ("a", "b", "c"):
            scheduler.push(name, priority=1)
        assert [scheduler.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_len_and_bool(self):
        scheduler = FairScheduler()
        assert not scheduler
        scheduler.push("x")
        assert scheduler and len(scheduler) == 1
        scheduler.pop()
        assert len(scheduler) == 0
        assert scheduler.pop() is None

    def test_negative_age_weight_rejected(self):
        with pytest.raises(ValueError):
            FairScheduler(age_weight=-0.1)


class TestAging:
    def test_old_low_priority_eventually_beats_new_high(self):
        """A priority advantage of p decays after p/age_weight pushes."""
        scheduler = FairScheduler(age_weight=1.0)
        scheduler.push("old-low", priority=0)
        scheduler.push("young-high", priority=5)  # rank 1 - 5 = -4: wins
        assert scheduler.pop() == "young-high"
        # Burn enough sequence numbers that a fresh priority-5 entry
        # ranks behind the seq-0 priority-0 one (rank >= 0 vs 0 - 0).
        for _ in range(6):
            scheduler.push("filler", priority=0)
        scheduler.push("late-high", priority=5)  # rank 8 - 5 = 3
        assert scheduler.pop() == "old-low"

    def test_zero_age_weight_is_strict_priority(self):
        scheduler = FairScheduler(age_weight=0.0)
        for index in range(20):
            scheduler.push(f"low-{index}", priority=0)
        scheduler.push("high", priority=1)
        assert scheduler.pop() == "high"


class TestRoundRobin:
    def test_alternates_between_submitters(self):
        scheduler = FairScheduler()
        for index in range(3):
            scheduler.push(f"a{index}", submitter="alice")
        for index in range(3):
            scheduler.push(f"b{index}", submitter="bob")
        order = [scheduler.pop() for _ in range(6)]
        # Each client's next job waits behind at most one job from
        # every other client: strict a/b alternation here.
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_chatty_submitter_cannot_starve_quiet_one(self):
        scheduler = FairScheduler()
        for index in range(50):
            scheduler.push(f"chatty-{index}", submitter="chatty")
        scheduler.push("quiet-job", submitter="quiet")
        popped = [scheduler.pop() for _ in range(3)]
        assert "quiet-job" in popped

    def test_drained_submitter_is_retired(self):
        scheduler = FairScheduler()
        scheduler.push("a0", submitter="alice")
        scheduler.push("b0", submitter="bob")
        scheduler.pop()
        scheduler.pop()
        assert scheduler.submitters() == []
        scheduler.push("b1", submitter="bob")
        assert scheduler.pop() == "b1"

    def test_drain_empties_in_fair_order(self):
        scheduler = FairScheduler()
        scheduler.push("a0", submitter="alice")
        scheduler.push("a1", submitter="alice")
        scheduler.push("b0", submitter="bob")
        assert list(scheduler.drain()) == ["a0", "b0", "a1"]
        assert len(scheduler) == 0
