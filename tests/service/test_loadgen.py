"""Load generator determinism and the serve-bench CI gate."""

import copy

import numpy as np
import pytest

from repro.service import (
    check_serve_regression,
    default_catalog,
    run_serve_bench,
    zipf_workload,
)
from repro.service.loadgen import SERVE_SCHEMA


class TestZipfWorkload:
    def test_deterministic_for_fixed_seed(self):
        assert zipf_workload(10, 50, seed=3) == zipf_workload(
            10, 50, seed=3
        )
        assert zipf_workload(10, 50, seed=3) != zipf_workload(
            10, 50, seed=4
        )

    def test_skewed_towards_low_ranks(self):
        draws = zipf_workload(20, 2000, seed=1)
        counts = np.bincount(draws, minlength=20)
        assert counts[0] > counts[10] > 0
        assert counts[0] == max(counts)

    def test_indices_in_range(self):
        draws = zipf_workload(5, 100)
        assert all(0 <= index < 5 for index in draws)

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            zipf_workload(0, 10)


class TestCatalog:
    def test_smoke_is_smaller(self):
        assert len(default_catalog(smoke=True)) < len(
            default_catalog(smoke=False)
        )

    def test_entries_name_real_targets(self):
        from repro.toffoli import CONSTRUCTIONS

        for entry in default_catalog(smoke=False):
            assert entry["target"] in CONSTRUCTIONS


@pytest.mark.slow
class TestServeBench:
    def test_smoke_report_invariants(self, tmp_path):
        report = run_serve_bench(smoke=True, workers=2,
                                 store_dir=str(tmp_path))
        assert report["schema"] == SERVE_SCHEMA
        assert report["headline"]["executed_exactly_once"]
        assert report["headline"]["restart_executions"] == 0
        # The gate passes against itself.
        assert check_serve_regression(report, report) == []


class TestRegressionGate:
    @pytest.fixture()
    def good(self):
        distinct = 7
        requests = 80
        return {
            "schema": SERVE_SCHEMA,
            "seed": 2019,
            "workload": {
                "requests": requests,
                "catalog_size": 7,
                "distinct_keys": distinct,
            },
            "phase1_cold": {
                "executed": distinct, "coalesced": 3,
                "memory_hits": requests - distinct - 3,
                "persistent_hits": 0,
            },
            "phase2_restart": {
                "executed": 0, "coalesced": 0,
                "memory_hits": requests - distinct,
                "persistent_hits": distinct,
            },
        }

    def test_clean_report_passes(self, good):
        assert check_serve_regression(good, good) == []

    def test_double_execution_fails(self, good):
        broken = copy.deepcopy(good)
        broken["phase1_cold"]["executed"] = 9
        failures = check_serve_regression(good, broken)
        assert any("exactly-once" in f for f in failures)

    def test_coalescing_leak_fails(self, good):
        broken = copy.deepcopy(good)
        broken["phase1_cold"]["memory_hits"] -= 2
        failures = check_serve_regression(good, broken)
        assert any("leak" in f for f in failures)

    def test_restart_reexecution_fails(self, good):
        broken = copy.deepcopy(good)
        broken["phase2_restart"]["executed"] = 7
        broken["phase2_restart"]["persistent_hits"] = 0
        failures = check_serve_regression(good, broken)
        assert any("restart" in f for f in failures)
        assert any("store" in f for f in failures)

    def test_distinct_key_drift_fails(self, good):
        drifted = copy.deepcopy(good)
        drifted["workload"]["distinct_keys"] = 6
        drifted["phase1_cold"]["executed"] = 6
        drifted["phase1_cold"]["memory_hits"] += 1
        drifted["phase2_restart"]["persistent_hits"] = 6
        drifted["phase2_restart"]["memory_hits"] += 1
        failures = check_serve_regression(good, drifted)
        assert any("drifted" in f for f in failures)

    def test_different_workload_skips_drift_check(self, good):
        other = copy.deepcopy(good)
        other["seed"] = 7
        other["workload"]["distinct_keys"] = 6
        other["phase1_cold"]["executed"] = 6
        other["phase1_cold"]["memory_hits"] += 1
        other["phase2_restart"]["persistent_hits"] = 6
        other["phase2_restart"]["memory_hits"] += 1
        assert check_serve_regression(good, other) == []
