"""JobQueue lifecycle edges, coalescing, backpressure, and persistence.

The deterministic tests inject blocking/counting runners (the queue's
``runner=`` seam) so worker timing never races the assertions: a runner
that waits on an event pins a group in RUNNING, and a barrier proves
followers attached while the leader was in flight.
"""

import threading

import pytest

from repro.execution.cache import ResultCache
from repro.execution.results import RunResult
from repro.qudits import qubits
from repro.service import (
    JobCancelledError,
    JobFailedError,
    JobQueue,
    JobState,
    QueueFullError,
    ResultStore,
)

TREE = dict(num_controls=3, backend="classical", initial=(1, 1, 1, 0))


def _stub_result():
    return RunResult(backend="classical", wires=tuple(qubits(1)),
                     values=(1,))


class _BlockingRunner:
    """Runner that parks executions until released, counting each."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, request):
        with self._lock:
            self.calls += 1
        self.started.set()
        if not self.release.wait(timeout=30):  # pragma: no cover
            raise TimeoutError("runner never released")
        return _stub_result()


class TestLifecycle:
    def test_happy_path_states_and_result(self):
        with JobQueue(workers=2) as queue:
            job = queue.submit("qutrit_tree", **TREE)
            result = job.result(timeout=60)
        assert job.state is JobState.DONE
        assert result.values == (1, 1, 1, 1)
        assert job.latency is not None and job.latency >= 0
        assert job.served_from is None  # genuinely executed

    def test_status_and_result_by_id(self):
        with JobQueue(workers=1) as queue:
            job = queue.submit("qutrit_tree", **TREE)
            result = queue.result(job.id, timeout=60)
            assert queue.status(job.id) is JobState.DONE
            assert result.values == (1, 1, 1, 1)
        with pytest.raises(KeyError):
            queue.status("job-999999")

    def test_cancel_queued_job(self):
        runner = _BlockingRunner()
        queue = JobQueue(workers=1, runner=runner)
        try:
            leader = queue.submit("qutrit_tree", seed=1, **TREE)
            assert runner.started.wait(10)  # worker busy with leader
            queued = queue.submit("qutrit_tree", seed=2, **TREE)
            assert queued.state is JobState.QUEUED
            assert queue.cancel(queued) is True
            assert queued.state is JobState.CANCELLED
            with pytest.raises(JobCancelledError):
                queued.result(timeout=1)
            # Cancelling again (terminal) is a no-op.
            assert queue.cancel(queued) is False
        finally:
            runner.release.set()
            queue.shutdown(wait=True)
        assert leader.result(timeout=10).values == (1,)
        assert queue.stats.cancelled == 1

    def test_cancel_running_job_refused(self):
        runner = _BlockingRunner()
        queue = JobQueue(workers=1, runner=runner)
        try:
            job = queue.submit("qutrit_tree", **TREE)
            assert runner.started.wait(10)
            assert job.state is JobState.RUNNING
            assert queue.cancel(job) is False
            assert job.state is JobState.RUNNING
        finally:
            runner.release.set()
            queue.shutdown(wait=True)
        assert job.state is JobState.DONE

    def test_worker_exception_fails_job_with_traceback(self):
        def boom(request):
            raise ValueError("simulated backend explosion")

        with JobQueue(workers=1, runner=boom) as queue:
            job = queue.submit("qutrit_tree", **TREE)
            with pytest.raises(JobFailedError) as excinfo:
                job.result(timeout=30)
        assert job.state is JobState.FAILED
        assert "simulated backend explosion" in str(excinfo.value)
        assert "ValueError" in excinfo.value.traceback
        assert "ValueError" in job.traceback
        assert isinstance(job.error, ValueError)
        assert queue.stats.failed == 1

    def test_submit_after_shutdown_refused(self):
        queue = JobQueue(workers=1)
        queue.shutdown(wait=True)
        with pytest.raises(RuntimeError):
            queue.submit("qutrit_tree", **TREE)

    def test_shutdown_cancel_pending(self):
        runner = _BlockingRunner()
        queue = JobQueue(workers=1, runner=runner)
        leader = queue.submit("qutrit_tree", seed=1, **TREE)
        assert runner.started.wait(10)
        pending = queue.submit("qutrit_tree", seed=2, **TREE)
        runner.release.set()
        queue.shutdown(wait=True, cancel_pending=True)
        assert leader.state is JobState.DONE
        assert pending.state is JobState.CANCELLED

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            JobQueue(workers=0)
        with pytest.raises(ValueError):
            JobQueue(max_pending=0)
        with pytest.raises(ValueError):
            JobQueue(backpressure="drop")


class TestCoalescing:
    def test_duplicate_submissions_execute_exactly_once(self):
        """The acceptance-criteria proof: N identical submissions,
        leader pinned in flight, exactly one execution."""
        runner = _BlockingRunner()
        queue = JobQueue(workers=2, runner=runner)
        try:
            leader = queue.submit("qutrit_tree", seed=9, **TREE)
            assert runner.started.wait(10)
            followers = [
                queue.submit("qutrit_tree", seed=9, **TREE)
                for _ in range(5)
            ]
            assert all(f.served_from == "coalesced" for f in followers)
            assert all(f.key == leader.key for f in followers)
            runner.release.set()
            results = [job.result(timeout=30)
                       for job in [leader, *followers]]
        finally:
            queue.shutdown(wait=True)
        assert runner.calls == 1
        assert queue.stats.executed == 1
        assert queue.stats.coalesced == 5
        # Every handle observes the same result object.
        assert all(r is results[0] for r in results)

    def test_followers_observe_leader_failure(self):
        runner_started = threading.Event()
        release = threading.Event()

        def failing(request):
            runner_started.set()
            release.wait(timeout=30)
            raise RuntimeError("leader died")

        queue = JobQueue(workers=1, runner=failing)
        try:
            leader = queue.submit("qutrit_tree", seed=3, **TREE)
            assert runner_started.wait(10)
            follower = queue.submit("qutrit_tree", seed=3, **TREE)
            assert follower.served_from == "coalesced"
            release.set()
            for job in (leader, follower):
                with pytest.raises(JobFailedError) as excinfo:
                    job.result(timeout=30)
                assert "leader died" in excinfo.value.traceback
        finally:
            queue.shutdown(wait=True)
        assert queue.stats.failed == 2
        assert queue.stats.executed == 1

    def test_cancelled_follower_leaves_siblings_intact(self):
        runner = _BlockingRunner()
        queue = JobQueue(workers=1, runner=runner)
        try:
            blocker = queue.submit("qutrit_tree", seed=1, **TREE)
            assert runner.started.wait(10)
            # A *queued* group with two handles: cancel one of them.
            leader = queue.submit("qutrit_tree", seed=2, **TREE)
            follower = queue.submit("qutrit_tree", seed=2, **TREE)
            assert queue.cancel(follower) is True
            runner.release.set()
            assert leader.result(timeout=30).values == (1,)
            with pytest.raises(JobCancelledError):
                follower.result(timeout=1)
            blocker.result(timeout=30)
        finally:
            queue.shutdown(wait=True)

    def test_fully_cancelled_group_never_executes(self):
        runner = _BlockingRunner()
        queue = JobQueue(workers=1, runner=runner)
        try:
            blocker = queue.submit("qutrit_tree", seed=1, **TREE)
            assert runner.started.wait(10)
            doomed = queue.submit("qutrit_tree", seed=2, **TREE)
            twin = queue.submit("qutrit_tree", seed=2, **TREE)
            assert queue.cancel(doomed) and queue.cancel(twin)
            runner.release.set()
            blocker.result(timeout=30)
        finally:
            queue.shutdown(wait=True)
        # Only the blocker ran; the abandoned group was skipped.
        assert runner.calls == 1

    def test_unseeded_stochastic_jobs_still_coalesce(self):
        """No cache key (not reproducible) but identical in-flight
        submissions still share the one execution."""
        runner = _BlockingRunner()
        queue = JobQueue(workers=1, runner=runner)
        try:
            leader = queue.submit("qutrit_tree", num_controls=3,
                                  backend="statevector", shots=16)
            assert runner.started.wait(10)
            follower = queue.submit("qutrit_tree", num_controls=3,
                                    backend="statevector", shots=16)
            assert follower.served_from == "coalesced"
            runner.release.set()
            leader.result(timeout=30)
            follower.result(timeout=30)
        finally:
            queue.shutdown(wait=True)
        assert runner.calls == 1
        # And nothing was cached: a later identical submission runs.
        assert len(queue.cache) == 0


class TestBackpressure:
    def test_reject_at_bound(self):
        runner = _BlockingRunner()
        queue = JobQueue(workers=1, max_pending=1, runner=runner)
        try:
            queue.submit("qutrit_tree", seed=1, **TREE)
            assert runner.started.wait(10)  # worker holds job 1
            queue.submit("qutrit_tree", seed=2, **TREE)  # fills the queue
            with pytest.raises(QueueFullError):
                queue.submit("qutrit_tree", seed=3, **TREE)
        finally:
            runner.release.set()
            queue.shutdown(wait=True)
        assert queue.stats.rejected == 1

    def test_rejected_duplicate_still_coalesces(self):
        """Backpressure bounds *distinct* executions: a duplicate of a
        queued job attaches instead of rejecting."""
        runner = _BlockingRunner()
        queue = JobQueue(workers=1, max_pending=1, runner=runner)
        try:
            queue.submit("qutrit_tree", seed=1, **TREE)
            assert runner.started.wait(10)
            queue.submit("qutrit_tree", seed=2, **TREE)
            follower = queue.submit("qutrit_tree", seed=2, **TREE)
            assert follower.served_from == "coalesced"
        finally:
            runner.release.set()
            queue.shutdown(wait=True)

    def test_block_mode_times_out(self):
        runner = _BlockingRunner()
        queue = JobQueue(workers=1, max_pending=1,
                         backpressure="block", runner=runner)
        try:
            queue.submit("qutrit_tree", seed=1, **TREE)
            assert runner.started.wait(10)
            queue.submit("qutrit_tree", seed=2, **TREE)
            with pytest.raises(QueueFullError):
                queue.submit("qutrit_tree", seed=3, timeout=0.05, **TREE)
        finally:
            runner.release.set()
            queue.shutdown(wait=True)

    def test_block_mode_proceeds_when_space_frees(self):
        runner = _BlockingRunner()
        queue = JobQueue(workers=1, max_pending=1,
                         backpressure="block", runner=runner)
        jobs = {}
        try:
            jobs["a"] = queue.submit("qutrit_tree", seed=1, **TREE)
            assert runner.started.wait(10)
            jobs["b"] = queue.submit("qutrit_tree", seed=2, **TREE)

            def blocked_submit():
                jobs["c"] = queue.submit("qutrit_tree", seed=3,
                                         timeout=30, **TREE)

            thread = threading.Thread(target=blocked_submit)
            thread.start()
            thread.join(timeout=0.2)
            assert thread.is_alive()  # genuinely blocked at the bound
            runner.release.set()  # a completes -> b pops -> space frees
            thread.join(timeout=30)
            assert not thread.is_alive()
            for job in jobs.values():
                assert job.result(timeout=30).values == (1,)
        finally:
            runner.release.set()
            queue.shutdown(wait=True)
        assert queue.stats.rejected == 0


class TestCachingAndPersistence:
    def test_memory_hit_skips_worker(self):
        calls = []

        def counting(request):
            calls.append(request)
            return _stub_result()

        with JobQueue(workers=1, runner=counting) as queue:
            first = queue.submit("qutrit_tree", seed=5, **TREE)
            first.result(timeout=30)
            second = queue.submit("qutrit_tree", seed=5, **TREE)
            assert second.state is JobState.DONE  # instant, no worker
            assert second.served_from == "memory"
        assert len(calls) == 1
        assert queue.stats.memory_hits == 1

    def test_store_round_trip_across_restart(self, tmp_path):
        """Simulated restart: a fresh queue with a cold LRU over the
        same store directory serves the result without executing."""
        with JobQueue(workers=1, store=ResultStore(tmp_path)) as queue:
            job = queue.submit("qutrit_tree", seed=5, **TREE)
            original = job.result(timeout=60)
            assert queue.stats.executed == 1

        restarted = JobQueue(
            workers=1,
            cache=ResultCache(backing=ResultStore(tmp_path)),
            runner=lambda request: pytest.fail("must not re-execute"),
        )
        with restarted as queue:
            job = queue.submit("qutrit_tree", seed=5, **TREE)
            assert job.state is JobState.DONE
            assert job.served_from == "backing"
            assert job.result().values == original.values
        assert restarted.stats.persistent_hits == 1
        assert restarted.stats.executed == 0

    def test_describe_reports_store(self, tmp_path):
        with JobQueue(workers=1, store=ResultStore(tmp_path)) as queue:
            queue.submit("qutrit_tree", seed=5, **TREE).result(timeout=60)
            info = queue.describe()
        assert info["store_entries"] == 1
        assert info["store_bytes"] > 0
        assert info["executed"] == 1
        assert info["workers"] == 1


class TestFairness:
    def test_stats_snapshot_is_a_copy(self):
        with JobQueue(workers=1) as queue:
            queue.submit("qutrit_tree", **TREE).result(timeout=60)
            snap = queue.stats_snapshot()
            snap.submitted = 999
            assert queue.stats.submitted == 1

    def test_submitters_share_the_pool(self):
        order = []
        lock = threading.Lock()
        runner_gate = _BlockingRunner()

        def recording(request):
            with lock:
                order.append(request.seed)
            return _stub_result()

        queue = JobQueue(workers=1, runner=runner_gate)
        try:
            # Pin the worker, then interleave two submitters' backlogs.
            queue.submit("qutrit_tree", seed=0, **TREE)
            assert runner_gate.started.wait(10)
            queue._runner = recording
            chatty = [queue.submit("qutrit_tree", seed=10 + i,
                                   submitter="chatty", **TREE)
                      for i in range(4)]
            quiet = queue.submit("qutrit_tree", seed=99,
                                 submitter="quiet", **TREE)
            runner_gate.release.set()
            quiet.result(timeout=30)
            for job in chatty:
                job.result(timeout=30)
        finally:
            queue.shutdown(wait=True)
        # Round-robin: quiet's single job ran before chatty drained.
        assert order.index(99) < len(order) - 1
