"""The resilience layer wired through the queue, store, and protocol."""

import json
import threading
import time

import pytest

from repro.execution.results import RunResult
from repro.resilience import (
    AdmissionError,
    AdmissionPolicy,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    JobTimeoutError,
    RetryPolicy,
    TransientServiceError,
)
from repro.service import (
    JobCancelledError,
    JobQueue,
    JobState,
    QueueClosedError,
    ResultStore,
    handle_request,
    serve_lines,
)
from repro.service.protocol import MAX_LINE_BYTES

SUBMIT = {
    "target": "qutrit_tree",
    "build": {"num_controls": 3},
    "backend": "classical",
    "input": [1, 1, 1, 0],
}


def submit_kwargs(**extra):
    kwargs = dict(
        backend="classical", initial=(1, 1, 1, 0), num_controls=3,
    )
    kwargs.update(extra)
    return kwargs


def quick_result(request):
    return RunResult(backend="classical", wires=(), values=(0, 0, 0, 0))


class TestDeadlines:
    def test_expired_at_pop_goes_timed_out(self):
        release = threading.Event()

        def runner(request):
            release.wait(10)
            return quick_result(request)

        with JobQueue(workers=1, runner=runner) as queue:
            blocker = queue.submit("qutrit_tree", **submit_kwargs())
            while blocker.state is not JobState.RUNNING:
                time.sleep(0.001)
            # Queued behind the blocker with an already-tiny budget.
            doomed = queue.submit(
                "qutrit_tree", **submit_kwargs(seed=1),
                deadline=Deadline.after(1e-9),
            )
            release.set()
            assert doomed.wait(timeout=10)
            assert doomed.state is JobState.TIMED_OUT
            with pytest.raises(JobTimeoutError):
                doomed.result()
            assert queue.stats.timed_out == 1
        assert blocker.state is JobState.DONE

    def test_completion_wins_the_race(self):
        # A generous deadline on fast work must never time out; hammer
        # a batch to shake out ordering races around the expiry check.
        with JobQueue(workers=4, runner=quick_result) as queue:
            jobs = [
                queue.submit(
                    "qutrit_tree", **submit_kwargs(seed=index),
                    deadline=30.0,
                )
                for index in range(40)
            ]
            for job in jobs:
                assert job.result(timeout=30) is not None
                assert job.state is JobState.DONE

    def test_result_wait_timeout_is_typed(self):
        release = threading.Event()

        def runner(request):
            release.wait(10)
            return quick_result(request)

        with JobQueue(workers=1, runner=runner) as queue:
            job = queue.submit("qutrit_tree", **submit_kwargs())
            with pytest.raises(JobTimeoutError):
                job.result(timeout=0.01)
            # The old except-clause contract still holds.
            with pytest.raises(TimeoutError):
                job.result(timeout=0.01)
            release.set()
            assert job.result(timeout=10) is not None


class TestRetries:
    def test_transient_failures_retry_and_record_history(self):
        failures = {"left": 2}

        def flaky(request):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise TransientServiceError("flaky backend")
            return quick_result(request)

        policy = RetryPolicy(
            max_attempts=4, base_delay=0.001, max_delay=0.002, seed=3,
        )
        with JobQueue(
            workers=1, runner=flaky, retry_policy=policy,
        ) as queue:
            job = queue.submit("qutrit_tree", **submit_kwargs())
            assert job.result(timeout=10) is not None
        assert [a.attempt for a in job.attempts] == [1, 2]
        assert all(a.retried for a in job.attempts)
        assert all(
            a.error_type == "TransientServiceError" for a in job.attempts
        )
        assert queue.stats.retries == 2
        assert queue.stats.executed == 3  # two failures + the success

    def test_exhausted_attempts_fail_with_final_record(self):
        def always_down(request):
            raise TransientServiceError("still down")

        policy = RetryPolicy(max_attempts=2, base_delay=0.001, seed=3)
        with JobQueue(
            workers=1, runner=always_down, retry_policy=policy,
        ) as queue:
            job = queue.submit("qutrit_tree", **submit_kwargs())
            job.wait(timeout=10)
        assert job.state is JobState.FAILED
        assert len(job.attempts) == 2
        assert job.attempts[-1].retried is False
        assert job.attempts[-1].delay == 0.0

    def test_non_retryable_errors_fail_immediately(self):
        def broken(request):
            raise ValueError("logic bug")

        policy = RetryPolicy(max_attempts=4, base_delay=0.001)
        with JobQueue(
            workers=1, runner=broken, retry_policy=policy,
        ) as queue:
            job = queue.submit("qutrit_tree", **submit_kwargs())
            job.wait(timeout=10)
        assert job.state is JobState.FAILED
        assert len(job.attempts) == 1
        assert queue.stats.retries == 0


class TestShutdownAndDrain:
    def test_shutdown_no_wait_cancels_queued_with_reason(self):
        release = threading.Event()

        def runner(request):
            release.wait(10)
            return quick_result(request)

        queue = JobQueue(workers=1, runner=runner)
        blocker = queue.submit("qutrit_tree", **submit_kwargs())
        while blocker.state is not JobState.RUNNING:
            time.sleep(0.001)
        queued = queue.submit("qutrit_tree", **submit_kwargs(seed=1))
        queue.shutdown(wait=False)
        assert queued.state is JobState.CANCELLED
        with pytest.raises(JobCancelledError, match="queue shut down"):
            queued.result()
        release.set()
        queue.shutdown(wait=True)

    def test_submit_after_shutdown_raises_typed_closed_error(self):
        queue = JobQueue(workers=1, runner=quick_result)
        queue.shutdown()
        with pytest.raises(QueueClosedError):
            queue.submit("qutrit_tree", **submit_kwargs())
        # Pre-existing except RuntimeError call sites keep working.
        assert issubclass(QueueClosedError, RuntimeError)

    def test_drain_waits_idle_and_stops_admission(self):
        with JobQueue(workers=2, runner=quick_result) as queue:
            jobs = [
                queue.submit("qutrit_tree", **submit_kwargs(seed=index))
                for index in range(8)
            ]
            assert queue.drain(timeout=10) is True
            assert all(job.state is JobState.DONE for job in jobs)
            with pytest.raises(QueueClosedError):
                queue.submit("qutrit_tree", **submit_kwargs())


class TestAdmission:
    def test_reject_oversized_and_count(self):
        policy = AdmissionPolicy(max_state_bytes=1)
        with JobQueue(
            workers=1, runner=quick_result, admission=policy,
        ) as queue:
            with pytest.raises(AdmissionError):
                queue.submit(
                    "qutrit_tree", backend="statevector", num_controls=3,
                )
            assert queue.stats.admission_rejected == 1
            assert queue.stats.submitted == 0

    def test_parallel_downgrades_to_serial_and_runs(self):
        # Budget fits one serial statevector but not 4 worker copies.
        policy = AdmissionPolicy(max_state_bytes=1 << 20)
        with JobQueue(
            workers=1, runner=quick_result, admission=policy,
        ) as queue:
            job = queue.submit(
                "qutrit_tree", backend="statevector", num_controls=7,
                parallel=True, workers=64,
            )
            assert job.result(timeout=30) is not None
        assert job.degraded == ("parallel-to-serial",)
        assert queue.stats.degraded == 1


class TestStoreBreaker:
    def test_corruption_trips_breaker_then_short_circuits(self, tmp_path):
        store = ResultStore(
            tmp_path,
            breaker=CircuitBreaker(
                failure_threshold=1, reset_timeout=60.0,
            ),
        )
        key = ("fp", "classical", None, 0)
        store.path_for(key).write_text("{ corrupt")
        assert store.get(key) is None
        assert store.stats.corrupt_dropped == 1
        assert store.breaker.state == "open"
        # Open breaker: reads short-circuit instead of touching disk.
        assert store.get(key) is None
        assert store.stats.short_circuited >= 1

    def test_healthy_miss_feeds_breaker_success(self, tmp_path):
        store = ResultStore(
            tmp_path,
            breaker=CircuitBreaker(failure_threshold=1),
        )
        assert store.get(("fp", "classical", None, 1)) is None
        assert store.breaker.state == "closed"

    def test_injected_store_faults_absorbed_not_raised(self, tmp_path):
        injector = FaultInjector(
            rate={"store.read": 1.0, "store.write": 1.0},
        )
        store = ResultStore(tmp_path, fault_injector=injector)
        result = RunResult(backend="classical", wires=(), values=(1,))
        assert store.put(("fp", "classical", None, 2), result) is False
        assert store.get(("fp", "classical", None, 2)) is None
        assert store.stats.io_errors == 2

    def test_store_stats_to_dict_round_trips_json(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get(("fp", "classical", None, 3))
        data = json.loads(json.dumps(store.stats.to_dict()))
        assert data["misses"] == 1
        for counter in ("hits", "writes", "corrupt_dropped", "evictions",
                        "io_errors", "short_circuited"):
            assert counter in data


class TestProtocolHardening:
    def test_oversized_line_gets_structured_error(self):
        responses = []
        with JobQueue(workers=1, runner=quick_result) as queue:
            outcome = serve_lines(
                queue,
                ["x" * (MAX_LINE_BYTES + 1), json.dumps({"op": "ping"})],
                responses.append,
                hello=False,
            )
        assert outcome == "eof"
        first, second = (json.loads(r) for r in responses)
        assert first["ok"] is False and "exceeds" in first["error"]
        assert second["ok"] is True and second["pong"] is True

    def test_malformed_json_keeps_loop_alive(self):
        responses = []
        with JobQueue(workers=1, runner=quick_result) as queue:
            serve_lines(
                queue,
                ["{not json", "[1, 2]", json.dumps({"op": "ping"})],
                responses.append,
                hello=False,
            )
        decoded = [json.loads(r) for r in responses]
        assert [r["ok"] for r in decoded] == [False, False, True]

    def test_drain_op(self):
        with JobQueue(workers=1, runner=quick_result) as queue:
            response = handle_request(
                queue, {"op": "drain", "timeout": 10, "id": 9}
            )
            assert response == {"ok": True, "drained": True, "id": 9}
            closed = handle_request(
                queue, {"op": "submit", **SUBMIT}
            )
        assert closed["ok"] is False and closed.get("closed") is True

    def test_internal_error_is_flagged_not_fatal(self):
        with JobQueue(workers=1, runner=quick_result) as queue:
            original = queue.describe
            queue.describe = lambda: 1 / 0
            try:
                response = handle_request(queue, {"op": "stats"})
            finally:
                queue.describe = original
            assert response["ok"] is False
            assert response["internal"] is True
            # The queue survived; a follow-up op works.
            assert handle_request(queue, {"op": "ping"})["ok"] is True

    def test_injected_protocol_fault_is_transient_response(self):
        from repro.resilience import injected

        injector = FaultInjector(rate={"protocol.request": 1.0})
        with JobQueue(workers=1, runner=quick_result) as queue:
            with injected(injector):
                response = handle_request(queue, {"op": "ping"})
        assert response["ok"] is False
        assert response["transient"] is True

    def test_submit_with_deadline_and_attempt_history(self):
        def flaky_once(request, state={"failed": False}):
            if not state["failed"]:
                state["failed"] = True
                raise TransientServiceError("first try fails")
            return quick_result(request)

        policy = RetryPolicy(max_attempts=2, base_delay=0.001)
        with JobQueue(
            workers=1, runner=flaky_once, retry_policy=policy,
        ) as queue:
            response = handle_request(queue, {
                "op": "submit", **SUBMIT, "deadline": 30, "wait": True,
            })
        assert response["ok"] is True
        assert response["state"] == "DONE"
        attempts = response["attempts"]
        assert len(attempts) == 1 and attempts[0]["retried"] is True

    def test_stats_op_exposes_store_and_breaker(self, tmp_path):
        store = ResultStore(tmp_path, breaker=CircuitBreaker())
        with JobQueue(
            workers=1, runner=quick_result, store=store,
        ) as queue:
            response = handle_request(queue, {"op": "stats"})
        assert response["ok"] is True
        assert "store" in response["stats"]
        assert response["stats"]["breaker"]["state"] == "closed"
