"""JSON round-trip of every payload family a backend can produce."""

import json

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.execution import execute
from repro.execution.results import FidelityResult, RunResult
from repro.noise.presets import SC
from repro.qudits import qubits
from repro.service import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)


def _roundtrip(result):
    return result_from_json(result_to_json(result))


class TestRoundTrip:
    def test_classical_values(self):
        result = execute("qutrit_tree", num_controls=3,
                         backend="classical", initial=(1, 1, 1, 0))
        back = _roundtrip(result)
        assert back.values == result.values
        assert back.backend == result.backend
        assert back.wires == result.wires

    def test_statevector_amplitudes(self):
        result = execute("qutrit_tree", num_controls=3,
                         backend="statevector")
        back = _roundtrip(result)
        np.testing.assert_allclose(back.state.tensor, result.state.tensor)
        assert back.state.wires == result.state.wires

    def test_measurement_samples(self):
        result = execute("qutrit_tree", num_controls=3,
                         backend="statevector", shots=64, seed=7)
        back = _roundtrip(result)
        np.testing.assert_array_equal(
            back.measurements.samples, result.measurements.samples
        )
        assert back.measurements.samples.dtype == np.int64

    def test_density_matrix(self):
        result = execute("qutrit_tree", num_controls=3,
                         backend="density", noise_model=SC)
        back = _roundtrip(result)
        np.testing.assert_allclose(
            back.density.matrix, result.density.matrix
        )

    def test_fidelity_estimate(self):
        result = execute("qutrit_tree", num_controls=3,
                         backend="trajectory", noise_model=SC,
                         trials=5, seed=11)
        back = _roundtrip(result)
        assert isinstance(back, FidelityResult)
        assert back.estimate == result.estimate
        assert back.mean_fidelity == result.mean_fidelity

    def test_params_and_metadata_survive(self):
        result = execute(
            "qutrit_tree", num_controls=3, backend="classical",
            initial=(1, 1, 1, 0),
        ).with_params({"num_controls": 3})
        back = _roundtrip(result)
        assert dict(back.params) == {"num_controls": 3}
        # JSON normalises tuples to lists on the way through.
        assert dict(back.metadata) == json.loads(
            json.dumps(dict(result.metadata))
        )

    def test_seed_survives(self):
        result = execute("qutrit_tree", num_controls=3,
                         backend="statevector", shots=8, seed=42)
        assert _roundtrip(result).seed == result.seed


class TestRejects:
    def test_unknown_schema(self):
        result = execute("qutrit_tree", num_controls=3,
                         backend="statevector")
        data = result_to_dict(result)
        data["schema"] = "repro-result/v999"
        with pytest.raises(SerializationError):
            result_from_dict(data)

    def test_malformed_json(self):
        with pytest.raises(SerializationError):
            result_from_json("{not json")

    def test_unserializable_metadata(self):
        wires = tuple(qubits(1))
        result = RunResult(
            backend="classical", wires=wires, values=(0,),
            metadata={"payload": object()},
        )
        with pytest.raises(SerializationError):
            result_to_dict(result)
